/// \file arl_cli.cpp
/// Command-line front end for the library.
///
///   arl gen       — emit a configuration in the text format
///   arl classify  — decide feasibility (Classifier) and show the partition
///   arl elect     — run the full pipeline and report the election
///   arl sweep     — batch many elections across the thread pool (engine)
///   arl trace     — replay the canonical DRIP with a per-round trace
///   arl schedule  — compile and print the canonical schedule (deployable)
///   arl dot       — Graphviz rendering of a configuration
///   arl orbits    — symmetry analysis (orbits of indistinguishable nodes)
///   arl validate  — simulate + independently validate the execution
///
/// Configurations are read from a file path argument or stdin.  Run with
/// `--help` (or no arguments) for the full flag reference.

#include <fstream>
#include <iostream>
#include <sstream>

#include "config/families.hpp"
#include "config/io.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "core/protocol.hpp"
#include "core/quotient.hpp"
#include "core/schedule_io.hpp"
#include "engine/batch_runner.hpp"
#include "engine/sweep.hpp"
#include "graph/generators.hpp"
#include "radio/trace.hpp"
#include "radio/validator.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

int usage() {
  std::cout <<
      R"(arl — deterministic leader election in anonymous radio networks

usage: arl <command> [flags] [config-file]

commands:
  gen        generate a configuration
               --family=h|g|s|staggered|single-hop|random  (default h)
               --m=N          family parameter             (default 3)
               --n=N          node count for staggered/single-hop/random
               --sigma=N      span for random              (default 3)
               --p=X          edge probability for random  (default 0.3)
               --seed=N       RNG seed for random          (default 1)
  classify   decide feasibility; print verdict, iterations, partition
               --model=cd|nocd   channel feedback          (default cd)
               --fast            use the hashed classifier
  elect      classify + run the canonical DRIP + verify
               --model=cd|nocd
  sweep      run a batch of elections across the thread pool
               --count=N         configurations in the batch  (default 100)
               --family=random|staggered|h|g|s               (default random)
               --protocol=NAME   protocol to run: canonical, classify,
                                 binary-search[:BITS], tree-split[:BITS],
                                 randomized[:SLOTS]           (default canonical)
                                 repeatable — several protocols make the batch a
                                 cross product (every configuration under every
                                 protocol) with a per-protocol comparison table
               --n=N             node count for random        (default 16)
               --sigma=N         span for random              (default 3)
               --p=X             edge probability for random  (default 0.3)
               --seed=N          batch master seed            (default 1)
               --threads=N       worker threads (default: hardware)
               --model=cd|nocd   channel feedback
               --fast            use the hashed classifier
               --cache=on|off|N  schedule/classification cache shared by the
                                 workers: on (default capacity), off, or a
                                 capacity in entries; jobs sharing a
                                 configuration classify once, and the summary
                                 reports hit/miss/evict counts (default off)
               --classify-only   shorthand for --protocol=classify
  trace      replay the canonical DRIP round by round
               --verbose         also print listens and silences
  schedule   compile and print the canonical schedule (text format)
               --model=cd|nocd
  dot        Graphviz rendering
  orbits     symmetry analysis: orbits of indistinguishable nodes + quotient
  validate   simulate and re-validate the execution independently

configurations are read from the file argument, or stdin when absent.
)";
  return 2;
}

config::Configuration read_configuration(const support::Args& args, std::size_t index) {
  if (args.positional().size() > index) {
    std::ifstream file(args.positional()[index]);
    if (!file) {
      throw support::ContractViolation("cannot open " + args.positional()[index]);
    }
    return config::from_text(file);
  }
  return config::from_text(std::cin);
}

radio::ChannelModel parse_model(const support::Args& args) {
  const std::string model = args.get_string("model", "cd");
  if (model == "cd") {
    return radio::ChannelModel::CollisionDetection;
  }
  if (model == "nocd") {
    return radio::ChannelModel::NoCollisionDetection;
  }
  throw support::ContractViolation("--model must be cd or nocd");
}

int cmd_gen(const support::Args& args) {
  const std::string family = args.get_string("family", "h");
  const auto m = static_cast<config::Tag>(args.get_int("m", 3));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 8));
  if (family == "h") {
    config::to_text(config::family_h(m), std::cout);
  } else if (family == "g") {
    config::to_text(config::family_g(m), std::cout);
  } else if (family == "s") {
    config::to_text(config::family_s(m), std::cout);
  } else if (family == "staggered") {
    config::to_text(config::staggered_path(n), std::cout);
  } else if (family == "single-hop") {
    std::vector<config::Tag> tags(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      tags[v] = v;
    }
    config::to_text(config::single_hop(tags), std::cout);
  } else if (family == "random") {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
    const auto sigma = static_cast<config::Tag>(args.get_int("sigma", 3));
    const double p = args.get_double("p", 0.3);
    config::to_text(
        config::random_tags_with_span(graph::gnp_connected(n, p, rng), sigma, rng),
        std::cout);
  } else {
    std::cerr << "unknown family '" << family << "'\n";
    return 2;
  }
  return 0;
}

int cmd_classify(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const radio::ChannelModel model = parse_model(args);
  const core::ClassifierResult result = args.has("fast")
                                            ? core::FastClassifier(model).run(c)
                                            : core::Classifier(model).run(c);
  std::cout << "verdict:    " << (result.feasible() ? "feasible" : "infeasible") << '\n';
  std::cout << "iterations: " << result.iterations << '\n';
  std::cout << "steps:      " << result.steps << '\n';
  if (result.feasible()) {
    std::cout << "leader:     node " << result.leader << " (class " << result.leader_class
              << ")\n";
  }
  std::cout << "partition:  ";
  const auto& final_classes = result.records.back().clazz;
  for (std::size_t v = 0; v < final_classes.size(); ++v) {
    std::cout << (v ? " " : "") << final_classes[v];
  }
  std::cout << '\n';
  return result.feasible() ? 0 : 1;
}

int cmd_elect(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  core::ElectionOptions options;
  options.channel_model = parse_model(args);
  const core::ElectionReport report = core::elect(c, options);
  std::cout << "protocol:      " << report.protocol << '\n';
  std::cout << "feasible:      " << (report.feasible ? "yes" : "no") << '\n';
  std::cout << "disposition:   " << core::to_string(report.disposition) << '\n';
  if (report.leader) {
    std::cout << "leader:        node " << *report.leader << '\n';
  }
  std::cout << "local rounds:  " << report.local_rounds << '\n';
  std::cout << "global rounds: " << report.global_rounds << '\n';
  std::cout << "transmissions: " << report.stats.transmissions << '\n';
  std::cout << "verified:      " << (report.valid ? "ok" : "FAILED") << '\n';
  return report.valid ? 0 : 1;
}

/// Parses the sweep's --cache flag into a cache capacity (0 = disabled):
/// "on" picks the default capacity, "off" disables, a non-negative integer
/// sets the capacity in entries.  Throws on anything else.
std::size_t parse_cache_capacity(const support::Args& args) {
  if (!args.has("cache")) {
    return 0;
  }
  const std::string value = args.get_string("cache", "");
  if (value == "on" || value.empty()) {  // bare --cache reads as --cache=on
    return engine::ScheduleCache::kDefaultCapacity;
  }
  if (value == "off") {
    return 0;
  }
  if (!value.empty() && value.find_first_not_of("0123456789") == std::string::npos &&
      value.size() <= 9) {
    return static_cast<std::size_t>(std::stoull(value));
  }
  throw support::ContractViolation("--cache must be on, off, or a capacity in [0, 999999999]");
}

int cmd_sweep(const support::Args& args) {
  const std::int64_t count_flag = args.get_int("count", 100);
  if (count_flag < 0) {
    throw support::ContractViolation("--count must be >= 0");
  }
  const auto count = static_cast<std::size_t>(count_flag);
  const std::int64_t threads_flag = args.get_int("threads", 0);
  if (threads_flag < 0 || threads_flag > 4096) {
    throw support::ContractViolation("--threads must be in [0, 4096]");
  }
  const std::string family = args.get_string("family", "random");

  engine::BatchOptions batch_options;
  batch_options.threads = static_cast<unsigned>(threads_flag);
  batch_options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  try {
    batch_options.cache_capacity = parse_cache_capacity(args);
  } catch (const support::ContractViolation& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }

  core::ElectionOptions options;
  options.channel_model = parse_model(args);
  options.use_fast_classifier = args.has("fast");

  // The protocol axis: repeatable --protocol flags, validated against the
  // registry; several protocols make the batch a head-to-head cross product.
  std::vector<core::ProtocolSpec> protocols;
  for (const std::string& name : args.get_strings("protocol")) {
    try {
      protocols.push_back(core::parse_protocol(name));
    } catch (const support::ContractViolation& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 2;
    }
  }
  if (args.has("classify-only") && !protocols.empty()) {
    std::cerr << "error: --classify-only conflicts with --protocol; "
                 "use --protocol=classify instead\n";
    return 2;
  }
  if (protocols.empty()) {
    protocols.push_back(args.has("classify-only") ? core::ProtocolSpec::classify_only()
                                                  : core::ProtocolSpec::canonical());
  }

  engine::BatchRunner runner(batch_options);
  engine::BatchReport report;
  if (family == "random") {
    const std::int64_t n = args.get_int("n", 16);
    if (n < 1 || n > 1'000'000) {
      throw support::ContractViolation("--n must be in [1, 1000000]");
    }
    const std::int64_t sigma = args.get_int("sigma", 3);
    if (sigma < 0 || sigma > 1'000'000) {
      throw support::ContractViolation("--sigma must be in [0, 1000000]");
    }
    const double p = args.get_double("p", 0.3);
    if (p < 0.0 || p > 1.0) {
      throw support::ContractViolation("--p must be in [0, 1]");
    }
    engine::RandomSweep sweep;
    sweep.nodes = static_cast<graph::NodeId>(n);
    sweep.edge_probability = p;
    sweep.span = static_cast<config::Tag>(sigma);
    // Configuration stream seed: an explicit, documented function of the
    // batch seed (see engine::sweep_configuration_seed), independent of the
    // per-job coin-seed stream.
    sweep.seed = engine::sweep_configuration_seed(batch_options.seed);
    sweep.protocols = protocols;
    sweep.options = options;
    report = runner.run(count * protocols.size(), engine::random_jobs(sweep));
  } else if (family == "staggered") {
    std::vector<config::Configuration> configurations;
    configurations.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      configurations.push_back(config::staggered_path(2 + static_cast<graph::NodeId>(i)));
    }
    report = runner.run(engine::cross_jobs(std::move(configurations), protocols, options));
  } else if (family == "h" || family == "g" || family == "s") {
    std::vector<config::Configuration> configurations;
    configurations.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto m = static_cast<config::Tag>(i + (family == "g" ? 2 : 1));
      configurations.push_back(family == "h"   ? config::family_h(m)
                               : family == "g" ? config::family_g(m)
                                               : config::family_s(m));
    }
    report = runner.run(engine::cross_jobs(std::move(configurations), protocols, options));
  } else {
    std::cerr << "unknown family '" << family << "'\n";
    return 2;
  }

  // Feasibility is a verdict only the classifying protocols produce, so the
  // percentage is over their jobs — not over baseline jobs that never
  // classify (which would understate it in mixed-protocol sweeps).
  std::uint64_t classified_jobs = 0;
  std::uint64_t simulated_jobs = 0;
  for (const engine::ProtocolBreakdown& row : report.by_protocol) {
    if (row.protocol.classifies()) {
      classified_jobs += row.jobs;
    }
    if (row.protocol.simulates()) {
      simulated_jobs += row.jobs;
    }
  }
  support::Table table({"metric", "value"});
  table.set_precision(3);
  table.add_row({std::string("jobs"), static_cast<std::int64_t>(report.jobs.size())});
  table.add_row({std::string("worker threads"), static_cast<std::int64_t>(report.threads_used)});
  table.add_row({std::string("feasible"), static_cast<std::int64_t>(report.feasible_count)});
  table.add_row({std::string("feasible %"),
                 classified_jobs == 0 ? 0.0
                                      : 100.0 * static_cast<double>(report.feasible_count) /
                                            static_cast<double>(classified_jobs)});
  table.add_row({std::string("verified"), static_cast<std::int64_t>(report.valid_count)});
  // Rounds only accrue on simulating protocols, so average over their jobs
  // (same reasoning as the feasible % denominator above).
  table.add_row({std::string("avg local rounds"),
                 simulated_jobs == 0 ? 0.0
                                     : static_cast<double>(report.total_local_rounds) /
                                           static_cast<double>(simulated_jobs)});
  table.add_row({std::string("max local rounds"),
                 static_cast<std::int64_t>(report.max_local_rounds)});
  table.add_row({std::string("radio transmissions"),
                 static_cast<std::int64_t>(report.total_stats.transmissions)});
  table.add_row({std::string("wall time ms"), report.wall_millis});
  table.add_row({std::string("jobs per second"), report.throughput()});
  table.print_markdown(std::cout);

  // Cache counters, printed exactly when the cache ran (so scripts can key
  // on the "schedule cache:" prefix).
  if (report.cache) {
    const engine::ScheduleCacheStats& cache = *report.cache;
    std::cout << "\nschedule cache: " << cache.hits << " hits, " << cache.misses << " misses, "
              << cache.evictions << " evictions, " << cache.schedule_builds
              << " schedule builds, " << cache.entries << " entries ("
              << static_cast<int>(cache.hit_rate() * 1000.0) / 10.0 << "% hit rate)\n";
  }

  // Head-to-head comparison: one row per protocol in the batch.
  std::cout << "\nper-protocol breakdown:\n\n";
  support::Table comparison({"protocol", "jobs", "feasible", "elected", "no leader", "failed",
                             "verified", "avg rounds", "max rounds", "transmissions"});
  comparison.set_precision(3);
  for (const engine::ProtocolBreakdown& row : report.by_protocol) {
    comparison.add_row({row.protocol.name(), static_cast<std::int64_t>(row.jobs),
                        static_cast<std::int64_t>(row.feasible),
                        static_cast<std::int64_t>(row.elected),
                        static_cast<std::int64_t>(row.no_leader),
                        static_cast<std::int64_t>(row.failed),
                        static_cast<std::int64_t>(row.valid), row.average_local_rounds(),
                        static_cast<std::int64_t>(row.max_local_rounds),
                        static_cast<std::int64_t>(row.stats.transmissions)});
  }
  comparison.print_markdown(std::cout);
  return report.valid_count == report.jobs.size() ? 0 : 1;
}

int cmd_trace(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  radio::StreamTrace trace(std::cout, args.has("verbose"));
  radio::SimulatorOptions options;
  options.trace = &trace;
  options.channel_model = schedule->model;
  const core::CanonicalDrip drip(schedule);
  const radio::RunResult run = radio::simulate(c, drip, options);
  const auto leaders = run.leaders();
  std::cout << (leaders.size() == 1
                    ? "leader: node " + std::to_string(leaders.front())
                    : "no unique leader")
            << '\n';
  return 0;
}

int cmd_schedule(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  core::schedule_to_text(*schedule, std::cout);
  return 0;
}

int cmd_dot(const support::Args& args) {
  config::to_dot(read_configuration(args, 1), std::cout);
  return 0;
}

int cmd_orbits(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const core::SymmetryReport report = core::analyze_symmetry(c);
  std::cout << (report.feasible() ? "feasible" : "infeasible") << ": " << report.orbits.size()
            << " orbit(s) of indistinguishable nodes\n";
  for (const core::Orbit& orbit : report.orbits) {
    std::cout << "  orbit " << orbit.id << " {";
    for (std::size_t i = 0; i < orbit.members.size(); ++i) {
      std::cout << (i ? " " : "") << orbit.members[i];
    }
    std::cout << "}" << (orbit.members.size() == 1 ? "  <- electable" : "") << '\n';
  }
  std::cout << "quotient graph: " << report.quotient.node_count() << " orbit(s), "
            << report.quotient.edge_count() << " edge(s)\n";
  return report.feasible() ? 0 : 1;
}

int cmd_validate(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  const core::CanonicalDrip drip(schedule);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  options.channel_model = schedule->model;
  const radio::RunResult run = radio::simulate(c, drip, options);
  const radio::ValidationReport report =
      radio::validate_execution(c, recorder, run, schedule->model);
  if (report.ok) {
    std::cout << "execution valid (" << report.checks << " checks)\n";
    return 0;
  }
  std::cout << "execution INVALID: " << report.error << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  if (args.has("help")) {
    (void)usage();
    return 0;
  }
  if (args.positional().empty()) {
    return usage();
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "gen") {
      return cmd_gen(args);
    }
    if (command == "classify") {
      return cmd_classify(args);
    }
    if (command == "elect") {
      return cmd_elect(args);
    }
    if (command == "sweep") {
      return cmd_sweep(args);
    }
    if (command == "trace") {
      return cmd_trace(args);
    }
    if (command == "schedule") {
      return cmd_schedule(args);
    }
    if (command == "dot") {
      return cmd_dot(args);
    }
    if (command == "orbits") {
      return cmd_orbits(args);
    }
    if (command == "validate") {
      return cmd_validate(args);
    }
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
