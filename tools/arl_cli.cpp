/// \file arl_cli.cpp
/// Command-line front end for the library.
///
///   arl gen       — emit a configuration in the text format
///   arl classify  — decide feasibility (Classifier) and show the partition
///   arl elect     — run the full pipeline and report the election
///   arl sweep     — batch many elections across the thread pool (engine);
///                   --shard=i/K emits one shard of a distributed sweep,
///                   --workers=K forks K local worker processes and merges
///   arl merge     — reassemble shard report files into the sweep's report
///   arl serve     — sweep service daemon on a unix socket: one shared
///                   engine + schedule cache across requests (serve/)
///   arl submit    — submit one sweep to a running service
///   arl stats     — live statistics of a running service (queue, latency)
///   arl workloads — list the registered sweep workloads (engine/workload.hpp)
///   arl faults    — list the registered fault specs (fault/fault.hpp)
///   arl trace     — replay the canonical DRIP with a per-round trace
///   arl schedule  — compile and print the canonical schedule (deployable)
///   arl dot       — Graphviz rendering of a configuration
///   arl orbits    — symmetry analysis (orbits of indistinguishable nodes)
///   arl validate  — simulate + independently validate the execution
///   arl help      — this reference
///
/// Configurations are read from a file path argument or stdin.
///
/// Exit codes: 0 success (`help` and no-args print the reference and exit
/// 0); 1 runtime failure (an election did not verify, a worker died); 2
/// usage error (unknown command, malformed flag value, unreadable input,
/// unmergeable shard reports).

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ARL_CLI_HAS_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define ARL_CLI_HAS_FORK 0
#endif

#include "config/families.hpp"
#include "config/io.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "core/protocol.hpp"
#include "core/quotient.hpp"
#include "core/schedule_io.hpp"
#include "dist/merge.hpp"
#include "dist/report_io.hpp"
#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"
#include "engine/sweep.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "obs/json_snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radio/trace.hpp"
#include "serve/client.hpp"
#include "serve/serve_proto.hpp"
#include "serve/server.hpp"
#include "radio/validator.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

void print_usage(std::ostream& out) {
  out <<
      R"(arl — deterministic leader election in anonymous radio networks

usage: arl <command> [flags] [config-file]

commands:
  gen        generate a configuration
               --family=h|g|s|staggered|single-hop|random  (default h)
               --m=N          family parameter             (default 3)
               --n=N          node count for staggered/single-hop/random
               --sigma=N      span for random              (default 3)
               --p=X          edge probability for random  (default 0.3)
               --seed=N       RNG seed for random          (default 1)
  classify   decide feasibility; print verdict, iterations, partition
               --model=cd|nocd   channel feedback          (default cd)
               --fast            use the hashed classifier
  elect      classify + run the canonical DRIP + verify
               --model=cd|nocd
  sweep      run a batch of elections across the thread pool
               --workload=SPEC   registry workload to sweep (see `arl
                                 workloads`), e.g. random:n=16,p=0.3,sigma=3,
                                 grid:rows=8,cols=8,sigma=3, hypercube:d=6,
                                 exhaustive:n=4,tau=2, mutations:family-h
                                 (default random)
               --count=N         configurations in the batch  (default 100;
                                 conflicts with self-counting workloads)
               --family=random|staggered|h|g|s   legacy alias constructing
                                 the same workload spec (conflicts with
                                 --workload)
               --protocol=NAME   protocol to run: canonical, classify,
                                 binary-search[:BITS], tree-split[:BITS],
                                 randomized[:SLOTS]           (default canonical)
                                 repeatable — several protocols make the batch a
                                 cross product (every configuration under every
                                 protocol) with a per-protocol comparison table
               --n=N             node count for --family=random      (default 16)
               --sigma=N         span for --family=random            (default 3)
               --p=X             edge probability, --family=random   (default 0.3)
               --seed=N          batch master seed            (default 1)
               --fault=SPEC      deterministic fault plan applied to every
                                 job (see `arl faults`): none (default),
                                 drop:P[,SPLIT], corrupt:P, crash:K[,WINDOW],
                                 adversarial-wake:W — same seed, same spec,
                                 same outcomes at any shard/thread count
               --threads=N       worker threads in [0, 256]; 0 = hardware
               --model=cd|nocd   channel feedback (with the legacy aliases;
                                 a --workload spec spells it as model=nocd)
               --fast            use the hashed classifier (with the legacy
                                 aliases; a --workload spec spells fast=1)
               --shard=i/K       run only shard i of K (contiguous job-id
                                 ranges; bit-identical to the same ids of an
                                 unsharded run) and emit a shard report
               --shard=B-E       run exactly the global job-id range [B, E)
                                 — the resume notation `arl merge --missing`
                                 emits for a partially completed sweep
               --out=FILE        write the shard report to FILE (with
                                 --shard only; default stdout)
               --workers=K       fork K local worker processes, one shard
                                 each, and merge their reports (the
                                 zero-infrastructure distributed driver)
               --cache=on|off|N  schedule/classification cache shared by the
                                 workers: on (default capacity), off, or a
                                 capacity in entries; jobs sharing a
                                 configuration classify once, and the summary
                                 reports hit/miss/evict counts (default off)
               --store=DIR       persistent artifact store: compiled
                                 classifications/schedules are read from and
                                 written to DIR (created if missing) through
                                 crash-safe files, so a later cache-cold
                                 sweep preloads them; implies --cache=on
                                 (conflicts with --cache=off); outcomes are
                                 bit-identical with the store on, off or
                                 pre-populated
               --engine=MODE     simulation path: auto (default), scalar (the
                                 reference loop) or wavefront (word-parallel
                                 fast path); results are bit-identical, only
                                 throughput differs
               --metrics-out=FILE  write the run's phase-timing metrics as a
                                 flat JSON object to FILE: per-phase counts
                                 (deterministic at --threads=1) plus total
                                 and p50/p90/p99 milliseconds (plain-path
                                 sweeps only; conflicts with --shard and
                                 --workers)
               --trace=FILE      machine-readable run telemetry: append one
                                 JSON line per job to FILE — job id, config
                                 fingerprint, disposition, per-phase
                                 nanoseconds (plain-path sweeps only)
               --classify-only   shorthand for --protocol=classify
  workloads  list the registered workloads and the spec grammar (exit 0)
  faults     list the registered fault specs and the spec grammar (exit 0)
  merge      reassemble shard report files into the sweep's report
               arl merge SHARD-FILE...
               verifies the shards describe one sweep (same spec digest,
               seed, protocols) and tile its job ids exactly; prints the
               usual sweep tables.  exit 2 on malformed or mismatched input
               --missing         instead of merging, report the job-id
                                 ranges the given shards do NOT cover and
                                 print (to stdout) the exact `arl sweep
                                 --shard=B-E --out=...` commands that fill
                                 them — the resume path after a killed
                                 worker; exit 0 whether or not gaps exist
  serve      run the sweep service: a unix-socket daemon executing sweep
             requests one at a time through one shared engine and one
             cross-request schedule cache (warm requests skip compiles)
               --socket=PATH     socket path to listen on (required; a stale
                                 socket left by a crashed daemon is detected
                                 and reclaimed, a live one is refused; the
                                 bound socket is chmod 0600)
               --threads=N       engine worker threads in [0, 256]; 0 = hardware
               --cache=on|off|N  shared schedule cache across requests:
                                 on (default), off, or a capacity in entries
               --store=DIR       persistent artifact store behind the shared
                                 cache: the daemon's warm cache survives
                                 restarts (requires the cache on)
               --queue=N         requests allowed to wait in [1, 4096]
                                 (default 8); past it submissions get `busy`
               SIGINT/SIGTERM drain gracefully: acknowledged requests finish
               and stream back, then the socket is unlinked
  submit     submit one sweep to a running service; prints the same tables
             as `arl sweep` (responses are shard reports, so --out files
             feed `arl merge` unchanged)
               --socket=PATH     the service socket (required)
               --ping            round-trip a ping and print the server's
                                 cumulative cache counters instead
               sweep axes as in `arl sweep`: --workload or the legacy
                 family flags, --protocol (repeatable), --count, --seed,
                 --fault=SPEC, --shard=i/K, --engine=MODE
               --threads=N       cap this request's workers in [1, 256]
                                 (omit for the server's full pool)
               --cache=off       opt this request out of the shared cache
               --store=off       opt this request out of the server's
                                 artifact store (the directory itself is a
                                 server-side --store option)
               --timeout=N       give up after N seconds without a server
                                 response, in [0, 86400] (default 0: wait
                                 forever); a timeout exits 1 with a
                                 diagnostic instead of blocking on a wedged
                                 server
               --out=FILE        write the raw shard report to FILE instead
                                 of printing tables
  stats      query a running service for live statistics: uptime, queue
             depth, in-flight work, open sessions, request counters,
             cache/store totals, queue-wait and dispatch latency
             percentiles (the same snapshot the daemon prints on drain)
               --socket=PATH     the service socket (required)
               --timeout=N       give up after N seconds without a response,
                                 in [0, 86400] (default 0: wait forever)
  trace      replay the canonical DRIP round by round
               --verbose         also print listens and silences
  schedule   compile and print the canonical schedule (text format)
               --model=cd|nocd
  dot        Graphviz rendering
  orbits     symmetry analysis: orbits of indistinguishable nodes + quotient
  validate   simulate and re-validate the execution independently
  help       print this reference (exit 0)

configurations are read from the file argument, or stdin when absent.
exit codes: 0 success, 1 runtime failure, 2 usage error.
)";
}

config::Configuration read_configuration(const support::Args& args, std::size_t index) {
  if (args.positional().size() > index) {
    std::ifstream file(args.positional()[index]);
    if (!file) {
      throw support::ContractViolation("cannot open " + args.positional()[index]);
    }
    return config::from_text(file);
  }
  return config::from_text(std::cin);
}

#if ARL_CLI_HAS_FORK

// ---- interrupt handling -----------------------------------------------
//
// Three commands own cleanup obligations a Ctrl-C must not skip: `sweep
// --workers` (forked children to terminate and temp shard files to remove),
// `sweep --shard --out` (a half-written report file that must never appear
// under the final name) and `serve` (a graceful drain).  Handlers are
// installed without SA_RESTART so blocking syscalls return EINTR, and every
// handler body is async-signal-safe (flag writes, unlink, write, _exit).

/// Set by the --workers parent's handler; the waitpid loop turns it into
/// SIGTERM for the children plus temp-file cleanup.
volatile std::sig_atomic_t g_interrupted = 0;

void flag_interrupt(int) { g_interrupted = 1; }

/// The temp path a `--shard --out` run is writing; the handler unlinks it
/// and exits so an interrupt can never leave a truncated file behind
/// (the final name only ever appears via rename of a complete report).
char g_shard_tmp_path[4096] = {0};

void shard_interrupt(int) {
  if (g_shard_tmp_path[0] != '\0') {
    ::unlink(g_shard_tmp_path);
  }
  ::_exit(130);
}

/// The serve stop pipe (SweepServer::stop_fd); one byte requests a drain.
int g_serve_stop_fd = -1;

void serve_interrupt(int) {
  if (g_serve_stop_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t rc = ::write(g_serve_stop_fd, &byte, 1);
  }
}

/// Installs one handler for SIGINT and SIGTERM, restoring the previous
/// dispositions on scope exit (so one command's handler never leaks into
/// another's run).
class ScopedSignalHandlers {
 public:
  explicit ScopedSignalHandlers(void (*handler)(int)) {
    struct sigaction action {};
    action.sa_handler = handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: blocked syscalls must see EINTR
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedSignalHandlers() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedSignalHandlers(const ScopedSignalHandlers&) = delete;
  ScopedSignalHandlers& operator=(const ScopedSignalHandlers&) = delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

#endif  // ARL_CLI_HAS_FORK

radio::ChannelModel parse_model(const support::Args& args) {
  const std::string model = args.get_string("model", "cd");
  if (model == "cd") {
    return radio::ChannelModel::CollisionDetection;
  }
  if (model == "nocd") {
    return radio::ChannelModel::NoCollisionDetection;
  }
  throw support::ContractViolation("--model must be cd or nocd");
}

int cmd_gen(const support::Args& args) {
  const std::string family = args.get_string("family", "h");
  const auto m = static_cast<config::Tag>(args.get_int("m", 3));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 8));
  if (family == "h") {
    config::to_text(config::family_h(m), std::cout);
  } else if (family == "g") {
    config::to_text(config::family_g(m), std::cout);
  } else if (family == "s") {
    config::to_text(config::family_s(m), std::cout);
  } else if (family == "staggered") {
    config::to_text(config::staggered_path(n), std::cout);
  } else if (family == "single-hop") {
    std::vector<config::Tag> tags(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      tags[v] = v;
    }
    config::to_text(config::single_hop(tags), std::cout);
  } else if (family == "random") {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
    const auto sigma = static_cast<config::Tag>(args.get_int("sigma", 3));
    const double p = args.get_double("p", 0.3);
    config::to_text(
        config::random_tags_with_span(graph::gnp_connected(n, p, rng), sigma, rng),
        std::cout);
  } else {
    std::cerr << "unknown family '" << family << "'\n";
    return 2;
  }
  return 0;
}

int cmd_classify(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const radio::ChannelModel model = parse_model(args);
  const core::ClassifierResult result = args.has("fast")
                                            ? core::FastClassifier(model).run(c)
                                            : core::Classifier(model).run(c);
  std::cout << "verdict:    " << (result.feasible() ? "feasible" : "infeasible") << '\n';
  std::cout << "iterations: " << result.iterations << '\n';
  std::cout << "steps:      " << result.steps << '\n';
  if (result.feasible()) {
    std::cout << "leader:     node " << result.leader << " (class " << result.leader_class
              << ")\n";
  }
  std::cout << "partition:  ";
  const auto& final_classes = result.records.back().clazz;
  for (std::size_t v = 0; v < final_classes.size(); ++v) {
    std::cout << (v ? " " : "") << final_classes[v];
  }
  std::cout << '\n';
  return result.feasible() ? 0 : 1;
}

int cmd_elect(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  core::ElectionOptions options;
  options.channel_model = parse_model(args);
  const core::ElectionReport report = core::elect(c, options);
  std::cout << "protocol:      " << report.protocol << '\n';
  std::cout << "feasible:      " << (report.feasible ? "yes" : "no") << '\n';
  std::cout << "disposition:   " << core::to_string(report.disposition) << '\n';
  if (report.leader) {
    std::cout << "leader:        node " << *report.leader << '\n';
  }
  std::cout << "local rounds:  " << report.local_rounds << '\n';
  std::cout << "global rounds: " << report.global_rounds << '\n';
  std::cout << "transmissions: " << report.stats.transmissions << '\n';
  std::cout << "max node tx:   " << report.stats.max_node_transmissions << '\n';
  std::cout << "max node awake:" << ' ' << report.stats.max_node_awake_rounds << '\n';
  std::cout << "verified:      " << (report.valid ? "ok" : "FAILED") << '\n';
  return report.valid ? 0 : 1;
}

/// Parses the sweep's --cache flag into a cache capacity (0 = disabled):
/// "on" picks the default capacity, "off" disables, a non-negative integer
/// sets the capacity in entries.  Throws on anything else.
std::size_t parse_cache_capacity(const support::Args& args) {
  if (!args.has("cache")) {
    return 0;
  }
  const std::string value = args.get_string("cache", "");
  if (value == "on" || value.empty()) {  // bare --cache reads as --cache=on
    return engine::ScheduleCache::kDefaultCapacity;
  }
  if (value == "off") {
    return 0;
  }
  if (!value.empty() && value.find_first_not_of("0123456789") == std::string::npos &&
      value.size() <= 9) {
    return static_cast<std::size_t>(std::stoull(value));
  }
  throw support::ContractViolation("--cache must be on, off, or a capacity in [0, 999999999]");
}

/// Parses the --store flag shared by `sweep` and `serve`: a non-empty
/// directory path, or "" when the flag is absent.  The store rides on the
/// cache (its memory tier), so pairing it with an explicit --cache=off is a
/// contradiction, not a preference.  Throws support::ContractViolation
/// (exit 2) on misuse.
std::string parse_store_directory(const support::Args& args) {
  if (!args.has("store")) {
    return "";
  }
  const std::string value = args.get_string("store", "");
  if (value.empty()) {
    throw support::ContractViolation("--store needs a directory path");
  }
  if (value == "off") {
    // `submit` spells per-request opt-out as --store=off; for sweep/serve
    // the flag's absence is off, and "off" would name a directory.
    throw support::ContractViolation(
        "--store takes a directory here (omit the flag to run without a store)");
  }
  if (args.has("cache") && parse_cache_capacity(args) == 0) {
    throw support::ContractViolation(
        "--store conflicts with --cache=off (the store is the cache's disk tier)");
  }
  return value;
}

/// Parses the sweep's --engine flag (default auto).  Throws on anything
/// else, reaching the usage-error handler (exit 2).
engine::EngineMode parse_engine(const support::Args& args) {
  const std::string value = args.get_string("engine", "auto");
  if (value == "auto") {
    return engine::EngineMode::Auto;
  }
  if (value == "scalar") {
    return engine::EngineMode::Scalar;
  }
  if (value == "wavefront") {
    return engine::EngineMode::Wavefront;
  }
  throw support::ContractViolation("--engine must be auto, scalar or wavefront");
}

/// Folds the --model/--fast execution flags into a legacy-alias workload
/// spec — they are workload identity (sweeps classifying under different
/// channel feedback must not merge), which is why the --workload spelling
/// carries them inside the spec instead of beside it.
engine::WorkloadSpec apply_execution_flags(engine::WorkloadSpec spec,
                                           const support::Args& args) {
  if (args.has("model")) {
    spec.model = parse_model(args);
  }
  if (args.has("fast")) {
    spec.fast = true;
  }
  return spec;
}

/// The workload the sweep flags describe: --workload=SPEC picks any registry
/// workload; the legacy --family/--n/--sigma/--p flags are parsed aliases
/// that construct the same spec (byte-identical sweeps either way), and
/// combining the two axes is contradictory.  Throws
/// support::ContractViolation on conflicts and out-of-range values (exit 2).
engine::WorkloadSpec sweep_workload(const support::Args& args) {
  if (args.has("workload")) {
    // Every workload-identity parameter has one spelling: inside the spec.
    // A bare flag next to --workload would either silently override the
    // spec's own key (model/fast) or duplicate it (family/n/sigma/p), so
    // both combinations are contradictions, not preferences.
    for (const char* flag : {"family", "n", "sigma", "p", "model", "fast"}) {
      if (args.has(flag)) {
        throw support::ContractViolation(
            std::string("--workload conflicts with --") + flag +
            "; put the parameter inside the spec instead (e.g. "
            "--workload=random:n=8,model=nocd)");
      }
    }
    return engine::parse_workload(args.get_string("workload", ""));
  }

  const std::string family = args.get_string("family", "random");
  engine::WorkloadSpec spec;
  if (family == "random") {
    const std::int64_t n = args.get_int("n", 16);
    if (n < 1 || n > 1'000'000) {
      throw support::ContractViolation("--n must be in [1, 1000000]");
    }
    const std::int64_t sigma = args.get_int("sigma", 3);
    if (sigma < 0 || sigma > 1'000'000) {
      throw support::ContractViolation("--sigma must be in [0, 1000000]");
    }
    const double p = args.get_double("p", 0.3);
    if (p < 0.0 || p > 1.0) {
      throw support::ContractViolation("--p must be in [0, 1]");
    }
    spec = engine::WorkloadSpec::random(static_cast<std::uint32_t>(n), p,
                                        static_cast<std::uint32_t>(sigma));
  } else if (family == "staggered") {
    spec = engine::WorkloadSpec::staggered();
  } else if (family == "h") {
    spec = engine::WorkloadSpec::family_h();
  } else if (family == "g") {
    spec = engine::WorkloadSpec::family_g();
  } else if (family == "s") {
    spec = engine::WorkloadSpec::family_s();
  } else {
    throw support::ContractViolation("unknown family '" + family +
                                     "' (a legacy alias; --workload reaches the full "
                                     "registry: " +
                                     engine::workload_names() + ")");
  }
  return apply_execution_flags(std::move(spec), args);
}

/// The fault axis shared by `sweep` and `submit`: --fault=SPEC parsed
/// through the fault registry (absence means none).  A malformed spec
/// throws support::ContractViolation whose message lists the registered
/// faults, so a typo'd flag exits 2 with the registry in view — the same
/// contract as --workload and --protocol.
fault::FaultSpec sweep_fault(const support::Args& args) {
  if (!args.has("fault")) {
    return fault::FaultSpec::none();
  }
  return fault::parse_fault(args.get_string("fault", ""));
}

/// The protocol axis shared by `sweep` and `submit`: repeatable --protocol
/// flags validated against the registry (several protocols make the batch a
/// head-to-head cross product), with --classify-only as a shorthand that
/// conflicts with explicit flags.  Throws support::ContractViolation on the
/// conflict (exit 2).
std::vector<core::ProtocolSpec> sweep_protocols(const support::Args& args) {
  std::vector<core::ProtocolSpec> protocols;
  for (const std::string& name : args.get_strings("protocol")) {
    protocols.push_back(core::parse_protocol(name));
  }
  if (args.has("classify-only") && !protocols.empty()) {
    throw support::ContractViolation(
        "--classify-only conflicts with --protocol; use --protocol=classify instead");
  }
  if (protocols.empty()) {
    protocols.push_back(args.has("classify-only") ? core::ProtocolSpec::classify_only()
                                                  : core::ProtocolSpec::canonical());
  }
  return protocols;
}

/// The sweep identity shard reports carry (see dist/report_io.hpp): the
/// workload's canonical name and digest plus the run-sizing fields.
dist::SweepKey make_sweep_key(const engine::WorkloadSpec& workload, engine::JobId total_jobs,
                              const std::vector<core::ProtocolSpec>& protocols,
                              std::uint64_t seed, const fault::FaultSpec& fault) {
  dist::SweepKey key;
  key.description = workload.name();
  key.digest = workload.digest();
  key.seed = seed;
  key.total_jobs = total_jobs;
  key.fault = fault.name();
  key.protocols.reserve(protocols.size());
  for (const core::ProtocolSpec& protocol : protocols) {
    key.protocols.push_back(protocol.name());
  }
  return key;
}

/// Prints the summary, cache and per-protocol tables of a batch report —
/// shared by `sweep` (single-process and --workers) and `merge`, so a
/// reassembled sweep reads exactly like a local one.
void print_report(const engine::BatchReport& report) {
  // Feasibility is a verdict only the classifying protocols produce, so the
  // percentage is over their jobs — not over baseline jobs that never
  // classify (which would understate it in mixed-protocol sweeps).
  std::uint64_t classified_jobs = 0;
  std::uint64_t simulated_jobs = 0;
  for (const engine::ProtocolBreakdown& row : report.by_protocol) {
    if (row.protocol.classifies()) {
      classified_jobs += row.jobs;
    }
    if (row.protocol.simulates()) {
      simulated_jobs += row.jobs;
    }
  }
  support::Table table({"metric", "value"});
  table.set_precision(3);
  table.add_row({std::string("jobs"), static_cast<std::int64_t>(report.jobs.size())});
  table.add_row({std::string("worker threads"), static_cast<std::int64_t>(report.threads_used)});
  table.add_row({std::string("feasible"), static_cast<std::int64_t>(report.feasible_count)});
  table.add_row({std::string("feasible %"),
                 classified_jobs == 0 ? 0.0
                                      : 100.0 * static_cast<double>(report.feasible_count) /
                                            static_cast<double>(classified_jobs)});
  table.add_row({std::string("verified"), static_cast<std::int64_t>(report.valid_count)});
  // Rounds only accrue on simulating protocols, so average over their jobs
  // (same reasoning as the feasible % denominator above).
  table.add_row({std::string("avg local rounds"),
                 simulated_jobs == 0 ? 0.0
                                     : static_cast<double>(report.total_local_rounds) /
                                           static_cast<double>(simulated_jobs)});
  table.add_row({std::string("max local rounds"),
                 static_cast<std::int64_t>(report.max_local_rounds)});
  table.add_row({std::string("global rounds"),
                 static_cast<std::int64_t>(report.total_global_rounds)});
  table.add_row({std::string("radio transmissions"),
                 static_cast<std::int64_t>(report.total_stats.transmissions)});
  // Per-node energy maxima (Kowalski–Mosteiro accounting): the busiest
  // node's transmission and awake-round budgets across the whole batch.
  table.add_row({std::string("max node transmissions"),
                 static_cast<std::int64_t>(report.total_stats.max_node_transmissions)});
  table.add_row({std::string("max node awake rounds"),
                 static_cast<std::int64_t>(report.total_stats.max_node_awake_rounds)});
  table.add_row({std::string("wall time ms"), report.wall_millis});
  table.add_row({std::string("jobs per second"), report.throughput()});
  table.add_row({std::string("node-rounds per second"), report.node_rounds_per_second()});
  table.print_markdown(std::cout);

  // Fault-injection summary, printed exactly when a fault plan was active
  // (so scripts can key on the "fault:" prefix; a --fault=none sweep prints
  // byte-identically to one without the flag).
  if (report.fault.active()) {
    std::cout << "\nfault: " << report.fault.name() << " — "
              << report.total_stats.injected_drops << " drops, "
              << report.total_stats.injected_corruptions << " corruptions, "
              << report.total_stats.injected_crashes << " crashes, "
              << report.total_stats.delayed_wakeups << " delayed wakeups\n";
  }

  // Cache counters, printed exactly when the cache ran (so scripts can key
  // on the "schedule cache:" prefix).
  if (report.cache) {
    const engine::ScheduleCacheStats& cache = *report.cache;
    std::cout << "\nschedule cache: " << cache.hits << " hits, " << cache.misses << " misses, "
              << cache.evictions << " evictions, " << cache.schedule_builds
              << " schedule builds, " << cache.entries << " entries ("
              << static_cast<int>(cache.hit_rate() * 1000.0) / 10.0 << "% hit rate)\n";
  }

  // Disk-tier counters, printed exactly when a --store ran (same scripting
  // contract as the cache line: key on the "artifact store:" prefix).
  if (report.artifact_store) {
    const store::ArtifactStoreStats& disk = *report.artifact_store;
    std::cout << "artifact store: " << disk.hits << " loads, " << disk.misses << " misses, "
              << disk.rejected << " rejected, " << disk.saves << " saves, " << disk.skipped
              << " skipped, " << disk.errors << " errors\n";
  }

  // Head-to-head comparison: one row per protocol in the batch.
  std::cout << "\nper-protocol breakdown:\n\n";
  // The "faulted" column (jobs whose verification failure was attributed to
  // injected faults) appears only on faulted sweeps, keeping unfaulted
  // output byte-identical to what it was before fault injection existed.
  std::vector<std::string> headers = {"protocol", "jobs",       "feasible",   "elected",
                                      "no leader", "failed",     "verified",   "avg rounds",
                                      "max rounds", "transmissions"};
  if (report.fault.active()) {
    headers.insert(headers.begin() + 6, "faulted");
  }
  support::Table comparison(headers);
  comparison.set_precision(3);
  for (const engine::ProtocolBreakdown& row : report.by_protocol) {
    std::vector<support::Cell> cells = {
        row.protocol.name(),
        static_cast<std::int64_t>(row.jobs),
        static_cast<std::int64_t>(row.feasible),
        static_cast<std::int64_t>(row.elected),
        static_cast<std::int64_t>(row.no_leader),
        static_cast<std::int64_t>(row.failed),
        static_cast<std::int64_t>(row.valid),
        row.average_local_rounds(),
        static_cast<std::int64_t>(row.max_local_rounds),
        static_cast<std::int64_t>(row.stats.transmissions)};
    if (report.fault.active()) {
      cells.insert(cells.begin() + 6, support::Cell(static_cast<std::int64_t>(row.detected_fault)));
    }
    comparison.add_row(std::move(cells));
  }
  comparison.print_markdown(std::cout);

  // Phase-timing breakdown, present exactly when the metrics registry ran
  // during this process's own execution (merged and served reports carry no
  // phases: timings are execution circumstances, not results).  Printed
  // last so scripts diffing reports can drop the block with one
  // `sed '/^phase timings:/,$d'`.
  if (report.phases && !report.phases->empty()) {
    std::cout << "\nphase timings:\n\n";
    support::Table timings({"phase", "count", "total ms", "p50 ms", "p90 ms", "p99 ms"});
    timings.set_precision(3);
    for (const obs::Phase phase : obs::all_phases()) {
      const obs::HistogramSnapshot& histogram = (*report.phases)[phase];
      if (histogram.count() == 0) {
        continue;
      }
      timings.add_row({std::string(obs::phase_name(phase)),
                       static_cast<std::int64_t>(histogram.count()),
                       static_cast<double>(histogram.total) / 1e6,
                       static_cast<double>(histogram.percentile(0.50)) / 1e6,
                       static_cast<double>(histogram.percentile(0.90)) / 1e6,
                       static_cast<double>(histogram.percentile(0.99)) / 1e6});
    }
    timings.print_markdown(std::cout);
  }
}

/// The `--metrics-out` payload: the sweep's phase-timing snapshot as a flat
/// JSON object in the bench_gate-consumable shape.  Every phase emits all
/// five keys whether or not it ran — bench_gate fails on keys present in
/// only one snapshot, so the key set must be fixed, not data-dependent.
/// Counts are exact-match fields (deterministic at --threads=1 without a
/// cache); the `_ms` fields are informational timings.
void write_metrics_json(const engine::BatchReport& report, const std::string& path) {
  obs::JsonSnapshot snapshot;
  snapshot.add("schema", std::string("arl-metrics 1"));
  snapshot.add("jobs", static_cast<std::uint64_t>(report.jobs.size()));
  const obs::MetricsSnapshot phases = report.phases.value_or(obs::MetricsSnapshot{});
  for (const obs::Phase phase : obs::all_phases()) {
    const obs::HistogramSnapshot& histogram = phases[phase];
    std::string key = "phase_";
    for (const char c : obs::phase_name(phase)) {
      key += c == '-' ? '_' : c;
    }
    snapshot.add(key + "_count", histogram.count());
    snapshot.add(key + "_total_ms", static_cast<double>(histogram.total) / 1e6);
    snapshot.add(key + "_p50_ms", static_cast<double>(histogram.percentile(0.50)) / 1e6);
    snapshot.add(key + "_p90_ms", static_cast<double>(histogram.percentile(0.90)) / 1e6);
    snapshot.add(key + "_p99_ms", static_cast<double>(histogram.percentile(0.99)) / 1e6);
  }
  // Injected-event totals: exact-match fields (fault dice are pure functions
  // of seed/round/node, so the counts are thread- and shard-invariant).
  snapshot.add("injected_drops", report.total_stats.injected_drops);
  snapshot.add("injected_corruptions", report.total_stats.injected_corruptions);
  snapshot.add("injected_crashes", report.total_stats.injected_crashes);
  snapshot.add("delayed_wakeups", report.total_stats.delayed_wakeups);
  if (!snapshot.write_file(path)) {
    throw std::runtime_error("writing the metrics snapshot to " + path + " failed");
  }
}

/// Runs one shard range of the sweep and writes its report to `out` — the
/// one shard-emission path, shared by `--shard`, the forked `--workers`
/// children and the no-fork fallback.  Returns true when every job in the
/// shard verified.
bool emit_shard(const engine::CountedSweep& sweep, const dist::SweepKey& key,
                const dist::JobRange& range, const engine::BatchOptions& batch_options,
                std::ostream& out) {
  engine::BatchRunner runner(batch_options);
  engine::BatchReport report = runner.run_range(range.begin, range.end, sweep.source);
  const bool all_valid = report.valid_count == report.jobs.size();
  dist::write_shard_report(dist::make_shard_report(key, range, std::move(report)), out);
  return all_valid;
}

/// Runs one job range of the sweep and emits its report (--out file or
/// stdout) — the target of both --shard=i/K (the planner's range) and
/// --shard=B-E (an explicit resume range).  Exit 0 when every job in the
/// range verified, 1 otherwise.
int run_shard_sweep(const engine::CountedSweep& sweep, const dist::SweepKey& key,
                    const engine::BatchOptions& batch_options, const dist::JobRange& range,
                    const std::string& out_path) {
  if (out_path.empty()) {
    const bool all_valid = emit_shard(sweep, key, range, batch_options, std::cout);
    std::cout.flush();
    if (!std::cout) {
      // Same contract as the --out branch: a lost or truncated report must
      // not exit as if the shard were emitted.  Environment failure, not
      // misuse: std::runtime_error exits 1.
      throw std::runtime_error("writing the shard report to stdout failed");
    }
    return all_valid ? 0 : 1;
  }
#if ARL_CLI_HAS_FORK
  // Write-then-rename, with a SIGINT/SIGTERM handler that unlinks the temp
  // file: the final name only ever appears via rename of a complete,
  // flushed report, so an interrupted run leaves *nothing* — never a
  // truncated file a later `arl merge` would have to diagnose.
  const std::string tmp_path = out_path + ".tmp." + std::to_string(::getpid());
  if (tmp_path.size() >= sizeof(g_shard_tmp_path)) {
    throw support::ContractViolation("--out path is too long");
  }
  std::snprintf(g_shard_tmp_path, sizeof(g_shard_tmp_path), "%s", tmp_path.c_str());
  const ScopedSignalHandlers guard(shard_interrupt);
  bool all_valid = false;
  {
    std::ofstream file(tmp_path);
    if (!file) {
      g_shard_tmp_path[0] = '\0';
      throw support::ContractViolation("cannot open " + tmp_path + " for writing");
    }
    all_valid = emit_shard(sweep, key, range, batch_options, file);
    file.flush();
    if (!file) {
      file.close();
      ::unlink(tmp_path.c_str());
      g_shard_tmp_path[0] = '\0';
      // Environment failure (disk full, I/O error), not misuse: exits 1.
      throw std::runtime_error("writing " + tmp_path + " failed");
    }
  }
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    g_shard_tmp_path[0] = '\0';
    throw std::runtime_error("renaming " + tmp_path + " to " + out_path + " failed");
  }
  g_shard_tmp_path[0] = '\0';
  return all_valid ? 0 : 1;
#else
  std::ofstream file(out_path);
  if (!file) {
    throw support::ContractViolation("cannot open " + out_path + " for writing");
  }
  const bool all_valid = emit_shard(sweep, key, range, batch_options, file);
  file.flush();
  if (!file) {
    // Environment failure (disk full, I/O error), not misuse: exits 1.
    throw std::runtime_error("writing " + out_path + " failed");
  }
  return all_valid ? 0 : 1;
#endif
}

/// The zero-infrastructure distributed driver: split the sweep into
/// `workers` shards, run each in its own forked process writing a shard
/// report to a temp file, then merge the files end-to-end — the exact
/// pipeline a multi-host run performs, on one machine.
int run_workers_sweep(const engine::CountedSweep& sweep, const dist::SweepKey& key,
                      const engine::BatchOptions& batch_options, std::uint32_t workers) {
#if ARL_CLI_HAS_FORK
  // With the default --threads=0 every forked worker would size its pool
  // to the full hardware concurrency, oversubscribing the machine K-fold;
  // split the cores across the workers instead, remainder included, so no
  // core idles.  An explicit --threads is taken as a deliberate per-worker
  // choice and honoured as given.  (The no-fork fallback below runs the
  // shards sequentially, so it keeps the flag untouched and lets each
  // shard use the whole machine.)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const auto worker_threads = [&](std::uint32_t w) {
    if (batch_options.threads != 0) {
      return batch_options.threads;
    }
    return std::max(1u, cores / workers + (w < cores % workers ? 1 : 0));
  };
  const std::vector<dist::JobRange> ranges = dist::shard_ranges(sweep.count, workers);

  // Shard files live in a private 0700 temp directory (mkdtemp), so no
  // other local user can swap one for a symlink between creation and the
  // worker's write or the parent's read-back.
  std::string dir;
  {
    const char* tmpdir = std::getenv("TMPDIR");
    dir = std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
          "/arl-workers-XXXXXX";
    if (::mkdtemp(dir.data()) == nullptr) {
      // Environment failure, not misuse: std::runtime_error exits 1.
      throw std::runtime_error("cannot create a temp directory for shard reports");
    }
  }
  std::vector<std::string> paths;
  std::vector<pid_t> children;
  paths.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    paths.push_back(dir + "/shard-" + std::to_string(w) + ".txt");
  }
  const auto cleanup = [&]() {
    for (const std::string& path : paths) {
      ::unlink(path.c_str());
    }
    ::rmdir(dir.c_str());
  };

  // Fork before any BatchRunner exists: the children must not inherit a
  // half-alive thread pool, and each builds its own below.  From here to
  // the last reap, SIGINT/SIGTERM only set a flag: the wait loop converts
  // it into SIGTERM for every child plus temp-file cleanup, so a Ctrl-C
  // orphans no worker and leaks no shard file.
  g_interrupted = 0;
  const ScopedSignalHandlers guard(flag_interrupt);
  std::cout.flush();
  std::cerr.flush();
  for (std::uint32_t w = 0; w < workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const pid_t child : children) {
        int status = 0;
        while (::waitpid(child, &status, 0) < 0 && errno == EINTR) {
        }
      }
      cleanup();
      // Environment failure, not misuse: std::runtime_error exits 1.
      throw std::runtime_error("fork failed while starting sweep workers");
    }
    if (pid == 0) {
      // Worker: back to default signal dispositions (a terminal Ctrl-C
      // delivers SIGINT to the whole foreground process group, and the
      // default action — die — is exactly right for a child whose partial
      // shard file the parent removes).
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      // Worker: run shard w, write its report, and _exit without touching
      // the parent's stdio buffers.
      // Failures are reported on the inherited (unbuffered) stderr before
      // _exit, so the parent's generic "a worker failed" has a cause next
      // to it in the terminal.
      int code = 3;
      try {
        engine::BatchOptions options = batch_options;
        options.threads = worker_threads(w);
        std::ofstream file(paths[w]);
        if (file) {
          const bool all_valid = emit_shard(sweep, key, ranges[w], options, file);
          file.flush();
          code = file ? (all_valid ? 0 : 1) : 3;
          if (!file) {
            std::cerr << "error: worker " << w << ": writing " << paths[w] << " failed\n";
          }
        } else {
          std::cerr << "error: worker " << w << ": cannot open " << paths[w]
                    << " for writing\n";
        }
      } catch (const std::exception& error) {
        std::cerr << "error: worker " << w << ": " << error.what() << '\n';
      } catch (...) {
        std::cerr << "error: worker " << w << ": unknown failure\n";
      }
      ::_exit(code);
    }
    children.push_back(pid);
  }

  bool worker_failed = false;
  bool children_signalled = false;
  // On interrupt, forward SIGTERM to every child once, then keep reaping —
  // no child may be left running.  Checked both on EINTR and between
  // waits, because the signal may land while no wait is in flight.
  const auto forward_interrupt = [&]() {
    if (g_interrupted != 0 && !children_signalled) {
      children_signalled = true;
      for (const pid_t worker : children) {
        ::kill(worker, SIGTERM);
      }
    }
  };
  for (const pid_t child : children) {
    int status = 0;
    pid_t reaped;
    for (;;) {
      forward_interrupt();
      reaped = ::waitpid(child, &status, 0);
      if (reaped >= 0 || errno != EINTR) {
        break;
      }
    }
    // A wait that never succeeded leaves the child's fate unknown — treat
    // it as a failure rather than reading a file it may still be writing.
    if (reaped != child || !WIFEXITED(status) || WEXITSTATUS(status) > 1) {
      worker_failed = true;
    }
  }
  if (g_interrupted != 0) {
    // Interrupted after every child was terminated and reaped: remove the
    // (possibly partial) shard files and exit with the conventional
    // interrupted status instead of merging a torso.
    cleanup();
    std::cerr << "error: sweep interrupted; workers terminated, shard files removed\n";
    return 130;
  }
  if (worker_failed) {
    cleanup();
    std::cerr << "error: a sweep worker process failed\n";
    return 1;
  }

  std::vector<dist::ShardReport> shards;
  shards.reserve(workers);
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      cleanup();
      std::cerr << "error: cannot read worker shard report " << path << '\n';
      return 1;
    }
    try {
      shards.push_back(dist::read_shard_report(file));
    } catch (const dist::ReportFormatError& error) {
      cleanup();
      std::cerr << "error: worker shard report " << path << ": " << error.what() << '\n';
      return 1;
    }
  }
  cleanup();

  const engine::BatchReport report = dist::complete_report(dist::merge_shards(shards));
  print_report(report);
  return report.valid_count == report.jobs.size() ? 0 : 1;
#else
  // No fork() on this platform: run the same shard/merge pipeline
  // sequentially in-process — wire format included — so --workers stays
  // meaningful (and equally exercised) everywhere.
  std::vector<dist::ShardReport> shards;
  for (const dist::JobRange& range : dist::shard_ranges(sweep.count, workers)) {
    std::stringstream wire;
    (void)emit_shard(sweep, key, range, batch_options, wire);
    shards.push_back(dist::read_shard_report(wire));
  }
  const engine::BatchReport report = dist::complete_report(dist::merge_shards(shards));
  print_report(report);
  return report.valid_count == report.jobs.size() ? 0 : 1;
#endif
}

int cmd_sweep(const support::Args& args) {
  const std::int64_t count_flag = args.get_int("count", 100);
  if (count_flag < 0) {
    throw support::ContractViolation("--count must be >= 0");
  }
  const auto count = static_cast<std::size_t>(count_flag);
  // Guard against pathological worker counts: a typo'd --threads must fail
  // with a usage error, not silently spawn thousands of threads.
  const std::int64_t threads_flag = args.get_int("threads", 0);
  if (threads_flag < 0 || threads_flag > 256) {
    throw support::ContractViolation("--threads must be in [0, 256] (0 = hardware concurrency)");
  }

  engine::BatchOptions batch_options;
  batch_options.threads = static_cast<unsigned>(threads_flag);
  batch_options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  // Flag-validation throws (here and below) reach main()'s ContractViolation
  // handler, which exits 2 like every other usage error.
  batch_options.fault = sweep_fault(args);
  batch_options.cache_capacity = parse_cache_capacity(args);
  batch_options.store_directory = parse_store_directory(args);
  batch_options.engine = parse_engine(args);

  // The protocol axis: repeatable --protocol flags, validated against the
  // registry; several protocols make the batch a head-to-head cross product.
  const std::vector<core::ProtocolSpec> protocols = sweep_protocols(args);

  // The distributed axis: --shard=i/K emits one shard report, --workers=K
  // forks local workers and merges; they are drivers of the same sweep, so
  // combining them is a usage error.
  // Two shard notations: "i/K" (the planner's range) and "B-E" (an
  // explicit global job-id range — what `arl merge --missing` emits to
  // resume a partial sweep).  A dash dispatches to the range form.
  std::optional<dist::ShardSpec> shard;
  std::optional<dist::JobRange> resume_range;
  if (args.has("shard")) {
    const std::string value = args.get_string("shard", "");
    if (value.find('-') != std::string::npos) {
      resume_range = dist::parse_job_range(value);
    } else {
      shard = dist::parse_shard(value);
    }
  }
  std::optional<std::uint32_t> workers;
  if (args.has("workers")) {
    const std::int64_t workers_flag = args.get_int("workers", 0);
    if (workers_flag < 1 || workers_flag > 256) {
      throw support::ContractViolation("--workers must be in [1, 256]");
    }
    workers = static_cast<std::uint32_t>(workers_flag);
  }
  if ((shard || resume_range) && workers) {
    std::cerr << "error: --shard and --workers conflict; --shard runs one piece of a "
                 "distributed sweep, --workers drives all of them locally\n";
    return 2;
  }
  if (args.has("out") && !shard && !resume_range) {
    std::cerr << "error: --out only applies to --shard runs (the shard report destination)\n";
    return 2;
  }
  if (args.has("out") && args.get_string("out", "").empty()) {
    // An empty value is a mangled flag (e.g. an unset shell variable), not
    // a request for stdout — omitting --out entirely means stdout.
    std::cerr << "error: --out needs a file path (omit the flag to write to stdout)\n";
    return 2;
  }

  // The observability flags are plain-path features: shard reports carry no
  // phase data (timings are execution circumstances, excluded from the wire
  // format), and forked workers would interleave one trace file.
  const std::string metrics_out = args.get_string("metrics-out", "");
  if (args.has("metrics-out") && metrics_out.empty()) {
    std::cerr << "error: --metrics-out needs a file path\n";
    return 2;
  }
  const std::string trace_path = args.get_string("trace", "");
  if (args.has("trace") && trace_path.empty()) {
    std::cerr << "error: --trace needs a file path\n";
    return 2;
  }
  if ((args.has("metrics-out") || args.has("trace")) && (shard || resume_range || workers)) {
    std::cerr << "error: --metrics-out and --trace apply to plain sweeps only "
                 "(not --shard or --workers runs)\n";
    return 2;
  }

  // The workload axis: one registry spec, whether spelled as --workload or
  // through the legacy alias flags; identity (name + digest) feeds the
  // shard reports, so every workload shards, merges and caches uniformly.
  const engine::WorkloadSpec workload = sweep_workload(args);
  if (args.has("count") && workload.bounded()) {
    std::cerr << "error: --count conflicts with the self-counting workload '"
              << workload.name() << "' (its configuration count is implied)\n";
    return 2;
  }

  const engine::CountedSweep sweep =
      workload.instantiate(batch_options.seed, protocols, {.count = count});
  const dist::SweepKey key =
      make_sweep_key(workload, sweep.count, protocols, batch_options.seed, batch_options.fault);
  if (shard) {
    return run_shard_sweep(sweep, key, batch_options, dist::shard_range(sweep.count, *shard),
                           args.get_string("out", ""));
  }
  if (resume_range) {
    if (resume_range->end > sweep.count) {
      throw support::ContractViolation(
          "--shard range [" + std::to_string(resume_range->begin) + ", " +
          std::to_string(resume_range->end) + ") exceeds the sweep's " +
          std::to_string(sweep.count) + " jobs");
    }
    return run_shard_sweep(sweep, key, batch_options, *resume_range, args.get_string("out", ""));
  }
  if (workers) {
    return run_workers_sweep(sweep, key, batch_options, *workers);
  }

  std::optional<obs::JsonLinesTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink.emplace(trace_path);
    batch_options.job_trace = &*trace_sink;
  }
  engine::BatchRunner runner(batch_options);
  const engine::BatchReport report = runner.run(sweep.count, sweep.source);
  if (trace_sink) {
    trace_sink->flush();
  }
  if (!metrics_out.empty()) {
    write_metrics_json(report, metrics_out);
  }
  print_report(report);
  return report.valid_count == report.jobs.size() ? 0 : 1;
}

/// `arl workloads` — the registry listing, symmetric to the protocol list
/// CLI errors show: one row per registered workload (its canonical
/// default-parameter name) plus the spec grammar.
int cmd_workloads() {
  support::Table table({"workload", "configurations"});
  for (const engine::WorkloadSpec& workload : engine::registered_workloads()) {
    table.add_row({workload.name(), workload.describe()});
  }
  table.print_markdown(std::cout);
  std::cout << "\nspec grammar: kind[:key=value,...] — " << engine::workload_names() << '\n';
  return 0;
}

/// `arl faults` — the registry listing, symmetric to `arl workloads`: one
/// row per registered fault (its canonical name) plus the spec grammar.
int cmd_faults() {
  support::Table table({"fault", "effect"});
  for (const fault::FaultSpec& fault : fault::registered_faults()) {
    table.add_row({fault.name(), fault.describe()});
  }
  table.print_markdown(std::cout);
  std::cout << "\nspec grammar: kind[:param,...] — " << fault::fault_names() << '\n';
  return 0;
}

/// `arl merge SHARD-FILE...` — parse every shard report, verify they are
/// disjoint covering pieces of one sweep, and print the reassembled report
/// exactly as `arl sweep` would have.  Malformed or mismatched input exits
/// 2; nothing is ever merged silently.
int cmd_merge(const support::Args& args) {
  const std::vector<std::string>& positional = args.positional();
  if (positional.size() < 2) {
    std::cerr << "error: merge needs at least one shard report file\n";
    return 2;
  }
  std::vector<dist::ShardReport> shards;
  shards.reserve(positional.size() - 1);
  for (std::size_t i = 1; i < positional.size(); ++i) {
    std::ifstream file(positional[i]);
    if (!file) {
      std::cerr << "error: cannot open " << positional[i] << '\n';
      return 2;
    }
    try {
      shards.push_back(dist::read_shard_report(file));
    } catch (const dist::ReportFormatError& error) {
      std::cerr << "error: " << positional[i] << ": " << error.what() << '\n';
      return 2;
    }
  }
  if (args.has("missing")) {
    // Coverage analysis instead of a merge: which job ids do the surviving
    // shard files NOT cover, and what exact commands re-run them.  Exit 0
    // either way — an incomplete sweep is the expected input here, not an
    // error; only unmergeable shards (different sweeps, overlaps) exit 2.
    dist::ShardReport merged;
    try {
      merged = dist::merge_shards(shards);
    } catch (const dist::MergeError& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 2;
    }
    const std::vector<dist::JobRange> gaps = dist::missing_ranges(merged);
    if (gaps.empty()) {
      std::cerr << "coverage complete: all " << merged.key.total_jobs
                << " jobs present; `arl merge` (without --missing) yields the report\n";
      return 0;
    }

    // Reconstruct the sweep flags from the merged identity.  The workload
    // name is the canonical registry spelling (the report parser verified
    // the round trip), so it feeds --workload verbatim; unbounded workloads
    // additionally need the --count that produced total_jobs (= count × P).
    std::string flags = "--workload=" + merged.key.description;
    for (const std::string& protocol : merged.key.protocols) {
      flags += " --protocol=" + protocol;
    }
    flags += " --seed=" + std::to_string(merged.key.seed);
    if (merged.key.fault != "none") {
      flags += " --fault=" + merged.key.fault;
    }
    if (!engine::parse_workload(merged.key.description).bounded()) {
      flags += " --count=" +
               std::to_string(merged.key.total_jobs / merged.key.protocols.size());
    }

    engine::JobId missing_jobs = 0;
    for (const dist::JobRange& gap : gaps) {
      missing_jobs += gap.size();
      const std::string span = std::to_string(gap.begin) + "-" + std::to_string(gap.end);
      std::cout << "arl sweep " << flags << " --shard=" << span << " --out=resume-" << span
                << ".txt\n";
    }
    std::cerr << "coverage incomplete: " << missing_jobs << " of " << merged.key.total_jobs
              << " jobs missing across " << gaps.size()
              << " range(s); run the command(s) above, then merge the surviving and resumed "
                 "shard files together\n";
    return 0;
  }

  engine::BatchReport report;
  try {
    report = dist::complete_report(dist::merge_shards(shards));
  } catch (const dist::MergeError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
  print_report(report);
  return report.valid_count == report.jobs.size() ? 0 : 1;
}

/// `arl serve` — run the sweep service until SIGINT/SIGTERM, then drain.
/// ServeError (bad socket, unsupported platform) reaches main()'s generic
/// handler and exits 1.
int cmd_serve(const support::Args& args) {
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    throw support::ContractViolation("serve needs --socket=PATH (the unix socket to listen on)");
  }
  const std::int64_t threads_flag = args.get_int("threads", 0);
  if (threads_flag < 0 || threads_flag > 256) {
    throw support::ContractViolation("--threads must be in [0, 256] (0 = hardware concurrency)");
  }
  const std::int64_t queue_flag = args.get_int("queue", 8);
  if (queue_flag < 1 || queue_flag > 4096) {
    throw support::ContractViolation("--queue must be in [1, 4096]");
  }

  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.threads = static_cast<unsigned>(threads_flag);
  // Unlike `sweep`, the cache defaults ON: cross-request reuse is the
  // service's whole point, so opting *out* is the explicit choice.
  options.cache_capacity = args.has("cache") ? parse_cache_capacity(args)
                                             : engine::ScheduleCache::kDefaultCapacity;
  options.store_directory = parse_store_directory(args);
  if (!options.store_directory.empty() && options.cache_capacity == 0) {
    throw support::ContractViolation(
        "--store conflicts with --cache=off (the store is the cache's disk tier)");
  }
  options.queue_limit = static_cast<std::size_t>(queue_flag);

  serve::SweepServer server(std::move(options));
#if ARL_CLI_HAS_FORK
  g_serve_stop_fd = server.stop_fd();
  const ScopedSignalHandlers guard(serve_interrupt);
#endif
  std::cerr << "arl serve: listening on " << socket_path << " (queue " << queue_flag
            << ", cache " << server.options().cache_capacity << " entries";
  if (!server.options().store_directory.empty()) {
    std::cerr << ", store " << server.options().store_directory;
  }
  std::cerr << ")\n";
  server.run();
#if ARL_CLI_HAS_FORK
  g_serve_stop_fd = -1;
#endif
  // The drain summary is the same ServerStats snapshot a `stats` request
  // returns, printed through the same formatter — the daemon's log and
  // `arl stats` can never disagree on a counter.
  std::cerr << "arl serve: drained\n";
  serve::print_stats(std::cerr, "arl serve: ", server.stats());
  return 0;
}

/// `arl stats` — query a running service for its live statistics snapshot.
/// The same ServerStats the daemon prints on drain, fetched over the wire.
int cmd_stats(const support::Args& args) {
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    throw support::ContractViolation("stats needs --socket=PATH (a running `arl serve` socket)");
  }
  const std::int64_t timeout_flag = args.get_int("timeout", 0);
  if (timeout_flag < 0 || timeout_flag > 86400) {
    throw support::ContractViolation("--timeout must be in [0, 86400] seconds (0 = wait forever)");
  }
  serve::Client client(socket_path, static_cast<unsigned>(timeout_flag));
  serve::print_stats(std::cout, "", client.stats());
  return 0;
}

/// `arl submit` — one sweep against a running service.  The response *is* a
/// shard report, so --out files feed `arl merge` unchanged; without --out a
/// full-range submission prints exactly the `arl sweep` tables, and a
/// --shard submission prints the raw report (like `sweep --shard`).
int cmd_submit(const support::Args& args) {
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    throw support::ContractViolation("submit needs --socket=PATH (a running `arl serve` socket)");
  }
  const std::int64_t timeout_flag = args.get_int("timeout", 0);
  if (timeout_flag < 0 || timeout_flag > 86400) {
    throw support::ContractViolation("--timeout must be in [0, 86400] seconds (0 = wait forever)");
  }
  // Validated before connecting (and before --ping returns): a bad value is
  // a usage error whether or not a server is reachable.
  bool use_store = true;
  if (args.has("store")) {
    if (args.get_string("store", "") != "off") {
      throw support::ContractViolation(
          "--store must be off for submit (the directory is a server-side option)");
    }
    use_store = false;
  }
  serve::Client client(socket_path, static_cast<unsigned>(timeout_flag));

  if (args.has("ping")) {
    const serve::Response pong = client.ping();
    std::cout << "pong: cache " << pong.totals.hits << " hits, " << pong.totals.misses
              << " misses, " << pong.totals.entries << " entries\n";
    return 0;
  }

  serve::SweepRequest request;
  request.workload = sweep_workload(args);
  request.protocols = sweep_protocols(args);
  request.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  request.fault = sweep_fault(args);
  if (args.has("count") && request.workload.bounded()) {
    std::cerr << "error: --count conflicts with the self-counting workload '"
              << request.workload.name() << "' (its configuration count is implied)\n";
    return 2;
  }
  if (!request.workload.bounded()) {
    const std::int64_t count_flag = args.get_int("count", 100);
    if (count_flag < 1 || count_flag > static_cast<std::int64_t>(serve::kMaxRequestCount)) {
      throw support::ContractViolation("--count must be in [1, " +
                                       std::to_string(serve::kMaxRequestCount) + "]");
    }
    request.count = static_cast<std::uint64_t>(count_flag);
  }
  if (args.has("shard")) {
    request.shard = dist::parse_shard(args.get_string("shard", ""));
  }
  request.engine = parse_engine(args);
  const std::int64_t threads_flag = args.get_int("threads", 0);
  if (threads_flag < 0 || threads_flag > static_cast<std::int64_t>(serve::kMaxRequestThreads)) {
    throw support::ContractViolation("--threads must be in [0, 256] (0 = the server's pool)");
  }
  if (threads_flag > 0) {
    request.threads = static_cast<std::uint64_t>(threads_flag);
  }
  if (args.has("cache")) {
    const std::string value = args.get_string("cache", "");
    if (value == "off") {
      request.use_cache = false;
    } else if (value != "on" && !value.empty()) {
      throw support::ContractViolation(
          "--cache must be on or off for submit (capacity is a server-side option)");
    }
  }
  request.use_store = use_store;

  const serve::SubmitResult result = client.submit(request);
  if (result.outcome.kind == serve::Response::Kind::Busy) {
    std::cerr << "error: server busy (queue limit " << result.outcome.queue_limit
              << "); try again\n";
    return 1;
  }
  if (result.outcome.kind == serve::Response::Kind::Error) {
    std::cerr << "error: server: " << result.outcome.message << '\n';
    return 1;
  }

  // The per-request / cumulative cache attribution from the done line, on
  // stderr so --out keeps stdout clean and scripts can key on the prefix.
  const serve::RequestCacheUse& used = result.outcome.request_cache;
  const serve::CacheTotals& totals = result.outcome.totals;
  std::cerr << "serve cache: " << used.hits << " hits, " << used.misses << " misses, "
            << used.schedule_builds << " schedule builds this request; cumulative "
            << totals.hits << " hits, " << totals.misses << " misses, " << totals.entries
            << " entries\n";

  // Parse the report even when only writing it to a file: the exit code
  // promises every job verified, and the end-line digest check catches a
  // response corrupted in flight.
  std::istringstream body(result.report);
  const dist::ShardReport shard = dist::read_shard_report(body);
  const bool all_valid = shard.report.valid_count == shard.report.jobs.size();

  const std::string out_path = args.get_string("out", "");
  if (args.has("out") && out_path.empty()) {
    std::cerr << "error: --out needs a file path (omit the flag to print tables)\n";
    return 2;
  }
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    if (!file) {
      throw support::ContractViolation("cannot open " + out_path + " for writing");
    }
    file << result.report;
    file.flush();
    if (!file) {
      throw std::runtime_error("writing " + out_path + " failed");
    }
    return all_valid ? 0 : 1;
  }
  if (request.shard) {
    // A single shard is not the whole sweep; emit the raw report (exactly
    // what `sweep --shard` prints) for a later merge.
    std::cout << result.report;
    return all_valid ? 0 : 1;
  }
  const engine::BatchReport report = dist::complete_report(dist::merge_shards({shard}));
  print_report(report);
  return report.valid_count == report.jobs.size() ? 0 : 1;
}

int cmd_trace(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  radio::StreamTrace trace(std::cout, args.has("verbose"));
  radio::SimulatorOptions options;
  options.trace = &trace;
  options.channel_model = schedule->model;
  const core::CanonicalDrip drip(schedule);
  const radio::RunResult run = radio::simulate(c, drip, options);
  const auto leaders = run.leaders();
  std::cout << (leaders.size() == 1
                    ? "leader: node " + std::to_string(leaders.front())
                    : "no unique leader")
            << '\n';
  return 0;
}

int cmd_schedule(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  core::schedule_to_text(*schedule, std::cout);
  return 0;
}

int cmd_dot(const support::Args& args) {
  config::to_dot(read_configuration(args, 1), std::cout);
  return 0;
}

int cmd_orbits(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const core::SymmetryReport report = core::analyze_symmetry(c);
  std::cout << (report.feasible() ? "feasible" : "infeasible") << ": " << report.orbits.size()
            << " orbit(s) of indistinguishable nodes\n";
  for (const core::Orbit& orbit : report.orbits) {
    std::cout << "  orbit " << orbit.id << " {";
    for (std::size_t i = 0; i < orbit.members.size(); ++i) {
      std::cout << (i ? " " : "") << orbit.members[i];
    }
    std::cout << "}" << (orbit.members.size() == 1 ? "  <- electable" : "") << '\n';
  }
  std::cout << "quotient graph: " << report.quotient.node_count() << " orbit(s), "
            << report.quotient.edge_count() << " edge(s)\n";
  return report.feasible() ? 0 : 1;
}

int cmd_validate(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  const core::CanonicalDrip drip(schedule);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  options.channel_model = schedule->model;
  const radio::RunResult run = radio::simulate(c, drip, options);
  const radio::ValidationReport report =
      radio::validate_execution(c, recorder, run, schedule->model);
  if (report.ok) {
    std::cout << "execution valid (" << report.checks << " checks)\n";
    return 0;
  }
  std::cout << "execution INVALID: " << report.error << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  // `arl`, `arl help` and `arl --help` are all requests for the reference,
  // not mistakes: print it to stdout and exit 0.
  if (args.has("help") || args.positional().empty() || args.positional().front() == "help") {
    print_usage(std::cout);
    return 0;
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "gen") {
      return cmd_gen(args);
    }
    if (command == "classify") {
      return cmd_classify(args);
    }
    if (command == "elect") {
      return cmd_elect(args);
    }
    if (command == "sweep") {
      return cmd_sweep(args);
    }
    if (command == "merge") {
      return cmd_merge(args);
    }
    if (command == "serve") {
      return cmd_serve(args);
    }
    if (command == "submit") {
      return cmd_submit(args);
    }
    if (command == "stats") {
      return cmd_stats(args);
    }
    if (command == "workloads") {
      return cmd_workloads();
    }
    if (command == "faults") {
      return cmd_faults();
    }
    if (command == "trace") {
      return cmd_trace(args);
    }
    if (command == "schedule") {
      return cmd_schedule(args);
    }
    if (command == "dot") {
      return cmd_dot(args);
    }
    if (command == "orbits") {
      return cmd_orbits(args);
    }
    if (command == "validate") {
      return cmd_validate(args);
    }
    std::cerr << "error: unknown command '" << command << "' (see `arl help`)\n";
    return 2;
  } catch (const support::ContractViolation& error) {
    // Contract violations are misuse — bad flag values, unreadable input —
    // and exit 2 like every other usage error; runtime failures exit 1.
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
