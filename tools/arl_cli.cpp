/// \file arl_cli.cpp
/// Command-line front end for the library.
///
///   arl gen       — emit a configuration in the text format
///   arl classify  — decide feasibility (Classifier) and show the partition
///   arl elect     — run the full pipeline and report the election
///   arl trace     — replay the canonical DRIP with a per-round trace
///   arl schedule  — compile and print the canonical schedule (deployable)
///   arl dot       — Graphviz rendering of a configuration
///   arl orbits    — symmetry analysis (orbits of indistinguishable nodes)
///   arl validate  — simulate + independently validate the execution
///
/// Configurations are read from a file path argument or stdin.  Run with
/// `--help` (or no arguments) for the full flag reference.

#include <fstream>
#include <iostream>
#include <sstream>

#include "config/families.hpp"
#include "config/io.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "core/quotient.hpp"
#include "core/schedule_io.hpp"
#include "graph/generators.hpp"
#include "radio/trace.hpp"
#include "radio/validator.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

int usage() {
  std::cout <<
      R"(arl — deterministic leader election in anonymous radio networks

usage: arl <command> [flags] [config-file]

commands:
  gen        generate a configuration
               --family=h|g|s|staggered|single-hop|random  (default h)
               --m=N          family parameter             (default 3)
               --n=N          node count for staggered/single-hop/random
               --sigma=N      span for random              (default 3)
               --p=X          edge probability for random  (default 0.3)
               --seed=N       RNG seed for random          (default 1)
  classify   decide feasibility; print verdict, iterations, partition
               --model=cd|nocd   channel feedback          (default cd)
               --fast            use the hashed classifier
  elect      classify + run the canonical DRIP + verify
               --model=cd|nocd
  trace      replay the canonical DRIP round by round
               --verbose         also print listens and silences
  schedule   compile and print the canonical schedule (text format)
               --model=cd|nocd
  dot        Graphviz rendering
  orbits     symmetry analysis: orbits of indistinguishable nodes + quotient
  validate   simulate and re-validate the execution independently

configurations are read from the file argument, or stdin when absent.
)";
  return 2;
}

config::Configuration read_configuration(const support::Args& args, std::size_t index) {
  if (args.positional().size() > index) {
    std::ifstream file(args.positional()[index]);
    if (!file) {
      throw support::ContractViolation("cannot open " + args.positional()[index]);
    }
    return config::from_text(file);
  }
  return config::from_text(std::cin);
}

radio::ChannelModel parse_model(const support::Args& args) {
  const std::string model = args.get_string("model", "cd");
  if (model == "cd") {
    return radio::ChannelModel::CollisionDetection;
  }
  if (model == "nocd") {
    return radio::ChannelModel::NoCollisionDetection;
  }
  throw support::ContractViolation("--model must be cd or nocd");
}

int cmd_gen(const support::Args& args) {
  const std::string family = args.get_string("family", "h");
  const auto m = static_cast<config::Tag>(args.get_int("m", 3));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 8));
  if (family == "h") {
    config::to_text(config::family_h(m), std::cout);
  } else if (family == "g") {
    config::to_text(config::family_g(m), std::cout);
  } else if (family == "s") {
    config::to_text(config::family_s(m), std::cout);
  } else if (family == "staggered") {
    config::to_text(config::staggered_path(n), std::cout);
  } else if (family == "single-hop") {
    std::vector<config::Tag> tags(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      tags[v] = v;
    }
    config::to_text(config::single_hop(tags), std::cout);
  } else if (family == "random") {
    support::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
    const auto sigma = static_cast<config::Tag>(args.get_int("sigma", 3));
    const double p = args.get_double("p", 0.3);
    config::to_text(
        config::random_tags_with_span(graph::gnp_connected(n, p, rng), sigma, rng),
        std::cout);
  } else {
    std::cerr << "unknown family '" << family << "'\n";
    return 2;
  }
  return 0;
}

int cmd_classify(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const radio::ChannelModel model = parse_model(args);
  const core::ClassifierResult result = args.has("fast")
                                            ? core::FastClassifier(model).run(c)
                                            : core::Classifier(model).run(c);
  std::cout << "verdict:    " << (result.feasible() ? "feasible" : "infeasible") << '\n';
  std::cout << "iterations: " << result.iterations << '\n';
  std::cout << "steps:      " << result.steps << '\n';
  if (result.feasible()) {
    std::cout << "leader:     node " << result.leader << " (class " << result.leader_class
              << ")\n";
  }
  std::cout << "partition:  ";
  const auto& final_classes = result.records.back().clazz;
  for (graph::NodeId v = 0; v < final_classes.size(); ++v) {
    std::cout << (v ? " " : "") << final_classes[v];
  }
  std::cout << '\n';
  return result.feasible() ? 0 : 1;
}

int cmd_elect(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  core::ElectionOptions options;
  options.channel_model = parse_model(args);
  const core::ElectionReport report = core::elect(c, options);
  std::cout << "feasible:      " << (report.feasible ? "yes" : "no") << '\n';
  if (report.leader) {
    std::cout << "leader:        node " << *report.leader << '\n';
  }
  std::cout << "local rounds:  " << report.local_rounds << '\n';
  std::cout << "global rounds: " << report.global_rounds << '\n';
  std::cout << "transmissions: " << report.stats.transmissions << '\n';
  std::cout << "verified:      " << (report.valid ? "ok" : "FAILED") << '\n';
  return report.valid ? 0 : 1;
}

int cmd_trace(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  radio::StreamTrace trace(std::cout, args.has("verbose"));
  radio::SimulatorOptions options;
  options.trace = &trace;
  options.channel_model = schedule->model;
  const core::CanonicalDrip drip(schedule);
  const radio::RunResult run = radio::simulate(c, drip, options);
  const auto leaders = run.leaders();
  std::cout << (leaders.size() == 1
                    ? "leader: node " + std::to_string(leaders.front())
                    : "no unique leader")
            << '\n';
  return 0;
}

int cmd_schedule(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  core::schedule_to_text(*schedule, std::cout);
  return 0;
}

int cmd_dot(const support::Args& args) {
  config::to_dot(read_configuration(args, 1), std::cout);
  return 0;
}

int cmd_orbits(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const core::SymmetryReport report = core::analyze_symmetry(c);
  std::cout << (report.feasible() ? "feasible" : "infeasible") << ": " << report.orbits.size()
            << " orbit(s) of indistinguishable nodes\n";
  for (const core::Orbit& orbit : report.orbits) {
    std::cout << "  orbit " << orbit.id << " {";
    for (std::size_t i = 0; i < orbit.members.size(); ++i) {
      std::cout << (i ? " " : "") << orbit.members[i];
    }
    std::cout << "}" << (orbit.members.size() == 1 ? "  <- electable" : "") << '\n';
  }
  std::cout << "quotient graph: " << report.quotient.node_count() << " orbit(s), "
            << report.quotient.edge_count() << " edge(s)\n";
  return report.feasible() ? 0 : 1;
}

int cmd_validate(const support::Args& args) {
  const config::Configuration c = read_configuration(args, 1);
  const auto schedule = core::make_schedule(c, parse_model(args));
  const core::CanonicalDrip drip(schedule);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  options.channel_model = schedule->model;
  const radio::RunResult run = radio::simulate(c, drip, options);
  const radio::ValidationReport report =
      radio::validate_execution(c, recorder, run, schedule->model);
  if (report.ok) {
    std::cout << "execution valid (" << report.checks << " checks)\n";
    return 0;
  }
  std::cout << "execution INVALID: " << report.error << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  if (args.has("help")) {
    (void)usage();
    return 0;
  }
  if (args.positional().empty()) {
    return usage();
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "gen") {
      return cmd_gen(args);
    }
    if (command == "classify") {
      return cmd_classify(args);
    }
    if (command == "elect") {
      return cmd_elect(args);
    }
    if (command == "trace") {
      return cmd_trace(args);
    }
    if (command == "schedule") {
      return cmd_schedule(args);
    }
    if (command == "dot") {
      return cmd_dot(args);
    }
    if (command == "orbits") {
      return cmd_orbits(args);
    }
    if (command == "validate") {
      return cmd_validate(args);
    }
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
