/// \file bench_gate.cpp
/// The perf-trajectory gate: compares a fresh BENCH_*.json snapshot (the one
/// `bench_election --json-out=DIR` just wrote) against the committed
/// snapshot in bench/trajectory/, and exits nonzero when the fresh run
/// regresses.  CI runs it after the short bench preset, so a pull request
/// that slows the wavefront engine down (or changes a deterministic round
/// count) goes red with a before/after table instead of merging silently.
///
/// Gating policy, keyed off the field name:
///   - names containing "speedup" are the tracked perf invariants: the fresh
///     value must be at least committed * (1 - tolerance);
///   - names ending in "_ms" or "_per_s" are informational — raw rates move
///     with the machine, so they are printed but never gated;
///   - every other field is exact-match: round counts, feasibility bits and
///     workload identity are pure functions of fixed seeds, so any drift is
///     a semantic change, not noise.
/// A key present on one side only fails the gate: a silently dropped field
/// would read as "nothing regressed" forever after.
///
/// Usage: bench_gate --committed=PATH --fresh=PATH [--tolerance=0.5]
/// Exit codes: 0 pass, 1 regression or mismatch, 2 usage/parse error.

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/table.hpp"

namespace {

/// One parsed snapshot value: a number, or a bool/string kept as its token
/// (exact-match fields compare tokens, so the distinction never matters
/// beyond formatting).
struct Value {
  bool numeric = false;
  double number = 0.0;
  std::string token;  ///< the raw JSON token, quotes stripped for strings

  [[nodiscard]] std::string display() const { return token; }
};

using Snapshot = std::vector<std::pair<std::string, Value>>;

/// Parses the flat JSON object the benches write: `{ "key": value, ... }`
/// with number, true/false and "string" values only.  Not a general JSON
/// parser — nested structures are a parse error, which is exactly right for
/// a format whose consumers must be able to diff it field by field.
std::optional<Snapshot> parse_snapshot(const std::string& path, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Snapshot snapshot;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  const auto fail = [&](const std::string& reason) {
    error = path + ": " + reason;
    return std::nullopt;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '{') {
    return fail("expected '{'");
  }
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') {
    return snapshot;  // empty object
  }
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') {
      return fail("expected a quoted key");
    }
    const std::size_t key_end = text.find('"', i + 1);
    if (key_end == std::string::npos) {
      return fail("unterminated key");
    }
    std::string key = text.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= text.size() || text[i] != ':') {
      return fail("expected ':' after key \"" + key + "\"");
    }
    ++i;
    skip_ws();

    Value value;
    if (i < text.size() && text[i] == '"') {
      const std::size_t end = text.find('"', i + 1);
      if (end == std::string::npos) {
        return fail("unterminated string value for \"" + key + "\"");
      }
      value.token = text.substr(i + 1, end - i - 1);
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < text.size() && text[end] != ',' && text[end] != '}' &&
             std::isspace(static_cast<unsigned char>(text[end])) == 0) {
        ++end;
      }
      value.token = text.substr(i, end - i);
      if (value.token == "true" || value.token == "false") {
        // kept as token; exact-match comparison
      } else {
        char* parse_end = nullptr;
        value.number = std::strtod(value.token.c_str(), &parse_end);
        if (value.token.empty() || parse_end != value.token.c_str() + value.token.size()) {
          return fail("unsupported value '" + value.token + "' for \"" + key +
                      "\" (number, bool or string expected)");
        }
        value.numeric = true;
      }
      i = end;
    }
    snapshot.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') {
      return snapshot;
    }
    return fail("expected ',' or '}'");
  }
}

const Value* find(const Snapshot& snapshot, const std::string& key) {
  for (const auto& [name, value] : snapshot) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " --committed=PATH --fresh=PATH [--tolerance=0.5]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string committed_path;
  std::string fresh_path;
  double tolerance = 0.5;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--committed=", 0) == 0) {
      committed_path = arg.substr(12);
    } else if (arg.rfind("--fresh=", 0) == 0) {
      fresh_path = arg.substr(8);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || !(tolerance >= 0.0) || tolerance >= 1.0) {
        std::cerr << "bench_gate: --tolerance must be a number in [0, 1)\n";
        return 2;
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (committed_path.empty() || fresh_path.empty()) {
    return usage(argv[0]);
  }

  std::string error;
  const std::optional<Snapshot> committed = parse_snapshot(committed_path, error);
  if (!committed) {
    std::cerr << "bench_gate: " << error << "\n";
    return 2;
  }
  const std::optional<Snapshot> fresh = parse_snapshot(fresh_path, error);
  if (!fresh) {
    std::cerr << "bench_gate: " << error << "\n";
    return 2;
  }

  arl::support::Table table({"field", "committed", "fresh", "policy", "verdict"});
  std::vector<std::string> failures;

  // Committed keys drive the walk (trajectory order); fresh-only keys are
  // picked up in a second pass.
  for (const auto& [key, base] : *committed) {
    const Value* now = find(*fresh, key);
    std::string policy;
    std::string verdict;
    if (now == nullptr) {
      policy = "-";
      verdict = "MISSING";
      failures.push_back("field \"" + key +
                         "\" is in the committed snapshot but not the fresh run");
      table.add_row({key, base.display(), std::string("-"), policy, verdict});
      continue;
    }
    if (key.find("speedup") != std::string::npos && base.numeric && now->numeric) {
      std::ostringstream need;
      need << ">= " << base.number * (1.0 - tolerance);
      policy = need.str();
      if (now->number >= base.number * (1.0 - tolerance)) {
        verdict = "ok";
      } else {
        verdict = "REGRESSED";
        failures.push_back("\"" + key + "\" fell to " + now->display() + " (committed " +
                           base.display() + ", tolerance " + std::to_string(tolerance) + ")");
      }
    } else if (ends_with(key, "_ms") || ends_with(key, "_per_s")) {
      policy = "info";
      verdict = "-";
    } else {
      policy = "exact";
      const bool equal = base.numeric && now->numeric ? base.number == now->number
                                                      : base.token == now->token;
      if (equal) {
        verdict = "ok";
      } else {
        verdict = "CHANGED";
        failures.push_back("\"" + key + "\" changed from " + base.display() + " to " +
                           now->display());
      }
    }
    table.add_row({key, base.display(), now->display(), policy, verdict});
  }
  for (const auto& [key, value] : *fresh) {
    if (find(*committed, key) == nullptr) {
      table.add_row({key, std::string("-"), value.display(), std::string("-"),
                     std::string("NEW")});
      failures.push_back("field \"" + key + "\" is in the fresh run but not the committed "
                         "snapshot (update the trajectory)");
    }
  }

  table.print_markdown(std::cout);
  if (!failures.empty()) {
    std::cout << "\nbench_gate: FAIL (" << committed_path << " vs " << fresh_path << ")\n";
    for (const std::string& f : failures) {
      std::cout << "  - " << f << "\n";
    }
    return 1;
  }
  std::cout << "\nbench_gate: pass (" << committed_path << " vs " << fresh_path
            << ", tolerance " << tolerance << ")\n";
  return 0;
}
