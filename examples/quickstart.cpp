/// \file quickstart.cpp
/// Five-minute tour of the library: build a configuration, decide whether a
/// leader can be elected on it at all (Classifier), and — when it can — run
/// the canonical distributed protocol on the radio simulator and watch one
/// node elect itself.
///
/// Usage: quickstart [--m=3]

#include <iostream>

#include "config/families.hpp"
#include "config/io.hpp"
#include "core/election.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace arl;
  const support::Args args(argc, argv);
  const auto m = static_cast<config::Tag>(args.get_int("m", 3));

  // The paper's 4-node family H_m: a path a-b-c-d with wakeup tags
  // m, 0, 0, m+1.  Lemma 4.2 proves it feasible.
  const config::Configuration configuration = config::family_h(m);
  std::cout << "Configuration H_" << m << " (n=" << configuration.size()
            << ", span=" << configuration.span() << "):\n"
            << config::to_text_string(configuration) << '\n';

  // One call does everything: runs Classifier (Theorem 3.17), compiles the
  // canonical DRIP (§3.3.1), executes it on the simulator, verifies the
  // outcome.
  const core::ElectionReport report = core::elect(configuration);

  std::cout << "feasible:      " << (report.feasible ? "yes" : "no") << '\n';
  std::cout << "iterations:    " << report.classification.iterations << '\n';
  if (report.leader) {
    std::cout << "leader:        node " << *report.leader << '\n';
  }
  std::cout << "local rounds:  " << report.local_rounds << " (bound O(n^2*sigma))\n";
  std::cout << "global rounds: " << report.global_rounds << '\n';
  std::cout << "verified:      " << (report.valid ? "ok" : "FAILED") << '\n';
  return report.valid ? 0 : 1;
}
