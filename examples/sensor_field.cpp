/// \file sensor_field.cpp
/// A realistic deployment scenario: anonymous sensors dropped into a field.
///
/// The motivation the paper opens with — identical, unlabeled radio devices
/// that must self-organize.  We model a deployment as a random connected
/// network (sensors reach a few near neighbours) whose devices power up at
/// staggered times (their wakeup tags, e.g. seconds after being switched on
/// by a passing drone).  The operator wants a coordinator: can one be
/// elected at all, and at what cost?
///
/// The demo is a straight use of the workload registry: the window of
/// candidate deployments (re-staggered power-up schedules — exactly what a
/// field engineer would prepare) is one `WorkloadSpec`, instantiated and
/// handed whole to the batch election engine; the first candidate whose
/// election verifies is commissioned, and its radio budget reported.
///
/// Usage: sensor_field [--sensors=24] [--reach=0.18] [--stagger=4] [--seed=7]
///                     [--attempts=10]

#include <iostream>

#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "graph/algorithms.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace arl;
  const support::Args args(argc, argv);
  const auto sensors = static_cast<std::uint32_t>(args.get_int("sensors", 24));
  const double reach = args.get_double("reach", 0.18);
  const auto stagger = static_cast<std::uint32_t>(args.get_int("stagger", 4));
  const auto attempts = static_cast<std::size_t>(args.get_int("attempts", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "Deploying " << sensors << " anonymous sensors (reach " << reach
            << ", power-up stagger 0.." << stagger << ")\n\n";

  // Radio reach translates into edge density; connectivity is ensured by the
  // workload (a disconnected deployment cannot elect anything).
  const engine::WorkloadSpec deployments = engine::WorkloadSpec::random(sensors, reach, stagger);
  const engine::CountedSweep candidates = deployments.instantiate(
      seed, {core::ProtocolSpec::canonical()}, {.count = attempts});

  engine::BatchRunner runner({.seed = seed, .keep_reports = true});
  const engine::BatchReport batch = runner.run(candidates.count, candidates.source);

  for (engine::JobId attempt = 0; attempt < candidates.count; ++attempt) {
    const config::Configuration deployment = candidates.source(attempt).configuration;
    const auto& g = deployment.graph();
    std::cout << "attempt " << (attempt + 1) << ": " << g.edge_count() << " links, max degree "
              << g.max_degree() << ", diameter " << graph::diameter(g) << ", span "
              << deployment.span() << '\n';

    const core::ElectionReport& report = batch.reports[static_cast<std::size_t>(attempt)];
    if (!report.feasible) {
      std::cout << "  -> power-up schedule too symmetric, no coordinator possible; "
                   "re-staggering...\n";
      continue;
    }

    std::cout << "  -> feasible; coordinator = sensor " << *report.leader << '\n';
    support::Table table({"metric", "value"});
    table.add_row({std::string("Classifier iterations"),
                   static_cast<std::int64_t>(report.classification.iterations)});
    table.add_row({std::string("local rounds to elect"),
                   static_cast<std::int64_t>(report.local_rounds)});
    table.add_row({std::string("global rounds (wall clock)"),
                   static_cast<std::int64_t>(report.global_rounds)});
    table.add_row({std::string("radio transmissions"),
                   static_cast<std::int64_t>(report.stats.transmissions)});
    table.add_row({std::string("clean receptions"),
                   static_cast<std::int64_t>(report.stats.clean_receptions)});
    table.add_row({std::string("collisions heard"),
                   static_cast<std::int64_t>(report.stats.collisions_heard)});
    table.add_row({std::string("outcome verified"), std::string(report.valid ? "yes" : "NO")});
    std::cout << '\n';
    table.print_markdown(std::cout);

    std::cout << "\nEvery sensor ran the identical program; the coordinator emerged only\n"
                 "from who woke when.  All " << candidates.count
              << " candidate schedules were vetted in one engine batch ("
              << batch.threads_used << " worker thread(s), " << batch.wall_millis
              << " ms); the whole window is the workload '" << deployments.name()
              << "' — re-run with the same --seed (or shard it with `arl sweep "
                 "--workload=...`) to get the same deployment and leader.\n";
    return 0;
  }
  std::cout << "no feasible deployment found in " << candidates.count
            << " attempts — increase --stagger\n";
  return 1;
}
