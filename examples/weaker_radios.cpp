/// \file weaker_radios.cpp
/// What does collision detection buy?  (Extension beyond the paper.)
///
/// The paper's model lets listeners distinguish noise (∗) from silence.
/// This demo re-evaluates feasibility when that capability is removed —
/// collisions become inaudible, as in classic no-CD radio networks:
///   1. a hand-checkable witness where CD is essential (a star whose hub is
///      only distinguishable through the collision of its leaves),
///   2. exhaustive small-n counts of configurations that lose feasibility,
///   3. a full no-CD election on a configuration that stays feasible.
///
/// Usage: weaker_radios [--max-n=4]

#include <iostream>

#include "config/families.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "graph/enumeration.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

void witness() {
  std::cout << "== A witness: K_{1,3} with tags 0,1,1,0 ==\n\n";
  const config::Configuration c(graph::star(4), {0, 1, 1, 0});
  const bool cd = core::FastClassifier{}.run(c).feasible();
  const bool nocd =
      core::FastClassifier(radio::ChannelModel::NoCollisionDetection).run(c).feasible();
  std::cout << "with collision detection:    " << (cd ? "feasible" : "infeasible") << '\n';
  std::cout << "without collision detection: " << (nocd ? "feasible" : "infeasible") << '\n';
  std::cout << "\nWhy: the two tag-1 leaves always transmit together, so the hub only\n"
               "ever hears their *collision*.  With CD that noise separates the hub\n"
               "from the silent tag-0 leaf; without CD the hub and that leaf hear\n"
               "identical silence forever and stay interchangeable.\n\n";
}

void census(graph::NodeId max_n) {
  std::cout << "== Exhaustive census: feasibility under weaker feedback ==\n\n";
  support::Table table({"n", "configs", "feasible (CD)", "feasible (no CD)", "lost %"});
  table.set_precision(3);
  for (graph::NodeId n = 1; n <= max_n; ++n) {
    std::uint64_t configs = 0;
    std::uint64_t cd_count = 0;
    std::uint64_t nocd_count = 0;
    graph::for_each_connected_graph(n, [&](const graph::Graph& g) {
      std::vector<config::Tag> tags(n, 0);
      for (;;) {
        const config::Configuration c(g, tags);
        ++configs;
        cd_count += core::FastClassifier{}.run(c).feasible() ? 1 : 0;
        nocd_count += core::FastClassifier(radio::ChannelModel::NoCollisionDetection)
                              .run(c)
                              .feasible()
                          ? 1
                          : 0;
        graph::NodeId position = 0;
        while (position < n && tags[position] == 2) {
          tags[position] = 0;
          ++position;
        }
        if (position == n) {
          break;
        }
        ++tags[position];
      }
    });
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(configs),
                   static_cast<std::int64_t>(cd_count), static_cast<std::int64_t>(nocd_count),
                   cd_count == 0 ? 0.0
                                 : 100.0 * static_cast<double>(cd_count - nocd_count) /
                                       static_cast<double>(cd_count)});
  }
  table.print_markdown(std::cout);
  std::cout << "\nEvery no-CD-feasible configuration is CD-feasible (weaker feedback\n"
               "never helps); the converse fails on the witnesses counted above.\n\n";
}

void nocd_election() {
  std::cout << "== A complete election without collision detection ==\n\n";
  const config::Configuration c = config::family_h(3);
  core::ElectionOptions options;
  options.channel_model = radio::ChannelModel::NoCollisionDetection;
  const core::ElectionReport report = core::elect(c, options);
  std::cout << "configuration: H_3 (path a-b-c-d, tags 3,0,0,4)\n";
  std::cout << "feasible without CD: " << (report.feasible ? "yes" : "no") << '\n';
  if (report.leader) {
    std::cout << "leader: node " << *report.leader << '\n';
  }
  std::cout << "rounds: " << report.local_rounds << ", verified: "
            << (report.valid ? "ok" : "FAILED") << '\n';
  std::cout << "\nH_m never relies on collisions (every slot has at most one\n"
               "transmitter), so the canonical machinery carries over verbatim.\n"
               "Caveat recorded in DESIGN.md: under no-CD the classifier's \"No\" is\n"
               "a conjecture — the paper's optimality proof (Lemma 3.14) uses CD.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  witness();
  census(static_cast<graph::NodeId>(args.get_int("max-n", 4)));
  nocd_election();
  return 0;
}
