/// \file feasibility_explorer.cpp
/// Survey the landscape of feasible configurations.
///
/// Part 1 exhaustively classifies every connected configuration up to a
/// small size (the same sweep the paper's characterization makes tractable:
/// Classifier runs in polynomial time, so millions of configurations are
/// cheap).  Part 2 estimates feasibility rates for larger random networks
/// across a span sweep, fanning the samples out over all cores.
///
/// Usage: feasibility_explorer [--max-n=4] [--max-tag=2] [--samples=500]
///                             [--random-n=20] [--p=0.3]

#include <atomic>
#include <iostream>
#include <vector>

#include "config/families.hpp"
#include "core/fast_classifier.hpp"
#include "graph/enumeration.hpp"
#include "graph/generators.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace arl;

void exhaustive_census(graph::NodeId max_n, config::Tag max_tag) {
  support::Table table({"n", "configurations", "feasible", "infeasible", "feasible %",
                        "max iterations", "time_ms"});
  for (graph::NodeId n = 1; n <= max_n; ++n) {
    support::Stopwatch watch;
    std::uint64_t configs = 0;
    std::uint64_t feasible = 0;
    std::uint32_t max_iterations = 0;
    graph::for_each_connected_graph(n, [&](const graph::Graph& g) {
      std::vector<config::Tag> tags(n, 0);
      for (;;) {
        ++configs;
        const auto result = core::FastClassifier{}.run(config::Configuration(g, tags));
        feasible += result.feasible() ? 1 : 0;
        max_iterations = std::max(max_iterations, result.iterations);
        graph::NodeId position = 0;
        while (position < n && tags[position] == max_tag) {
          tags[position] = 0;
          ++position;
        }
        if (position == n) {
          break;
        }
        ++tags[position];
      }
    });
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(configs),
                   static_cast<std::int64_t>(feasible),
                   static_cast<std::int64_t>(configs - feasible),
                   100.0 * static_cast<double>(feasible) / static_cast<double>(configs),
                   static_cast<std::int64_t>(max_iterations), watch.millis()});
  }
  std::cout << "\n## Exhaustive census (tags 0.." << max_tag << ")\n\n";
  table.print_markdown(std::cout);
}

void random_survey(graph::NodeId n, double p, std::size_t samples) {
  support::ThreadPool pool;
  support::Table table({"sigma", "feasible %", "avg iterations"});
  table.set_precision(3);
  for (const config::Tag sigma : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::atomic<std::uint64_t> feasible{0};
    std::atomic<std::uint64_t> iterations{0};
    const support::Rng master(0xCAFE + sigma);
    support::parallel_for(pool, 0, samples, [&](std::size_t sample) {
      support::Rng rng = master.split(sample);
      const config::Configuration c =
          config::random_tags_with_span(graph::gnp_connected(n, p, rng), sigma, rng);
      const auto result = core::FastClassifier{}.run(c);
      feasible.fetch_add(result.feasible() ? 1 : 0, std::memory_order_relaxed);
      iterations.fetch_add(result.iterations, std::memory_order_relaxed);
    });
    table.add_row({static_cast<std::int64_t>(sigma),
                   100.0 * static_cast<double>(feasible.load()) / static_cast<double>(samples),
                   static_cast<double>(iterations.load()) / static_cast<double>(samples)});
  }
  std::cout << "\n## Random survey: G(n=" << n << ", p=" << p << "), " << samples
            << " samples per span, " << pool.size() << " worker thread(s)\n\n";
  table.print_markdown(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  const auto max_n = static_cast<graph::NodeId>(args.get_int("max-n", 4));
  const auto max_tag = static_cast<config::Tag>(args.get_int("max-tag", 2));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 500));
  const auto random_n = static_cast<graph::NodeId>(args.get_int("random-n", 20));
  const double p = args.get_double("p", 0.3);

  exhaustive_census(max_n, max_tag);
  random_survey(random_n, p, samples);

  std::cout << "\nReading the numbers: feasibility requires wakeup asymmetry.  With a\n"
               "larger span the adversary has fewer ways to keep nodes symmetric, so\n"
               "the feasible fraction climbs toward 1; configurations with all-equal\n"
               "tags are never feasible (n >= 2), which bounds the rate away from 1\n"
               "for small spans.\n";
  return 0;
}
