/// \file feasibility_explorer.cpp
/// Survey the landscape of feasible configurations.
///
/// Part 1 exhaustively classifies every connected configuration up to a
/// small size (the same sweep the paper's characterization makes tractable:
/// Classifier runs in polynomial time, so millions of configurations are
/// cheap).  Part 2 estimates feasibility rates for larger random networks
/// across a span sweep.  Both parts are plain workload-registry specs —
/// `exhaustive:n=N,tau=T,fast=1` and `random:n=N,p=X,sigma=S,fast=1` —
/// instantiated and handed to the batch election engine, which fans the
/// work out over all cores.
///
/// Usage: feasibility_explorer [--max-n=4] [--max-tag=2] [--samples=500]
///                             [--random-n=20] [--p=0.3]

#include <algorithm>
#include <iostream>

#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

void exhaustive_census(std::uint32_t max_n, std::uint32_t max_tag) {
  engine::BatchRunner runner;
  support::Table table({"n", "configurations", "feasible", "infeasible", "feasible %",
                        "max iterations", "time_ms"});
  for (std::uint32_t n = 1; n <= max_n; ++n) {
    // Self-counting lazy workload: only the graphs are materialized, so a
    // large census never holds more than one configuration per worker.
    engine::WorkloadSpec census = engine::WorkloadSpec::exhaustive(n, max_tag);
    census.fast = true;
    const engine::CountedSweep sweep =
        census.instantiate(0, {core::ProtocolSpec::classify_only()});
    const engine::BatchReport report = runner.run(sweep.count, sweep.source);
    std::uint32_t max_iterations = 0;
    for (const engine::JobOutcome& outcome : report.jobs) {
      max_iterations = std::max(max_iterations, outcome.classifier_iterations);
    }
    const auto configs = static_cast<std::int64_t>(report.jobs.size());
    table.add_row({static_cast<std::int64_t>(n), configs,
                   static_cast<std::int64_t>(report.feasible_count),
                   configs - static_cast<std::int64_t>(report.feasible_count),
                   100.0 * static_cast<double>(report.feasible_count) /
                       static_cast<double>(report.jobs.size()),
                   static_cast<std::int64_t>(max_iterations), report.wall_millis});
  }
  std::cout << "\n## Exhaustive census (tags 0.." << max_tag << ")\n\n";
  table.print_markdown(std::cout);
}

void random_survey(std::uint32_t n, double p, std::size_t samples) {
  engine::BatchRunner runner;
  support::Table table({"sigma", "feasible %", "avg iterations"});
  table.set_precision(3);
  for (const std::uint32_t sigma : {1u, 2u, 3u, 5u, 8u, 13u}) {
    engine::WorkloadSpec survey = engine::WorkloadSpec::random(n, p, sigma);
    survey.fast = true;
    const engine::CountedSweep sweep = survey.instantiate(
        0xCAFE + sigma, {core::ProtocolSpec::classify_only()}, {.count = samples});
    const engine::BatchReport report = runner.run(sweep.count, sweep.source);
    std::uint64_t iterations = 0;
    for (const engine::JobOutcome& outcome : report.jobs) {
      iterations += outcome.classifier_iterations;
    }
    table.add_row({static_cast<std::int64_t>(sigma),
                   100.0 * static_cast<double>(report.feasible_count) /
                       static_cast<double>(samples),
                   static_cast<double>(iterations) / static_cast<double>(samples)});
  }
  std::cout << "\n## Random survey: G(n=" << n << ", p=" << p << "), " << samples
            << " samples per span, " << runner.threads() << " worker thread(s)\n\n";
  table.print_markdown(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  const auto max_n = static_cast<std::uint32_t>(args.get_int("max-n", 4));
  const auto max_tag = static_cast<std::uint32_t>(args.get_int("max-tag", 2));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 500));
  const auto random_n = static_cast<std::uint32_t>(args.get_int("random-n", 20));
  const double p = args.get_double("p", 0.3);

  exhaustive_census(max_n, max_tag);
  random_survey(random_n, p, samples);

  std::cout << "\nReading the numbers: feasibility requires wakeup asymmetry.  With a\n"
               "larger span the adversary has fewer ways to keep nodes symmetric, so\n"
               "the feasible fraction climbs toward 1; configurations with all-equal\n"
               "tags are never feasible (n >= 2), which bounds the rate away from 1\n"
               "for small spans.\n";
  return 0;
}
