/// \file election_trace.cpp
/// Watch the canonical DRIP run, round by round.
///
/// Prints the compiled schedule (the list sequence L_j) for a configuration,
/// then replays the execution with a verbose trace: wakeups, transmissions,
/// receptions, terminations — followed by every node's full history and the
/// decision each node reaches.  Default configuration is the paper's H_2;
/// pass --family=g --m=2 for G_2 or --family=s --m=2 for the infeasible S_2.
///
/// Usage: election_trace [--family=h|g|s] [--m=2] [--verbose]

#include <iostream>

#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/schedule.hpp"
#include "radio/trace.hpp"
#include "support/cli.hpp"

namespace {

using namespace arl;

config::Configuration pick_family(const std::string& family, config::Tag m) {
  if (family == "g") {
    return config::family_g(m);
  }
  if (family == "s") {
    return config::family_s(m);
  }
  return config::family_h(m);
}

void print_schedule(const core::CanonicalSchedule& schedule) {
  std::cout << "compiled schedule: sigma=" << schedule.sigma << ", "
            << schedule.phases.size() << " phase(s), block length "
            << schedule.block_length() << ", total " << schedule.total_rounds()
            << " local rounds\n";
  for (std::size_t j = 0; j < schedule.phases.size(); ++j) {
    const core::PhaseSpec& phase = schedule.phases[j];
    std::cout << "  phase P" << (j + 1) << ": " << phase.num_classes
              << " transmission block(s); L_" << (j + 1) << " = [";
    for (std::size_t k = 0; k < phase.entries.size(); ++k) {
      std::cout << (k ? ", " : "") << "(" << phase.entries[k].old_class << ", "
                << core::format_label(phase.entries[k].label) << ")";
    }
    std::cout << "]\n";
  }
  if (schedule.feasible) {
    std::cout << "  leader signature: block " << schedule.leader_old_class << ", label "
              << core::format_label(schedule.leader_label) << "\n";
  } else {
    std::cout << "  verdict: infeasible — the protocol terminates with no leader\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  const auto m = static_cast<config::Tag>(args.get_int("m", 2));
  const config::Configuration configuration =
      pick_family(args.get_string("family", "h"), m);

  std::cout << "=== configuration ===\n";
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    std::cout << "node " << v << ": tag " << configuration.tag(v) << ", neighbours";
    for (const graph::NodeId w : configuration.graph().neighbors(v)) {
      std::cout << ' ' << w;
    }
    std::cout << '\n';
  }
  std::cout << "span sigma = " << configuration.span() << "\n\n";

  std::cout << "=== Classifier + schedule ===\n";
  const auto schedule = core::make_schedule(configuration);
  print_schedule(*schedule);

  std::cout << "\n=== execution trace ===\n";
  radio::StreamTrace trace(std::cout, args.has("verbose"));
  radio::SimulatorOptions options;
  options.trace = &trace;
  options.history_window = 0;
  const core::CanonicalDrip drip(schedule);
  const radio::RunResult run = radio::simulate(configuration, drip, options);

  std::cout << "\n=== histories (local, oldest first) ===\n";
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    std::cout << "node " << v << " (woke " << run.nodes[v].wake_round << "): "
              << radio::format_history(run.nodes[v].history) << '\n';
  }

  std::cout << "\n=== decisions ===\n";
  const auto leaders = run.leaders();
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    std::cout << "node " << v << ": "
              << (run.nodes[v].elected ? "LEADER" : "non-leader") << '\n';
  }
  std::cout << (leaders.size() == 1 ? "\nexactly one leader elected — election valid\n"
                                    : "\nno unique leader — configuration infeasible\n");
  return 0;
}
