/// \file lowerbound_gallery.cpp
/// The paper's §4 negative results, demonstrated live.
///
/// Four acts:
///  1. Prop 4.1 — on the span-1 path family G_m, election cost grows
///     linearly in n, and mirror nodes stay symmetric forever.
///  2. Prop 4.3 — on the 4-node family H_m, election needs Ω(σ) rounds.
///  3. Prop 4.4 — a natural "universal" protocol is broken live on the
///     configuration the proof predicts.
///  4. Prop 4.5 — a feasible and an infeasible configuration produce
///     bit-identical transcripts, so no protocol can decide feasibility.
///
/// Usage: lowerbound_gallery [--max-m=8]

#include <iostream>

#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/classifier.hpp"
#include "core/schedule.hpp"
#include "lowerbounds/comparator.hpp"
#include "lowerbounds/symmetry.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/simulator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

void act_one(config::Tag max_m) {
  std::cout << "\n== Act 1 · Proposition 4.1: Omega(n) on G_m (span 1) ==\n\n";
  support::Table table({"m", "n", "election rounds", "centre unique at", "mirrors symmetric"});
  for (config::Tag m = 2; m <= max_m; m += 2) {
    const config::Configuration c = config::family_g(m);
    const auto schedule = core::make_schedule(c);
    radio::SimulatorOptions options;
    options.history_window = 0;
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule), options);
    const auto unique_at = lowerbounds::uniqueness_round(run, config::family_g_center(m));
    bool mirrors = true;
    for (graph::NodeId i = 0; i < c.size() / 2; ++i) {
      mirrors = mirrors && !lowerbounds::first_history_divergence(
                                run.nodes[i], run.nodes[c.size() - 1 - i])
                                .has_value();
    }
    table.add_row({static_cast<std::int64_t>(m), static_cast<std::int64_t>(c.size()),
                   static_cast<std::int64_t>(schedule->total_rounds()),
                   static_cast<std::int64_t>(unique_at.value_or(0)),
                   std::string(mirrors ? "yes" : "no")});
  }
  table.print_markdown(std::cout);
  std::cout << "\nThe a_i/c_i mirror pairs never separate — only the centre can lead, and\n"
               "its history needs Θ(n) rounds to become unique.\n";
}

void act_two(config::Tag max_m) {
  std::cout << "\n== Act 2 · Proposition 4.3: Omega(sigma) on H_m (n = 4) ==\n\n";
  support::Table table({"m", "sigma", "election rounds", "lower bound m"});
  for (config::Tag m = 1; m <= max_m; m *= 2) {
    const config::Configuration c = config::family_h(m);
    const auto schedule = core::make_schedule(c);
    table.add_row({static_cast<std::int64_t>(m), static_cast<std::int64_t>(c.span()),
                   static_cast<std::int64_t>(schedule->total_rounds()),
                   static_cast<std::int64_t>(m)});
  }
  table.print_markdown(std::cout);
  std::cout << "\nFour nodes, yet the span alone forces the cost: no algorithm beats m\n"
               "rounds (Lemma 4.2), and the canonical DRIP lands within a small\n"
               "constant of that bound.\n";
}

void act_three(config::Tag max_m) {
  std::cout << "\n== Act 3 · Proposition 4.4: breaking a universal candidate ==\n\n";
  const lowerbounds::BeepCandidate candidate(2, 12);
  const auto probe = lowerbounds::probe_universal(candidate, max_m);
  std::cout << "candidate: " << probe.candidate << "\n";
  std::cout << "first transmission (t): global round " << probe.first_tx_round << "\n";
  if (probe.breaking_m) {
    std::cout << "fails on H_" << *probe.breaking_m << " with \"" << probe.failure_mode
              << "\" (theorem predicts failure by m = t+1 = "
              << probe.first_tx_round + 1 << ")\n";
  }
  // Show the mechanism: symmetric histories on the breaking configuration.
  const config::Configuration h = config::family_h(probe.first_tx_round + 1);
  radio::SimulatorOptions options;
  options.history_window = 0;
  const radio::RunResult run = radio::simulate(h, candidate, options);
  std::cout << "\nhistories on H_" << probe.first_tx_round + 1 << ":\n";
  const char* names[] = {"a", "b", "c", "d"};
  for (graph::NodeId v = 0; v < 4; ++v) {
    std::cout << "  " << names[v] << ": " << radio::format_history(run.nodes[v].history)
              << '\n';
  }
  std::cout << "b and c (and a and d) are mirror images — two nodes claim leadership.\n";
}

void act_four() {
  std::cout << "\n== Act 4 · Proposition 4.5: feasibility is undecidable in-network ==\n\n";
  const lowerbounds::BeepCandidate candidate(2, 12);
  const config::Round t = 3;  // wait=2 ⇒ tag-0 nodes transmit at global 3
  const config::Configuration h = config::family_h(t + 1);
  const config::Configuration s = config::family_s(t + 1);
  std::cout << "H_" << t + 1 << " feasible: "
            << (core::Classifier{}.run(h).feasible() ? "yes" : "no") << '\n';
  std::cout << "S_" << t + 1 << " feasible: "
            << (core::Classifier{}.run(s).feasible() ? "yes" : "no") << '\n';
  const auto comparison = lowerbounds::compare_executions(h, s, candidate);
  std::cout << "transcripts identical at every node: "
            << (comparison.identical ? "yes" : "no") << '\n';
  std::cout << "\nGround truth differs, observations do not — no distributed decision\n"
               "algorithm can exist (the nodes would have to answer differently on\n"
               "identical histories).\n";
}

}  // namespace

int main(int argc, char** argv) {
  const support::Args args(argc, argv);
  const auto max_m = static_cast<config::Tag>(args.get_int("max-m", 8));
  std::cout << "Gallery of impossibility: the paper's §4 results, executed.\n";
  act_one(max_m);
  act_two(max_m);
  act_three(max_m);
  act_four();
  return 0;
}
