/// \file bench_store.cpp
/// E7: the persistent artifact store as a cross-process warm start.  One
/// expensive classification sweep runs three ways: storeless (the
/// baseline), store-cold (every configuration classifies AND persists),
/// and store-preloaded — a fresh runner, memory-cache cold, that answers
/// every configuration from the entry files a previous process wrote.  The
/// preload speedup over the compiling run is the tracked perf invariant
/// (BENCH_E7.json, gated in CI by tools/bench_gate); wall times are
/// machine facts, printed but not gated; the store counters and outcome
/// identity are exact.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "store/artifact_store.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace {

using namespace arl;

#if defined(__unix__) || defined(__APPLE__)

constexpr const char* kWorkload = "random:n=256,p=0.03,sigma=200";
constexpr std::uint64_t kCount = 200;  // configurations
constexpr std::uint64_t kSeed = 11;

/// A private store directory, emptied and removed by the destructor.
struct BenchStore {
  BenchStore() {
    char pattern[] = "/tmp/arl-bench-store-XXXXXX";
    if (::mkdtemp(pattern) == nullptr) {
      throw std::runtime_error("bench_store: mkdtemp failed");
    }
    dir = pattern;
  }

  ~BenchStore() {
    if (DIR* d = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          (void)::unlink((dir + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(dir.c_str());
  }

  std::string dir;
};

engine::CountedSweep e7_sweep() {
  return engine::parse_workload(kWorkload).instantiate(
      kSeed, {core::ProtocolSpec::classify_only()}, {.count = kCount});
}

engine::BatchOptions e7_options(const std::string& store_directory) {
  engine::BatchOptions options;
  options.threads = 1;  // timings compare store tiers, not pool sizes
  options.cache_capacity = 1024;
  options.store_directory = store_directory;
  return options;
}

void print_e7_table() {
  const engine::CountedSweep sweep = e7_sweep();
  BenchStore store;

  // Baseline: no store at all — what the sweep costs with nothing to reuse.
  support::Stopwatch watch;
  engine::BatchRunner baseline_runner(e7_options(""));
  const engine::BatchReport baseline = baseline_runner.run(sweep.count, sweep.source);
  const double baseline_ms = watch.millis();

  // Store-cold: same compiles, plus one crash-safe entry file per
  // configuration (the write overhead the durability costs).
  watch.restart();
  engine::BatchRunner cold_runner(e7_options(store.dir));
  const engine::BatchReport cold = cold_runner.run(sweep.count, sweep.source);
  const double cold_ms = watch.millis();

  // Store-preloaded: a fresh runner (fresh process, as far as the cache can
  // tell — its memory tier is empty) answers every configuration from disk.
  watch.restart();
  engine::BatchRunner warm_runner(e7_options(store.dir));
  const engine::BatchReport warm = warm_runner.run(sweep.count, sweep.source);
  const double warm_ms = watch.millis();

  if (!cold.artifact_store || !warm.artifact_store) {
    throw std::runtime_error("bench_store: store-backed runs reported no store counters");
  }
  const bool identical =
      engine::same_results(cold, baseline) && engine::same_results(warm, baseline);
  const double preload_speedup = cold_ms / warm_ms;

  support::Table table({"run", "wall ms", "loads", "misses", "saves", "jobs"});
  const auto row = [&](const std::string& name, double ms, std::uint64_t loads,
                       std::uint64_t misses, std::uint64_t saves) {
    std::ostringstream wall;
    wall << static_cast<int>(ms * 10.0) / 10.0;
    table.add_row({name, wall.str(), std::to_string(loads), std::to_string(misses),
                   std::to_string(saves), std::to_string(baseline.jobs.size())});
  };
  row("storeless", baseline_ms, 0, 0, 0);
  row("store-cold", cold_ms, cold.artifact_store->hits, cold.artifact_store->misses,
      cold.artifact_store->saves);
  row("store-preloaded", warm_ms, warm.artifact_store->hits, warm.artifact_store->misses,
      warm.artifact_store->saves);
  benchsupport::print_table("E7: persistent artifact store, compile vs preload (" +
                                std::string(kWorkload) + " x " + std::to_string(kCount) +
                                ", classify)",
                            table);
  std::cout << "\npreload speedup: " << preload_speedup
            << "x over the compiling run; outcomes identical: " << (identical ? "yes" : "no")
            << "\n";

  benchsupport::JsonSnapshot snapshot;
  snapshot.add("bench", std::string("E7"));
  snapshot.add("workload", std::string(kWorkload));
  snapshot.add("configurations", kCount);
  snapshot.add("total_jobs", static_cast<std::uint64_t>(baseline.jobs.size()));
  snapshot.add("cold_saves", cold.artifact_store->saves);
  snapshot.add("cold_rejected", cold.artifact_store->rejected);
  snapshot.add("preload_hits", warm.artifact_store->hits);
  snapshot.add("preload_misses", warm.artifact_store->misses);
  snapshot.add("preload_saves", warm.artifact_store->saves);
  snapshot.add("identical_outcomes", identical);
  snapshot.add("store_preload_speedup", preload_speedup);
  snapshot.add("baseline_wall_ms", baseline_ms);
  snapshot.add("cold_wall_ms", cold_ms);
  snapshot.add("preload_wall_ms", warm_ms);
  snapshot.write("BENCH_E7.json");
}

// ------------------------------------------------------- timed micro-series

void BM_StoreSave(benchmark::State& state) {
  const engine::CountedSweep sweep = e7_sweep();
  const engine::BatchJob job = sweep.source(0);
  core::CompiledConfiguration compiled;
  compiled.classification = core::Classifier().run(job.configuration);
  BenchStore store;
  store::ArtifactStore artifacts(store.dir);
  for (auto _ : state) {
    artifacts.save(job.configuration, radio::ChannelModel::CollisionDetection, false, compiled);
  }
}
BENCHMARK(BM_StoreSave)->Unit(benchmark::kMicrosecond);

void BM_StoreLoad(benchmark::State& state) {
  const engine::CountedSweep sweep = e7_sweep();
  const engine::BatchJob job = sweep.source(0);
  core::CompiledConfiguration compiled;
  compiled.classification = core::Classifier().run(job.configuration);
  BenchStore store;
  store::ArtifactStore artifacts(store.dir);
  artifacts.save(job.configuration, radio::ChannelModel::CollisionDetection, false, compiled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        artifacts.load(job.configuration, radio::ChannelModel::CollisionDetection, false));
  }
}
BENCHMARK(BM_StoreLoad)->Unit(benchmark::kMicrosecond);

void print_tables() { print_e7_table(); }

#else  // !(defined(__unix__) || defined(__APPLE__))

void print_tables() {
  std::cout << "\nE7: skipped (no POSIX I/O on this platform)\n";
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace

ARL_BENCH_MAIN(print_tables)