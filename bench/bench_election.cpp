/// \file bench_election.cpp
/// E3 (Lemma 3.10 / Theorem 3.15): canonical-DRIP election time in rounds
/// against the O(n²σ) bound, across topologies, sizes and spans.

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/election.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

double bound_ratio(const core::ElectionReport& report, graph::NodeId n, config::Tag sigma) {
  // Lemma 3.10's explicit envelope: ceil(n/2) phases x (n(2σ+1)+σ) rounds.
  const double bound = ((n + 1.0) / 2.0) * (n * (2.0 * sigma + 1.0) + sigma) + 1.0;
  return static_cast<double>(report.local_rounds) / bound;
}

void print_tables() {
  support::Table table({"workload", "n", "sigma", "feasible", "phases", "local rounds",
                        "n^2*sigma", "rounds/bound"});
  support::Rng rng(2027);
  auto row = [&](const std::string& name, const config::Configuration& c) {
    const core::ElectionReport report = core::elect(c);
    table.add_row({name, static_cast<std::int64_t>(c.size()),
                   static_cast<std::int64_t>(c.span()),
                   std::string(report.feasible ? "yes" : "no"),
                   static_cast<std::int64_t>(report.classification.iterations),
                   static_cast<std::int64_t>(report.local_rounds),
                   static_cast<double>(c.size()) * c.size() * std::max<config::Tag>(c.span(), 1),
                   bound_ratio(report, c.size(), c.span())});
  };

  for (const config::Tag m : {2u, 4u, 8u, 16u, 32u}) {
    row("G_m path", config::family_g(m));
  }
  for (const config::Tag m : {2u, 8u, 32u, 128u}) {
    row("H_m", config::family_h(m));
  }
  for (const graph::NodeId n : {8u, 16u, 32u, 64u}) {
    row("staggered path", config::staggered_path(n));
  }
  for (const graph::NodeId n : {8u, 16u, 32u}) {
    row("random gnp(0.3) sigma=3",
        config::random_tags_with_span(graph::gnp_connected(n, 0.3, rng), 3, rng));
  }
  for (const graph::NodeId n : {9u, 16u, 25u}) {
    const auto side = static_cast<graph::NodeId>(n == 9 ? 3 : n == 16 ? 4 : 5);
    row("grid sigma=2",
        config::random_tags_with_span(graph::grid(side, side), 2, rng));
  }
  benchsupport::print_table("E3 — canonical-DRIP election time vs the O(n^2*sigma) bound",
                            table);
}

// ------------------------------------------------------------- timed series

void BM_ElectOnFamilyG(benchmark::State& state) {
  const auto m = static_cast<config::Tag>(state.range(0));
  const config::Configuration c = config::family_g(m);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
    rounds = report.local_rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["n"] = static_cast<double>(c.size());
}
BENCHMARK(BM_ElectOnFamilyG)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ElectOnStaggeredPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = config::staggered_path(n);
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
  }
}
BENCHMARK(BM_ElectOnStaggeredPath)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ElectOnRandomGnp(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng rng(55 + n);
  const config::Configuration c =
      config::random_tags_with_span(graph::gnp_connected(n, 0.3, rng), 3, rng);
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
  }
}
BENCHMARK(BM_ElectOnRandomGnp)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

ARL_BENCH_MAIN(print_tables)
