/// \file bench_election.cpp
/// E3 (Lemma 3.10 / Theorem 3.15): canonical-DRIP election time in rounds
/// against the O(n²σ) bound, across topologies, sizes and spans — plus E3b,
/// the engine experiment (wall-time of a 1000-configuration sweep through
/// the serial elect() loop versus the batch election engine), E3c, a
/// mixed-protocol engine batch putting the canonical Θ(n²σ) election time
/// next to the O(log n) labeled baselines on single-hop configurations,
/// E5, the engine trajectory (scalar reference loop vs the wavefront engine
/// on a steady-state mutation sweep at n=64, emitted as machine-readable
/// BENCH_E5.json and gated in CI by tools/bench_gate), and E5b, the
/// distributed pipeline (shard → serialize → merge) against the same sweep
/// in one process.  E3's deterministic rows land in BENCH_E3.json.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "config/mutations.hpp"
#include "core/election.hpp"
#include "dist/merge.hpp"
#include "dist/report_io.hpp"
#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"
#include "engine/schedule_cache.hpp"
#include "engine/sweep.hpp"
#include "engine/workload.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace arl;

double bound_ratio(std::uint64_t local_rounds, graph::NodeId n, config::Tag sigma) {
  // Lemma 3.10's explicit envelope: ceil(n/2) phases x (n(2σ+1)+σ) rounds.
  const double bound = ((n + 1.0) / 2.0) * (n * (2.0 * sigma + 1.0) + sigma) + 1.0;
  return static_cast<double>(local_rounds) / bound;
}

void print_e3_table() {
  // The workload list, materialized once; the engine executes it as a batch
  // and the table is read off the per-job outcomes.
  std::vector<std::string> names;
  std::vector<std::string> slugs;
  std::vector<engine::BatchJob> jobs;
  support::Rng rng(2027);
  auto add = [&](const std::string& name, const std::string& slug, config::Configuration c) {
    names.push_back(name);
    slugs.push_back(slug);
    jobs.push_back({std::move(c), core::ProtocolSpec::canonical(), {}});
  };

  for (const config::Tag m : {2u, 4u, 8u, 16u, 32u}) {
    add("G_m path", std::string("g") + std::to_string(m), config::family_g(m));
  }
  for (const config::Tag m : {2u, 8u, 32u, 128u}) {
    add("H_m", std::string("h") + std::to_string(m), config::family_h(m));
  }
  for (const graph::NodeId n : {8u, 16u, 32u, 64u}) {
    add("staggered path", std::string("staggered") + std::to_string(n), config::staggered_path(n));
  }
  for (const graph::NodeId n : {8u, 16u, 32u}) {
    add("random gnp(0.3) sigma=3", std::string("gnp") + std::to_string(n),
        config::random_tags_with_span(graph::gnp_connected(n, 0.3, rng), 3, rng));
  }
  for (const graph::NodeId n : {9u, 16u, 25u}) {
    const auto side = static_cast<graph::NodeId>(n == 9 ? 3 : n == 16 ? 4 : 5);
    add("grid sigma=2", std::string("grid") + std::to_string(n),
        config::random_tags_with_span(graph::grid(side, side), 2, rng));
  }

  engine::BatchRunner runner;
  const engine::BatchReport report = runner.run(jobs);

  // Every row's rounds and feasibility is a pure function of the fixed seeds
  // above, so the snapshot's fields are exact-match material for bench_gate:
  // a drift in any of them is a semantic change, not a perf regression.
  benchsupport::JsonSnapshot snapshot;
  snapshot.add("bench", std::string("E3"));
  support::Table table({"workload", "n", "sigma", "feasible", "phases", "local rounds",
                        "n^2*sigma", "rounds/bound"});
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const engine::JobOutcome& outcome = report.jobs[i];
    table.add_row({names[i], static_cast<std::int64_t>(outcome.nodes),
                   static_cast<std::int64_t>(outcome.span),
                   std::string(outcome.feasible ? "yes" : "no"),
                   static_cast<std::int64_t>(outcome.classifier_iterations),
                   static_cast<std::int64_t>(outcome.local_rounds),
                   static_cast<double>(outcome.nodes) * outcome.nodes *
                       std::max<config::Tag>(outcome.span, 1),
                   bound_ratio(outcome.local_rounds, outcome.nodes, outcome.span)});
    snapshot.add(slugs[i] + "_rounds", outcome.local_rounds);
    snapshot.add(slugs[i] + "_feasible", outcome.feasible);
  }
  benchsupport::print_table("E3 — canonical-DRIP election time vs the O(n^2*sigma) bound",
                            table);
  snapshot.write("BENCH_E3.json");
}

void print_e3b_table() {
  // The sweep behind the engine's reason to exist: 1000 random
  // configurations, serial elect() loop vs BatchRunner.
  constexpr engine::JobId kCount = 1000;
  constexpr std::uint64_t kSeed = 9;

  const engine::CountedSweep sweep = engine::WorkloadSpec::random(16, 0.3, 3).instantiate(
      kSeed, {core::ProtocolSpec::canonical()}, {.count = kCount});
  std::vector<engine::BatchJob> jobs;
  jobs.reserve(kCount);
  for (engine::JobId i = 0; i < kCount; ++i) {
    jobs.push_back(sweep.source(i));
  }

  support::Table table({"path", "threads", "wall ms", "configs/s", "speedup vs serial"});
  table.set_precision(2);
  double serial_millis = 0.0;
  {
    // Reference: the hand-rolled loop every consumer used before the engine.
    support::Stopwatch watch;
    std::uint64_t valid = 0;
    for (engine::JobId i = 0; i < kCount; ++i) {
      core::ElectionOptions options = jobs[i].options;
      options.simulator.coin_seed = engine::job_coin_seed(0, i);
      valid += core::elect(jobs[i].configuration, options).valid ? 1 : 0;
    }
    serial_millis = watch.millis();
    benchmark::DoNotOptimize(valid);
    table.add_row({std::string("serial elect() loop"), std::int64_t{1}, serial_millis,
                   static_cast<double>(kCount) / (serial_millis / 1e3), 1.0});
  }
  for (const unsigned threads : {1u, 0u}) {  // 0 = hardware concurrency
    engine::BatchRunner runner({.threads = threads});
    const engine::BatchReport report = runner.run(jobs);
    table.add_row({std::string(threads == 1 ? "engine, 1 thread" : "engine, all cores"),
                   static_cast<std::int64_t>(report.threads_used), report.wall_millis,
                   report.throughput(), serial_millis / report.wall_millis});
  }
  benchsupport::print_table(
      "E3b — 1000-configuration sweep (n=16, sigma=3): serial loop vs batch engine", table);
}

void print_e3c_table() {
  // The protocol axis head-to-head: one mixed-protocol engine batch, each
  // protocol on its natural single-hop instance — the canonical DRIP on
  // staggered wakeups (tags 0..n-1, so σ = n-1, and Lemma 3.10 charges
  // Θ(n²σ) rounds) against the labeled O(log n) baselines on simultaneous
  // wakeups with wakeup-order labels.
  const std::vector<graph::NodeId> sizes = {8, 16, 32, 64};
  std::vector<engine::BatchJob> jobs;
  for (const graph::NodeId n : sizes) {
    std::vector<config::Tag> staggered(n);
    std::iota(staggered.begin(), staggered.end(), config::Tag{0});
    jobs.push_back({config::single_hop(staggered), core::ProtocolSpec::canonical(), {}});
    const config::Configuration flat = config::single_hop(std::vector<config::Tag>(n, 0));
    jobs.push_back({flat, core::ProtocolSpec::binary_search(), {}});
    jobs.push_back({flat, core::ProtocolSpec::tree_split(), {}});
  }

  engine::BatchRunner runner;
  const engine::BatchReport report = runner.run(jobs);

  support::Table table({"n", "canonical rounds (sigma=n-1)", "binary-search rounds",
                        "tree-split rounds", "canonical/binary ratio"});
  table.set_precision(3);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const engine::JobOutcome& canonical = report.jobs[3 * i];
    const engine::JobOutcome& binary = report.jobs[3 * i + 1];
    const engine::JobOutcome& tree = report.jobs[3 * i + 2];
    table.add_row({static_cast<std::int64_t>(sizes[i]),
                   static_cast<std::int64_t>(canonical.local_rounds),
                   static_cast<std::int64_t>(binary.local_rounds),
                   static_cast<std::int64_t>(tree.local_rounds),
                   static_cast<double>(canonical.local_rounds) /
                       static_cast<double>(std::max<std::uint64_t>(binary.local_rounds, 1))});
  }
  benchsupport::print_table(
      "E3c — single-hop head-to-head (one engine batch): Theta(n^2*sigma) canonical vs "
      "O(log n) labeled election",
      table);

  support::Table throughput({"protocol", "jobs", "elected", "avg rounds", "max rounds",
                             "transmissions"});
  throughput.set_precision(3);
  for (const engine::ProtocolBreakdown& row : report.by_protocol) {
    throughput.add_row({row.protocol.name(), static_cast<std::int64_t>(row.jobs),
                        static_cast<std::int64_t>(row.elected), row.average_local_rounds(),
                        static_cast<std::int64_t>(row.max_local_rounds),
                        static_cast<std::int64_t>(row.stats.transmissions)});
  }
  benchsupport::print_table("E3c — per-protocol breakdown of the same batch", throughput);
}

void print_e4_table() {
  // The schedule cache's reason to exist: a deployment planner iterating on
  // a candidate network re-evaluates the same mutation neighbourhood on
  // every refinement step, and without the cache each pass re-classifies
  // (O(n³Δ)) and re-compiles every candidate from scratch.  Same jobs, same
  // outcomes (asserted by tests/test_schedule_cache.cpp) — only the compile
  // count and the wall time move.
  constexpr int kPasses = 3;
  support::Rng rng(4040);
  const config::Configuration base =
      config::random_tags_with_span(graph::gnp_connected(12, 0.3, rng), 3, rng);
  const std::vector<config::Configuration> neighbourhood =
      config::all_tag_mutations(base, base.span());

  std::vector<engine::BatchJob> jobs;
  jobs.reserve(static_cast<std::size_t>(kPasses) * neighbourhood.size());
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const config::Configuration& candidate : neighbourhood) {
      jobs.push_back({candidate, core::ProtocolSpec::canonical(), {}});
    }
  }

  support::Table table({"path", "wall ms", "classifier runs", "schedule builds", "hit rate %",
                        "speedup"});
  table.set_precision(2);
  double uncached_millis = 0.0;
  {
    // One thread on both paths: with workers racing, duplicate compiles at
    // pass boundaries would smear the compile counts run to run; serial
    // execution pins them to exactly jobs vs neighbourhood size.
    engine::BatchRunner runner({.threads = 1});
    const engine::BatchReport report = runner.run(jobs);
    uncached_millis = report.wall_millis;
    table.add_row({std::string("uncached"), report.wall_millis,
                   static_cast<std::int64_t>(jobs.size()),
                   static_cast<std::int64_t>(jobs.size()), 0.0, 1.0});
  }
  {
    engine::BatchRunner runner(
        {.threads = 1, .cache_capacity = engine::ScheduleCache::kDefaultCapacity});
    const engine::BatchReport report = runner.run(jobs);
    const engine::ScheduleCacheStats stats = report.cache.value();
    table.add_row({std::string("cached"), report.wall_millis,
                   static_cast<std::int64_t>(stats.misses),
                   static_cast<std::int64_t>(stats.schedule_builds), 100.0 * stats.hit_rate(),
                   uncached_millis / report.wall_millis});
  }
  benchsupport::print_table(
      "E4 — mutation-sweep schedule cache (" + std::to_string(kPasses) + " passes over " +
          std::to_string(neighbourhood.size()) +
          " single-tag mutations): compiles per batch, cached vs uncached",
      table);
}

void print_e5_table() {
  // The engine trajectory: steady-state throughput of the scalar reference
  // loop vs the wavefront engine on a mutation sweep at n=64 — the planner
  // workload of E4, at the tag spans where simulation (not classification)
  // is the cost.  Each engine runs the same jobs twice, a 1-pass batch and
  // a (1+kPasses)-pass batch; their wall-time difference is kPasses times
  // the cache-warm steady-state cost, which cancels the one-off
  // classification+compile work every candidate pays identically on both
  // engines.  Outcome identity between the engines is asserted — the
  // speedup is only meaningful if the wavefront path computes the same
  // results bit for bit.
  constexpr graph::NodeId kNodes = 64;
  constexpr config::Tag kSigma = 2048;
  constexpr double kEdgeProbability = 0.1;
  constexpr std::size_t kMutations = 32;
  constexpr int kPasses = 4;

  support::Rng rng(4242);
  const config::Configuration base = config::random_tags_with_span(
      graph::gnp_connected(kNodes, kEdgeProbability, rng), kSigma, rng);
  const std::vector<config::Configuration> neighbourhood =
      config::all_tag_mutations(base, base.span());
  // Stride-sample the (very large) neighbourhood so the sampled candidates
  // spread over every node rather than exhausting node 0's tags first.
  std::vector<engine::BatchJob> cold_jobs;
  const std::size_t stride = std::max<std::size_t>(1, neighbourhood.size() / kMutations);
  for (std::size_t i = 0; i < neighbourhood.size() && cold_jobs.size() < kMutations;
       i += stride) {
    cold_jobs.push_back({neighbourhood[i], core::ProtocolSpec::canonical(), {}});
  }
  std::vector<engine::BatchJob> warm_jobs;
  for (int pass = 0; pass < 1 + kPasses; ++pass) {
    warm_jobs.insert(warm_jobs.end(), cold_jobs.begin(), cold_jobs.end());
  }

  struct EngineRun {
    double cold_millis = 0.0;
    double steady_millis = 0.0;  ///< (warm batch - cold batch) wall time
    engine::BatchReport report;  ///< the (1+kPasses)-pass batch
  };
  auto measure = [&](engine::EngineMode mode) {
    // One thread and the schedule cache on for both engines: the comparison
    // moves exactly one lever, the simulation path.
    engine::BatchRunner runner({.threads = 1,
                                .cache_capacity = engine::ScheduleCache::kDefaultCapacity,
                                .engine = mode});
    EngineRun run;
    run.cold_millis = runner.run(cold_jobs).wall_millis;
    run.report = runner.run(warm_jobs);
    run.steady_millis = std::max(run.report.wall_millis - run.cold_millis, 1e-6);
    return run;
  };
  const EngineRun scalar = measure(engine::EngineMode::Scalar);
  const EngineRun wavefront = measure(engine::EngineMode::Wavefront);
  const bool identical = engine::same_results(scalar.report, wavefront.report);

  const double steady_jobs = static_cast<double>(kPasses) * static_cast<double>(cold_jobs.size());
  const auto steady_rate = [&](const EngineRun& run) {
    return steady_jobs / (run.steady_millis / 1e3);
  };
  const double speedup = scalar.steady_millis / wavefront.steady_millis;

  support::Table table({"engine", "cold-pass ms", "steady ms/pass", "steady jobs/s",
                        "node-rounds/s", "speedup", "identical outcomes"});
  table.set_precision(3);
  table.add_row({std::string("scalar"), scalar.cold_millis,
                 scalar.steady_millis / kPasses, steady_rate(scalar),
                 static_cast<double>(scalar.report.total_stats.node_rounds) /
                     (scalar.report.wall_millis / 1e3),
                 1.0, std::string("-")});
  table.add_row({std::string("wavefront"), wavefront.cold_millis,
                 wavefront.steady_millis / kPasses, steady_rate(wavefront),
                 static_cast<double>(wavefront.report.total_stats.node_rounds) /
                     (wavefront.report.wall_millis / 1e3),
                 speedup, std::string(identical ? "yes" : "NO (BUG)")});
  benchsupport::print_table(
      "E5 — engine trajectory: scalar vs wavefront on a mutation sweep (n=" +
          std::to_string(kNodes) + ", sigma=" + std::to_string(kSigma) + ", " +
          std::to_string(cold_jobs.size()) + " candidates x " + std::to_string(kPasses) +
          " steady passes, cache on)",
      table);

  benchsupport::JsonSnapshot snapshot;
  snapshot.add("bench", std::string("E5"));
  std::ostringstream workload_name;
  workload_name << "mutations of gnp(n=" << kNodes << ",p=" << kEdgeProbability
                << ",sigma=" << kSigma << ")";
  snapshot.add("workload", workload_name.str());
  snapshot.add("candidates", static_cast<std::uint64_t>(cold_jobs.size()));
  snapshot.add("steady_passes", static_cast<std::uint64_t>(kPasses));
  // Exact-match fields: pure functions of the fixed seeds, identical across
  // engines (same_results) — any drift is a correctness change.
  snapshot.add("total_global_rounds", wavefront.report.total_global_rounds);
  snapshot.add("feasible_jobs", wavefront.report.feasible_count);
  snapshot.add("identical_outcomes", identical);
  // Gated field: the wavefront engine must stay this much faster than the
  // scalar reference (bench_gate applies its tolerance to it).
  snapshot.add("wavefront_speedup", speedup);
  // Informational fields (suffix-exempt in bench_gate): raw rates move with
  // the machine, the speedup above is the tracked invariant.
  snapshot.add("scalar_steady_jobs_per_s", steady_rate(scalar));
  snapshot.add("wavefront_steady_jobs_per_s", steady_rate(wavefront));
  snapshot.add("scalar_cold_wall_ms", scalar.cold_millis);
  snapshot.add("wavefront_cold_wall_ms", wavefront.cold_millis);
  snapshot.write("BENCH_E5.json");
}

void print_e5b_table() {
  // The distributed pipeline end-to-end on one machine: the same sweep run
  // (a) in one batch and (b) as 4 shard ranges, each through its own runner
  // (as separate worker processes would), serialized to the wire format,
  // parsed back and merged.  Identity of the outcomes is asserted; the
  // engine trajectory snapshot lives in E5 above.
  constexpr engine::JobId kCount = 400;
  constexpr std::uint64_t kSeed = 13;
  constexpr std::uint32_t kShards = 4;

  const engine::WorkloadSpec workload = engine::parse_workload("random:n=14,p=0.3,sigma=3");
  const engine::CountedSweep counted =
      workload.instantiate(kSeed, {core::ProtocolSpec::canonical()}, {.count = kCount});
  const engine::JobSource& source = counted.source;

  dist::SweepKey key;
  key.description = workload.name();
  key.digest = workload.digest();
  key.seed = kSeed;
  key.total_jobs = counted.count;
  key.protocols = {core::ProtocolSpec::canonical().name()};

  double single_millis = 0.0;
  engine::BatchReport single;
  {
    // Watch starts before the runner: the sharded path below pays its pool
    // constructions inside the clock, so the single path must too.
    support::Stopwatch watch;
    engine::BatchRunner runner({.seed = kSeed});
    single = runner.run(kCount, source);
    single_millis = watch.millis();
  }

  // Sharded path, wire format included (that is what a real fleet pays).
  double sharded_millis = 0.0;
  engine::BatchReport merged;
  {
    support::Stopwatch watch;
    std::vector<dist::ShardReport> shards;
    for (const dist::JobRange& range : dist::shard_ranges(kCount, kShards)) {
      engine::BatchRunner runner({.seed = kSeed});
      std::stringstream wire;
      dist::write_shard_report(
          dist::make_shard_report(key, range,
                                  runner.run_range(range.begin, range.end, source)),
          wire);
      shards.push_back(dist::read_shard_report(wire));
    }
    merged = dist::complete_report(dist::merge_shards(shards));
    sharded_millis = watch.millis();
  }
  const bool identical = engine::same_results(merged, single);

  // Coarse clocks can report 0 ms; keep the JSON numeric (no inf/nan).
  const auto throughput = [](double millis) {
    return millis > 0.0 ? static_cast<double>(kCount) / (millis / 1e3) : 0.0;
  };
  support::Table table({"path", "wall ms", "configs/s", "identical outcomes"});
  table.set_precision(2);
  table.add_row({std::string("single process"), single_millis, throughput(single_millis),
                 std::string("-")});
  table.add_row({std::string("4 shards + wire + merge"), sharded_millis,
                 throughput(sharded_millis), std::string(identical ? "yes" : "NO (BUG)")});
  benchsupport::print_table(
      "E5b — sharded-vs-single sweep (400 configs, n=14, sigma=3): the distributed "
      "pipeline reproduces the batch bit for bit",
      table);
}

void print_tables() {
  print_e3_table();
  print_e3b_table();
  print_e3c_table();
  print_e4_table();
  print_e5_table();
  print_e5b_table();
}

// ------------------------------------------------------------- timed series

void BM_ElectOnFamilyG(benchmark::State& state) {
  const auto m = static_cast<config::Tag>(state.range(0));
  const config::Configuration c = config::family_g(m);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
    rounds = report.local_rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["n"] = static_cast<double>(c.size());
}
BENCHMARK(BM_ElectOnFamilyG)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ElectOnStaggeredPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = config::staggered_path(n);
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
  }
}
BENCHMARK(BM_ElectOnStaggeredPath)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ElectOnRandomGnp(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng rng(55 + n);
  const config::Configuration c =
      config::random_tags_with_span(graph::gnp_connected(n, 0.3, rng), 3, rng);
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
  }
}
BENCHMARK(BM_ElectOnRandomGnp)->Arg(8)->Arg(16)->Arg(32);

void BM_ElectWithScratchReuse(benchmark::State& state) {
  // The per-worker buffer reuse the engine's workers get, in isolation.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng rng(55 + n);
  const config::Configuration c =
      config::random_tags_with_span(graph::gnp_connected(n, 0.3, rng), 3, rng);
  core::ElectionScratch scratch;
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c, {}, scratch);
    benchmark::DoNotOptimize(report.valid);
  }
}
BENCHMARK(BM_ElectWithScratchReuse)->Arg(8)->Arg(16)->Arg(32);

void BM_EngineSweep(benchmark::State& state) {
  // Whole-batch wall time: `threads` workers over a 64-configuration sweep.
  const auto threads = static_cast<unsigned>(state.range(0));
  constexpr engine::JobId kCount = 64;
  const engine::CountedSweep sweep = engine::WorkloadSpec::random(16, 0.3, 3).instantiate(
      21, {core::ProtocolSpec::canonical()}, {.count = kCount});
  std::vector<engine::BatchJob> jobs;
  jobs.reserve(kCount);
  for (engine::JobId i = 0; i < kCount; ++i) {
    jobs.push_back(sweep.source(i));
  }
  engine::BatchRunner runner({.threads = threads});
  std::uint64_t valid = 0;
  for (auto _ : state) {
    const engine::BatchReport report = runner.run(jobs);
    valid = report.valid_count;
    benchmark::DoNotOptimize(valid);
  }
  state.counters["configs/s"] = benchmark::Counter(
      static_cast<double>(kCount), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MutationSweepScheduleCache(benchmark::State& state) {
  // E4's workload as a tracked series: three passes over a single-tag
  // mutation neighbourhood, arg 0 = uncached, arg 1 = cached.
  const bool cached = state.range(0) != 0;
  support::Rng rng(4040);
  const config::Configuration base =
      config::random_tags_with_span(graph::gnp_connected(12, 0.3, rng), 3, rng);
  std::vector<engine::BatchJob> jobs;
  for (int pass = 0; pass < 3; ++pass) {
    for (const config::Configuration& candidate : config::all_tag_mutations(base, base.span())) {
      jobs.push_back({candidate, core::ProtocolSpec::canonical(), {}});
    }
  }
  engine::BatchRunner runner(  // one thread: keeps the builds counter exact (see E4)
      {.threads = 1,
       .cache_capacity = cached ? engine::ScheduleCache::kDefaultCapacity : std::size_t{0}});
  std::uint64_t builds = 0;
  for (auto _ : state) {
    const engine::BatchReport report = runner.run(jobs);
    builds = report.cache ? report.cache->schedule_builds : jobs.size();
    benchmark::DoNotOptimize(builds);
  }
  state.counters["schedule_builds"] = static_cast<double>(builds);
  state.counters["jobs"] = static_cast<double>(jobs.size());
}
BENCHMARK(BM_MutationSweepScheduleCache)->Arg(0)->Arg(1);

}  // namespace

ARL_BENCH_MAIN(print_tables)
