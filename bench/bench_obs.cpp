/// \file bench_obs.cpp
/// E8 — observability overhead: the same classification+election sweep runs
/// with the metrics registry enabled (the default) and disabled, best of
/// three timed passes each.  The tracked perf invariant is the on/off
/// throughput ratio (BENCH_E8.json, gated in CI by tools/bench_gate with
/// --tolerance=0.03): instrumentation may cost at most the gate tolerance.
/// The instrumented pass also pins down the phase span *counts*, which are
/// workload facts — deterministic at threads=1 — and therefore exact-match
/// gated; wall times are machine facts, printed but not gated.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

constexpr const char* kWorkload = "random:n=24,p=0.25,sigma=6";
constexpr std::uint64_t kCount = 300;  // configurations
constexpr std::uint64_t kSeed = 9;
constexpr int kRepeats = 5;  // best-of per mode, arms interleaved

engine::CountedSweep e8_sweep() {
  return engine::parse_workload(kWorkload).instantiate(
      kSeed, {core::ProtocolSpec::canonical()}, {.count = kCount});
}

engine::BatchOptions e8_options() {
  engine::BatchOptions options;
  options.threads = 1;  // timings compare instrumentation, not pool sizes
  options.seed = kSeed;
  return options;
}

/// One timed pass of the sweep under the given registry mode; `out`
/// receives the run's report (every pass of one mode is identical — same
/// seed, same jobs).
double one_pass_ms(bool metrics_on, engine::BatchReport& out) {
  obs::Registry::global().set_enabled(metrics_on);
  const engine::CountedSweep sweep = e8_sweep();
  engine::BatchRunner runner(e8_options());
  support::Stopwatch watch;
  out = runner.run(sweep.count, sweep.source);
  return watch.millis();
}

void print_e8_table() {
  // Warm-up pass (page cache, allocator) outside both timed arms.
  engine::BatchReport warmup;
  (void)one_pass_ms(true, warmup);

  // The arms alternate pass-by-pass so slow drift on a shared machine (CPU
  // frequency, background load) hits both equally instead of whichever arm
  // happened to run second; best-of-kRepeats per arm then drops the noise.
  engine::BatchReport off_report;
  engine::BatchReport on_report;
  double off_ms = 0.0;
  double on_ms = 0.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const double off = one_pass_ms(false, off_report);
    const double on = one_pass_ms(true, on_report);
    off_ms = repeat == 0 ? off : std::min(off_ms, off);
    on_ms = repeat == 0 ? on : std::min(on_ms, on);
  }
  obs::Registry::global().set_enabled(true);  // restore the process default

  const bool identical = engine::same_results(on_report, off_report);
  if (!on_report.phases || off_report.phases) {
    throw std::runtime_error(
        "bench_obs: expected phase timings exactly on the instrumented run");
  }
  const obs::MetricsSnapshot& phases = *on_report.phases;
  const double raw_speedup = on_ms > 0.0 ? off_ms / on_ms : 1.0;
  // The committed invariant is "metrics cost at most the gate tolerance",
  // not "this machine ran faster with metrics on today" — clamp the gated
  // ratio at 1.0 so a lucky committed run cannot tighten the gate.
  const double gated_speedup = std::min(raw_speedup, 1.0);

  support::Table table({"mode", "wall ms (best of 3)", "jobs", "jobs/s"});
  const auto row = [&](const std::string& mode, double ms, const engine::BatchReport& r) {
    table.add_row({mode, ms, static_cast<std::int64_t>(r.jobs.size()),
                   static_cast<double>(r.jobs.size()) / (ms / 1e3)});
  };
  row("metrics off", off_ms, off_report);
  row("metrics on", on_ms, on_report);
  benchsupport::print_table("E8: observability overhead (" + std::string(kWorkload) + " x " +
                                std::to_string(kCount) + ", canonical)",
                            table);

  support::Table spans({"phase", "spans", "total ms"});
  for (const obs::Phase phase : obs::all_phases()) {
    const obs::HistogramSnapshot& histogram = phases[phase];
    if (histogram.count() == 0) {
      continue;
    }
    spans.add_row({std::string(obs::phase_name(phase)),
                   static_cast<std::int64_t>(histogram.count()),
                   static_cast<double>(histogram.total) / 1e6});
  }
  benchsupport::print_table("E8: instrumented phase spans (one sweep)", spans);
  std::cout << "\nmetrics-on throughput ratio: " << raw_speedup
            << " (1.0 = free); outcomes identical: " << (identical ? "yes" : "no") << "\n";

  benchsupport::JsonSnapshot snapshot;
  snapshot.add("bench", std::string("E8"));
  snapshot.add("workload", std::string(kWorkload));
  snapshot.add("configurations", kCount);
  snapshot.add("total_jobs", static_cast<std::uint64_t>(on_report.jobs.size()));
  snapshot.add("identical_outcomes", identical);
  snapshot.add("e8_phase_classify_count", phases[obs::Phase::Classify].count());
  snapshot.add("e8_phase_schedule_compile_count", phases[obs::Phase::ScheduleCompile].count());
  snapshot.add("e8_phase_simulate_count", phases[obs::Phase::Simulate].count());
  snapshot.add("e8_metrics_on_speedup", gated_speedup);
  snapshot.add("on_wall_ms", on_ms);
  snapshot.add("off_wall_ms", off_ms);
  snapshot.add("on_jobs_per_s",
               static_cast<double>(on_report.jobs.size()) / (on_ms / 1e3));
  snapshot.write("BENCH_E8.json");
}

// ------------------------------------------------------- timed micro-series

/// The hot-path cost a single span pays: one histogram record.
void BM_HistogramRecord(benchmark::State& state) {
  obs::LatencyHistogram histogram;
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram.record(value);
    value = value * 2862933555777941757ull + 3037000493ull;  // spread the buckets
  }
  benchmark::DoNotOptimize(histogram.snapshot().count());
}
BENCHMARK(BM_HistogramRecord);

/// A full span: two steady_clock reads plus the record.
void BM_PhaseTimerEnabled(benchmark::State& state) {
  obs::Registry registry;
  registry.set_enabled(true);
  for (auto _ : state) {
    const obs::PhaseTimer timer(obs::Phase::Simulate, registry);
    benchmark::DoNotOptimize(&timer);
  }
  benchmark::DoNotOptimize(registry.snapshot().empty());
}
BENCHMARK(BM_PhaseTimerEnabled);

/// The disabled-registry span: no clock reads, no records — the price every
/// instrumented call site pays when observability is off.
void BM_PhaseTimerDisabled(benchmark::State& state) {
  obs::Registry registry;
  registry.set_enabled(false);
  for (auto _ : state) {
    const obs::PhaseTimer timer(obs::Phase::Simulate, registry);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_PhaseTimerDisabled);

/// Snapshot + merge across shards, the `arl stats` / drain-summary path.
void BM_SnapshotAndMerge(benchmark::State& state) {
  obs::Registry registry;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    registry.record(obs::Phase::Simulate, i * 977);
    registry.record(obs::Phase::Classify, i * 131);
  }
  const obs::MetricsSnapshot base = registry.snapshot();
  for (auto _ : state) {
    obs::MetricsSnapshot merged = registry.snapshot();
    merged.merge(base);
    benchmark::DoNotOptimize(merged[obs::Phase::Simulate].count());
  }
}
BENCHMARK(BM_SnapshotAndMerge);

void print_tables() { print_e8_table(); }

}  // namespace

ARL_BENCH_MAIN(print_tables)
