/// \file bench_refine.cpp
/// E10 (design-choice ablation): the paper's rep-scan Refine (O(n²Δ) per
/// iteration) vs the hashed refinement (O(nΔ) expected).  Outputs are
/// bit-identical (enforced by the test suite and re-checked here); the table
/// quantifies the speedup that the paper's simpler formulation leaves on the
/// table.

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/fast_classifier.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table(
      {"workload", "n", "paper ms", "hashed ms", "speedup", "verdicts equal"});
  support::Rng rng(11);
  auto row = [&](const std::string& name, const config::Configuration& c) {
    support::Stopwatch watch;
    const auto paper = core::Classifier{}.run(c);
    const double paper_ms = watch.millis();
    watch.restart();
    const auto fast = core::FastClassifier{}.run(c);
    const double fast_ms = watch.millis();
    const bool equal = paper.verdict == fast.verdict && paper.iterations == fast.iterations &&
                       paper.leader == fast.leader;
    table.add_row({name, static_cast<std::int64_t>(c.size()), paper_ms, fast_ms,
                   paper_ms / std::max(fast_ms, 1e-6), std::string(equal ? "yes" : "NO")});
  };
  for (const config::Tag m : {8u, 16u, 32u, 64u}) {
    row("G_m path", config::family_g(m));
  }
  for (const graph::NodeId n : {64u, 128u, 256u}) {
    std::vector<config::Tag> tags(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      tags[v] = v % 3;
    }
    row("complete 3-tags", config::Configuration(graph::complete(n), tags));
  }
  for (const graph::NodeId n : {64u, 128u, 256u}) {
    row("gnp(0.05)", config::random_tags(graph::gnp_connected(n, 0.05, rng), 4, rng));
  }
  benchsupport::print_table("E10 — Refine ablation: rep-scan vs hashed refinement", table);
}

void BM_PaperRefine(benchmark::State& state) {
  const config::Configuration c = config::family_g(static_cast<config::Tag>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Classifier{}.run(c).verdict);
  }
}
BENCHMARK(BM_PaperRefine)->Arg(8)->Arg(16)->Arg(32);

void BM_HashedRefine(benchmark::State& state) {
  const config::Configuration c = config::family_g(static_cast<config::Tag>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FastClassifier{}.run(c).verdict);
  }
}
BENCHMARK(BM_HashedRefine)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

ARL_BENCH_MAIN(print_tables)
