/// \file bench_prop41.cpp
/// E4 (Proposition 4.1): the Ω(n) lower bound on the span-1 family G_m.
/// The table tracks, as m grows, the election cost and the round at which
/// the centre's history becomes unique — both must grow linearly in n = 4m+1.

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/schedule.hpp"
#include "lowerbounds/symmetry.hpp"
#include "radio/simulator.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table({"m", "n", "iterations", "local rounds", "centre unique at (local)",
                        "unique_round/m", "mirror pairs symmetric"});
  for (const config::Tag m : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    const config::Configuration c = config::family_g(m);
    const auto schedule = core::make_schedule(c);
    radio::SimulatorOptions options;
    options.history_window = 0;
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule), options);

    const graph::NodeId centre = config::family_g_center(m);
    const auto unique_at = lowerbounds::uniqueness_round(run, centre);

    // Mirror symmetry a_i ~ c_i persists forever (the proof's mechanism).
    const graph::NodeId n = c.size();
    bool mirrors_symmetric = true;
    for (graph::NodeId i = 0; i < n / 2; ++i) {
      mirrors_symmetric =
          mirrors_symmetric &&
          !lowerbounds::first_history_divergence(run.nodes[i], run.nodes[n - 1 - i]).has_value();
    }

    table.add_row({static_cast<std::int64_t>(m), static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(schedule->phases.size()),
                   static_cast<std::int64_t>(schedule->total_rounds()),
                   static_cast<std::int64_t>(unique_at.value_or(0)),
                   static_cast<double>(unique_at.value_or(0)) / m,
                   std::string(mirrors_symmetric ? "yes" : "NO")});
  }
  benchsupport::print_table(
      "E4 — Prop 4.1: Omega(n) election on G_m (span 1, leader = centre b_{m+1})", table);
}

void BM_GmFullPipeline(benchmark::State& state) {
  const auto m = static_cast<config::Tag>(state.range(0));
  const config::Configuration c = config::family_g(m);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
    rounds = report.local_rounds;
  }
  state.counters["n"] = static_cast<double>(c.size());
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_GmFullPipeline)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

ARL_BENCH_MAIN(print_tables)
