/// \file bench_patient.cpp
/// E11 (Lemma 3.12): cost of the patience transformation.  Wrapping delays
/// each node by s_w = min(σ, rcv_w) rounds and preserves the election
/// outcome; the table reports the measured overhead next to the bound σ.

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/patient.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/simulator.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table({"configuration", "sigma", "bare rounds (global)",
                        "wrapped rounds (global)", "overhead", "same leaders"});
  auto row = [&](const std::string& name, const config::Configuration& c,
                 std::shared_ptr<const radio::Drip> inner) {
    const radio::RunResult bare = radio::simulate(c, *inner);
    const core::PatientWrapper wrapped(inner, c.span());
    const radio::RunResult patient = radio::simulate(c, wrapped);
    table.add_row({name, static_cast<std::int64_t>(c.span()),
                   static_cast<std::int64_t>(bare.rounds_executed),
                   static_cast<std::int64_t>(patient.rounds_executed),
                   static_cast<std::int64_t>(patient.rounds_executed - bare.rounds_executed),
                   std::string(bare.leaders() == patient.leaders() ? "yes" : "NO")});
  };

  for (const config::Tag m : {2u, 8u, 32u}) {
    const config::Configuration c = config::family_h(m);
    row("H_" + std::to_string(m) + " + canonical", c,
        std::make_shared<core::CanonicalDrip>(core::make_schedule(c)));
  }
  for (const config::Tag span : {3u, 9u}) {
    const config::Configuration c(graph::path(2), {0, span});
    row("2-path span " + std::to_string(span) + " + beep(2)", c,
        std::make_shared<lowerbounds::BeepCandidate>(2, 12));
  }
  benchsupport::print_table(
      "E11 — patience transformation overhead (bound: +sigma per node)", table);
}

void BM_BareCanonical(benchmark::State& state) {
  const config::Configuration c = config::family_h(static_cast<config::Tag>(state.range(0)));
  const auto inner = std::make_shared<core::CanonicalDrip>(core::make_schedule(c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio::simulate(c, *inner).rounds_executed);
  }
}
BENCHMARK(BM_BareCanonical)->Arg(4)->Arg(16)->Arg(64);

void BM_WrappedCanonical(benchmark::State& state) {
  const config::Configuration c = config::family_h(static_cast<config::Tag>(state.range(0)));
  const auto inner = std::make_shared<core::CanonicalDrip>(core::make_schedule(c));
  const core::PatientWrapper wrapped(inner, c.span());
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio::simulate(c, wrapped).rounds_executed);
  }
}
BENCHMARK(BM_WrappedCanonical)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

ARL_BENCH_MAIN(print_tables)
