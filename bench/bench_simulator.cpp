/// \file bench_simulator.cpp
/// E9 — substrate throughput: simulated node-rounds per second across
/// topologies, protocols and history-window settings.  This is the
/// engineering envelope behind every other experiment.

#include <numeric>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "radio/simulator.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table({"workload", "n", "rounds/run", "node-rounds/run", "runs/s",
                        "node-rounds/s"});
  support::Rng rng(3);
  auto row = [&](const std::string& name, const config::Configuration& c) {
    const auto schedule = core::make_schedule(c);
    const core::CanonicalDrip drip(schedule);
    // Warm-up + measured repeats.
    (void)radio::simulate(c, drip);
    support::Stopwatch watch;
    int runs = 0;
    std::uint64_t node_rounds = 0;
    std::uint64_t rounds = 0;
    while (watch.seconds() < 0.2) {
      const radio::RunResult result = radio::simulate(c, drip);
      node_rounds += result.stats.node_rounds;
      rounds = result.rounds_executed;
      ++runs;
    }
    const double seconds = watch.seconds();
    table.add_row({name, static_cast<std::int64_t>(c.size()),
                   static_cast<std::int64_t>(rounds),
                   static_cast<std::int64_t>(node_rounds / static_cast<std::uint64_t>(runs)),
                   static_cast<double>(runs) / seconds,
                   static_cast<double>(node_rounds) / seconds});
  };
  row("G_8 path", config::family_g(8));
  row("staggered path 64", config::staggered_path(64));
  row("staggered single-hop 32", [] {
    std::vector<config::Tag> tags(32);
    std::iota(tags.begin(), tags.end(), config::Tag{0});
    return config::single_hop(tags);
  }());
  row("grid 8x8 sigma 2", config::random_tags_with_span(graph::grid(8, 8), 2, rng));
  row("hypercube d=6 sigma 3",
      config::random_tags_with_span(graph::hypercube(6), 3, rng));
  benchsupport::print_table("E9 — simulator throughput (canonical DRIP workloads)", table);
}

/// Canonical DRIP on a staggered path (feasible, transmission-heavy).
void BM_CanonicalOnStaggeredPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration configuration = config::staggered_path(n);
  const auto schedule = core::make_schedule(configuration);
  const core::CanonicalDrip drip(schedule);

  std::uint64_t node_rounds = 0;
  for (auto _ : state) {
    const radio::RunResult result = radio::simulate(configuration, drip);
    benchmark::DoNotOptimize(result.rounds_executed);
    node_rounds += result.stats.node_rounds;
  }
  state.counters["node_rounds/s"] =
      benchmark::Counter(static_cast<double>(node_rounds), benchmark::Counter::kIsRate);
  state.counters["rounds"] = static_cast<double>(schedule->total_rounds());
}
BENCHMARK(BM_CanonicalOnStaggeredPath)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Windowed vs full-history retention on the same workload.
void BM_HistoryRetention(benchmark::State& state) {
  const bool windowed = state.range(0) != 0;
  const config::Configuration configuration = config::family_g(10);
  const auto schedule = core::make_schedule(configuration);
  const core::CanonicalDrip drip(schedule);
  radio::SimulatorOptions options;
  options.history_window = windowed ? std::optional<std::size_t>{} : std::size_t{0};
  for (auto _ : state) {
    const radio::RunResult result = radio::simulate(configuration, drip, options);
    benchmark::DoNotOptimize(result.rounds_executed);
  }
  state.SetLabel(windowed ? "windowed" : "full-history");
}
BENCHMARK(BM_HistoryRetention)->Arg(0)->Arg(1);

/// Dense topology stress: canonical DRIP on a staggered complete graph.
void BM_CanonicalOnSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::vector<config::Tag> tags(n);
  std::iota(tags.begin(), tags.end(), config::Tag{0});
  const config::Configuration configuration = config::single_hop(tags);
  const auto schedule = core::make_schedule(configuration);
  const core::CanonicalDrip drip(schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio::simulate(configuration, drip).rounds_executed);
  }
}
BENCHMARK(BM_CanonicalOnSingleHop)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

ARL_BENCH_MAIN(print_tables)
