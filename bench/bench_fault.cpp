/// \file bench_fault.cpp
/// E9 — robustness trajectory: canonical-DRIP survival curves under the
/// fault registry's adversaries.  A fixed workload is swept under rising
/// drop probabilities (and a crash-count curve), recording how many
/// elections still verify, how many are attributed to the injected fault,
/// and how many events each adversary landed — all pure functions of the
/// fixed seeds, so every field in BENCH_E9.json is exact-match material
/// for tools/bench_gate (no --tolerance).  The timed series measures the
/// faulted scalar path's throughput against the unfaulted fast path it
/// displaces.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/protocol.hpp"
#include "engine/batch_runner.hpp"
#include "engine/sweep.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "support/table.hpp"

namespace {

using namespace arl;

constexpr std::uint64_t kSeed = 41;
constexpr engine::JobId kJobs = 100;
const char* const kWorkload = "random:n=16,p=0.3,sigma=3";

engine::CountedSweep e9_sweep() {
  return engine::parse_workload(kWorkload).instantiate(
      kSeed, {core::ProtocolSpec::canonical()}, {.count = kJobs});
}

engine::BatchReport run_under(const fault::FaultSpec& fault, unsigned threads = 0) {
  const engine::CountedSweep sweep = e9_sweep();
  engine::BatchRunner runner({.threads = threads, .seed = kSeed, .fault = fault});
  return runner.run(sweep.count, sweep.source);
}

void print_e9_table() {
  // The survival curves: the same 100 canonical elections under each
  // adversary.  Every row is deterministic — seeds are fixed, injected
  // events are pure functions of (seed, round, node), and the engine is
  // thread-count-invariant (asserted below and gated in the snapshot).
  struct Curve {
    std::string slug;
    fault::FaultSpec spec;
  };
  std::vector<Curve> curves;
  for (const double p : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    std::string slug = "drop_" + fault::FaultSpec::drop(p).name().substr(5);
    for (char& c : slug) {
      if (c == '.') {
        c = '_';
      }
    }
    curves.push_back({slug, fault::FaultSpec::drop(p)});
  }
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    curves.push_back({"crash_" + std::to_string(k), fault::FaultSpec::crash(k)});
  }
  curves.push_back({"wake_8", fault::FaultSpec::adversarial_wake(8)});

  benchsupport::JsonSnapshot snapshot;
  snapshot.add("bench", std::string("E9"));
  snapshot.add("workload", std::string(kWorkload));
  snapshot.add("jobs", static_cast<std::uint64_t>(kJobs));

  support::Table table({"fault", "jobs", "survived", "detected", "drops", "corruptions",
                        "crashes", "delayed wakes"});
  for (const Curve& curve : curves) {
    const engine::BatchReport report = run_under(curve.spec);
    std::uint64_t detected = 0;
    for (const engine::JobOutcome& job : report.jobs) {
      detected += job.disposition == core::Disposition::DetectedFault ? 1 : 0;
    }
    const radio::RunStats& stats = report.total_stats;
    table.add_row({curve.spec.name(), static_cast<std::int64_t>(report.jobs.size()),
                   static_cast<std::int64_t>(report.valid_count),
                   static_cast<std::int64_t>(detected),
                   static_cast<std::int64_t>(stats.injected_drops),
                   static_cast<std::int64_t>(stats.injected_corruptions),
                   static_cast<std::int64_t>(stats.injected_crashes),
                   static_cast<std::int64_t>(stats.delayed_wakeups)});
    snapshot.add(curve.slug + "_survived", report.valid_count);
    snapshot.add(curve.slug + "_detected", detected);
    snapshot.add(curve.slug + "_injected",
                 stats.injected_drops + stats.injected_corruptions + stats.injected_crashes +
                     stats.delayed_wakeups);
  }
  benchsupport::print_table(
      "E9 — canonical-DRIP survival under the fault registry's adversaries", table);

  // Determinism cross-checks, gated exactly: a faulted sweep replays
  // bit-identically on 1 vs 8 threads, and drop:0 runs the unfaulted path.
  const engine::BatchReport one = run_under(fault::FaultSpec::drop(0.1), 1);
  const engine::BatchReport eight = run_under(fault::FaultSpec::drop(0.1), 8);
  snapshot.add("thread_invariant", engine::same_results(one, eight));
  const engine::BatchReport none = run_under(fault::FaultSpec::none(), 1);
  const engine::BatchReport zero = run_under(fault::FaultSpec::drop(0.0), 1);
  snapshot.add("inert_drop_matches_none",
               none.jobs == zero.jobs && none.total_stats == zero.total_stats);

  snapshot.write("BENCH_E9.json");
}

// ---------------------------------------------------------- timed series

void bm_sweep_under(benchmark::State& state, const fault::FaultSpec& fault) {
  const engine::CountedSweep sweep = e9_sweep();
  engine::BatchRunner runner({.threads = 1, .seed = kSeed, .fault = fault});
  for (auto _ : state) {
    const engine::BatchReport report = runner.run(sweep.count, sweep.source);
    benchmark::DoNotOptimize(report.total_stats.node_rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kJobs);
}

void BM_UnfaultedSweep(benchmark::State& state) {
  bm_sweep_under(state, fault::FaultSpec::none());
}
BENCHMARK(BM_UnfaultedSweep)->Unit(benchmark::kMillisecond);

void BM_DropSweep(benchmark::State& state) {
  bm_sweep_under(state, fault::FaultSpec::drop(0.1));
}
BENCHMARK(BM_DropSweep)->Unit(benchmark::kMillisecond);

void BM_CrashSweep(benchmark::State& state) {
  bm_sweep_under(state, fault::FaultSpec::crash(2));
}
BENCHMARK(BM_CrashSweep)->Unit(benchmark::kMillisecond);

}  // namespace

ARL_BENCH_MAIN(print_e9_table)
