/// \file bench_classifier.cpp
/// E1 (Theorem 3.17) + E2 (Lemma 3.5): Classifier correctness agreement and
/// O(n³Δ) scaling.
///
/// Table 1 — agreement: paper Classifier vs FastClassifier vs canonical-DRIP
/// simulation over exhaustive small configurations (the bench-time version
/// of tests/test_exhaustive.cpp).
/// Table 2 — scaling: measured time and instrumented step counts against the
/// n³Δ envelope on paths (Δ=2) and complete graphs (Δ=n-1).

#include <vector>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "graph/enumeration.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace arl;

void print_agreement_table() {
  support::Table table({"n", "configs (graphs x tags)", "classifier==fast", "simulation valid",
                        "feasible", "feasible %"});
  for (graph::NodeId n = 1; n <= 4; ++n) {
    std::uint64_t configs = 0;
    std::uint64_t agree = 0;
    std::uint64_t valid = 0;
    std::uint64_t feasible = 0;
    graph::for_each_connected_graph(n, [&](const graph::Graph& g) {
      std::vector<config::Tag> tags(n, 0);
      for (;;) {
        const config::Configuration c(g, tags);
        ++configs;
        const auto paper = core::Classifier{}.run(c);
        const auto fast = core::FastClassifier{}.run(c);
        agree += (paper.verdict == fast.verdict && paper.leader == fast.leader) ? 1 : 0;
        const auto report = core::elect(c);
        valid += report.valid ? 1 : 0;
        feasible += report.feasible ? 1 : 0;
        graph::NodeId position = 0;
        while (position < n && tags[position] == 2) {
          tags[position] = 0;
          ++position;
        }
        if (position == n) {
          break;
        }
        ++tags[position];
      }
    });
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(configs),
                   static_cast<std::int64_t>(agree), static_cast<std::int64_t>(valid),
                   static_cast<std::int64_t>(feasible),
                   100.0 * static_cast<double>(feasible) / static_cast<double>(configs)});
  }
  benchsupport::print_table(
      "E1 — Classifier agreement (exhaustive configurations, tags in {0,1,2})", table);
}

void print_scaling_table() {
  support::Table table(
      {"family", "n", "Delta", "steps", "steps/(n^3*Delta)", "time_ms", "iterations"});
  support::Rng rng(7);
  auto row = [&](const std::string& family, config::Configuration c) {
    const auto n = static_cast<double>(c.size());
    const auto delta = static_cast<double>(c.graph().max_degree());
    support::Stopwatch watch;
    const auto result = core::Classifier{}.run(c);
    const double ms = watch.millis();
    table.add_row({family, static_cast<std::int64_t>(c.size()),
                   static_cast<std::int64_t>(c.graph().max_degree()),
                   static_cast<std::int64_t>(result.steps),
                   static_cast<double>(result.steps) / (n * n * n * delta), ms,
                   static_cast<std::int64_t>(result.iterations)});
  };
  for (const graph::NodeId n : {17u, 33u, 65u, 129u, 257u}) {
    // G_m-style hard paths exercise the full ceil(n/2)-iteration depth.
    const config::Tag m = (n - 1) / 4;
    row("path G_m", config::family_g(m));
  }
  for (const graph::NodeId n : {16u, 32u, 64u, 128u}) {
    std::vector<config::Tag> tags(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      tags[v] = v % 2;  // two-valued tags keep iterations interesting
    }
    row("complete", config::Configuration(graph::complete(n), tags));
  }
  for (const graph::NodeId n : {16u, 32u, 64u, 128u}) {
    row("gnp(0.1)", config::random_tags(graph::gnp_connected(n, 0.1, rng), 3, rng));
  }
  benchsupport::print_table("E2 — Classifier scaling against the O(n^3*Delta) envelope", table);
}

void print_tables() {
  print_agreement_table();
  print_scaling_table();
}

// ------------------------------------------------------------- timed series

void BM_ClassifierOnFamilyG(benchmark::State& state) {
  const auto m = static_cast<config::Tag>(state.range(0));
  const config::Configuration c = config::family_g(m);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = core::Classifier{}.run(c);
    benchmark::DoNotOptimize(result.verdict);
    steps = result.steps;
  }
  state.counters["n"] = static_cast<double>(c.size());
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_ClassifierOnFamilyG)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ClassifierOnComplete(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::vector<config::Tag> tags(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    tags[v] = v % 2;
  }
  const config::Configuration c(graph::complete(n), tags);
  for (auto _ : state) {
    const auto result = core::Classifier{}.run(c);
    benchmark::DoNotOptimize(result.verdict);
  }
}
BENCHMARK(BM_ClassifierOnComplete)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_FastClassifierOnFamilyG(benchmark::State& state) {
  const auto m = static_cast<config::Tag>(state.range(0));
  const config::Configuration c = config::family_g(m);
  for (auto _ : state) {
    const auto result = core::FastClassifier{}.run(c);
    benchmark::DoNotOptimize(result.verdict);
  }
}
BENCHMARK(BM_FastClassifierOnFamilyG)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

ARL_BENCH_MAIN(print_tables)
