/// \file bench_baselines.cpp
/// E12 (related-work landscape, paper §1.3): election cost on single-hop
/// networks for
///   - the anonymous deterministic canonical DRIP (needs wakeup asymmetry;
///     staggered tags 0..n-1, so σ = n-1),
///   - labeled deterministic binary search (L+1 rounds, L = ceil(log2 n)),
///   - labeled deterministic tree splitting (DFS over label prefixes),
///   - anonymous randomized decay (simultaneous wakeup — the configuration
///     the paper proves impossible deterministically).
/// The headline: labels or coins buy exponentially faster election than
/// time-based symmetry breaking, and the canonical DRIP is the only option
/// that needs no identity and no randomness at all.
///
/// Every run goes through the one protocol API (core::run_protocol with a
/// ProtocolSpec) — the same dispatch the engine, the CLI sweep and the tests
/// use — so the numbers here are the numbers a head-to-head sweep reports.

#include <numeric>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/protocol.hpp"

namespace {

using namespace arl;

config::Configuration flat_single_hop(graph::NodeId n) {
  return config::single_hop(std::vector<config::Tag>(n, 0));
}

config::Configuration staggered_single_hop(graph::NodeId n) {
  std::vector<config::Tag> tags(n);
  std::iota(tags.begin(), tags.end(), config::Tag{0});
  return config::single_hop(tags);
}

config::Round randomized_average_rounds(graph::NodeId n, int trials) {
  const config::Configuration c = flat_single_hop(n);
  std::uint64_t total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    core::ElectionOptions options;
    options.simulator.coin_seed = 1000 + static_cast<std::uint64_t>(trial);
    total += core::run_protocol(c, core::ProtocolSpec::randomized(), options).local_rounds;
  }
  return static_cast<config::Round>(total / static_cast<std::uint64_t>(trials));
}

void print_tables() {
  support::Table table({"n", "canonical (anon det, sigma=n-1)", "binary search (labels)",
                        "tree split (labels)", "randomized avg (anon, coins)"});
  for (const graph::NodeId n : {4u, 8u, 16u, 32u, 64u}) {
    // Each protocol on its natural feasible instance; labels are the
    // harness's wakeup-order assignment.
    const core::ElectionReport canonical =
        core::run_protocol(staggered_single_hop(n), core::ProtocolSpec::canonical());
    const config::Configuration flat = flat_single_hop(n);
    const core::ElectionReport binary =
        core::run_protocol(flat, core::ProtocolSpec::binary_search());
    const core::ElectionReport tree = core::run_protocol(flat, core::ProtocolSpec::tree_split());

    table.add_row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(canonical.local_rounds),
                   static_cast<std::int64_t>(binary.local_rounds),
                   static_cast<std::int64_t>(tree.local_rounds),
                   static_cast<std::int64_t>(randomized_average_rounds(n, 20))});
  }
  benchsupport::print_table(
      "E12 — single-hop election rounds: anonymity/determinism vs labels/coins", table);
}

void BM_CanonicalSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = staggered_single_hop(n);
  core::ElectionScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_protocol(c, core::ProtocolSpec::canonical(), {}, scratch).valid);
  }
}
BENCHMARK(BM_CanonicalSingleHop)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BinarySearchSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = flat_single_hop(n);
  core::ElectionScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_protocol(c, core::ProtocolSpec::binary_search(), {}, scratch).valid);
  }
}
BENCHMARK(BM_BinarySearchSingleHop)->Arg(4)->Arg(16)->Arg(64);

void BM_TreeSplitSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = flat_single_hop(n);
  core::ElectionScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_protocol(c, core::ProtocolSpec::tree_split(), {}, scratch).valid);
  }
}
BENCHMARK(BM_TreeSplitSingleHop)->Arg(4)->Arg(16)->Arg(64);

void BM_RandomizedSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = flat_single_hop(n);
  core::ElectionScratch scratch;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::ElectionOptions options;
    options.simulator.coin_seed = ++seed;
    benchmark::DoNotOptimize(
        core::run_protocol(c, core::ProtocolSpec::randomized(), options, scratch).valid);
  }
}
BENCHMARK(BM_RandomizedSingleHop)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

ARL_BENCH_MAIN(print_tables)
