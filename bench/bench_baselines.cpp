/// \file bench_baselines.cpp
/// E12 (related-work landscape, paper §1.3): election cost on single-hop
/// networks for
///   - the anonymous deterministic canonical DRIP (needs wakeup asymmetry;
///     staggered tags 0..n-1, so σ = n-1),
///   - labeled deterministic binary search (L+1 rounds, L = ceil(log2 n)),
///   - labeled deterministic tree splitting (DFS over label prefixes),
///   - anonymous randomized decay (simultaneous wakeup — the configuration
///     the paper proves impossible deterministically).
/// The headline: labels or coins buy exponentially faster election than
/// time-based symmetry breaking, and the canonical DRIP is the only option
/// that needs no identity and no randomness at all.

#include <cmath>
#include <numeric>

#include "baselines/binary_search.hpp"
#include "baselines/randomized.hpp"
#include "baselines/tree_split.hpp"
#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/election.hpp"
#include "radio/simulator.hpp"

namespace {

using namespace arl;

unsigned label_bits_for(graph::NodeId n) {
  unsigned bits = 1;
  while ((std::uint64_t{1} << bits) < n) {
    ++bits;
  }
  return bits;
}

config::Round randomized_average_rounds(graph::NodeId n, int trials) {
  const config::Configuration c = config::single_hop(std::vector<config::Tag>(n, 0));
  const baselines::RandomizedElection drip;
  std::uint64_t total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    radio::SimulatorOptions options;
    options.coin_seed = 1000 + static_cast<std::uint64_t>(trial);
    const radio::RunResult run = radio::simulate(c, drip, options);
    total += run.nodes[0].done_round;
  }
  return static_cast<config::Round>(total / static_cast<std::uint64_t>(trials));
}

void print_tables() {
  support::Table table({"n", "canonical (anon det, sigma=n-1)", "binary search (labels)",
                        "tree split (labels)", "randomized avg (anon, coins)"});
  for (const graph::NodeId n : {4u, 8u, 16u, 32u, 64u}) {
    // Canonical: staggered single-hop, the natural feasible instance.
    std::vector<config::Tag> tags(n);
    std::iota(tags.begin(), tags.end(), config::Tag{0});
    const core::ElectionReport canonical = core::elect(config::single_hop(tags));

    const unsigned bits = label_bits_for(n);
    const config::Configuration flat = config::single_hop(std::vector<config::Tag>(n, 0));
    std::vector<std::uint64_t> labels(n);
    std::iota(labels.begin(), labels.end(), 0);

    radio::SimulatorOptions labeled;
    labeled.labels = labels;
    const radio::RunResult binary =
        radio::simulate(flat, baselines::BinarySearchElection(bits), labeled);
    const radio::RunResult tree =
        radio::simulate(flat, baselines::TreeSplitElection(bits), labeled);

    table.add_row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(canonical.local_rounds),
                   static_cast<std::int64_t>(binary.nodes[0].done_round),
                   static_cast<std::int64_t>(tree.nodes[0].done_round),
                   static_cast<std::int64_t>(randomized_average_rounds(n, 20))});
  }
  benchsupport::print_table(
      "E12 — single-hop election rounds: anonymity/determinism vs labels/coins", table);
}

void BM_CanonicalSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::vector<config::Tag> tags(n);
  std::iota(tags.begin(), tags.end(), config::Tag{0});
  const config::Configuration c = config::single_hop(tags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::elect(c).valid);
  }
}
BENCHMARK(BM_CanonicalSingleHop)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BinarySearchSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = config::single_hop(std::vector<config::Tag>(n, 0));
  const baselines::BinarySearchElection drip(label_bits_for(n));
  radio::SimulatorOptions options;
  options.labels.resize(n);
  std::iota(options.labels.begin(), options.labels.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio::simulate(c, drip, options).all_terminated);
  }
}
BENCHMARK(BM_BinarySearchSingleHop)->Arg(4)->Arg(16)->Arg(64);

void BM_TreeSplitSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = config::single_hop(std::vector<config::Tag>(n, 0));
  const baselines::TreeSplitElection drip(label_bits_for(n));
  radio::SimulatorOptions options;
  options.labels.resize(n);
  std::iota(options.labels.begin(), options.labels.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio::simulate(c, drip, options).all_terminated);
  }
}
BENCHMARK(BM_TreeSplitSingleHop)->Arg(4)->Arg(16)->Arg(64);

void BM_RandomizedSingleHop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const config::Configuration c = config::single_hop(std::vector<config::Tag>(n, 0));
  const baselines::RandomizedElection drip;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    radio::SimulatorOptions options;
    options.coin_seed = ++seed;
    benchmark::DoNotOptimize(radio::simulate(c, drip, options).all_terminated);
  }
}
BENCHMARK(BM_RandomizedSingleHop)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

ARL_BENCH_MAIN(print_tables)
