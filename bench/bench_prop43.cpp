/// \file bench_prop43.cpp
/// E5 (Proposition 4.3 / Lemma 4.2): the Ω(σ) lower bound on the 4-node
/// family H_m.  The table tracks election cost against the bound m, plus the
/// proof's two symmetry milestones: global uniqueness of the leader (m+2)
/// and the b/c separation round (2m+2).

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/schedule.hpp"
#include "lowerbounds/symmetry.hpp"
#include "radio/simulator.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table({"m", "sigma", "bound (>= m)", "local rounds", "global completion",
                        "leader unique (global)", "b/c separate (local)"});
  for (const config::Tag m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const config::Configuration c = config::family_h(m);
    const auto schedule = core::make_schedule(c);
    radio::SimulatorOptions options;
    options.history_window = 0;
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule), options);

    const auto unique_at = lowerbounds::uniqueness_round(run, 0);
    const auto bc = lowerbounds::first_history_divergence(run.nodes[1], run.nodes[2]);

    table.add_row({static_cast<std::int64_t>(m), static_cast<std::int64_t>(c.span()),
                   static_cast<std::int64_t>(m),
                   static_cast<std::int64_t>(schedule->total_rounds()),
                   static_cast<std::int64_t>(run.rounds_executed),
                   static_cast<std::int64_t>(c.tag(0) + unique_at.value_or(0)),
                   static_cast<std::int64_t>(bc.value_or(0))});
  }
  benchsupport::print_table(
      "E5 — Prop 4.3: Omega(sigma) election on H_m (n = 4, sigma = m+1)", table);
}

void BM_HmFullPipeline(benchmark::State& state) {
  const auto m = static_cast<config::Tag>(state.range(0));
  const config::Configuration c = config::family_h(m);
  for (auto _ : state) {
    const core::ElectionReport report = core::elect(c);
    benchmark::DoNotOptimize(report.valid);
  }
  state.counters["sigma"] = static_cast<double>(c.span());
}
BENCHMARK(BM_HmFullPipeline)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

ARL_BENCH_MAIN(print_tables)
