#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the experiment benchmarks: every bench binary
/// first prints its experiment table (the paper-style rows recorded in
/// EXPERIMENTS.md) and then runs its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <iostream>

#include "support/table.hpp"

namespace arl::benchsupport {

/// Prints a titled markdown table to stdout.
inline void print_table(const std::string& title, const support::Table& table) {
  std::cout << "\n### " << title << "\n\n";
  table.print_markdown(std::cout);
  std::cout << std::flush;
}

}  // namespace arl::benchsupport

/// Defines main(): emit the experiment tables, then run the timings.
#define ARL_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                           \
    print_tables_fn();                                        \
    benchmark::Initialize(&argc, argv);                       \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                               \
    }                                                         \
    benchmark::RunSpecifiedBenchmarks();                      \
    benchmark::Shutdown();                                    \
    return 0;                                                 \
  }
