#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the experiment benchmarks: every bench binary
/// first prints its experiment table (the paper-style rows recorded in
/// EXPERIMENTS.md) and then runs its google-benchmark timings.
///
/// Custom flags (parsed and stripped before benchmark::Initialize, which
/// rejects arguments it does not know):
///   --json-out=DIR   directory the BENCH_*.json trajectory snapshots are
///                    written into (default: the current directory)
///   --tables-only    print the experiment tables and exit without running
///                    the google-benchmark timed series (the CI preset)

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <string_view>

#include "obs/json_snapshot.hpp"
#include "support/table.hpp"

namespace arl::benchsupport {

/// The custom bench flags, populated by ARL_BENCH_MAIN before the tables run.
struct BenchFlags {
  std::string json_out = ".";
  bool tables_only = false;
};

inline BenchFlags& flags() {
  static BenchFlags instance;
  return instance;
}

/// Consumes the flags this header owns from argv (so google-benchmark never
/// sees them) and records them in flags().
inline void strip_custom_flags(int& argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tables-only") {
      flags().tables_only = true;
    } else if (arg.rfind("--json-out=", 0) == 0) {
      flags().json_out = std::string(arg.substr(std::strlen("--json-out=")));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
}

/// Prints a titled markdown table to stdout.
inline void print_table(const std::string& title, const support::Table& table) {
  std::cout << "\n### " << title << "\n\n";
  table.print_markdown(std::cout);
  std::cout << std::flush;
}

/// The trajectory snapshot accumulator (now shared with the CLI's
/// --metrics-out writer; see src/obs/json_snapshot.hpp), re-exported with a
/// bench-flavoured `write(name)` that targets the --json-out directory.
class JsonSnapshot : public obs::JsonSnapshot {
 public:
  /// Writes `name` into the --json-out directory; warns instead of failing
  /// silently, because a missing snapshot reads as "no data" downstream.
  void write(const std::string& name) const { write_file(flags().json_out + "/" + name); }
};

}  // namespace arl::benchsupport

/// Defines main(): emit the experiment tables, then run the timings.
#define ARL_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                           \
    arl::benchsupport::strip_custom_flags(argc, argv);        \
    print_tables_fn();                                        \
    if (arl::benchsupport::flags().tables_only) {             \
      return 0;                                               \
    }                                                         \
    benchmark::Initialize(&argc, argv);                       \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                               \
    }                                                         \
    benchmark::RunSpecifiedBenchmarks();                      \
    benchmark::Shutdown();                                    \
    return 0;                                                 \
  }
