/// \file bench_decision.cpp
/// E7 (Proposition 4.5): feasibility cannot be decided distributedly.  For
/// each candidate protocol with first transmission at t, the executions on
/// H_{t+1} (feasible) and S_{t+1} (infeasible) are compared node-by-node:
/// every transcript is identical, so no node could ever answer differently
/// on the two configurations — while the ground truth differs.

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/classifier.hpp"
#include "lowerbounds/comparator.hpp"
#include "lowerbounds/universal.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table({"candidate", "t", "H_{t+1} feasible", "S_{t+1} feasible",
                        "transcripts identical", "divergence"});
  for (const config::Round wait : {0u, 1u, 2u, 5u, 9u, 14u}) {
    const lowerbounds::BeepCandidate candidate(wait, wait + 10);
    const config::Round t = wait + 1;  // tag-0 nodes transmit at global wait+1
    const config::Configuration h = config::family_h(t + 1);
    const config::Configuration s = config::family_s(t + 1);

    const bool h_feasible = core::Classifier{}.run(h).feasible();
    const bool s_feasible = core::Classifier{}.run(s).feasible();
    const lowerbounds::ComparisonResult comparison =
        lowerbounds::compare_executions(h, s, candidate);

    table.add_row({candidate.name(), static_cast<std::int64_t>(t),
                   std::string(h_feasible ? "yes" : "no"),
                   std::string(s_feasible ? "yes" : "no"),
                   std::string(comparison.identical ? "yes" : "NO"),
                   comparison.identical ? std::string("-") : comparison.difference});
  }
  benchsupport::print_table(
      "E7 — Prop 4.5: H_{t+1} vs S_{t+1} are execution-indistinguishable", table);
}

void BM_CompareExecutions(benchmark::State& state) {
  const auto wait = static_cast<config::Round>(state.range(0));
  const lowerbounds::BeepCandidate candidate(wait, wait + 10);
  const config::Configuration h = config::family_h(wait + 2);
  const config::Configuration s = config::family_s(wait + 2);
  for (auto _ : state) {
    const auto comparison = lowerbounds::compare_executions(h, s, candidate);
    benchmark::DoNotOptimize(comparison.identical);
  }
}
BENCHMARK(BM_CompareExecutions)->Arg(1)->Arg(5)->Arg(14);

}  // namespace

ARL_BENCH_MAIN(print_tables)
