/// \file bench_hardness.cpp
/// E13 (extension): how extremal are the paper's hand-built families?
/// For each topology, search for the tag assignment that maximizes
/// Classifier iterations (the refinement depth).  Lemma 3.4 caps the depth
/// at ceil(n/2); Proposition 4.1's G_m construction reaches ~n/4 on paths.
/// The tables compare the found worst cases against both yardsticks, and a
/// second table shows which topologies are "deep" at all (complete graphs
/// collapse in O(1) iterations; paths can be driven linearly deep).

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/fast_classifier.hpp"
#include "graph/generators.hpp"
#include "lowerbounds/hardness.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

void print_tables() {
  {
    // Exhaustive binary-tag hardness on paths vs the G_m pattern.
    support::Table table({"path n", "hardest iterations (exhaustive, tags {0,1})",
                          "G_m iterations (m=(n-1)/4)", "ceil(n/2) cap"});
    for (const graph::NodeId n : {5u, 9u, 13u, 17u}) {
      const auto hardest = lowerbounds::hardest_tags_exhaustive(graph::path(n), 1);
      std::int64_t gm_iterations = 0;
      if ((n - 1) % 4 == 0 && (n - 1) / 4 >= 2) {
        gm_iterations = static_cast<std::int64_t>(
            core::FastClassifier{}.run(config::family_g((n - 1) / 4)).iterations);
      }
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(hardest.iterations), gm_iterations,
                     static_cast<std::int64_t>((n + 1) / 2)});
    }
    benchsupport::print_table(
        "E13a — worst-case refinement depth on paths (exhaustive search)", table);
  }
  {
    // Hill-climbing hardness across topologies.
    support::Table table({"topology", "n", "max_tag", "hardest iterations found",
                          "feasible", "evaluations"});
    support::Rng rng(77);
    auto row = [&](const std::string& name, const graph::Graph& g, config::Tag max_tag) {
      support::Rng search_rng = rng.split(g.node_count() ^ (max_tag << 8));
      const auto result =
          lowerbounds::hardest_tags_search(g, max_tag, search_rng, 3000);
      table.add_row({name, static_cast<std::int64_t>(g.node_count()),
                     static_cast<std::int64_t>(max_tag),
                     static_cast<std::int64_t>(result.iterations),
                     std::string(result.feasible ? "yes" : "no"),
                     static_cast<std::int64_t>(result.evaluated)});
    };
    row("path", graph::path(25), 1);
    row("path", graph::path(25), 3);
    row("cycle", graph::cycle(24), 1);
    row("grid 5x5", graph::grid(5, 5), 1);
    row("complete", graph::complete(25), 3);
    row("star", graph::star(25), 3);
    row("binary tree", graph::binary_tree(25), 1);
    benchsupport::print_table(
        "E13b — hardest tag assignments by topology (hill climbing, 3000 evals)", table);
  }
}

void BM_ExhaustiveHardness(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::path(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowerbounds::hardest_tags_exhaustive(g, 1).iterations);
  }
}
BENCHMARK(BM_ExhaustiveHardness)->Arg(9)->Arg(13)->Arg(17);

void BM_SearchHardness(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::path(n);
  support::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowerbounds::hardest_tags_search(g, 1, rng, 500).iterations);
  }
}
BENCHMARK(BM_SearchHardness)->Arg(17)->Arg(33)->Arg(65);

}  // namespace

ARL_BENCH_MAIN(print_tables)
