/// \file bench_universal.cpp
/// E6 (Proposition 4.4): no universal leader election algorithm exists, even
/// for 4-node configurations.  Each candidate protocol is swept over the
/// family H_m; the table shows where and how it breaks, next to the
/// theorem's prediction (failure by m = t+1, where t is the candidate's
/// first-transmission round).

#include "bench_common.hpp"
#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/schedule.hpp"
#include "lowerbounds/universal.hpp"

namespace {

using namespace arl;

void print_tables() {
  support::Table table({"candidate", "first tx t", "predicted break (<= t+1)", "breaks at m",
                        "failure mode", "elects on"});
  auto row = [&](const radio::Drip& candidate, config::Tag max_m) {
    const lowerbounds::UniversalProbe probe = lowerbounds::probe_universal(candidate, max_m);
    std::string elected_on = "-";
    if (!probe.succeeded_on.empty()) {
      elected_on.clear();
      for (const auto m : probe.succeeded_on) {
        elected_on += (elected_on.empty() ? "m=" : ",") + std::to_string(m);
      }
    }
    table.add_row({probe.candidate, static_cast<std::int64_t>(probe.first_tx_round),
                   static_cast<std::int64_t>(probe.first_tx_round + 1),
                   probe.breaking_m ? std::to_string(*probe.breaking_m) : std::string("none"),
                   probe.failure_mode.empty() ? std::string("-") : probe.failure_mode,
                   elected_on});
  };

  for (const config::Round wait : {0u, 1u, 2u, 4u, 8u, 16u}) {
    const lowerbounds::BeepCandidate candidate(wait, wait + 10);
    row(candidate, wait + 6);
  }
  // Dedicated canonical protocols reused as if they were universal.
  for (const config::Tag k : {1u, 2u, 4u}) {
    const auto schedule = core::make_schedule(config::family_h(k));
    const core::CanonicalDrip candidate(schedule, core::MismatchPolicy::Robust);
    row(candidate, k + 4);
  }
  benchsupport::print_table(
      "E6 — Prop 4.4: every universal candidate breaks on some H_m (n = 4)", table);
}

void BM_ProbeUniversal(benchmark::State& state) {
  const auto wait = static_cast<config::Round>(state.range(0));
  const lowerbounds::BeepCandidate candidate(wait, wait + 10);
  for (auto _ : state) {
    const auto probe = lowerbounds::probe_universal(candidate, wait + 4);
    benchmark::DoNotOptimize(probe.breaking_m);
  }
}
BENCHMARK(BM_ProbeUniversal)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

ARL_BENCH_MAIN(print_tables)
