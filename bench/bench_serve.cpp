/// \file bench_serve.cpp
/// E6: the sweep service's warm cross-request schedule cache.  One daemon,
/// one process-wide cache; the experiment submits the same classification
/// sweep twice — cold (every configuration classifies) and warm (every
/// configuration answers from the cache) — then drives K concurrent
/// clients over sharded submissions and merges their reports.  The warm
/// speedup is the tracked perf invariant (BENCH_E6.json, gated in CI by
/// tools/bench_gate); wall times and throughput are machine facts, printed
/// but not gated; the cache counters and outcome identity are exact.

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dist/merge.hpp"
#include "dist/report_io.hpp"
#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "serve/client.hpp"
#include "serve/serve_proto.hpp"
#include "serve/server.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

#if ARL_SERVE_HAS_UNIX_SOCKETS
#include <unistd.h>
#endif

namespace {

using namespace arl;

#if ARL_SERVE_HAS_UNIX_SOCKETS

constexpr const char* kWorkload = "random:n=256,p=0.03,sigma=200";
constexpr std::uint64_t kCount = 200;  // configurations per request
constexpr std::uint64_t kSeed = 11;
constexpr unsigned kClients = 4;

serve::SweepRequest e6_request() {
  serve::SweepRequest request;
  request.workload = engine::parse_workload(kWorkload);
  request.protocols = {core::ProtocolSpec::classify_only()};
  request.seed = kSeed;
  request.count = kCount;
  return request;
}

/// A running daemon on a private socket, torn down by the destructor.
struct BenchServer {
  BenchServer() {
    char pattern[] = "/tmp/arl-bench-serve-XXXXXX";
    if (::mkdtemp(pattern) == nullptr) {
      throw std::runtime_error("bench_serve: mkdtemp failed");
    }
    dir = pattern;
    serve::ServerOptions options;
    options.socket_path = dir + "/arl.sock";
    options.threads = 1;  // timings compare requests, not pool sizes
    options.queue_limit = 2 * kClients;
    server = std::make_unique<serve::SweepServer>(options);
    runner = std::thread([this] { server->run(); });
  }

  ~BenchServer() {
    server->request_stop();
    runner.join();
    ::rmdir(dir.c_str());
  }

  [[nodiscard]] const std::string& socket() const { return server->options().socket_path; }

  std::string dir;
  std::unique_ptr<serve::SweepServer> server;
  std::thread runner;
};

dist::ShardReport parse_report(const serve::SubmitResult& result) {
  std::istringstream body(result.report);
  return dist::read_shard_report(body);
}

void print_e6_table() {
  BenchServer daemon;
  serve::Client client(daemon.socket());
  const serve::SweepRequest request = e6_request();

  // Cold: the first request ever — every configuration classifies and
  // enters the cache.  Warm: the identical re-submission — every
  // configuration answers from the cache the previous request filled.
  support::Stopwatch watch;
  const serve::SubmitResult cold = client.submit(request);
  const double cold_ms = watch.millis();
  watch.restart();
  const serve::SubmitResult warm = client.submit(request);
  const double warm_ms = watch.millis();
  if (!cold.ok() || !warm.ok()) {
    throw std::runtime_error("bench_serve: submission failed");
  }
  const dist::ShardReport cold_report = parse_report(cold);
  const dist::ShardReport warm_report = parse_report(warm);
  const bool identical = engine::same_results(cold_report.report, warm_report.report);
  const double warm_speedup = cold_ms / warm_ms;

  // K concurrent clients, one shard each, against the warm cache; their
  // merged reports must equal the unsharded submission's.
  std::vector<dist::ShardReport> shards(kClients);
  std::vector<std::thread> workers;
  watch.restart();
  for (unsigned i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      serve::Client shard_client(daemon.socket());
      serve::SweepRequest shard_request = e6_request();
      shard_request.shard = dist::ShardSpec{i, kClients};
      shards[i] = parse_report(shard_client.submit(shard_request));
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double concurrent_ms = watch.millis();
  const bool concurrent_identical = engine::same_results(
      dist::complete_report(dist::merge_shards(shards)), cold_report.report);
  const std::uint64_t total_jobs = cold_report.report.jobs.size();
  const double served_jobs_per_s = static_cast<double>(total_jobs) / (concurrent_ms / 1e3);

  support::Table table({"request", "wall ms", "cache hits", "misses", "builds", "jobs"});
  const auto row = [&](const std::string& name, double ms, const serve::RequestCacheUse& use,
                       std::uint64_t jobs) {
    std::ostringstream wall;
    wall << static_cast<int>(ms * 10.0) / 10.0;
    table.add_row({name, wall.str(), std::to_string(use.hits), std::to_string(use.misses),
                   std::to_string(use.schedule_builds), std::to_string(jobs)});
  };
  row("cold", cold_ms, cold.outcome.request_cache, total_jobs);
  row("warm", warm_ms, warm.outcome.request_cache, total_jobs);
  benchsupport::print_table(
      "E6: sweep service, cold vs warm shared cache (" + std::string(kWorkload) + " x " +
          std::to_string(kCount) + ", classify, " + std::to_string(kClients) +
          " concurrent clients)",
      table);
  std::cout << "\nwarm speedup: " << warm_speedup << "x; " << kClients
            << " concurrent sharded clients: " << concurrent_ms << " ms, " << served_jobs_per_s
            << " jobs/s, merge identical: " << (concurrent_identical ? "yes" : "no") << "\n";

  benchsupport::JsonSnapshot snapshot;
  snapshot.add("bench", std::string("E6"));
  snapshot.add("workload", std::string(kWorkload));
  snapshot.add("configurations", kCount);
  snapshot.add("clients", static_cast<std::uint64_t>(kClients));
  snapshot.add("total_jobs", total_jobs);
  snapshot.add("cold_misses", cold.outcome.request_cache.misses);
  snapshot.add("warm_hits", warm.outcome.request_cache.hits);
  snapshot.add("warm_misses", warm.outcome.request_cache.misses);
  snapshot.add("identical_outcomes", identical);
  snapshot.add("concurrent_merge_identical", concurrent_identical);
  snapshot.add("warm_cache_speedup", warm_speedup);
  snapshot.add("cold_wall_ms", cold_ms);
  snapshot.add("warm_wall_ms", warm_ms);
  snapshot.add("concurrent_wall_ms", concurrent_ms);
  snapshot.add("served_jobs_per_s", served_jobs_per_s);
  snapshot.write("BENCH_E6.json");
}

// ------------------------------------------------------- timed micro-series

void BM_ServeWarmSubmit(benchmark::State& state) {
  BenchServer daemon;
  serve::Client client(daemon.socket());
  serve::SweepRequest request = e6_request();
  request.count = 50;  // small enough for the timing loop, warm after once
  (void)client.submit(request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.submit(request));
  }
}
BENCHMARK(BM_ServeWarmSubmit)->Unit(benchmark::kMillisecond);

void BM_ServePing(benchmark::State& state) {
  BenchServer daemon;
  serve::Client client(daemon.socket());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.ping());
  }
}
BENCHMARK(BM_ServePing)->Unit(benchmark::kMicrosecond);

void print_tables() { print_e6_table(); }

#else  // !ARL_SERVE_HAS_UNIX_SOCKETS

void print_tables() {
  std::cout << "\nE6: skipped (no unix domain sockets on this platform)\n";
}

#endif  // ARL_SERVE_HAS_UNIX_SOCKETS

}  // namespace

ARL_BENCH_MAIN(print_tables)
