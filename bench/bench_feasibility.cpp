/// \file bench_feasibility.cpp
/// E8 (extension figure): how common are feasible configurations?  Sampled
/// feasibility rate of random configurations as a function of size, span and
/// edge density — the "how much wakeup asymmetry does nature need to give
/// you" picture the paper's characterization makes computable.  Every sweep
/// is a classify-only batch on the election engine.

#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "config/mutations.hpp"
#include "core/fast_classifier.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

core::ElectionOptions fast_classify_options() {
  core::ElectionOptions options;
  options.use_fast_classifier = true;
  return options;
}

double feasibility_rate(graph::NodeId n, config::Tag sigma, double p, std::size_t samples,
                        engine::BatchRunner& runner) {
  engine::WorkloadSpec workload = engine::WorkloadSpec::random(n, p, sigma);
  workload.exact = false;  // uniform tags in [0, sigma], as in the seed experiment
  workload.fast = true;
  const std::uint64_t seed = 0xFEA51B1E ^ (static_cast<std::uint64_t>(n) << 32) ^
                             (static_cast<std::uint64_t>(sigma) << 16) ^
                             static_cast<std::uint64_t>(p * 1000);
  const engine::CountedSweep sweep =
      workload.instantiate(seed, {core::ProtocolSpec::classify_only()}, {.count = samples});
  const engine::BatchReport report = runner.run(sweep.count, sweep.source);
  return static_cast<double>(report.feasible_count) / static_cast<double>(samples);
}

/// Classify-only batch over an explicit configuration list.
engine::BatchReport classify_all(engine::BatchRunner& runner,
                                 std::vector<config::Configuration> configurations) {
  std::vector<engine::BatchJob> jobs;
  jobs.reserve(configurations.size());
  for (auto& configuration : configurations) {
    jobs.push_back(
        {std::move(configuration), core::ProtocolSpec::classify_only(), fast_classify_options()});
  }
  return runner.run(jobs);
}

void print_tables() {
  engine::BatchRunner runner;
  constexpr std::size_t kSamples = 400;

  {
    support::Table table({"n", "sigma=1", "sigma=2", "sigma=4", "sigma=8"});
    table.set_precision(3);
    for (const graph::NodeId n : {4u, 6u, 8u, 12u, 16u, 24u}) {
      table.add_row({static_cast<std::int64_t>(n),
                     feasibility_rate(n, 1, 0.3, kSamples, runner),
                     feasibility_rate(n, 2, 0.3, kSamples, runner),
                     feasibility_rate(n, 4, 0.3, kSamples, runner),
                     feasibility_rate(n, 8, 0.3, kSamples, runner)});
    }
    benchsupport::print_table(
        "E8a — feasibility rate vs n and sigma (gnp p=0.3, uniform tags, 400 samples)", table);
  }
  {
    support::Table table({"edge probability p", "n=8", "n=16"});
    table.set_precision(3);
    for (const double p : {0.1, 0.2, 0.4, 0.6, 0.8}) {
      table.add_row({p, feasibility_rate(8, 2, p, kSamples, runner),
                     feasibility_rate(16, 2, p, kSamples, runner)});
    }
    benchsupport::print_table("E8b — feasibility rate vs edge density (sigma = 2)", table);
  }
  {
    // E8c — sensitivity: how often does nudging ONE wakeup tag flip the
    // verdict?  (The deployment-robustness question mutations.hpp exists
    // for.)  Each base configuration's mutations go through the engine as
    // one classify-only batch.
    support::Table table({"n", "configs", "feasible->infeasible flips %",
                          "infeasible->feasible flips %"});
    table.set_precision(3);
    support::Rng rng(0x5EED);
    for (const graph::NodeId n : {6u, 10u, 14u}) {
      std::uint64_t feasible_mutations = 0;
      std::uint64_t feasible_flips = 0;
      std::uint64_t infeasible_mutations = 0;
      std::uint64_t infeasible_flips = 0;
      constexpr int kConfigs = 40;
      for (int i = 0; i < kConfigs; ++i) {
        const config::Configuration c =
            config::random_tags(graph::gnp_connected(n, 0.3, rng), 2, rng);
        const bool feasible = core::FastClassifier{}.run(c).feasible();
        const engine::BatchReport mutated = classify_all(runner, config::all_tag_mutations(c, 2));
        const auto mutations = static_cast<std::uint64_t>(mutated.jobs.size());
        if (feasible) {
          feasible_mutations += mutations;
          feasible_flips += mutations - mutated.feasible_count;
        } else {
          infeasible_mutations += mutations;
          infeasible_flips += mutated.feasible_count;
        }
      }
      auto rate = [](std::uint64_t flips, std::uint64_t total) {
        return total == 0 ? 0.0 : 100.0 * static_cast<double>(flips) / static_cast<double>(total);
      };
      table.add_row({static_cast<std::int64_t>(n), std::int64_t{kConfigs},
                     rate(feasible_flips, feasible_mutations),
                     rate(infeasible_flips, infeasible_mutations)});
    }
    benchsupport::print_table(
        "E8c — verdict sensitivity to a single tag perturbation (tags 0..2)", table);
  }
  {
    // E8d — the repair direction, measured where infeasibility actually
    // lives: every single-tag mutation of the infeasible family S_m.
    support::Table table({"S_m", "mutations", "repaired to feasible", "repair %"});
    table.set_precision(3);
    for (const config::Tag m : {1u, 2u, 4u}) {
      const engine::BatchReport mutated =
          classify_all(runner, config::all_tag_mutations(config::family_s(m), m + 2));
      table.add_row({static_cast<std::int64_t>(m),
                     static_cast<std::int64_t>(mutated.jobs.size()),
                     static_cast<std::int64_t>(mutated.feasible_count),
                     100.0 * static_cast<double>(mutated.feasible_count) /
                         static_cast<double>(mutated.jobs.size())});
    }
    benchsupport::print_table(
        "E8d — repairing the infeasible family S_m with one tag change", table);
  }
}

void BM_FeasibilitySample(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng rng(99 + n);
  std::uint64_t feasible = 0;
  for (auto _ : state) {
    const config::Configuration c =
        config::random_tags(graph::gnp_connected(n, 0.3, rng), 2, rng);
    feasible += core::FastClassifier{}.run(c).feasible() ? 1 : 0;
  }
  benchmark::DoNotOptimize(feasible);
}
BENCHMARK(BM_FeasibilitySample)->Arg(8)->Arg(16)->Arg(32);

void BM_FeasibilityBatch(benchmark::State& state) {
  // Classify-only batch throughput through the engine.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  constexpr engine::JobId kCount = 64;
  engine::WorkloadSpec workload = engine::parse_workload("random:sigma=2,exact=0,fast=1");
  workload.nodes = n;
  const engine::CountedSweep sweep = workload.instantiate(
      99 + n, {core::ProtocolSpec::classify_only()}, {.count = kCount});
  engine::BatchRunner runner;
  for (auto _ : state) {
    const engine::BatchReport report = runner.run(sweep.count, sweep.source);
    benchmark::DoNotOptimize(report.feasible_count);
  }
  state.counters["configs/s"] = benchmark::Counter(
      static_cast<double>(kCount), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FeasibilityBatch)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

ARL_BENCH_MAIN(print_tables)
