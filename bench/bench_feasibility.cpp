/// \file bench_feasibility.cpp
/// E8 (extension figure): how common are feasible configurations?  Sampled
/// feasibility rate of random configurations as a function of size, span and
/// edge density — the "how much wakeup asymmetry does nature need to give
/// you" picture the paper's characterization makes computable.  The sweep
/// fans out over the thread pool (one seed stream per sample).

#include <atomic>

#include "bench_common.hpp"
#include "config/families.hpp"
#include "config/mutations.hpp"
#include "core/fast_classifier.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace arl;

double feasibility_rate(graph::NodeId n, config::Tag sigma, double p, std::size_t samples,
                        support::ThreadPool& pool) {
  std::atomic<std::uint64_t> feasible{0};
  const support::Rng master(0xFEA51B1E ^ (static_cast<std::uint64_t>(n) << 32) ^
                            (static_cast<std::uint64_t>(sigma) << 16) ^
                            static_cast<std::uint64_t>(p * 1000));
  support::parallel_for(pool, 0, samples, [&](std::size_t sample) {
    support::Rng rng = master.split(sample);
    const config::Configuration c =
        config::random_tags(graph::gnp_connected(n, p, rng), sigma, rng);
    if (core::FastClassifier{}.run(c).feasible()) {
      feasible.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return static_cast<double>(feasible.load()) / static_cast<double>(samples);
}

void print_tables() {
  support::ThreadPool pool;
  constexpr std::size_t kSamples = 400;

  {
    support::Table table({"n", "sigma=1", "sigma=2", "sigma=4", "sigma=8"});
    table.set_precision(3);
    for (const graph::NodeId n : {4u, 6u, 8u, 12u, 16u, 24u}) {
      table.add_row({static_cast<std::int64_t>(n),
                     feasibility_rate(n, 1, 0.3, kSamples, pool),
                     feasibility_rate(n, 2, 0.3, kSamples, pool),
                     feasibility_rate(n, 4, 0.3, kSamples, pool),
                     feasibility_rate(n, 8, 0.3, kSamples, pool)});
    }
    benchsupport::print_table(
        "E8a — feasibility rate vs n and sigma (gnp p=0.3, uniform tags, 400 samples)", table);
  }
  {
    support::Table table({"edge probability p", "n=8", "n=16"});
    table.set_precision(3);
    for (const double p : {0.1, 0.2, 0.4, 0.6, 0.8}) {
      table.add_row({p, feasibility_rate(8, 2, p, kSamples, pool),
                     feasibility_rate(16, 2, p, kSamples, pool)});
    }
    benchsupport::print_table("E8b — feasibility rate vs edge density (sigma = 2)", table);
  }
  {
    // E8c — sensitivity: how often does nudging ONE wakeup tag flip the
    // verdict?  (The deployment-robustness question mutations.hpp exists for.)
    support::Table table({"n", "configs", "feasible->infeasible flips %",
                          "infeasible->feasible flips %"});
    table.set_precision(3);
    support::Rng rng(0x5EED);
    for (const graph::NodeId n : {6u, 10u, 14u}) {
      std::uint64_t feasible_mutations = 0;
      std::uint64_t feasible_flips = 0;
      std::uint64_t infeasible_mutations = 0;
      std::uint64_t infeasible_flips = 0;
      constexpr int kConfigs = 40;
      for (int i = 0; i < kConfigs; ++i) {
        const config::Configuration c =
            config::random_tags(graph::gnp_connected(n, 0.3, rng), 2, rng);
        const bool feasible = core::FastClassifier{}.run(c).feasible();
        for (const auto& mutated : config::all_tag_mutations(c, 2)) {
          const bool mutated_feasible = core::FastClassifier{}.run(mutated).feasible();
          if (feasible) {
            ++feasible_mutations;
            feasible_flips += mutated_feasible ? 0 : 1;
          } else {
            ++infeasible_mutations;
            infeasible_flips += mutated_feasible ? 1 : 0;
          }
        }
      }
      auto rate = [](std::uint64_t flips, std::uint64_t total) {
        return total == 0 ? 0.0 : 100.0 * static_cast<double>(flips) / static_cast<double>(total);
      };
      table.add_row({static_cast<std::int64_t>(n), std::int64_t{kConfigs},
                     rate(feasible_flips, feasible_mutations),
                     rate(infeasible_flips, infeasible_mutations)});
    }
    benchsupport::print_table(
        "E8c — verdict sensitivity to a single tag perturbation (tags 0..2)", table);
  }
  {
    // E8d — the repair direction, measured where infeasibility actually
    // lives: every single-tag mutation of the infeasible family S_m.
    support::Table table({"S_m", "mutations", "repaired to feasible", "repair %"});
    table.set_precision(3);
    for (const config::Tag m : {1u, 2u, 4u}) {
      const config::Configuration s = config::family_s(m);
      const auto mutations = config::all_tag_mutations(s, m + 2);
      std::uint64_t repaired = 0;
      for (const auto& mutated : mutations) {
        repaired += core::FastClassifier{}.run(mutated).feasible() ? 1 : 0;
      }
      table.add_row({static_cast<std::int64_t>(m),
                     static_cast<std::int64_t>(mutations.size()),
                     static_cast<std::int64_t>(repaired),
                     100.0 * static_cast<double>(repaired) /
                         static_cast<double>(mutations.size())});
    }
    benchsupport::print_table(
        "E8d — repairing the infeasible family S_m with one tag change", table);
  }
}

void BM_FeasibilitySample(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng rng(99 + n);
  std::uint64_t feasible = 0;
  for (auto _ : state) {
    const config::Configuration c =
        config::random_tags(graph::gnp_connected(n, 0.3, rng), 2, rng);
    feasible += core::FastClassifier{}.run(c).feasible() ? 1 : 0;
  }
  benchmark::DoNotOptimize(feasible);
}
BENCHMARK(BM_FeasibilitySample)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

ARL_BENCH_MAIN(print_tables)
