/// \file test_extensions.cpp
/// The beyond-the-paper extensions: the no-collision-detection channel
/// model, schedule serialization, the independent execution validator,
/// worst-case hardness search, and configuration mutations.

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "config/io.hpp"
#include "config/mutations.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "core/partition.hpp"
#include "core/schedule_io.hpp"
#include "graph/algorithms.hpp"
#include "graph/enumeration.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "lowerbounds/hardness.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/validator.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;
using arl::support::ContractViolation;

// ------------------------------------------------------------ no-CD channel

TEST(NoCd, CollisionsReadAsSilence) {
  // Star: both leaves transmit at once; with CD the hub hears (∗), without
  // CD it hears (∅).
  const config::Configuration c(graph::star(3), {0, 0, 0});
  const testkit::BeaconDrip leaves(2, 9, 5);
  class Selective final : public radio::Drip {
   public:
    std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv& env) const override {
      if (env.label == 1u) {
        return testkit::BeaconDrip(2, 9, 5).instantiate(env);
      }
      return testkit::SilentDrip(5).instantiate(env);
    }
    std::string name() const override { return "selective"; }
  };
  radio::SimulatorOptions options;
  options.labels = {0, 1, 1};
  options.channel_model = radio::ChannelModel::NoCollisionDetection;
  const radio::RunResult run = radio::simulate(c, Selective{}, options);
  EXPECT_TRUE(run.nodes[0].history[2].is_silence());
  EXPECT_EQ(run.stats.collisions_heard, 0u);
}

TEST(NoCd, LabelsDropStarredSlots) {
  // Hub with two same-tag leaves: the CD label is {(1,3,*)}, the no-CD label
  // is empty (the collided slot is inaudible).
  const config::Configuration c(graph::star(3), {0, 1, 1});
  const auto cd = core::compute_labels(c, {1, 1, 1});
  const auto nocd = core::compute_labels(c, {1, 1, 1}, nullptr,
                                         radio::ChannelModel::NoCollisionDetection);
  EXPECT_EQ(cd[0], (core::Label{{1, 3, true}}));
  EXPECT_TRUE(nocd[0].empty());
  EXPECT_EQ(nocd[1], cd[1]);  // clean slots are unaffected
}

TEST(NoCd, WeakerFeedbackNeverHelps) {
  // Every configuration feasible without collision detection is feasible
  // with it — exhaustively on n <= 4.
  std::uint64_t cd_feasible = 0;
  std::uint64_t nocd_feasible = 0;
  for (graph::NodeId n = 1; n <= 4; ++n) {
    graph::for_each_connected_graph(n, [&](const graph::Graph& g) {
      std::vector<config::Tag> tags(n, 0);
      for (;;) {
        const config::Configuration c(g, tags);
        const bool cd = core::FastClassifier{}.run(c).feasible();
        const bool nocd =
            core::FastClassifier(radio::ChannelModel::NoCollisionDetection).run(c).feasible();
        EXPECT_TRUE(cd || !nocd) << config::to_text_string(c);
        cd_feasible += cd ? 1 : 0;
        nocd_feasible += nocd ? 1 : 0;
        graph::NodeId position = 0;
        while (position < n && tags[position] == 2) {
          tags[position] = 0;
          ++position;
        }
        if (position == n) {
          break;
        }
        ++tags[position];
      }
    });
  }
  // Collision detection strictly enlarges the feasible set.  Pinned counts
  // (n = 1..4, tags {0,1,2}): the weaker feedback loses 360 of the 2889
  // CD-feasible configurations, all of them at n = 4.
  EXPECT_EQ(cd_feasible, 2889u);
  EXPECT_EQ(nocd_feasible, 2529u);
}

TEST(NoCd, WitnessWhereCollisionDetectionIsEssential) {
  // The hub of a star with two equal-tag leaves hears only the collision of
  // its leaves; drop CD and the hub stays indistinguishable... except the
  // leaves hear the hub cleanly either way.  A genuine witness needs the
  // star to be told apart *through* the collision.  K_{1,3} with tags
  // 0,1,1,0 does it: found by the exhaustive sweep, verified here.
  const config::Configuration c(graph::star(4), {0, 1, 1, 0});
  EXPECT_TRUE(core::FastClassifier{}.run(c).feasible());
  EXPECT_FALSE(
      core::FastClassifier(radio::ChannelModel::NoCollisionDetection).run(c).feasible());
}

TEST(NoCd, ElectionPipelineStaysConsistent) {
  // elect() with the no-CD model: classification, schedule and simulation
  // all run under the weaker feedback and must stay mutually consistent
  // (exactly the classifier-predicted leader, or nobody).
  core::ElectionOptions options;
  options.channel_model = radio::ChannelModel::NoCollisionDetection;
  for (graph::NodeId n = 1; n <= 3; ++n) {
    graph::for_each_connected_graph(n, [&](const graph::Graph& g) {
      std::vector<config::Tag> tags(n, 0);
      for (;;) {
        const core::ElectionReport report = core::elect(config::Configuration(g, tags), options);
        ASSERT_TRUE(report.valid);
        graph::NodeId position = 0;
        while (position < n && tags[position] == 2) {
          tags[position] = 0;
          ++position;
        }
        if (position == n) {
          break;
        }
        ++tags[position];
      }
    });
  }
}

TEST(NoCd, RandomConfigurationsElectConsistently) {
  support::Rng rng(404);
  core::ElectionOptions options;
  options.channel_model = radio::ChannelModel::NoCollisionDetection;
  for (int repeat = 0; repeat < 20; ++repeat) {
    const auto n = static_cast<graph::NodeId>(2 + rng.below(12));
    const config::Configuration c =
        config::random_tags(graph::gnp_connected(n, 0.4, rng), 3, rng);
    const core::ElectionReport report = core::elect(c, options);
    EXPECT_TRUE(report.valid);
  }
}

// ------------------------------------------------------------- schedule io

TEST(ScheduleIo, RoundTripsFeasibleSchedules) {
  for (const auto& c : {config::family_h(3), config::family_g(3), config::staggered_path(6)}) {
    const auto schedule = core::make_schedule(c);
    const std::string text = core::schedule_to_text_string(*schedule);
    const core::CanonicalSchedule parsed = core::schedule_from_text_string(text);
    EXPECT_EQ(parsed.sigma, schedule->sigma);
    EXPECT_EQ(parsed.model, schedule->model);
    EXPECT_EQ(parsed.feasible, schedule->feasible);
    EXPECT_EQ(parsed.leader_old_class, schedule->leader_old_class);
    EXPECT_EQ(parsed.leader_label, schedule->leader_label);
    ASSERT_EQ(parsed.phases.size(), schedule->phases.size());
    for (std::size_t j = 0; j < parsed.phases.size(); ++j) {
      EXPECT_EQ(parsed.phases[j].num_classes, schedule->phases[j].num_classes);
      for (std::size_t k = 0; k < parsed.phases[j].entries.size(); ++k) {
        EXPECT_EQ(parsed.phases[j].entries[k].old_class,
                  schedule->phases[j].entries[k].old_class);
        EXPECT_EQ(parsed.phases[j].entries[k].label, schedule->phases[j].entries[k].label);
      }
    }
  }
}

TEST(ScheduleIo, RoundTripsInfeasibleAndNoCdSchedules) {
  const auto infeasible = core::make_schedule(config::family_s(2));
  EXPECT_EQ(core::schedule_from_text_string(core::schedule_to_text_string(*infeasible)).feasible,
            false);
  const auto nocd =
      core::make_schedule(config::family_h(2), radio::ChannelModel::NoCollisionDetection);
  EXPECT_EQ(core::schedule_from_text_string(core::schedule_to_text_string(*nocd)).model,
            radio::ChannelModel::NoCollisionDetection);
}

TEST(ScheduleIo, ParsedScheduleDrivesARealElection) {
  // The full deployment story: compile, serialize, parse, run.
  const config::Configuration c = config::family_h(4);
  const auto compiled = core::make_schedule(c);
  const auto parsed = std::make_shared<const core::CanonicalSchedule>(
      core::schedule_from_text_string(core::schedule_to_text_string(*compiled)));
  const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(parsed));
  ASSERT_TRUE(run.all_terminated);
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(ScheduleIo, MalformedInputsThrow) {
  EXPECT_THROW((void)core::schedule_from_text_string(""), ContractViolation);
  EXPECT_THROW((void)core::schedule_from_text_string("bogus v9\n"), ContractViolation);
  EXPECT_THROW((void)core::schedule_from_text_string("arl-schedule v1\nsigma x\n"),
               ContractViolation);
  // Unsorted label triples are rejected.
  const std::string bad_label =
      "arl-schedule v1\nsigma 1\nmodel cd\nfeasible 1\n"
      "leader 1 2 1 5 1 1 2 1\nphases 1\nphase 1\nentry 1 0\n";
  EXPECT_THROW((void)core::schedule_from_text_string(bad_label), ContractViolation);
  // Phase P_1 must be L_1 = [(1, null)].
  const std::string bad_p1 =
      "arl-schedule v1\nsigma 1\nmodel cd\nfeasible 0\nphases 1\nphase 1\nentry 2 0\n";
  EXPECT_THROW((void)core::schedule_from_text_string(bad_p1), ContractViolation);
}

// --------------------------------------------------------------- validator

radio::ValidationReport validate_canonical_run(const config::Configuration& c) {
  const auto schedule = core::make_schedule(c);
  const core::CanonicalDrip drip(schedule);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  const radio::RunResult run = radio::simulate(c, drip, options);
  return radio::validate_execution(c, recorder, run);
}

TEST(Validator, CanonicalRunsValidate) {
  for (const auto& c : {config::family_h(3), config::family_s(2), config::family_g(3),
                        config::staggered_path(6)}) {
    const radio::ValidationReport report = validate_canonical_run(c);
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(Validator, BaselineRunsValidate) {
  // Also validates a protocol with forced wakeups and collisions.
  const config::Configuration c = config::family_h(2);
  const lowerbounds::BeepCandidate candidate = lowerbounds::BeepCandidate(1, 9);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  const radio::RunResult run = radio::simulate(c, candidate, options);
  const radio::ValidationReport report = radio::validate_execution(c, recorder, run);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(Validator, DetectsTamperedHistories) {
  const config::Configuration c = config::family_h(2);
  const auto schedule = core::make_schedule(c);
  const core::CanonicalDrip drip(schedule);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  radio::RunResult run = radio::simulate(c, drip, options);

  run.nodes[1].history[3] = radio::HistoryEntry::collision();  // tamper
  const radio::ValidationReport report = radio::validate_execution(c, recorder, run);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("node 1"), std::string::npos);
  EXPECT_NE(report.error.find("H[3]"), std::string::npos);
}

TEST(Validator, DetectsWrongWakeKind) {
  const config::Configuration c = config::family_h(2);
  const auto schedule = core::make_schedule(c);
  const core::CanonicalDrip drip(schedule);
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 0;
  radio::RunResult run = radio::simulate(c, drip, options);

  run.nodes[0].forced_wake = true;  // tamper: canonical wakeups are spontaneous
  const radio::ValidationReport report = radio::validate_execution(c, recorder, run);
  EXPECT_FALSE(report.ok);
}

TEST(Validator, RejectsWindowedHistories) {
  const config::Configuration c = config::family_h(2);
  const testkit::SilentDrip drip(30);  // long enough that the window evicts
  radio::ExecutionRecorder recorder;
  radio::SimulatorOptions options;
  options.trace = &recorder;
  options.history_window = 3;
  const radio::RunResult run = radio::simulate(c, drip, options);
  const radio::ValidationReport report = radio::validate_execution(c, recorder, run);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("full histories"), std::string::npos);
}

// ---------------------------------------------------------------- hardness

TEST(Hardness, ExhaustiveFindsTheFamilyGPattern) {
  // On the path of 9 nodes with binary tags, G_2's assignment (0 0 1 1 1 1 1
  // 0 0) forces 2 iterations; the exhaustive search must find at least that.
  const auto result = lowerbounds::hardest_tags_exhaustive(graph::path(9), 1);
  EXPECT_EQ(result.evaluated, 512u);  // 2^9 assignments
  EXPECT_GE(result.iterations, 2u);
  EXPECT_EQ(result.tags.size(), 9u);
}

TEST(Hardness, ExhaustiveGuardRejectsHugeSpaces) {
  EXPECT_THROW((void)lowerbounds::hardest_tags_exhaustive(graph::path(30), 3),
               ContractViolation);
}

TEST(Hardness, SearchRespectsBudgetAndFindsSomething) {
  support::Rng rng(5);
  const auto result = lowerbounds::hardest_tags_search(graph::path(17), 1, rng, 800);
  EXPECT_GE(result.evaluated, 800u);     // budget exhausted (restarts overshoot a bit)
  EXPECT_LE(result.evaluated, 800u + 200u);
  EXPECT_GE(result.iterations, 2u);      // better than a trivial assignment
  EXPECT_EQ(result.tags.size(), 17u);
}

TEST(Hardness, SearchMatchesExhaustiveOnSmallInstances) {
  support::Rng rng(11);
  const graph::Graph g = graph::path(8);
  const auto exhaustive = lowerbounds::hardest_tags_exhaustive(g, 1);
  const auto search = lowerbounds::hardest_tags_search(g, 1, rng, 4000);
  EXPECT_EQ(search.iterations, exhaustive.iterations);
}

// --------------------------------------------------------------- mutations

TEST(Mutations, WithTagReplacesExactlyOneTag) {
  const config::Configuration c = config::family_h(2);
  const config::Configuration mutated = config::with_tag(c, 1, 7);
  EXPECT_EQ(mutated.tag(1), 7u);
  EXPECT_EQ(mutated.tag(0), c.tag(0));
  EXPECT_EQ(mutated.graph(), c.graph());
}

TEST(Mutations, ExtraEdgeGrowsTheGraph) {
  support::Rng rng(3);
  const config::Configuration c(graph::path(5), {0, 1, 0, 1, 0});
  const auto mutated = config::with_random_extra_edge(c, rng);
  ASSERT_TRUE(mutated.has_value());
  EXPECT_EQ(mutated->graph().edge_count(), c.graph().edge_count() + 1);
  EXPECT_EQ(mutated->tags(), c.tags());
}

TEST(Mutations, ExtraEdgeOnCompleteGraphIsImpossible) {
  support::Rng rng(3);
  const config::Configuration c(graph::complete(4), {0, 1, 2, 3});
  EXPECT_EQ(config::with_random_extra_edge(c, rng), std::nullopt);
}

TEST(Mutations, EdgeRemovalKeepsConnectivity) {
  support::Rng rng(9);
  const config::Configuration c(graph::cycle(6), {0, 1, 2, 0, 1, 2});
  const auto mutated = config::with_random_edge_removed(c, rng);
  ASSERT_TRUE(mutated.has_value());
  EXPECT_EQ(mutated->graph().edge_count(), c.graph().edge_count() - 1);
  EXPECT_TRUE(graph::is_connected(mutated->graph()));
}

TEST(Mutations, TreesHaveNoRemovableEdges) {
  support::Rng rng(9);
  const config::Configuration c(graph::path(5), {0, 1, 0, 1, 0});
  EXPECT_EQ(config::with_random_edge_removed(c, rng), std::nullopt);
}

TEST(Mutations, AllTagMutationsEnumerateEverySingleFlip) {
  const config::Configuration c(graph::path(3), {0, 1, 2});
  const auto mutations = config::all_tag_mutations(c, 2);
  EXPECT_EQ(mutations.size(), 3u * 2u);  // n nodes x max_tag alternatives
  for (const auto& mutated : mutations) {
    graph::NodeId differing = 0;
    for (graph::NodeId v = 0; v < 3; ++v) {
      differing += (mutated.tag(v) != c.tag(v)) ? 1 : 0;
    }
    EXPECT_EQ(differing, 1u);
  }
}

TEST(Mutations, FeasibilityCanFlipUnderOneTagChange) {
  // S_2 (infeasible) becomes H-like (feasible) by nudging one endpoint tag.
  const config::Configuration s = config::family_s(2);
  EXPECT_FALSE(core::FastClassifier{}.run(s).feasible());
  const config::Configuration nudged = config::with_tag(s, 3, 3);  // t_d: 2 -> 3
  EXPECT_TRUE(core::FastClassifier{}.run(nudged).feasible());
}

}  // namespace
