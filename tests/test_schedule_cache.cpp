/// \file test_schedule_cache.cpp
/// The schedule/classification cache's contract: cache-on and cache-off
/// batches are bit-identical — every JobOutcome (leader, rounds,
/// disposition) — for a seeded RandomSweep crossed with every registered
/// protocol, across 1, 2 and 8 threads; plus the unit behaviour of the
/// sharded LRU itself (hits, upgrades, evictions, key separation) and of
/// the per-batch statistics the engine reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "config/families.hpp"
#include "config/fingerprint.hpp"
#include "core/protocol.hpp"
#include "engine/batch_runner.hpp"
#include "engine/schedule_cache.hpp"
#include "engine/sweep.hpp"

namespace {

using namespace arl;

/// The issue's parity workload: a seeded random sweep crossed with every
/// protocol in the registry, so consecutive jobs share a configuration and
/// the cache sees hits from the classifying kinds next to pass-through
/// baseline jobs.
engine::RandomSweep registry_sweep() {
  engine::RandomSweep sweep;
  sweep.nodes = 10;
  sweep.span = 2;
  sweep.seed = 4242;
  sweep.protocols = core::registered_protocols();
  return sweep;
}

constexpr engine::JobId kParityConfigurations = 12;

TEST(ScheduleCache, CacheOnAndCacheOffBatchesAreBitIdentical) {
  const engine::RandomSweep sweep = registry_sweep();
  const engine::JobSource source = engine::random_jobs(sweep);
  const auto count = kParityConfigurations * static_cast<engine::JobId>(sweep.protocols.size());

  std::vector<engine::BatchReport> reports;
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::size_t capacity : {std::size_t{0}, std::size_t{256}}) {
      engine::BatchRunner runner(
          {.threads = threads, .seed = 99, .cache_capacity = capacity});
      reports.push_back(runner.run(count, source));
      EXPECT_EQ(reports.back().cache.has_value(), capacity > 0);
    }
  }
  // Every (thread count, cache setting) combination agrees job for job —
  // leader, rounds, disposition and all — and row for row.
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].jobs, reports[0].jobs) << "combination " << i;
    EXPECT_EQ(reports[i].by_protocol, reports[0].by_protocol) << "combination " << i;
  }
  // The workload has signal: elections happened and the cache actually hit
  // (P - 1 classifying/simulating repeats per configuration would be wasted
  // compiles without it).
  EXPECT_GT(reports[0].valid_count, 0u);
  ASSERT_TRUE(reports[1].cache.has_value());
  EXPECT_GT(reports[1].cache->hits, 0u);
}

TEST(ScheduleCache, CachedFullReportsMatchUncachedOnes) {
  // Beyond the condensed outcomes: the full ElectionReports — classification
  // records, schedule contents, verification — are equal too.
  const engine::RandomSweep sweep = registry_sweep();
  const engine::JobSource source = engine::random_jobs(sweep);
  const auto count = 4 * static_cast<engine::JobId>(sweep.protocols.size());

  engine::BatchRunner uncached({.threads = 2, .seed = 7, .keep_reports = true});
  engine::BatchRunner cached(
      {.threads = 2, .seed = 7, .keep_reports = true, .cache_capacity = 64});
  const engine::BatchReport a = uncached.run(count, source);
  const engine::BatchReport b = cached.run(count, source);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].classification.records, b.reports[i].classification.records) << i;
    EXPECT_EQ(a.reports[i].classification.steps, b.reports[i].classification.steps) << i;
    ASSERT_EQ(a.reports[i].schedule != nullptr, b.reports[i].schedule != nullptr) << i;
    if (a.reports[i].schedule != nullptr) {
      EXPECT_EQ(a.reports[i].schedule->total_rounds(), b.reports[i].schedule->total_rounds())
          << i;
    }
    EXPECT_EQ(a.reports[i].leader, b.reports[i].leader) << i;
    EXPECT_EQ(a.reports[i].valid, b.reports[i].valid) << i;
  }
}

TEST(ScheduleCache, LookupMissesThenHitsTheStoredEntry) {
  engine::ScheduleCache cache(16);
  const config::Configuration c = config::family_h(2);
  const auto model = radio::ChannelModel::CollisionDetection;
  EXPECT_EQ(cache.lookup(c, model, false), nullptr);

  core::CompiledConfiguration compiled;
  compiled.classification = core::Classifier(model).run(c);
  const auto stored = cache.store(c, model, false, std::move(compiled));
  ASSERT_NE(stored, nullptr);
  // The hit returns the very same entry (shared, immutable), and marks it
  // most recently used.
  EXPECT_EQ(cache.lookup(c, model, false), stored);

  const engine::ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ScheduleCache, KeysSeparateModelAndClassifierChoice) {
  // The same configuration under a different channel model or classifier
  // implementation compiles to different artifacts, so each (model, fast)
  // pair owns a distinct entry.
  engine::ScheduleCache cache(16);
  const config::Configuration c = config::family_h(2);
  core::CompiledConfiguration compiled;
  compiled.classification = core::Classifier(radio::ChannelModel::CollisionDetection).run(c);
  (void)cache.store(c, radio::ChannelModel::CollisionDetection, false, std::move(compiled));

  EXPECT_NE(cache.lookup(c, radio::ChannelModel::CollisionDetection, false), nullptr);
  EXPECT_EQ(cache.lookup(c, radio::ChannelModel::NoCollisionDetection, false), nullptr);
  EXPECT_EQ(cache.lookup(c, radio::ChannelModel::CollisionDetection, true), nullptr);
}

TEST(ScheduleCache, ClassifyThenCanonicalUpgradesTheEntryInPlace) {
  // A classify-only job caches the classification without paying for the
  // schedule; a later canonical job on the same configuration reuses the
  // classification, builds only the schedule, and upgrades the entry.
  engine::ScheduleCache cache(16);
  core::ElectionScratch scratch;
  scratch.schedule_cache = &cache;
  const config::Configuration c = config::family_h(2);

  const core::ElectionReport classify =
      core::run_protocol(c, core::ProtocolSpec::classify_only(), {}, scratch);
  EXPECT_TRUE(classify.feasible);
  EXPECT_EQ(classify.schedule, nullptr);
  engine::ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.schedule_builds, 0u);
  EXPECT_EQ(stats.entries, 1u);

  const core::ElectionReport canonical =
      core::run_protocol(c, core::ProtocolSpec::canonical(), {}, scratch);
  EXPECT_TRUE(canonical.valid);
  ASSERT_NE(canonical.schedule, nullptr);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);             // the classification was reused...
  EXPECT_EQ(stats.schedule_builds, 1u);  // ...and only the schedule was built
  EXPECT_EQ(stats.entries, 1u);

  // A third run is a pure hit: same shared schedule, nothing compiled.
  const core::ElectionReport again =
      core::run_protocol(c, core::ProtocolSpec::canonical(), {}, scratch);
  EXPECT_EQ(again.schedule, canonical.schedule);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.schedule_builds, 1u);
}

TEST(ScheduleCache, ClassifyOnlyStoreNeverDowngradesAFullEntry) {
  // The racing-worker interleaving: a classify-only compile stored after a
  // full compile of the same key must keep the schedule the entry already
  // holds, not discard it.
  engine::ScheduleCache cache(16);
  const auto model = radio::ChannelModel::CollisionDetection;
  const config::Configuration c = config::family_h(2);

  core::CompiledConfiguration full;
  full.classification = core::Classifier(model).run(c);
  full.schedule = core::make_schedule(c, model);
  const auto stored = cache.store(c, model, false, std::move(full));
  ASSERT_NE(stored->schedule, nullptr);

  core::CompiledConfiguration classify_only;
  classify_only.classification = core::Classifier(model).run(c);
  const auto kept = cache.store(c, model, false, std::move(classify_only));
  EXPECT_EQ(kept, stored);  // the more complete artifacts survived

  const auto hit = cache.lookup(c, model, false);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->schedule, stored->schedule);
}

TEST(ScheduleCache, EffectiveCapacityNeverExceedsTheRequest) {
  for (const std::size_t requested : {std::size_t{1}, std::size_t{3}, std::size_t{10},
                                      std::size_t{1024}}) {
    engine::ScheduleCache cache(requested);
    EXPECT_LE(cache.capacity(), requested) << requested;
    EXPECT_GE(cache.capacity(), 1u) << requested;
  }
}

TEST(ScheduleCache, CapacityBoundEvictsLeastRecentlyUsed) {
  engine::ScheduleCache cache(1);  // one shard, one slot
  EXPECT_GE(cache.capacity(), 1u);
  const auto model = radio::ChannelModel::CollisionDetection;
  const config::Configuration a = config::family_h(2);
  const config::Configuration b = config::family_s(2);

  core::CompiledConfiguration compiled_a;
  compiled_a.classification = core::Classifier(model).run(a);
  (void)cache.store(a, model, false, std::move(compiled_a));
  core::CompiledConfiguration compiled_b;
  compiled_b.classification = core::Classifier(model).run(b);
  (void)cache.store(b, model, false, std::move(compiled_b));

  EXPECT_EQ(cache.lookup(a, model, false), nullptr);  // evicted by b
  EXPECT_NE(cache.lookup(b, model, false), nullptr);
  const engine::ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.lookup(b, model, false), nullptr);
}

TEST(ScheduleCache, SingleThreadedCrossProtocolCountersAreExact) {
  // One thread makes the counters deterministic: a {canonical, classify}
  // cross product classifies each configuration exactly once (the canonical
  // job misses and compiles, the classify job hits) and builds exactly one
  // schedule per configuration.
  constexpr engine::JobId kConfigurations = 6;
  const engine::CountedSweep crossed = engine::cross_protocols(
      engine::exhaustive_sweep(3, 1),
      {core::ProtocolSpec::canonical(), core::ProtocolSpec::classify_only()});
  const auto count = std::min<engine::JobId>(crossed.count, 2 * kConfigurations);

  engine::BatchRunner runner({.threads = 1, .cache_capacity = 64});
  const engine::BatchReport report = runner.run(count, crossed.source);
  ASSERT_TRUE(report.cache.has_value());
  EXPECT_EQ(report.cache->misses, count / 2);
  EXPECT_EQ(report.cache->hits, count / 2);
  EXPECT_EQ(report.cache->schedule_builds, count / 2);
  EXPECT_EQ(report.cache->evictions, 0u);
  EXPECT_DOUBLE_EQ(report.cache->hit_rate(), 0.5);
}

TEST(ScheduleCache, RepeatedConfigurationsShareOneScheduleObject) {
  // The memoization is visible in the artifacts: two canonical jobs on the
  // same configuration carry pointer-identical schedules when cached, and
  // distinct ones when not.
  std::vector<engine::BatchJob> jobs;
  jobs.push_back({config::family_h(3), core::ProtocolSpec::canonical(), {}});
  jobs.push_back({config::family_h(3), core::ProtocolSpec::canonical(), {}});

  const engine::BatchReport cached =
      engine::run_batch(jobs, {.threads = 1, .keep_reports = true, .cache_capacity = 8});
  ASSERT_EQ(cached.reports.size(), 2u);
  EXPECT_EQ(cached.reports[0].schedule, cached.reports[1].schedule);

  const engine::BatchReport uncached =
      engine::run_batch(jobs, {.threads = 1, .keep_reports = true});
  ASSERT_EQ(uncached.reports.size(), 2u);
  EXPECT_NE(uncached.reports[0].schedule, uncached.reports[1].schedule);
  EXPECT_FALSE(uncached.cache.has_value());
}

TEST(ScheduleCache, UncachedRunProtocolIsUnaffected) {
  // A null cache handle (the default scratch) is exactly the old pipeline.
  const config::Configuration c = config::family_h(2);
  core::ElectionScratch scratch;
  const core::ElectionReport a = core::run_protocol(c, core::ProtocolSpec::canonical(), {});
  const core::ElectionReport b =
      core::run_protocol(c, core::ProtocolSpec::canonical(), {}, scratch);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.local_rounds, b.local_rounds);
  EXPECT_TRUE(a.valid);
  EXPECT_TRUE(b.valid);
}

}  // namespace
