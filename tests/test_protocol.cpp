/// \file test_protocol.cpp
/// The protocol registry and the unified run_protocol() dispatch: registry
/// round-trips, parse validation, elect() compatibility, and the shared
/// labeled/randomized harness (wakeup-order labels, dispositions, horizon
/// guard).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "config/families.hpp"
#include "core/protocol.hpp"
#include "support/assert.hpp"

namespace {

using namespace arl;

config::Configuration simultaneous_single_hop(graph::NodeId n) {
  return config::single_hop(std::vector<config::Tag>(n, 0));
}

// ---------------------------------------------------------------- registry

TEST(ProtocolRegistry, NamesRoundTripForEveryRegisteredSpec) {
  ASSERT_FALSE(core::registered_protocols().empty());
  std::set<std::string> names;
  for (const core::ProtocolSpec& spec : core::registered_protocols()) {
    EXPECT_EQ(core::parse_protocol(spec.name()), spec) << spec.name();
    EXPECT_FALSE(spec.describe().empty());
    names.insert(spec.name());
  }
  EXPECT_EQ(names.size(), core::registered_protocols().size());  // keys are unique
}

TEST(ProtocolRegistry, ParameterizedNamesRoundTrip) {
  for (const core::ProtocolSpec spec :
       {core::ProtocolSpec::binary_search(12), core::ProtocolSpec::tree_split(7),
        core::ProtocolSpec::randomized(64)}) {
    EXPECT_EQ(core::parse_protocol(spec.name()), spec) << spec.name();
  }
  EXPECT_EQ(core::parse_protocol("binary-search:12").label_bits, 12u);
  EXPECT_EQ(core::parse_protocol("tree-split:7").label_bits, 7u);
  EXPECT_EQ(core::parse_protocol("randomized:64").max_slots, 64u);
  // Default parameters fold back into the bare key.
  EXPECT_EQ(core::ProtocolSpec::binary_search().name(), "binary-search");
  EXPECT_EQ(core::ProtocolSpec::randomized().name(), "randomized");
}

TEST(ProtocolRegistry, UnknownNamesFailListingTheRegistry) {
  try {
    (void)core::parse_protocol("bogus");
    FAIL() << "parse_protocol accepted an unknown name";
  } catch (const support::ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    for (const char* name : {"canonical", "classify", "binary-search", "tree-split",
                             "randomized"}) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
  EXPECT_THROW((void)core::parse_protocol("canonical:3"), support::ContractViolation);
  EXPECT_THROW((void)core::parse_protocol("binary-search:nope"), support::ContractViolation);
  EXPECT_THROW((void)core::parse_protocol("binary-search:64"), support::ContractViolation);
  EXPECT_THROW((void)core::parse_protocol("randomized:0"), support::ContractViolation);
  EXPECT_THROW((void)core::parse_protocol(""), support::ContractViolation);
}

// ---------------------------------------------------------------- dispatch

TEST(RunProtocol, CanonicalMatchesElect) {
  const config::Configuration c = config::staggered_path(6);
  const core::ElectionReport via_registry = core::run_protocol(c, core::ProtocolSpec::canonical());
  const core::ElectionReport via_elect = core::elect(c);
  EXPECT_EQ(via_registry.protocol, "canonical");
  EXPECT_EQ(via_elect.protocol, "canonical");
  EXPECT_EQ(via_registry.disposition, core::Disposition::Elected);
  EXPECT_EQ(via_registry.feasible, via_elect.feasible);
  EXPECT_EQ(via_registry.leader, via_elect.leader);
  EXPECT_EQ(via_registry.valid, via_elect.valid);
  EXPECT_EQ(via_registry.local_rounds, via_elect.local_rounds);
  EXPECT_EQ(via_registry.stats, via_elect.stats);
}

TEST(RunProtocol, CanonicalOnInfeasibleConfigurationsReportsNoLeader) {
  const core::ElectionReport report =
      core::run_protocol(simultaneous_single_hop(4), core::ProtocolSpec::canonical());
  EXPECT_FALSE(report.feasible);
  EXPECT_TRUE(report.valid);  // correctly elected nobody
  EXPECT_EQ(report.disposition, core::Disposition::NoLeader);
  EXPECT_FALSE(report.leader.has_value());
}

TEST(RunProtocol, ClassifyOnlyNeverSimulates) {
  const core::ElectionReport report =
      core::run_protocol(config::staggered_path(5), core::ProtocolSpec::classify_only());
  EXPECT_EQ(report.protocol, "classify");
  EXPECT_EQ(report.disposition, core::Disposition::NotSimulated);
  EXPECT_TRUE(report.feasible);
  EXPECT_FALSE(report.simulated);
  EXPECT_EQ(report.schedule, nullptr);
}

// ----------------------------------------------------- labeled harness

TEST(RunProtocol, LabeledProtocolsElectTheEarliestWakerByDefault) {
  // Auto-assigned labels follow wakeup order (stable on node id), so on a
  // simultaneous single-hop configuration node 0 holds label 0 and wins both
  // labeled baselines.
  for (const core::ProtocolSpec spec :
       {core::ProtocolSpec::binary_search(), core::ProtocolSpec::tree_split()}) {
    for (const graph::NodeId n : {2u, 5u, 16u}) {
      const core::ElectionReport report = core::run_protocol(simultaneous_single_hop(n), spec);
      EXPECT_EQ(report.protocol, spec.name());
      EXPECT_EQ(report.disposition, core::Disposition::Elected) << spec.name() << " n=" << n;
      ASSERT_TRUE(report.leader.has_value());
      EXPECT_EQ(*report.leader, 0u);
      EXPECT_TRUE(report.valid);
      EXPECT_TRUE(report.simulated);
      EXPECT_GT(report.local_rounds, 0u);
      // Baselines never classify.
      EXPECT_FALSE(report.feasible);
      EXPECT_EQ(report.classification.iterations, 0u);
    }
  }
}

TEST(RunProtocol, ExplicitLabelsOverrideTheWakeupOrderAssignment) {
  core::ElectionOptions options;
  options.simulator.labels = {3, 0, 2, 1};  // node 1 holds the minimum label
  const core::ElectionReport report =
      core::run_protocol(simultaneous_single_hop(4), core::ProtocolSpec::binary_search(4),
                         options);
  ASSERT_TRUE(report.leader.has_value());
  EXPECT_EQ(*report.leader, 1u);
}

TEST(RunProtocol, BinarySearchRunsInExactlyLPlusOneRounds) {
  const core::ElectionReport report =
      core::run_protocol(simultaneous_single_hop(10), core::ProtocolSpec::binary_search(6));
  EXPECT_EQ(report.local_rounds, 7u);
}

TEST(RunProtocol, DuplicateLabelsFailDetectably) {
  // Failure injection: duplicate labels make a fully refined tree-split
  // prefix collide.  NoLeader (not Failed) proves the protocol terminated
  // everywhere instead of spinning to the horizon guard.
  core::ElectionOptions options;
  options.simulator.labels = {5, 5, 2, 2};
  const core::ElectionReport report = core::run_protocol(
      simultaneous_single_hop(4), core::ProtocolSpec::tree_split(3), options);
  EXPECT_EQ(report.disposition, core::Disposition::NoLeader);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.leader.has_value());
}

TEST(RunProtocol, TooNarrowALabelUniverseFailsWithoutThrowing) {
  // binary-search:2 cannot label 16 nodes; a mixed-protocol batch must get a
  // Failed job, not an exception that kills every other job.
  const core::ElectionReport report =
      core::run_protocol(simultaneous_single_hop(16), core::ProtocolSpec::binary_search(2));
  EXPECT_EQ(report.disposition, core::Disposition::Failed);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.simulated);
}

// -------------------------------------------------- randomized harness

TEST(RunProtocol, RandomizedElectsOnDeterministicallyImpossibleConfigurations) {
  // The headline contrast: all-equal tags are infeasible for every
  // deterministic anonymous protocol, yet the randomized baseline elects —
  // and through the same API surface.
  const config::Configuration c = simultaneous_single_hop(8);
  EXPECT_EQ(core::run_protocol(c, core::ProtocolSpec::classify_only()).disposition,
            core::Disposition::NotSimulated);
  EXPECT_FALSE(core::run_protocol(c, core::ProtocolSpec::classify_only()).feasible);

  std::set<graph::NodeId> winners;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    core::ElectionOptions options;
    options.simulator.coin_seed = seed;
    const core::ElectionReport report =
        core::run_protocol(c, core::ProtocolSpec::randomized(), options);
    EXPECT_EQ(report.disposition, core::Disposition::Elected) << "seed=" << seed;
    ASSERT_TRUE(report.leader.has_value());
    winners.insert(*report.leader);
  }
  EXPECT_GT(winners.size(), 1u);  // anonymity: no node is structurally favoured
}

TEST(RunProtocol, RandomizedSlotGuardForcesABoundedNoLeaderOutcome) {
  // One node never hears an echo, so no slot succeeds; the guard terminates
  // the run cleanly — NoLeader, not a Failed horizon truncation.
  const core::ElectionReport report =
      core::run_protocol(simultaneous_single_hop(1), core::ProtocolSpec::randomized(16));
  EXPECT_EQ(report.disposition, core::Disposition::NoLeader);
  EXPECT_FALSE(report.valid);
  EXPECT_LE(report.global_rounds, 2u * 17u + 4u);
}

TEST(RunProtocol, ScratchReuseDoesNotChangeOutcomes) {
  core::ElectionScratch scratch;
  for (const core::ProtocolSpec& spec : core::registered_protocols()) {
    const config::Configuration c = simultaneous_single_hop(6);
    const core::ElectionReport fresh = core::run_protocol(c, spec);
    const core::ElectionReport reused = core::run_protocol(c, spec, {}, scratch);
    EXPECT_EQ(fresh.disposition, reused.disposition) << spec.name();
    EXPECT_EQ(fresh.leader, reused.leader) << spec.name();
    EXPECT_EQ(fresh.local_rounds, reused.local_rounds) << spec.name();
    EXPECT_EQ(fresh.stats, reused.stats) << spec.name();
  }
}

}  // namespace
