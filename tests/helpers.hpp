#pragma once

/// \file helpers.hpp
/// Shared test utilities: minimal hand-written protocols that exercise
/// specific simulator behaviours, and history/partition inspection helpers
/// used by the property suites.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "core/classifier.hpp"
#include "graph/graph.hpp"
#include "radio/program.hpp"
#include "radio/simulator.hpp"

namespace arl::testkit {

/// Listens for `lifetime` rounds, then terminates.  Never transmits.
class SilentDrip final : public radio::Drip {
 public:
  explicit SilentDrip(config::Round lifetime) : lifetime_(lifetime) {}

  std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv&) const override {
    class Program final : public radio::NodeProgram {
     public:
      explicit Program(config::Round lifetime) : lifetime_(lifetime) {}
      radio::Action decide(config::Round i, const radio::HistoryView&) override {
        return i > lifetime_ ? radio::Action::terminate() : radio::Action::listen();
      }

     private:
      config::Round lifetime_;
    };
    return std::make_unique<Program>(lifetime_);
  }
  std::string name() const override { return "silent"; }

 private:
  config::Round lifetime_;
};

/// Transmits `payload` in local round `fire`, listens otherwise, terminates
/// at local round `lifetime` (> fire).
class BeaconDrip final : public radio::Drip {
 public:
  BeaconDrip(config::Round fire, radio::Message payload, config::Round lifetime)
      : fire_(fire), payload_(payload), lifetime_(lifetime) {}

  std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv&) const override {
    class Program final : public radio::NodeProgram {
     public:
      Program(config::Round fire, radio::Message payload, config::Round lifetime)
          : fire_(fire), payload_(payload), lifetime_(lifetime) {}
      radio::Action decide(config::Round i, const radio::HistoryView&) override {
        if (i >= lifetime_) {
          return radio::Action::terminate();
        }
        if (i == fire_) {
          return radio::Action::transmit(payload_);
        }
        return radio::Action::listen();
      }

     private:
      config::Round fire_;
      radio::Message payload_;
      config::Round lifetime_;
    };
    return std::make_unique<Program>(fire_, payload_, lifetime_);
  }
  std::string name() const override { return "beacon"; }

 private:
  config::Round fire_;
  radio::Message payload_;
  config::Round lifetime_;
};

/// Never terminates (exercises the horizon guard).
class ImmortalDrip final : public radio::Drip {
 public:
  std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv&) const override {
    class Program final : public radio::NodeProgram {
     public:
      radio::Action decide(config::Round, const radio::HistoryView&) override {
        return radio::Action::listen();
      }
    };
    return std::make_unique<Program>();
  }
  std::string name() const override { return "immortal"; }
};

/// Trace sink that records, per global round, who transmitted.
class TransmissionLog final : public radio::TraceSink {
 public:
  void on_action(graph::NodeId v, config::Round global_round, config::Round,
                 const radio::Action& action) override {
    if (action.is_transmit()) {
      transmissions_.emplace_back(global_round, v);
    }
  }

  /// (global round, node) pairs in execution order.
  [[nodiscard]] const std::vector<std::pair<config::Round, graph::NodeId>>& entries() const {
    return transmissions_;
  }

  /// Nodes transmitting in a given global round.
  [[nodiscard]] std::vector<graph::NodeId> transmitters_in(config::Round round) const {
    std::vector<graph::NodeId> out;
    for (const auto& [r, v] : transmissions_) {
      if (r == round) {
        out.push_back(v);
      }
    }
    return out;
  }

  /// First global round with any transmission, or none.
  [[nodiscard]] std::optional<config::Round> first_round() const {
    if (transmissions_.empty()) {
      return std::nullopt;
    }
    config::Round best = transmissions_.front().first;
    for (const auto& [r, v] : transmissions_) {
      best = std::min(best, r);
    }
    return best;
  }

 private:
  std::vector<std::pair<config::Round, graph::NodeId>> transmissions_;
};

/// Groups nodes by their history prefix H[0..upto] (inclusive); returns a
/// partition id per node, numbered by first appearance in node order.
/// Requires full (unwindowed) histories of at least upto+1 entries.
inline std::vector<core::ClassId> history_partition(const radio::RunResult& run,
                                                    std::size_t upto) {
  std::map<std::vector<radio::HistoryEntry>, core::ClassId> buckets;
  std::vector<core::ClassId> partition(run.nodes.size(), 0);
  for (std::size_t v = 0; v < run.nodes.size(); ++v) {
    const auto& history = run.nodes[v].history;
    const auto prefix_length =
        static_cast<std::ptrdiff_t>(std::min(history.size(), upto + 1));
    std::vector<radio::HistoryEntry> prefix(history.begin(), history.begin() + prefix_length);
    const auto [it, inserted] =
        buckets.emplace(std::move(prefix), static_cast<core::ClassId>(buckets.size() + 1));
    partition[v] = it->second;
  }
  return partition;
}

/// True when two partitions induce the same equivalence relation (ignoring
/// the numbering of the classes).
inline bool same_partition(const std::vector<core::ClassId>& a,
                           const std::vector<core::ClassId>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  std::map<core::ClassId, core::ClassId> a_to_b;
  std::map<core::ClassId, core::ClassId> b_to_a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [it_ab, fresh_ab] = a_to_b.emplace(a[v], b[v]);
    if (!fresh_ab && it_ab->second != b[v]) {
      return false;
    }
    const auto [it_ba, fresh_ba] = b_to_a.emplace(b[v], a[v]);
    if (!fresh_ba && it_ba->second != a[v]) {
      return false;
    }
  }
  return true;
}

}  // namespace arl::testkit
