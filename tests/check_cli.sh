#!/usr/bin/env bash
# Flag-validation checks for the arl CLI, run by ctest (see CMakeLists.txt).
# Usage: check_cli.sh <path-to-arl-binary>
set -u

cli="$1"
case "$cli" in
  /*) ;;
  *) cli="$PWD/$cli" ;;  # the resume check re-runs emitted specs from a temp cwd
esac
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Exit-code contract: help and no-args print the reference and exit 0;
# unknown commands and malformed flag values uniformly exit 2.
out=$("$cli" 2>&1)
[ $? -eq 0 ] || fail "no-args should print usage and exit 0"
case "$out" in
  *usage:*) ;;
  *) fail "no-args output should contain the usage reference" ;;
esac
"$cli" help >/dev/null 2>&1
[ $? -eq 0 ] || fail "'arl help' should exit 0"
"$cli" --help >/dev/null 2>&1
[ $? -eq 0 ] || fail "'arl --help' should exit 0"
"$cli" frobnicate >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown command should exit 2"

# Pathological --threads values are usage errors, not thread storms.
for value in -1 257 100000 lots; do
  out=$("$cli" sweep --threads=$value --count=1 2>&1)
  status=$?
  [ "$status" -eq 2 ] || fail "--threads=$value: expected exit 2, got $status"
  case "$out" in
    *threads*) ;;
    *) fail "--threads=$value error should mention the flag: $out" ;;
  esac
done

# Unknown --protocol values exit 2 with an error listing the registry.
out=$("$cli" sweep --protocol=bogus --count=1 2>&1)
status=$?
[ "$status" -eq 2 ] || fail "unknown protocol: expected exit 2, got $status"
case "$out" in
  *bogus*) ;;
  *) fail "unknown-protocol error should echo the offending name: $out" ;;
esac
for name in canonical classify binary-search tree-split randomized; do
  case "$out" in
    *"$name"*) ;;
    *) fail "unknown-protocol error should list '$name': $out" ;;
  esac
done

# Malformed protocol parameters exit 2 as well.
"$cli" sweep --protocol=binary-search:nope --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "malformed protocol parameter should exit 2"
"$cli" sweep --protocol=canonical:3 --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "parameter on a parameterless protocol should exit 2"

# The legacy shorthand conflicts with the explicit flag instead of being
# silently ignored.
"$cli" sweep --classify-only --protocol=canonical --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--classify-only with --protocol should exit 2"

# A mixed-protocol cross-product sweep runs and prints one comparison row
# per protocol.  (Exit 0 when every job verifies, 1 otherwise — baselines
# legitimately fail on out-of-model configurations.)
out=$("$cli" sweep --count=6 --family=staggered \
      --protocol=canonical --protocol=binary-search --protocol=randomized 2>&1)
status=$?
[ "$status" -le 1 ] || fail "mixed-protocol sweep should run, got exit $status"
for name in canonical binary-search randomized; do
  case "$out" in
    *"$name"*) ;;
    *) fail "sweep output should contain a '$name' row: $out" ;;
  esac
done

# Unknown families still exit 2 (pre-existing contract, kept).
"$cli" sweep --family=bogus --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown family should exit 2"

# --------------------------------------------------------------- workloads

# The registry listing command exits 0 and names every workload kind.
out=$("$cli" workloads 2>&1)
[ $? -eq 0 ] || fail "'arl workloads' should exit 0"
for name in random exhaustive family-g family-h family-s staggered grid torus \
            hypercube tree single-hop mutations; do
  case "$out" in
    *"$name"*) ;;
    *) fail "workloads listing should contain '$name': $out" ;;
  esac
done

# Bad --workload values exit 2 with an error echoing the offending name and
# listing the registry (symmetric to the --protocol contract).
out=$("$cli" sweep --workload=bogus --count=1 2>&1)
status=$?
[ "$status" -eq 2 ] || fail "unknown workload: expected exit 2, got $status"
case "$out" in
  *bogus*) ;;
  *) fail "unknown-workload error should echo the offending name: $out" ;;
esac
for name in random grid torus hypercube tree single-hop mutations exhaustive; do
  case "$out" in
    *"$name"*) ;;
    *) fail "unknown-workload error should list '$name': $out" ;;
  esac
done

# Malformed workload parameters exit 2 as well — including single-node
# shapes whose positive sigma could never be realized (they must fail at
# parse time, not mid-batch inside a worker).
for value in "random:n=0" "random:p=2" "random:n=4,n=5" "random:rows=3" "grid:rows=0" \
             "torus:rows=2,cols=3" "hypercube:d=21" "exhaustive:n=9" "mutations:" \
             "mutations:bogus" "random:" "random:n=1" "tree:n=1" "single-hop:n=1" \
             "grid:rows=1,cols=1"; do
  "$cli" sweep --workload="$value" --count=1 >/dev/null 2>&1
  [ $? -eq 2 ] || fail "--workload=$value should exit 2"
done
"$cli" sweep --workload=random:n=1,sigma=0 --count=1 >/dev/null 2>&1
[ $? -eq 0 ] || fail "a one-node workload with sigma=0 should run and exit 0"

# Contradictory flag combinations are rejected with exit 2: the explicit
# workload axis versus the legacy alias and execution flags (a bare flag
# would silently override the spec's own key), and an explicit --count on
# a workload that counts itself.
for flag in --family=random --n=8 --sigma=2 --p=0.5 --model=nocd --fast; do
  "$cli" sweep --workload=random $flag --count=1 >/dev/null 2>&1
  [ $? -eq 2 ] || fail "--workload with $flag should exit 2"
done
"$cli" sweep --workload=exhaustive:n=3,tau=1 --count=5 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--count with a self-counting workload should exit 2"
"$cli" sweep --workload=exhaustive:n=3,tau=1 >/dev/null 2>&1
[ $? -eq 0 ] || fail "a self-counting workload without --count should run and exit 0"

# The legacy flags are aliases: byte-identical tables to the --workload
# spelling (execution circumstance rows filtered — including the trailing
# phase-timing block, which is all timings — and whitespace squeezed, as in
# the shard checks: column widths align to the timing rows' digits).
alias_filter() {
  sed '/^phase timings:/,$d' "$1" | sed '${/^$/d}' |
    grep -vE "wall time|per second|worker threads" | sed -E 's/ +/ /g; s/-+/-/g'
}
"$cli" sweep --count=8 --n=8 --sigma=2 --seed=3 > "$tmpdir/legacy.txt" 2>&1 ||
  fail "legacy random sweep should exit 0"
"$cli" sweep --count=8 --workload=random:n=8,p=0.3,sigma=2 --seed=3 > "$tmpdir/spec.txt" 2>&1 ||
  fail "workload random sweep should exit 0"
if ! diff <(alias_filter "$tmpdir/legacy.txt") <(alias_filter "$tmpdir/spec.txt") >/dev/null; then
  fail "--family=random tables should be byte-identical to --workload=random:..."
fi
"$cli" sweep --count=6 --family=staggered > "$tmpdir/legacy-stag.txt" 2>&1 ||
  fail "legacy staggered sweep should exit 0"
"$cli" sweep --count=6 --workload=staggered > "$tmpdir/spec-stag.txt" 2>&1 ||
  fail "workload staggered sweep should exit 0"
if ! diff <(alias_filter "$tmpdir/legacy-stag.txt") <(alias_filter "$tmpdir/spec-stag.txt") \
    >/dev/null; then
  fail "--family=staggered tables should be byte-identical to --workload=staggered"
fi

# A topology workload runs the whole distributed pipeline: shard reports
# carry its canonical name, and the merge is byte-identical to the
# unsharded tables (whitespace squeezed as in the sharded checks below,
# since column widths align to the filtered wall-time row's digits).
wfilter() {
  sed '/^phase timings:/,$d' "$1" | sed '${/^$/d}' |
    grep -vE "wall time|per second|worker threads" | sed -E 's/ +/ /g; s/-+/-/g'
}
wflags="--count=6 --workload=grid:rows=3,cols=3,sigma=2"
"$cli" sweep $wflags > "$tmpdir/wsingle.txt" 2>&1 ||
  fail "grid workload sweep should exit 0"
"$cli" sweep $wflags --shard=0/2 --out="$tmpdir/w0.txt" >/dev/null 2>&1 ||
  fail "grid workload shard 0/2 should exit 0"
"$cli" sweep $wflags --shard=1/2 --out="$tmpdir/w1.txt" >/dev/null 2>&1 ||
  fail "grid workload shard 1/2 should exit 0"
grep -q "sweep .* grid:rows=3,cols=3,sigma=2$" "$tmpdir/w0.txt" ||
  fail "shard report should carry the canonical workload name"
"$cli" merge "$tmpdir/w0.txt" "$tmpdir/w1.txt" > "$tmpdir/wmerged.txt" 2>&1 ||
  fail "grid workload merge should exit 0"
if ! diff <(wfilter "$tmpdir/wmerged.txt") <(wfilter "$tmpdir/wsingle.txt") >/dev/null; then
  fail "merged grid workload shards should print exactly the unsharded tables"
fi

# Bad --cache values exit 2 with a usage error.
for value in bogus -3 12cats 9999999999; do
  out=$("$cli" sweep --cache=$value --count=1 2>&1)
  status=$?
  [ "$status" -eq 2 ] || fail "--cache=$value: expected exit 2, got $status"
  case "$out" in
    *cache*) ;;
    *) fail "--cache=$value error should mention the flag: $out" ;;
  esac
done

# The cache stats line appears exactly when the cache is enabled.
out=$("$cli" sweep --count=4 --n=6 --cache=on \
      --protocol=canonical --protocol=classify 2>&1)
[ $? -eq 0 ] || fail "cached sweep should verify and exit 0"
case "$out" in
  *"schedule cache:"*) ;;
  *) fail "--cache=on sweep should print the schedule cache stats line: $out" ;;
esac
out=$("$cli" sweep --count=4 --n=6 --cache=16 \
      --protocol=canonical --protocol=classify 2>&1)
[ $? -eq 0 ] || fail "capacity-cached sweep should verify and exit 0"
case "$out" in
  *"schedule cache:"*) ;;
  *) fail "--cache=16 sweep should print the schedule cache stats line: $out" ;;
esac
for flags in "" "--cache=off" "--cache=0"; do
  out=$("$cli" sweep --count=4 --n=6 $flags 2>&1)
  [ $? -eq 0 ] || fail "uncached sweep ($flags) should verify and exit 0"
  case "$out" in
    *"schedule cache:"*) fail "uncached sweep ($flags) must not print cache stats: $out" ;;
    *) ;;
  esac
done

# ------------------------------------------------------------ engine modes

# Bad --engine values exit 2 with a usage error naming the flag.
for value in bogus fast ""; do
  out=$("$cli" sweep --engine=$value --count=1 2>&1)
  status=$?
  [ "$status" -eq 2 ] || fail "--engine=$value: expected exit 2, got $status"
  case "$out" in
    *engine*) ;;
    *) fail "--engine=$value error should mention the flag: $out" ;;
  esac
done

# The engines compute bit-identical results: scalar, wavefront and the
# default (auto) print the same tables once timing rows are filtered.
# (Exit <= 1: the randomized baseline legitimately fails verification on
# configurations outside its model, same as the mixed-protocol check.)
eflags="--count=8 --n=8 --sigma=2 --seed=5 --protocol=canonical --protocol=randomized"
"$cli" sweep $eflags --engine=scalar > "$tmpdir/escalar.txt" 2>&1
[ $? -le 1 ] || fail "--engine=scalar sweep should run"
"$cli" sweep $eflags --engine=wavefront > "$tmpdir/ewave.txt" 2>&1
[ $? -le 1 ] || fail "--engine=wavefront sweep should run"
"$cli" sweep $eflags > "$tmpdir/eauto.txt" 2>&1
[ $? -le 1 ] || fail "default-engine sweep should run"
if ! diff <(alias_filter "$tmpdir/escalar.txt") <(alias_filter "$tmpdir/ewave.txt") >/dev/null; then
  fail "--engine=scalar and --engine=wavefront tables should be byte-identical"
fi
if ! diff <(alias_filter "$tmpdir/ewave.txt") <(alias_filter "$tmpdir/eauto.txt") >/dev/null; then
  fail "default engine tables should match --engine=wavefront"
fi

# The sweep summary reports its own throughput (no bench run needed).
grep -q "node-rounds per second" "$tmpdir/eauto.txt" ||
  fail "sweep summary should print node-rounds per second"
grep -q "global rounds" "$tmpdir/eauto.txt" ||
  fail "sweep summary should print the global rounds total"

# ----------------------------------------------------------- sharded sweeps

# Malformed --shard values and conflicting distributed flags exit 2.
for value in bogus 2/2 0/0 1/ /2 1.5/2; do
  "$cli" sweep --shard=$value --count=1 >/dev/null 2>&1
  [ $? -eq 2 ] || fail "--shard=$value should exit 2"
done
"$cli" sweep --shard=0/2 --workers=2 --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--shard with --workers should exit 2"
"$cli" sweep --out="$tmpdir/x" --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--out without --shard should exit 2"
"$cli" sweep --shard=0/2 --out= --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "empty --out= should exit 2, not fall back to stdout"
for value in 0 257 bogus; do
  "$cli" sweep --workers=$value --count=1 >/dev/null 2>&1
  [ $? -eq 2 ] || fail "--workers=$value should exit 2"
done

# Shard emission + merge reassembles the exact unsharded report (wall time,
# worker count and throughput are execution circumstances, filtered out;
# whitespace is squeezed because column widths align to the widest cell,
# which may be a filtered row's wall-time digits).
sweep_flags="--count=12 --n=8 --protocol=canonical --protocol=classify"
filter() {
  sed '/^phase timings:/,$d' "$1" | sed '${/^$/d}' |
    grep -vE "wall time|per second|worker threads" | sed -E 's/ +/ /g; s/-+/-/g'
}
"$cli" sweep $sweep_flags > "$tmpdir/single.txt" 2>&1 ||
  fail "unsharded reference sweep should exit 0"
"$cli" sweep $sweep_flags --shard=0/2 --out="$tmpdir/s0.txt" >/dev/null 2>&1 ||
  fail "shard 0/2 should run and exit 0"
"$cli" sweep $sweep_flags --shard=1/2 --out="$tmpdir/s1.txt" >/dev/null 2>&1 ||
  fail "shard 1/2 should run and exit 0"
head -1 "$tmpdir/s0.txt" | grep -q "arl-shard-report" ||
  fail "shard output should be a versioned shard report"
"$cli" merge "$tmpdir/s0.txt" "$tmpdir/s1.txt" > "$tmpdir/merged.txt" 2>&1 ||
  fail "merge of both shards should exit 0"
if ! diff <(filter "$tmpdir/merged.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "merged shard report should print exactly the unsharded sweep tables"
fi

# A shard report also lands on stdout when --out is absent.
"$cli" sweep $sweep_flags --shard=0/2 2>/dev/null | head -1 | grep -q "arl-shard-report" ||
  fail "--shard without --out should write the report to stdout"

# The local worker driver is the same pipeline end-to-end.
"$cli" sweep $sweep_flags --workers=2 > "$tmpdir/workers.txt" 2>&1 ||
  fail "--workers=2 sweep should exit 0"
if ! diff <(filter "$tmpdir/workers.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "--workers sweep should print exactly the unsharded sweep tables"
fi

# Bad merges are usage errors: nothing, unreadable, gap, overlap, corruption.
"$cli" merge >/dev/null 2>&1
[ $? -eq 2 ] || fail "merge without files should exit 2"
"$cli" merge "$tmpdir/does-not-exist" >/dev/null 2>&1
[ $? -eq 2 ] || fail "merge of a missing file should exit 2"
"$cli" merge "$tmpdir/s0.txt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "merge with a gap (missing shard) should exit 2"
"$cli" merge "$tmpdir/s0.txt" "$tmpdir/s0.txt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "merge with overlapping shards should exit 2"
sed 's/^arl-shard-report [0-9]*$/arl-shard-report 99/' "$tmpdir/s0.txt" > "$tmpdir/bad-version.txt"
out=$("$cli" merge "$tmpdir/bad-version.txt" "$tmpdir/s1.txt" 2>&1)
[ $? -eq 2 ] || fail "merge of a version-mismatched report should exit 2"
case "$out" in
  *version*) ;;
  *) fail "version-mismatch error should say so: $out" ;;
esac
head -5 "$tmpdir/s0.txt" > "$tmpdir/truncated.txt"
"$cli" merge "$tmpdir/truncated.txt" "$tmpdir/s1.txt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "merge of a truncated report should exit 2"
"$cli" sweep $sweep_flags --seed=2 --shard=1/2 --out="$tmpdir/other-seed.txt" >/dev/null 2>&1 ||
  fail "other-seed shard should run and exit 0"
"$cli" merge "$tmpdir/s0.txt" "$tmpdir/other-seed.txt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "merge of shards from different seeds should exit 2"

# ----------------------------------------------------------- artifact store

# Bad --store values exit 2: an empty path, the server-side "off" spelling,
# and the contradictory store-without-cache combination.
"$cli" sweep --store= --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "empty --store= should exit 2"
"$cli" sweep --store=off --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--store=off should exit 2 for sweep (it takes a directory)"
"$cli" sweep --store="$tmpdir/store" --cache=off --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--store with --cache=off should exit 2"

# A store-backed sweep prints the artifact store stats line, persists
# entries, and a second (cold-process) run preloads them: zero saves, and
# tables byte-identical to the storeless run.  (Cache/store stats lines are
# execution circumstances, filtered like the timing rows.)
store_filter() {
  sed '/^phase timings:/,$d' "$1" | sed '${/^$/d}' |
    grep -vE "wall time|per second|worker threads|schedule cache:|artifact store:" |
    grep -v '^$' | sed -E 's/ +/ /g; s/-+/-/g'
}
store_flags="--count=6 --n=8 --sigma=2 --seed=11 --protocol=canonical --protocol=classify"
"$cli" sweep $store_flags > "$tmpdir/nostore.txt" 2>&1 ||
  fail "storeless reference sweep should exit 0"
out=$("$cli" sweep $store_flags --store="$tmpdir/store" 2>&1)
[ $? -eq 0 ] || fail "store-backed sweep should exit 0"
case "$out" in
  *"artifact store:"*) ;;
  *) fail "--store sweep should print the artifact store stats line: $out" ;;
esac
ls "$tmpdir/store"/*.arl >/dev/null 2>&1 || fail "--store should leave entry files behind"
if ls "$tmpdir/store"/*.tmp* >/dev/null 2>&1; then
  fail "--store must not leave tmp residue after a completed sweep"
fi
out=$("$cli" sweep $store_flags --store="$tmpdir/store" 2>&1)
[ $? -eq 0 ] || fail "warm store-backed sweep should exit 0"
case "$out" in
  *"artifact store:"*" 0 saves"*) ;;
  *) fail "a warm store-backed sweep should save nothing: $out" ;;
esac
echo "$out" > "$tmpdir/warmstore.txt"
if ! diff <(store_filter "$tmpdir/warmstore.txt") <(store_filter "$tmpdir/nostore.txt") >/dev/null
then
  fail "store-backed sweep tables should be byte-identical to the storeless run"
fi

# A corrupted store degrades to misses, never to wrong results.
for entry in "$tmpdir/store"/*.arl; do
  printf 'arl-art' > "$entry"
done
out=$("$cli" sweep $store_flags --store="$tmpdir/store" 2>&1)
[ $? -eq 0 ] || fail "sweep over a corrupted store should still exit 0"
echo "$out" > "$tmpdir/corruptstore.txt"
if ! diff <(store_filter "$tmpdir/corruptstore.txt") <(store_filter "$tmpdir/nostore.txt") \
    >/dev/null; then
  fail "sweep over a corrupted store should still print the storeless tables"
fi

# -------------------------------------------------------- resumable sweeps

# Malformed or out-of-range --shard=B-E values exit 2.
for value in 5-3 3-3 1-2-3 a-b 1- -2; do
  "$cli" sweep --shard=$value --count=6 >/dev/null 2>&1
  [ $? -eq 2 ] || fail "--shard=$value should exit 2"
done
"$cli" sweep $sweep_flags --shard=0-999 >/dev/null 2>&1
[ $? -eq 2 ] || fail "a --shard range beyond the sweep's jobs should exit 2"

# An explicit job range emits a shard report mergeable with its complement,
# reproducing the unsharded tables exactly (sweep_flags has 24 jobs).
"$cli" sweep $sweep_flags --shard=0-10 --out="$tmpdir/r0.txt" >/dev/null 2>&1 ||
  fail "--shard=0-10 should run and exit 0"
"$cli" sweep $sweep_flags --shard=10-24 --out="$tmpdir/r1.txt" >/dev/null 2>&1 ||
  fail "--shard=10-24 should run and exit 0"
"$cli" merge "$tmpdir/r0.txt" "$tmpdir/r1.txt" > "$tmpdir/rmerged.txt" 2>&1 ||
  fail "merge of the two job ranges should exit 0"
if ! diff <(filter "$tmpdir/rmerged.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "merged job-range shards should print exactly the unsharded tables"
fi

# merge --missing: a complete cover reports completeness (exit 0, nothing
# on stdout); a partial one emits one exact re-run spec per gap.
out=$("$cli" merge --missing "$tmpdir/r0.txt" "$tmpdir/r1.txt" 2>/dev/null)
[ $? -eq 0 ] || fail "merge --missing over a complete cover should exit 0"
[ -z "$out" ] || fail "a complete cover should emit no re-run specs: $out"
out=$("$cli" merge --missing "$tmpdir/r0.txt" 2>/dev/null)
[ $? -eq 0 ] || fail "merge --missing over a partial cover should exit 0"
case "$out" in
  "arl sweep "*"--shard=10-24"*"--out=resume-10-24.txt"*) ;;
  *) fail "merge --missing should emit the exact gap spec: $out" ;;
esac

# The emitted spec re-runs the gap, and survivors + resumed shard merge to
# the exact uninterrupted tables — the SIGKILL recovery path end to end.
spec="${out#arl }"
(cd "$tmpdir" && eval "'$cli' $spec" >/dev/null 2>&1) ||
  fail "the emitted resume spec should run and exit 0"
"$cli" merge "$tmpdir/r0.txt" "$tmpdir/resume-10-24.txt" > "$tmpdir/resumed.txt" 2>&1 ||
  fail "merge of survivor + resumed shard should exit 0"
if ! diff <(filter "$tmpdir/resumed.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "resumed merge should print exactly the uninterrupted sweep tables"
fi

# ------------------------------------------------------------------ faults

# The fault registry listing exits 0 and names every fault kind.
out=$("$cli" faults 2>&1)
[ $? -eq 0 ] || fail "'arl faults' should exit 0"
for name in none drop corrupt crash adversarial-wake; do
  case "$out" in
    *"$name"*) ;;
    *) fail "faults listing should contain '$name': $out" ;;
  esac
done

# Bad --fault values exit 2 with an error echoing the offending name and
# listing the registry (the uniform flag contract: same as --workload).
out=$("$cli" sweep --fault=bogus --count=1 2>&1)
status=$?
[ "$status" -eq 2 ] || fail "unknown fault: expected exit 2, got $status"
case "$out" in
  *bogus*) ;;
  *) fail "unknown-fault error should echo the offending name: $out" ;;
esac
for name in drop corrupt crash adversarial-wake; do
  case "$out" in
    *"$name"*) ;;
    *) fail "unknown-fault error should list '$name': $out" ;;
  esac
done

# Malformed fault parameters exit 2 as well.
for value in "drop:" "drop:2" "drop:-0.1" "drop:abc" "drop:0.1,x" "corrupt:" \
             "crash:" "crash:x" "crash:1,0" "adversarial-wake:" "adversarial-wake:1.5" \
             "none:1" ""; do
  "$cli" sweep --fault="$value" --count=1 >/dev/null 2>&1
  [ $? -eq 2 ] || fail "--fault=$value should exit 2"
done

# --fault=none is the explicit spelling of the default: byte-identical
# output to the same sweep without the flag (nothing filtered but timings).
fault_ref_flags="--count=8 --n=8 --sigma=2 --seed=9 --protocol=canonical"
"$cli" sweep $fault_ref_flags > "$tmpdir/fault-none-a.txt" 2>&1 ||
  fail "fault-free reference sweep should exit 0"
"$cli" sweep $fault_ref_flags --fault=none > "$tmpdir/fault-none-b.txt" 2>&1 ||
  fail "--fault=none sweep should exit 0"
if ! diff <(alias_filter "$tmpdir/fault-none-a.txt") <(alias_filter "$tmpdir/fault-none-b.txt") \
    >/dev/null; then
  fail "--fault=none tables should be byte-identical to the flagless sweep"
fi

# A faulted sweep is deterministic across sharding and threading: shards
# merged print the unsharded tables, the report carries the canonical fault
# spelling, and `merge --missing` reproduces the --fault flag.
fault_flags="--count=12 --n=8 --seed=4 --protocol=canonical --fault=drop:0.1"
"$cli" sweep $fault_flags > "$tmpdir/fault-single.txt" 2>&1
[ $? -le 1 ] || fail "faulted sweep should run"
grep -q "^fault: drop:0.1" "$tmpdir/fault-single.txt" ||
  fail "a faulted sweep should print the fault summary line"
"$cli" sweep $fault_flags --threads=2 > "$tmpdir/fault-t2.txt" 2>&1
[ $? -le 1 ] || fail "faulted sweep at --threads=2 should run"
if ! diff <(alias_filter "$tmpdir/fault-single.txt") <(alias_filter "$tmpdir/fault-t2.txt") \
    >/dev/null; then
  fail "faulted sweep tables should be thread-count invariant"
fi
"$cli" sweep $fault_flags --shard=0/2 --out="$tmpdir/f0.txt" >/dev/null 2>&1
[ $? -le 1 ] || fail "faulted shard 0/2 should run"
"$cli" sweep $fault_flags --shard=1/2 --out="$tmpdir/f1.txt" >/dev/null 2>&1
[ $? -le 1 ] || fail "faulted shard 1/2 should run"
grep -q "^fault drop:0.1$" "$tmpdir/f0.txt" ||
  fail "faulted shard reports should carry the canonical fault line"
"$cli" merge "$tmpdir/f0.txt" "$tmpdir/f1.txt" > "$tmpdir/fault-merged.txt" 2>&1
[ $? -le 1 ] || fail "merge of faulted shards should run"
if ! diff <(alias_filter "$tmpdir/fault-merged.txt") <(alias_filter "$tmpdir/fault-single.txt") \
    >/dev/null; then
  fail "merged faulted shards should print exactly the unsharded tables"
fi
out=$("$cli" merge --missing "$tmpdir/f0.txt" 2>/dev/null)
case "$out" in
  *"--fault=drop:0.1"*) ;;
  *) fail "merge --missing should reproduce the --fault flag: $out" ;;
esac

# Faulted and unfaulted shards describe different sweeps: never merged.
"$cli" merge "$tmpdir/f0.txt" "$tmpdir/s1.txt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "merging faulted with unfaulted shards should exit 2"

# ------------------------------------------------------------ observability

# The plain sweep prints the phase-timing block; flag misuse exits 2.
grep -q "^phase timings:" "$tmpdir/single.txt" ||
  fail "a plain sweep should print the phase timings block"
"$cli" sweep --metrics-out= --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "empty --metrics-out= should exit 2"
"$cli" sweep --trace= --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "empty --trace= should exit 2"
"$cli" sweep --metrics-out="$tmpdir/m.json" --shard=0/2 --count=4 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--metrics-out with --shard should exit 2"
"$cli" sweep --trace="$tmpdir/t.jsonl" --workers=2 --count=4 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--trace with --workers should exit 2"

# --metrics-out writes the fixed key set — every phase, every field, present
# whether or not the phase ran (bench_gate fails on asymmetric keys).
metrics_flags="--count=6 --n=8 --seed=7 --threads=1 --protocol=canonical --protocol=classify"
"$cli" sweep $metrics_flags --metrics-out="$tmpdir/metrics-a.json" >/dev/null 2>&1 ||
  fail "sweep --metrics-out should exit 0"
for key in schema jobs phase_classify_count phase_schedule_compile_count \
           phase_simulate_count phase_simulate_total_ms phase_simulate_p50_ms \
           phase_simulate_p90_ms phase_simulate_p99_ms phase_fault_inject_count \
           phase_cache_lookup_count \
           phase_cache_promote_count phase_store_load_count phase_store_save_count \
           phase_serve_queue_wait_count phase_serve_dispatch_count \
           injected_drops injected_corruptions injected_crashes delayed_wakeups; do
  grep -q "\"$key\"" "$tmpdir/metrics-a.json" ||
    fail "metrics snapshot should contain \"$key\": $(cat "$tmpdir/metrics-a.json")"
done

# Two identical single-threaded uncached runs gate cleanly against each
# other: the counts are exact-match fields, the timings informational.
"$cli" sweep $metrics_flags --metrics-out="$tmpdir/metrics-b.json" >/dev/null 2>&1 ||
  fail "second sweep --metrics-out should exit 0"
gate="$(dirname "$cli")/bench_gate"
if [ -x "$gate" ]; then
  "$gate" --committed="$tmpdir/metrics-a.json" --fresh="$tmpdir/metrics-b.json" >/dev/null 2>&1 ||
    fail "identical --threads=1 runs should bench_gate cleanly against each other"
fi

# --trace appends one JSON line per job, every line with the same key set.
"$cli" sweep --count=5 --n=8 --trace="$tmpdir/trace.jsonl" >/dev/null 2>&1 ||
  fail "sweep --trace should exit 0"
[ "$(wc -l < "$tmpdir/trace.jsonl")" -eq 5 ] ||
  fail "--trace should write one line per job, got $(wc -l < "$tmpdir/trace.jsonl")"
for key in '"job"' '"protocol"' '"config"' '"disposition"' '"simulate_ns"' \
           '"classify_ns"' '"schedule-compile_ns"'; do
  head -1 "$tmpdir/trace.jsonl" | grep -q "$key:" ||
    fail "trace lines should carry $key: $(head -1 "$tmpdir/trace.jsonl")"
done

if [ "$failures" -gt 0 ]; then
  exit 1
fi
echo "cli flag validation ok"
