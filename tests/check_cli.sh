#!/usr/bin/env bash
# Flag-validation checks for the arl CLI, run by ctest (see CMakeLists.txt).
# Usage: check_cli.sh <path-to-arl-binary>
set -u

cli="$1"
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# Unknown --protocol values exit 2 with an error listing the registry.
out=$("$cli" sweep --protocol=bogus --count=1 2>&1)
status=$?
[ "$status" -eq 2 ] || fail "unknown protocol: expected exit 2, got $status"
case "$out" in
  *bogus*) ;;
  *) fail "unknown-protocol error should echo the offending name: $out" ;;
esac
for name in canonical classify binary-search tree-split randomized; do
  case "$out" in
    *"$name"*) ;;
    *) fail "unknown-protocol error should list '$name': $out" ;;
  esac
done

# Malformed protocol parameters exit 2 as well.
"$cli" sweep --protocol=binary-search:nope --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "malformed protocol parameter should exit 2"
"$cli" sweep --protocol=canonical:3 --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "parameter on a parameterless protocol should exit 2"

# The legacy shorthand conflicts with the explicit flag instead of being
# silently ignored.
"$cli" sweep --classify-only --protocol=canonical --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--classify-only with --protocol should exit 2"

# A mixed-protocol cross-product sweep runs and prints one comparison row
# per protocol.  (Exit 0 when every job verifies, 1 otherwise — baselines
# legitimately fail on out-of-model configurations.)
out=$("$cli" sweep --count=6 --family=staggered \
      --protocol=canonical --protocol=binary-search --protocol=randomized 2>&1)
status=$?
[ "$status" -le 1 ] || fail "mixed-protocol sweep should run, got exit $status"
for name in canonical binary-search randomized; do
  case "$out" in
    *"$name"*) ;;
    *) fail "sweep output should contain a '$name' row: $out" ;;
  esac
done

# Unknown families still exit 2 (pre-existing contract, kept).
"$cli" sweep --family=bogus --count=1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown family should exit 2"

# Bad --cache values exit 2 with a usage error.
for value in bogus -3 12cats 9999999999; do
  out=$("$cli" sweep --cache=$value --count=1 2>&1)
  status=$?
  [ "$status" -eq 2 ] || fail "--cache=$value: expected exit 2, got $status"
  case "$out" in
    *cache*) ;;
    *) fail "--cache=$value error should mention the flag: $out" ;;
  esac
done

# The cache stats line appears exactly when the cache is enabled.
out=$("$cli" sweep --count=4 --n=6 --cache=on \
      --protocol=canonical --protocol=classify 2>&1)
[ $? -eq 0 ] || fail "cached sweep should verify and exit 0"
case "$out" in
  *"schedule cache:"*) ;;
  *) fail "--cache=on sweep should print the schedule cache stats line: $out" ;;
esac
out=$("$cli" sweep --count=4 --n=6 --cache=16 \
      --protocol=canonical --protocol=classify 2>&1)
[ $? -eq 0 ] || fail "capacity-cached sweep should verify and exit 0"
case "$out" in
  *"schedule cache:"*) ;;
  *) fail "--cache=16 sweep should print the schedule cache stats line: $out" ;;
esac
for flags in "" "--cache=off" "--cache=0"; do
  out=$("$cli" sweep --count=4 --n=6 $flags 2>&1)
  [ $? -eq 0 ] || fail "uncached sweep ($flags) should verify and exit 0"
  case "$out" in
    *"schedule cache:"*) fail "uncached sweep ($flags) must not print cache stats: $out" ;;
    *) ;;
  esac
done

if [ "$failures" -gt 0 ]; then
  exit 1
fi
echo "cli flag validation ok"
