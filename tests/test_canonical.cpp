/// \file test_canonical.cpp
/// The canonical DRIP (§3.3.1) in execution: schedule structure, patience
/// (Lemma 3.6), block/offset structure (Lemma 3.7), partition ⇔ history
/// equivalence (Lemma 3.9), termination discipline, and the strict/robust
/// mismatch policies.

#include <gtest/gtest.h>

#include <map>

#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/classifier.hpp"
#include "core/election.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;
using arl::support::ContractViolation;
using arl::testkit::TransmissionLog;

radio::RunResult run_canonical(const config::Configuration& c,
                               radio::SimulatorOptions options = {},
                               core::MismatchPolicy policy = core::MismatchPolicy::Strict) {
  const auto schedule = core::make_schedule(c);
  const core::CanonicalDrip drip(schedule, policy);
  return radio::simulate(c, drip, options);
}

// ---------------------------------------------------------------- schedule

TEST(Schedule, FamilyHStructure) {
  // H_m classifies in one iteration: one phase of 1 block, total 3σ+2 local
  // rounds with σ = m+1.
  const config::Configuration h3 = config::family_h(3);
  const auto schedule = core::make_schedule(h3);
  EXPECT_TRUE(schedule->feasible);
  EXPECT_EQ(schedule->sigma, 4u);
  ASSERT_EQ(schedule->phases.size(), 1u);
  EXPECT_EQ(schedule->phases[0].num_classes, 1u);
  ASSERT_EQ(schedule->phases[0].entries.size(), 1u);
  EXPECT_EQ(schedule->phases[0].entries[0].old_class, 1u);
  EXPECT_TRUE(schedule->phases[0].entries[0].label.empty());  // L_1 = [(1, null)]
  EXPECT_EQ(schedule->block_length(), 9u);
  EXPECT_EQ(schedule->phase_length(0), 13u);  // 1 block + σ trailing
  EXPECT_EQ(schedule->total_rounds(), 14u);
  // Leader signature: node a sits in class 1 with label (1,2,1).
  EXPECT_EQ(schedule->leader_old_class, 1u);
  EXPECT_EQ(schedule->leader_label, (core::Label{{1, 2, false}}));
}

TEST(Schedule, FamilySStructure) {
  // S_m runs two iterations: phase P_1 (1 block) and phase P_2 (2 blocks)
  // with L_2 = [(1, label_a), (1, label_b)], then terminates without leader.
  const config::Tag m = 2;
  const config::Configuration s = config::family_s(m);
  const auto schedule = core::make_schedule(s);
  EXPECT_FALSE(schedule->feasible);
  ASSERT_EQ(schedule->phases.size(), 2u);
  EXPECT_EQ(schedule->phases[1].num_classes, 2u);
  ASSERT_EQ(schedule->phases[1].entries.size(), 2u);
  EXPECT_EQ(schedule->phases[1].entries[0].old_class, 1u);
  EXPECT_EQ(schedule->phases[1].entries[0].label, (core::Label{{1, 1, false}}));
  EXPECT_EQ(schedule->phases[1].entries[1].old_class, 1u);
  EXPECT_EQ(schedule->phases[1].entries[1].label, (core::Label{{1, 2 * m + 1, false}}));
  // σ = 2: total = (1*5+2) + (2*5+2) + 1 = 20.
  EXPECT_EQ(schedule->total_rounds(), 20u);
}

TEST(Schedule, SuggestedWindowCoversLongestPhase) {
  const auto schedule = core::make_schedule(config::family_g(3));
  std::uint64_t longest = 0;
  for (std::size_t j = 0; j < schedule->phases.size(); ++j) {
    longest = std::max(longest, schedule->phase_length(j));
  }
  EXPECT_EQ(schedule->suggested_window(), longest + 2);
}

// ------------------------------------------------------------- Lemma 3.6

TEST(CanonicalDrip, PatienceNoTransmissionInFirstSigmaRounds) {
  for (const auto& c : {config::family_h(4), config::family_s(3), config::family_g(2),
                        config::staggered_path(6)}) {
    TransmissionLog log;
    radio::SimulatorOptions options;
    options.trace = &log;
    const radio::RunResult run = run_canonical(c, options);
    EXPECT_TRUE(run.all_terminated);
    ASSERT_TRUE(log.first_round().has_value());
    EXPECT_GT(*log.first_round(), c.span());  // silent through global rounds 0..σ
    // Lemma 3.6's consequence: every wakeup is spontaneous, at the tag.
    for (graph::NodeId v = 0; v < c.size(); ++v) {
      EXPECT_FALSE(run.nodes[v].forced_wake);
      EXPECT_EQ(run.nodes[v].wake_round, c.tag(v));
    }
  }
}

// ------------------------------------------------------------- Lemma 3.7

TEST(CanonicalDrip, EveryNodeTransmitsExactlyOncePerPhase) {
  for (const auto& c :
       {config::family_h(2), config::family_s(2), config::family_g(3), config::staggered_path(5)}) {
    const auto schedule = core::make_schedule(c);
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule));
    EXPECT_EQ(run.stats.transmissions,
              static_cast<std::uint64_t>(c.size()) * schedule->phases.size());
  }
}

TEST(CanonicalDrip, Lemma37OffsetLaw) {
  // Whenever a listening node v hears a clean message in the h'th round of a
  // block, the transmitter w satisfies h = σ+1+t_w-t_v.
  for (const auto& c : {config::family_h(3), config::family_g(2), config::staggered_path(6)}) {
    const auto schedule = core::make_schedule(c);
    TransmissionLog log;
    radio::SimulatorOptions options;
    options.trace = &log;
    options.history_window = 0;  // full histories
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule), options);
    ASSERT_TRUE(run.all_terminated);

    // Per-global-round transmitter sets.
    std::map<config::Round, std::vector<graph::NodeId>> transmitters;
    for (const auto& [round, node] : log.entries()) {
      transmitters[round].push_back(node);
    }

    const std::uint64_t block_len = schedule->block_length();
    for (graph::NodeId v = 0; v < c.size(); ++v) {
      const auto& history = run.nodes[v].history;
      for (std::size_t i = 1; i < history.size(); ++i) {
        if (!history[i].is_message()) {
          continue;
        }
        const auto global = static_cast<config::Round>(c.tag(v) + i);
        // Exactly one transmitting neighbour w.
        graph::NodeId transmitter = c.size();
        for (const graph::NodeId w : transmitters[global]) {
          if (c.graph().has_edge(v, w)) {
            EXPECT_EQ(transmitter, c.size()) << "second transmitting neighbour";
            transmitter = w;
          }
        }
        ASSERT_LT(transmitter, c.size());
        // Locate i inside its phase and block.
        std::uint64_t base = 0;
        std::size_t phase = 0;
        while (i > base + schedule->phase_length(phase)) {
          base += schedule->phase_length(phase);
          ++phase;
        }
        const std::uint64_t offset = i - base;  // 1-based within the phase
        ASSERT_LE(offset, schedule->phases[phase].num_classes * block_len)
            << "message in the trailing σ rounds";
        const std::uint64_t h = (offset - 1) % block_len + 1;
        EXPECT_EQ(h, schedule->sigma + 1 + c.tag(transmitter) - c.tag(v));
      }
    }
  }
}

// ------------------------------------------------------------- Lemma 3.9

TEST(CanonicalDrip, Lemma39PartitionEqualsHistoryPartition) {
  // After each phase P_j, grouping nodes by local history prefix H[0..r_j]
  // must reproduce Classifier's equivalence classes after iteration j.
  for (const auto& c : {config::family_h(2), config::family_s(3), config::family_g(3),
                        config::staggered_path(7)}) {
    const core::ClassifierResult classification = core::Classifier{}.run(c);
    const auto schedule = std::make_shared<const core::CanonicalSchedule>(
        core::build_schedule(c, classification));
    radio::SimulatorOptions options;
    options.history_window = 0;
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule), options);
    ASSERT_TRUE(run.all_terminated);

    std::uint64_t r_j = 0;
    for (std::uint32_t j = 1; j <= classification.iterations; ++j) {
      r_j += schedule->phase_length(j - 1);
      const auto by_history = testkit::history_partition(run, static_cast<std::size_t>(r_j));
      EXPECT_TRUE(testkit::same_partition(by_history, classification.classes_after(j)))
          << "phase " << j;
    }
  }
}

// ----------------------------------------------------- termination discipline

TEST(CanonicalDrip, AllNodesTerminateInTheSameLocalRound) {
  const config::Configuration c = config::family_g(3);
  const auto schedule = core::make_schedule(c);
  const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule));
  ASSERT_TRUE(run.all_terminated);
  for (const auto& node : run.nodes) {
    EXPECT_EQ(node.done_round, schedule->total_rounds());
  }
}

TEST(CanonicalDrip, InfeasibleScheduleElectsNobody) {
  const config::Configuration c = config::family_s(4);
  const radio::RunResult run = run_canonical(c);
  ASSERT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.leaders().empty());
}

TEST(CanonicalDrip, WindowedAndFullRunsElectTheSameLeader) {
  const config::Configuration c = config::family_g(4);
  const auto schedule = core::make_schedule(c);
  radio::SimulatorOptions full;
  full.history_window = 0;
  const radio::RunResult full_run = radio::simulate(c, core::CanonicalDrip(schedule), full);
  const radio::RunResult windowed_run = radio::simulate(c, core::CanonicalDrip(schedule));
  EXPECT_EQ(full_run.leaders(), windowed_run.leaders());
  EXPECT_EQ(full_run.rounds_executed, windowed_run.rounds_executed);
}

// --------------------------------------------------- mismatch (strict/robust)

TEST(CanonicalDrip, StrictModeRejectsForeignConfigurations) {
  // The S_3 schedule (σ=3, two phases) executed on H_3 (σ=4): offsets no
  // longer fit the schedule and strict mode must flag the violation.
  const auto schedule = core::make_schedule(config::family_s(3));
  const core::CanonicalDrip drip(schedule, core::MismatchPolicy::Strict);
  const config::Configuration h3 = config::family_h(3);
  EXPECT_THROW((void)radio::simulate(h3, drip), ContractViolation);
}

TEST(CanonicalDrip, RobustModeFailsGracefullyOnForeignConfigurations) {
  const auto schedule = core::make_schedule(config::family_s(3));
  const core::CanonicalDrip drip(schedule, core::MismatchPolicy::Robust);
  const radio::RunResult run = radio::simulate(config::family_h(3), drip);
  EXPECT_TRUE(run.all_terminated);          // robust failures terminate
  EXPECT_NE(run.leaders().size(), 1u);      // and never fake an election
}

// -------------------------------------------------------------- elect() API

TEST(Elect, ReportsAreConsistentAcrossFamilies) {
  for (const config::Tag m : {1u, 2u, 5u}) {
    const core::ElectionReport h = core::elect(config::family_h(m));
    EXPECT_TRUE(h.feasible);
    EXPECT_TRUE(h.valid);
    EXPECT_EQ(h.local_rounds, 3u * (m + 1) + 2);

    const core::ElectionReport s = core::elect(config::family_s(m));
    EXPECT_FALSE(s.feasible);
    EXPECT_TRUE(s.valid);
  }
}

TEST(Elect, FastClassifierPathGivesTheSameOutcome) {
  const config::Configuration c = config::family_g(3);
  core::ElectionOptions fast;
  fast.use_fast_classifier = true;
  const core::ElectionReport a = core::elect(c);
  const core::ElectionReport b = core::elect(c, fast);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.local_rounds, b.local_rounds);
}

TEST(Elect, ClassifyOnlySkipsSimulation) {
  core::ElectionOptions options;
  options.simulate = false;
  const core::ElectionReport report = core::elect(config::family_h(2), options);
  EXPECT_TRUE(report.feasible);
  EXPECT_FALSE(report.simulated);
  EXPECT_FALSE(report.leader.has_value());
  EXPECT_TRUE(report.valid);
}

TEST(Elect, SingleNodeElectsItself) {
  const config::Configuration c(graph::path(1), {0});
  const core::ElectionReport report = core::elect(c);
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.valid);
  ASSERT_TRUE(report.leader.has_value());
  EXPECT_EQ(*report.leader, 0u);
}

/// Property sweep: random configurations through the whole pipeline.
class ElectProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElectProperty, ElectionOutcomeAlwaysVerifies) {
  support::Rng rng(GetParam());
  for (int repeat = 0; repeat < 6; ++repeat) {
    const auto n = static_cast<graph::NodeId>(2 + rng.below(14));
    const auto sigma = static_cast<config::Tag>(rng.below(4));
    const config::Configuration c =
        config::random_tags(graph::gnp_connected(n, 0.35, rng), sigma, rng);
    const core::ElectionReport report = core::elect(c);
    EXPECT_TRUE(report.valid) << "n=" << n << " seed=" << GetParam();
    // Lemma 3.10's bound: phases <= ceil(n/2), each <= n(2σ+1)+σ rounds.
    const std::uint64_t bound =
        ((n + 1ull) / 2) * (static_cast<std::uint64_t>(n) * (2 * c.span() + 1) + c.span()) + 1;
    EXPECT_LE(report.local_rounds, bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElectProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
