/// \file test_scenarios.cpp
/// Cross-module scenario tests: multi-hop wakeup cascades, election across
/// the topology zoo, composed transformations — behaviours that emerge only
/// when several modules interact.

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/patient.hpp"
#include "core/schedule.hpp"
#include "core/schedule_io.hpp"
#include "engine/batch_runner.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

// ------------------------------------------------------------ wakeup cascade

/// Relay protocol: a node that was woken by a message (or has tag 0)
/// transmits once in its first local round, then idles until termination.
/// On a path with far-future tags this produces a wakeup wave travelling one
/// hop per round.
class RelayDrip final : public radio::Drip {
 public:
  explicit RelayDrip(config::Round lifetime) : lifetime_(lifetime) {}

  std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv&) const override {
    class Program final : public radio::NodeProgram {
     public:
      explicit Program(config::Round lifetime) : lifetime_(lifetime) {}
      radio::Action decide(config::Round i, const radio::HistoryView& h) override {
        if (i >= lifetime_) {
          return radio::Action::terminate();
        }
        if (i == 1) {
          return radio::Action::transmit(7);
        }
        (void)h;
        return radio::Action::listen();
      }

     private:
      config::Round lifetime_;
    };
    return std::make_unique<Program>(lifetime_);
  }
  std::string name() const override { return "relay"; }

 private:
  config::Round lifetime_;
};

TEST(Scenario, WakeupWaveTravelsOneHopPerRound) {
  // Path of 8; only node 0 wakes on its own (tag 0), the rest nominally at
  // 100.  The relay wave must wake node k at global round k.
  const graph::NodeId n = 8;
  std::vector<config::Tag> tags(n, 100);
  tags[0] = 0;
  const config::Configuration c(graph::path(n), tags);
  const radio::RunResult run = radio::simulate(c, RelayDrip(6));
  ASSERT_TRUE(run.all_terminated);
  EXPECT_FALSE(run.nodes[0].forced_wake);
  for (graph::NodeId v = 1; v < n; ++v) {
    EXPECT_TRUE(run.nodes[v].forced_wake) << "node " << v;
    EXPECT_EQ(run.nodes[v].wake_round, v) << "node " << v;
    EXPECT_TRUE(run.nodes[v].history[0].is_message());
  }
  EXPECT_EQ(run.stats.forced_wakeups, static_cast<std::uint64_t>(n - 1));
}

TEST(Scenario, WaveStallsAtACollision) {
  // Star + two rays: both ray-1 nodes get woken by the hub, then transmit
  // simultaneously into the hub's other neighbourhood... on a path with TWO
  // initiators at both ends, the two waves meet in the middle and collide;
  // the middle node of an odd path never receives a clean message and wakes
  // only at its tag.
  const graph::NodeId n = 7;  // middle = 3
  std::vector<config::Tag> tags(n, 50);
  tags[0] = 0;
  tags[n - 1] = 0;
  const config::Configuration c(graph::path(n), tags);
  const radio::RunResult run = radio::simulate(c, RelayDrip(8));
  ASSERT_TRUE(run.all_terminated);
  // Waves wake 1,2 from the left and 5,4 from the right (rounds 1,2).
  EXPECT_EQ(run.nodes[1].wake_round, 1u);
  EXPECT_EQ(run.nodes[2].wake_round, 2u);
  EXPECT_EQ(run.nodes[5].wake_round, 1u);
  EXPECT_EQ(run.nodes[4].wake_round, 2u);
  // At round 3 nodes 2 and 4 transmit together; node 3 hears noise, which
  // does not wake it.
  EXPECT_EQ(run.nodes[3].wake_round, 50u);
  EXPECT_FALSE(run.nodes[3].forced_wake);
}

// -------------------------------------------------------------- topology zoo

TEST(Scenario, ElectionAcrossTheTopologyZoo) {
  support::Rng rng(90210);
  const std::vector<std::pair<std::string, graph::Graph>> zoo = {
      {"path", graph::path(12)},
      {"cycle", graph::cycle(12)},
      {"complete", graph::complete(9)},
      {"star", graph::star(10)},
      {"bipartite", graph::complete_bipartite(4, 5)},
      {"grid", graph::grid(3, 4)},
      {"torus", graph::torus(3, 4)},
      {"hypercube", graph::hypercube(3)},
      {"binary tree", graph::binary_tree(11)},
      {"barbell", graph::barbell(4, 2)},
      {"caterpillar", graph::caterpillar(4, 2)},
  };
  for (const auto& [name, g] : zoo) {
    for (const config::Tag sigma : {1u, 3u}) {
      const config::Configuration c = config::random_tags_with_span(g, sigma, rng);
      const core::ElectionReport report = core::elect(c);
      EXPECT_TRUE(report.valid) << name << " sigma=" << sigma;
    }
  }
}

TEST(Scenario, CycleWithOneMarkedNodeIsFeasible) {
  // Perfectly symmetric ring + a single late riser: the asymmetry is enough,
  // and the canonical DRIP elects SOME node (not necessarily the marked one
  // — its neighbours become distinguishable too, and the vertex order picks
  // the smallest singleton class).
  for (const graph::NodeId n : {4u, 7u, 10u}) {
    std::vector<config::Tag> tags(n, 0);
    tags[2] = 1;
    const core::ElectionReport report = core::elect(config::Configuration(graph::cycle(n), tags));
    EXPECT_TRUE(report.feasible) << "n=" << n;
    EXPECT_TRUE(report.valid) << "n=" << n;
  }
}

TEST(Scenario, VertexTransitiveEqualTagsNeverElect) {
  support::Rng rng(7);
  const std::vector<graph::Graph> transitive = {
      graph::cycle(8), graph::complete(6), graph::torus(3, 3), graph::hypercube(3)};
  for (const auto& g : transitive) {
    const config::Configuration c(g, std::vector<config::Tag>(g.node_count(), 0));
    const core::ElectionReport report = core::elect(c);
    EXPECT_FALSE(report.feasible);
    EXPECT_TRUE(report.valid);
  }
}

// ----------------------------------------------------------- composed layers

TEST(Scenario, DoublyWrappedProtocolStillElects) {
  // PatientWrapper composes: wrapping an already-patient protocol again just
  // adds another σ of listening.
  const config::Configuration c = config::family_h(2);
  const auto schedule = core::make_schedule(c);
  const auto once = std::make_shared<core::PatientWrapper>(
      std::make_shared<core::CanonicalDrip>(schedule), c.span());
  const core::PatientWrapper twice(once, c.span());
  const radio::RunResult run = radio::simulate(c, twice);
  ASSERT_TRUE(run.all_terminated);
  ASSERT_EQ(run.leaders().size(), 1u);
  // Two wrappers => termination shifts by exactly 2σ.
  const radio::RunResult bare = radio::simulate(c, core::CanonicalDrip(schedule));
  EXPECT_EQ(run.nodes[0].done_round, bare.nodes[0].done_round + 2 * c.span());
}

TEST(Scenario, ElectionSurvivesNormalization) {
  // Shifting all tags by a constant must not change anything observable
  // (nodes cannot see the global clock).
  support::Rng rng(55);
  const config::Configuration base =
      config::random_tags_with_span(graph::gnp_connected(10, 0.4, rng), 3, rng);
  std::vector<config::Tag> shifted_tags = base.tags();
  for (auto& tag : shifted_tags) {
    tag += 7;
  }
  const config::Configuration shifted(base.graph(), shifted_tags);

  const core::ElectionReport a = core::elect(base);
  const core::ElectionReport b = core::elect(shifted);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.local_rounds, b.local_rounds);
  EXPECT_EQ(b.global_rounds, a.global_rounds + 7);  // only the clock origin moves
}

TEST(Scenario, CachedScheduleSurvivesTextRoundTripWithIdenticalFingerprint) {
  // The deployment story across the cache boundary: a cache-served schedule
  // (shared by every job of its configuration) serializes to text, parses
  // back to an artifact with the identical fingerprint, and drives the same
  // election — so the keyed artifacts the distributed-sweep layer will ship
  // between processes are exactly the ones the engine memoizes.
  std::vector<engine::BatchJob> jobs;
  jobs.push_back({config::family_h(3), core::ProtocolSpec::canonical(), {}});
  jobs.push_back({config::family_h(3), core::ProtocolSpec::canonical(), {}});
  const engine::BatchReport report =
      engine::run_batch(jobs, {.threads = 1, .keep_reports = true, .cache_capacity = 8});
  ASSERT_EQ(report.reports.size(), 2u);
  const std::shared_ptr<const core::CanonicalSchedule> cached = report.reports[0].schedule;
  ASSERT_NE(cached, nullptr);
  ASSERT_EQ(cached, report.reports[1].schedule);  // served from the cache

  const auto reloaded = std::make_shared<const core::CanonicalSchedule>(
      core::schedule_from_text_string(core::schedule_to_text_string(*cached)));
  EXPECT_EQ(core::schedule_fingerprint(*reloaded), core::schedule_fingerprint(*cached));

  const config::Configuration c = config::family_h(3);
  const radio::RunResult original = radio::simulate(c, core::CanonicalDrip(cached));
  const radio::RunResult replayed = radio::simulate(c, core::CanonicalDrip(reloaded));
  EXPECT_EQ(original.leaders(), replayed.leaders());
  EXPECT_EQ(original.rounds_executed, replayed.rounds_executed);
  for (graph::NodeId v = 0; v < c.size(); ++v) {
    EXPECT_EQ(original.nodes[v].history, replayed.nodes[v].history) << "node " << v;
  }

  // And the fingerprint separates artifacts: a different configuration's
  // schedule digests differently.
  const auto other = core::make_schedule(config::family_s(3));
  EXPECT_NE(core::schedule_fingerprint(*other), core::schedule_fingerprint(*cached));
}

TEST(Scenario, HistoriesAreShiftInvariant) {
  // The per-node local histories of the canonical run are identical under a
  // global tag shift — the formal content of "no access to the global clock".
  const config::Configuration base = config::family_h(3);
  std::vector<config::Tag> shifted_tags = base.tags();
  for (auto& tag : shifted_tags) {
    tag += 5;
  }
  const config::Configuration shifted(base.graph(), shifted_tags);

  radio::SimulatorOptions options;
  options.history_window = 0;
  const auto schedule = core::make_schedule(base);        // same span, same schedule
  const auto schedule_shift = core::make_schedule(shifted);
  const radio::RunResult run_a = radio::simulate(base, core::CanonicalDrip(schedule), options);
  const radio::RunResult run_b =
      radio::simulate(shifted, core::CanonicalDrip(schedule_shift), options);
  for (graph::NodeId v = 0; v < base.size(); ++v) {
    EXPECT_EQ(run_a.nodes[v].history, run_b.nodes[v].history) << "node " << v;
  }
}

}  // namespace
