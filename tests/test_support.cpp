/// \file test_support.cpp
/// Unit tests for the support library: contracts, PRNG, tables, CLI parsing,
/// thread pool, line framing.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "support/assert.hpp"
#include "support/cli.hpp"
#include "support/line_io.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace arl::support;

// ---------------------------------------------------------------- contracts

TEST(Assert, ViolationsThrowWithContext) {
  try {
    ARL_EXPECTS(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
  }
}

TEST(Assert, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(ARL_EXPECTS(true, ""));
  EXPECT_NO_THROW(ARL_ENSURES(2 + 2 == 4, ""));
  EXPECT_NO_THROW(ARL_ASSERT(!false, ""));
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next() == b.next()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowZeroIsRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t value = rng.range(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RealIsInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  const Rng parent(1234);
  Rng child_a = parent.split(1);
  Rng child_a_again = parent.split(1);
  Rng child_b = parent.split(2);
  int same_ab = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = child_a.next();
    EXPECT_EQ(a, child_a_again.next());  // same stream id → same stream
    same_ab += (a == child_b.next()) ? 1 : 0;
  }
  EXPECT_LT(same_ab, 4);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(77);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng(1);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), ContractViolation);
}

// -------------------------------------------------------------------- table

TEST(Table, MarkdownLayout) {
  Table table({"name", "value"});
  table.add_row({std::string("alpha"), std::int64_t{42}});
  table.add_row({std::string("b"), 3.5});
  const std::string markdown = table.to_markdown();
  EXPECT_NE(markdown.find("| name  | value |"), std::string::npos);
  EXPECT_NE(markdown.find("| alpha | 42    |"), std::string::npos);
  EXPECT_NE(markdown.find("| b     | 3.5   |"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table table({"text"});
  table.add_row({std::string("plain")});
  table.add_row({std::string("with,comma")});
  table.add_row({std::string("with\"quote")});
  std::ostringstream out;
  table.print_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({std::int64_t{1}}), ContractViolation);
}

TEST(Table, PrecisionControlsDoubles) {
  Table table({"x"});
  table.set_precision(2);
  table.add_row({3.14159});
  EXPECT_NE(table.to_markdown().find("3.1"), std::string::npos);
  EXPECT_EQ(table.to_markdown().find("3.14159"), std::string::npos);
}

// ---------------------------------------------------------------------- cli

TEST(Args, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=12", "--verbose", "file.txt", "--ratio=0.5"};
  const Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file.txt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Args args(1, argv);
  EXPECT_EQ(args.get_int("n", 99), 99);
  EXPECT_EQ(args.get_string("mode", "fast"), "fast");
}

TEST(Args, MalformedNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  const Args args(2, argv);
  EXPECT_THROW((void)args.get_int("n", 0), ContractViolation);
}

// -------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 10,
                   [](std::size_t i) {
                     if (i == 3) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
}

// ------------------------------------------------------------ line framing

TEST(LineFramer, FramesLinesAcrossArbitraryChunks) {
  LineFramer framer;
  framer.feed("first li");
  EXPECT_EQ(framer.pop(), std::nullopt);  // no newline yet
  framer.feed("ne\nsecond\nthi");
  EXPECT_EQ(framer.pop(), "first line");
  EXPECT_EQ(framer.pop(), "second");
  EXPECT_EQ(framer.pop(), std::nullopt);
  EXPECT_EQ(framer.partial_bytes(), 3u);
  framer.feed("rd\n");
  EXPECT_EQ(framer.pop(), "third");
  EXPECT_EQ(framer.partial_bytes(), 0u);
}

TEST(LineFramer, FinishTurnsThePartialTailIntoALine) {
  LineFramer framer;
  framer.feed("complete\ntail without newline");
  framer.finish();
  EXPECT_EQ(framer.pop(), "complete");
  EXPECT_EQ(framer.pop(), "tail without newline");  // std::getline convention
  EXPECT_EQ(framer.pop(), std::nullopt);
  EXPECT_TRUE(framer.drained());
}

TEST(LineFramer, EmptyLinesAndEmptyTailAreHandled) {
  LineFramer framer;
  framer.feed("\n\nx\n");
  framer.finish();  // empty tail: no extra line
  EXPECT_EQ(framer.pop(), "");
  EXPECT_EQ(framer.pop(), "");
  EXPECT_EQ(framer.pop(), "x");
  EXPECT_EQ(framer.pop(), std::nullopt);
  EXPECT_TRUE(framer.drained());
}

TEST(LineFramer, EnforcesTheByteBoundAndStaysPoisoned) {
  LineFramer framer(8);
  framer.feed("ok\n");
  EXPECT_THROW(framer.feed("123456789"), LineTooLong);  // 9 > 8, no newline
  EXPECT_THROW(framer.feed("x"), LineTooLong);          // poisoned: keeps throwing
  EXPECT_EQ(framer.pop(), "ok");                        // lines framed before stay readable
}

TEST(LineFramer, BoundAppliesToOneLineNotTheStream) {
  LineFramer framer(8);
  // Many short lines through one small-bound framer: the bound is per line.
  for (int i = 0; i < 100; ++i) {
    framer.feed("12345678\n");
    EXPECT_EQ(framer.pop(), "12345678");
  }
}

TEST(ReadLines, MatchesGetlineIncludingMissingFinalNewline) {
  std::istringstream with_newline("a\nb\n");
  EXPECT_EQ(read_lines(with_newline), (std::vector<std::string>{"a", "b"}));
  std::istringstream without_newline("a\nb");
  EXPECT_EQ(read_lines(without_newline), (std::vector<std::string>{"a", "b"}));
  std::istringstream empty("");
  EXPECT_TRUE(read_lines(empty).empty());
}

TEST(ReadLines, ThrowsOnOverlongLines) {
  std::istringstream in(std::string(100, 'x'));
  EXPECT_THROW((void)read_lines(in, 10), LineTooLong);
}

// ------------------------------------------------------------- number parse

TEST(ParseDecimalU64, AcceptsCanonicalDigits) {
  EXPECT_EQ(parse_decimal_u64("0"), 0u);
  EXPECT_EQ(parse_decimal_u64("42"), 42u);
  EXPECT_EQ(parse_decimal_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseDecimalU64, RejectsNonCanonicalAndOutOfRange) {
  EXPECT_EQ(parse_decimal_u64(""), std::nullopt);
  EXPECT_EQ(parse_decimal_u64("-1"), std::nullopt);
  EXPECT_EQ(parse_decimal_u64("1e3"), std::nullopt);
  EXPECT_EQ(parse_decimal_u64(" 1"), std::nullopt);
  EXPECT_EQ(parse_decimal_u64("18446744073709551616"), std::nullopt);  // 2^64
  EXPECT_EQ(parse_decimal_u64("11", 10), std::nullopt);                // above max
  EXPECT_EQ(parse_decimal_u64("10", 10), 10u);                         // at max
}

// ---------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch watch;
  const double first = watch.seconds();
  const double second = watch.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  watch.restart();
  EXPECT_LT(watch.seconds(), 1.0);
}

TEST(Stopwatch, RecordedSpansAreMonotone) {
  // The stopwatch (like every timing path in the repository) reads the
  // steady clock, so a recorded span can never run backwards — even across
  // many rapid reads, where a wall clock adjusted by NTP could regress.
  Stopwatch watch;
  double previous = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double now = watch.seconds();
    ASSERT_GE(now, previous) << "span regressed at read " << i;
    previous = now;
  }
}

}  // namespace
