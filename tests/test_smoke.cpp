/// \file test_smoke.cpp
/// End-to-end smoke test: the full pipeline on the paper's own families.

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "core/election.hpp"

namespace {

using namespace arl;

TEST(Smoke, FamilyHIsFeasibleAndElects) {
  const config::Configuration h3 = config::family_h(3);
  const core::ElectionReport report = core::elect(h3);
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.valid);
  ASSERT_TRUE(report.leader.has_value());
}

TEST(Smoke, FamilySIsInfeasible) {
  const config::Configuration s3 = config::family_s(3);
  const core::ElectionReport report = core::elect(s3);
  EXPECT_FALSE(report.feasible);
  EXPECT_TRUE(report.valid);
  EXPECT_FALSE(report.leader.has_value());
}

TEST(Smoke, FamilyGElectsTheCenter) {
  const config::Configuration g3 = config::family_g(3);
  const core::ElectionReport report = core::elect(g3);
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.valid);
  ASSERT_TRUE(report.leader.has_value());
  EXPECT_EQ(*report.leader, config::family_g_center(3));
}

}  // namespace
