/// \file test_config.cpp
/// Unit tests for configurations: validation, span/normalization, the §4
/// families, random configurations, serialization.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "config/configuration.hpp"
#include "config/families.hpp"
#include "config/fingerprint.hpp"
#include "config/io.hpp"
#include "config/mutations.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;
using arl::support::ContractViolation;

// ---------------------------------------------------------------- validation

TEST(Configuration, RejectsDisconnectedGraphs) {
  const graph::Graph g = graph::Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(config::Configuration(g, {0, 0, 0, 0}), ContractViolation);
}

TEST(Configuration, RejectsTagCountMismatch) {
  EXPECT_THROW(config::Configuration(graph::path(3), {0, 1}), ContractViolation);
}

TEST(Configuration, RejectsEmptyGraph) {
  EXPECT_THROW(config::Configuration(graph::Graph{}, {}), ContractViolation);
}

TEST(Configuration, SingleNodeIsValid) {
  const config::Configuration c(graph::path(1), {5});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.span(), 0u);
}

// --------------------------------------------------------- span and normalize

TEST(Configuration, SpanIsMaxMinusMin) {
  const config::Configuration c(graph::path(4), {3, 7, 5, 3});
  EXPECT_EQ(c.span(), 4u);
  EXPECT_EQ(c.min_tag(), 3u);
  EXPECT_FALSE(c.is_normalized());
}

TEST(Configuration, NormalizeShiftsToZero) {
  const config::Configuration c(graph::path(3), {4, 6, 9});
  const config::Configuration n = c.normalized();
  EXPECT_EQ(n.tags(), (std::vector<config::Tag>{0, 2, 5}));
  EXPECT_EQ(n.span(), c.span());
  EXPECT_TRUE(n.is_normalized());
  EXPECT_EQ(n.graph(), c.graph());
}

TEST(Configuration, NormalizeIsIdempotent) {
  const config::Configuration c(graph::path(3), {0, 2, 1});
  EXPECT_EQ(c.normalized(), c);
}

// ------------------------------------------------------------------ families

TEST(Families, FamilyGLayout) {
  // G_2: a1 a2 | b1..b5 | c2 c1 — n = 9, tags 0 0 1 1 1 1 1 0 0.
  const config::Configuration g2 = config::family_g(2);
  EXPECT_EQ(g2.size(), 9u);
  EXPECT_EQ(g2.span(), 1u);
  EXPECT_EQ(g2.tags(), (std::vector<config::Tag>{0, 0, 1, 1, 1, 1, 1, 0, 0}));
  EXPECT_EQ(config::family_g_center(2), 4u);  // b_3 sits in the middle
  EXPECT_EQ(g2.graph(), graph::path(9));
}

TEST(Families, FamilyGRequiresMAtLeastTwo) {
  EXPECT_THROW(config::family_g(1), ContractViolation);
}

TEST(Families, FamilyHLayout) {
  const config::Configuration h4 = config::family_h(4);
  EXPECT_EQ(h4.size(), 4u);
  EXPECT_EQ(h4.tags(), (std::vector<config::Tag>{4, 0, 0, 5}));
  EXPECT_EQ(h4.span(), 5u);
}

TEST(Families, FamilySLayout) {
  const config::Configuration s4 = config::family_s(4);
  EXPECT_EQ(s4.tags(), (std::vector<config::Tag>{4, 0, 0, 4}));
  EXPECT_EQ(s4.span(), 4u);
}

TEST(Families, SingleHopIsComplete) {
  const config::Configuration sh = config::single_hop({0, 1, 2, 3});
  EXPECT_EQ(sh.graph(), graph::complete(4));
  EXPECT_EQ(sh.span(), 3u);
}

TEST(Families, StaggeredPathTags) {
  const config::Configuration sp = config::staggered_path(5);
  EXPECT_EQ(sp.tags(), (std::vector<config::Tag>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sp.span(), 4u);
}

TEST(Families, RandomTagsAreNormalizedAndBounded) {
  support::Rng rng(42);
  for (int repeat = 0; repeat < 10; ++repeat) {
    const config::Configuration c = config::random_tags(graph::cycle(12), 5, rng);
    EXPECT_TRUE(c.is_normalized());
    EXPECT_LE(c.span(), 5u);
  }
}

TEST(Families, RandomTagsWithExactSpan) {
  support::Rng rng(43);
  for (const config::Tag span : {0u, 1u, 3u, 9u}) {
    const config::Configuration c =
        config::random_tags_with_span(graph::complete(8), span, rng);
    EXPECT_EQ(c.span(), span);
    EXPECT_EQ(c.min_tag(), 0u);
  }
}

// --------------------------------------------------------------------- io

TEST(Io, TextRoundTrip) {
  const config::Configuration original = config::family_h(3);
  const std::string text = config::to_text_string(original);
  const config::Configuration parsed = config::from_text_string(text);
  EXPECT_EQ(parsed, original);
}

TEST(Io, TextRoundTripLargerGraph) {
  support::Rng rng(17);
  const config::Configuration original =
      config::random_tags(graph::gnp_connected(15, 0.3, rng), 4, rng);
  EXPECT_EQ(config::from_text_string(config::to_text_string(original)), original);
}

TEST(Io, ParserSkipsCommentsAndBlanks) {
  const std::string text =
      "# a comment\n"
      "\n"
      "nodes 2\n"
      "# another\n"
      "tags 0 1\n"
      "edges 1\n"
      "0 1\n";
  const config::Configuration parsed = config::from_text_string(text);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.tag(1), 1u);
}

TEST(Io, ParserRejectsMalformedInput) {
  EXPECT_THROW(config::from_text_string(""), ContractViolation);
  EXPECT_THROW(config::from_text_string("nodes 2\ntags 0\nedges 0\n"), ContractViolation);
  EXPECT_THROW(config::from_text_string("nodes 2\ntags 0 1\nedges 1\n0 5\n"),
               ContractViolation);
  EXPECT_THROW(config::from_text_string("nodes 2\ntags 0 1\nedges 2\n0 1\n"),
               ContractViolation);
  // Disconnected parses structurally but fails configuration validation.
  EXPECT_THROW(config::from_text_string("nodes 3\ntags 0 1 2\nedges 1\n0 1\n"),
               ContractViolation);
}

TEST(Io, DotContainsNodesAndEdges) {
  std::ostringstream out;
  config::to_dot(config::family_h(2), out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph configuration {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"0:2\"]"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
}

// --------------------------------------------------------------- fingerprint

TEST(Fingerprint, EqualConfigurationsCollide) {
  // Independently constructed equal configurations share the digest — the
  // property the schedule cache's keying rests on.
  const config::Configuration a = config::family_h(3);
  const config::Configuration b = config::family_h(3);
  EXPECT_EQ(config::fingerprint(a), config::fingerprint(b));

  // A serialization round trip preserves it too (the cross-process case).
  const config::Configuration parsed = config::from_text_string(config::to_text_string(a));
  EXPECT_EQ(config::fingerprint(parsed), config::fingerprint(a));
}

TEST(Fingerprint, SingleNodeTagMutationsChangeTheDigest) {
  const config::Configuration base = config::family_h(2);
  const config::Fingerprint original = config::fingerprint(base);
  std::set<config::Fingerprint> digests{original};
  for (const config::Configuration& mutated : config::all_tag_mutations(base, 4)) {
    const config::Fingerprint digest = config::fingerprint(mutated);
    EXPECT_NE(digest, original) << config::to_text_string(mutated);
    // The whole mutation neighbourhood is pairwise distinct: every mutant
    // differs from every other in at least one tag.
    EXPECT_TRUE(digests.insert(digest).second) << config::to_text_string(mutated);
  }
}

TEST(Fingerprint, EdgeMutationsChangeTheDigest) {
  support::Rng rng(31337);
  const config::Configuration base = config::family_h(2);
  const auto extra = config::with_random_extra_edge(base, rng);
  ASSERT_TRUE(extra.has_value());
  EXPECT_NE(config::fingerprint(*extra), config::fingerprint(base));
}

TEST(Fingerprint, GlobalTagShiftsChangeTheDigest) {
  // The digest is over the exact tags, not the normalized form: a shifted
  // configuration has different observable global rounds and must not share
  // a cache entry with its normalization.
  const config::Configuration base = config::staggered_path(4);
  std::vector<config::Tag> shifted = base.tags();
  for (config::Tag& tag : shifted) {
    tag += 3;
  }
  EXPECT_NE(config::fingerprint(config::Configuration(base.graph(), shifted)),
            config::fingerprint(base));
}

}  // namespace
