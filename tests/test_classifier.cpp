/// \file test_classifier.cpp
/// Tests for the Classifier (Algorithms 1-4): hand-computed partitions and
/// labels on the paper's families, structural properties (Observation 3.2,
/// Corollary 3.3, Lemma 3.4), and differential equality with FastClassifier.

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "core/classifier.hpp"
#include "core/fast_classifier.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;
using core::ClassId;
using core::Label;
using core::LabelTriple;

// ----------------------------------------------------- hand-computed families

TEST(Classifier, FamilyHSplitsCompletelyInOneIteration) {
  // H_m: path a-b-c-d, tags m,0,0,m+1, σ = m+1.  First-iteration labels:
  //   a: {(1, 2, 1)}       (hears b at block round σ+1+0-m = 2)
  //   b: {(1, 2m+2, 1)}    (hears a at σ+1+m; c is same-class same-tag)
  //   c: {(1, 2m+3, 1)}    (hears d at σ+1+(m+1))
  //   d: {(1, 1, 1)}       (hears c at σ+1-(m+1) = 1)
  for (const config::Tag m : {1u, 2u, 5u, 9u}) {
    const core::ClassifierResult result = core::Classifier{}.run(config::family_h(m));
    ASSERT_EQ(result.iterations, 1u) << "m=" << m;
    EXPECT_TRUE(result.feasible());
    const auto& record = result.records[0];
    EXPECT_EQ(record.num_classes, 4u);
    EXPECT_EQ(record.labels[0], (Label{{1, 2, false}}));
    EXPECT_EQ(record.labels[1], (Label{{1, 2 * m + 2, false}}));
    EXPECT_EQ(record.labels[2], (Label{{1, 2 * m + 3, false}}));
    EXPECT_EQ(record.labels[3], (Label{{1, 1, false}}));
    // Smallest singleton class is a's (vertex order makes node 0 class 1).
    EXPECT_EQ(result.leader_class, 1u);
    EXPECT_EQ(result.leader, 0u);
  }
}

TEST(Classifier, FamilySStabilizesAtTwoPairs) {
  // S_m: tags m,0,0,m — Proposition 4.5's infeasible family.  Iteration 1
  // splits into {a,d} and {b,c}; iteration 2 changes nothing.
  for (const config::Tag m : {1u, 3u, 7u}) {
    const core::ClassifierResult result = core::Classifier{}.run(config::family_s(m));
    EXPECT_FALSE(result.feasible());
    ASSERT_EQ(result.iterations, 2u) << "m=" << m;
    EXPECT_EQ(result.records[0].clazz, (std::vector<ClassId>{1, 2, 2, 1}));
    EXPECT_EQ(result.records[0].num_classes, 2u);
    EXPECT_EQ(result.records[1].clazz, (std::vector<ClassId>{1, 2, 2, 1}));
    EXPECT_EQ(result.records[1].num_classes, 2u);
  }
}

TEST(Classifier, FamilyGElectsTheCenterAfterMIterations) {
  // Proposition 4.1: "the central node b_{m+1} will be in a one-element
  // equivalence class after m iterations".
  for (const config::Tag m : {2u, 3u, 4u, 6u}) {
    const core::ClassifierResult result = core::Classifier{}.run(config::family_g(m));
    EXPECT_TRUE(result.feasible()) << "m=" << m;
    EXPECT_EQ(result.iterations, m) << "m=" << m;
    EXPECT_EQ(result.leader, config::family_g_center(m)) << "m=" << m;
  }
}

TEST(Classifier, ZeroSpanIsAlwaysInfeasibleForTwoPlusNodes) {
  // With equal tags every label is empty (same class, same tag ⇒ excluded),
  // so the partition never leaves {all}: one iteration, verdict "No".
  // This holds for ANY topology — even asymmetric ones like stars or paths,
  // because radio nodes in lockstep can never hear each other.
  const std::vector<graph::Graph> graphs = {
      graph::path(2),  graph::path(5),     graph::cycle(6),      graph::complete(4),
      graph::star(7),  graph::grid(3, 3),  graph::binary_tree(7)};
  for (const auto& g : graphs) {
    const config::Configuration c(g, std::vector<config::Tag>(g.node_count(), 0));
    const core::ClassifierResult result = core::Classifier{}.run(c);
    EXPECT_FALSE(result.feasible()) << "n=" << g.node_count();
    EXPECT_EQ(result.iterations, 1u);
    EXPECT_EQ(result.records[0].num_classes, 1u);
  }
}

TEST(Classifier, SingleNodeIsFeasible) {
  const config::Configuration c(graph::path(1), {0});
  const core::ClassifierResult result = core::Classifier{}.run(c);
  EXPECT_TRUE(result.feasible());
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_EQ(result.leader, 0u);
}

TEST(Classifier, StaggeredPathElectsFirstNode) {
  for (const graph::NodeId n : {2u, 3u, 8u, 15u}) {
    const core::ClassifierResult result =
        core::Classifier{}.run(config::staggered_path(n));
    EXPECT_TRUE(result.feasible()) << "n=" << n;
    EXPECT_EQ(result.iterations, 1u);
    EXPECT_EQ(result.leader, 0u);
  }
}

TEST(Classifier, ClassesAfterZeroIsAllOnes) {
  const core::ClassifierResult result = core::Classifier{}.run(config::family_h(2));
  EXPECT_EQ(result.classes_after(0), (std::vector<ClassId>{1, 1, 1, 1}));
  EXPECT_EQ(result.num_classes_after(0), 1u);
}

// ----------------------------------------------------------- label mechanics

TEST(Partitioner, CollisionSlotsBecomeStars) {
  // Star hub with two leaves of equal tag (≠ hub's): both leaves land on the
  // same (class, round) slot at the hub, so the hub's label holds one (∗)
  // triple.
  const config::Configuration c(graph::star(3), {0, 1, 1});
  const auto labels = core::compute_labels(c, {1, 1, 1});
  // σ = 1: leaves (tag 1) seen from the hub (tag 0) at round σ+1+1 = 3.
  EXPECT_EQ(labels[0], (Label{{1, 3, true}}));
  // Each leaf sees only the hub at round σ+1-1 = 1.
  EXPECT_EQ(labels[1], (Label{{1, 1, false}}));
  EXPECT_EQ(labels[2], (Label{{1, 1, false}}));
}

TEST(Partitioner, SameClassSameTagNeighboursAreExcluded) {
  const config::Configuration c(graph::complete(3), {0, 0, 0});
  const auto labels = core::compute_labels(c, {1, 1, 1});
  for (const auto& label : labels) {
    EXPECT_TRUE(label.empty());
  }
}

TEST(Partitioner, SameClassDifferentTagNeighboursAreIncluded) {
  const config::Configuration c(graph::path(2), {0, 2});
  const auto labels = core::compute_labels(c, {1, 1});
  EXPECT_EQ(labels[0], (Label{{1, 5, false}}));  // σ=2: 2+1+2
  EXPECT_EQ(labels[1], (Label{{1, 1, false}}));  // 2+1-2
}

TEST(Partitioner, LabelsAreSortedByPrecHist) {
  // A centre with neighbours in different classes and at different offsets;
  // the label must come out (class, round, star)-lexicographic.
  const config::Configuration c(graph::star(4), {1, 0, 2, 2});
  const auto labels = core::compute_labels(c, {1, 2, 2, 3});
  const Label& hub = labels[0];
  ASSERT_GE(hub.size(), 2u);
  for (std::size_t i = 0; i + 1 < hub.size(); ++i) {
    EXPECT_LT(hub[i], hub[i + 1]);
  }
}

TEST(LabelOrdering, PrecHistMatchesDefinition31) {
  // (a,b,c) ≺ (a',b',c') iff a<a', or a=a' ∧ b<b', or a=a' ∧ b=b' ∧ c=1.
  EXPECT_LT((LabelTriple{1, 9, true}), (LabelTriple{2, 1, false}));
  EXPECT_LT((LabelTriple{1, 2, true}), (LabelTriple{1, 3, false}));
  EXPECT_LT((LabelTriple{1, 2, false}), (LabelTriple{1, 2, true}));
  EXPECT_EQ(core::format_label({}), "null");
  EXPECT_EQ(core::format_label({{1, 2, false}, {1, 2, true}}), "(1,2,1)(1,2,*)");
}

// ------------------------------------------------------- structural properties

void expect_structural_invariants(const core::ClassifierResult& result, graph::NodeId n) {
  // Lemma 3.4: exit within ceil(n/2) iterations.
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, (n + 1u) / 2u);
  // Corollary 3.3: class counts never decrease.
  ClassId previous = 1;
  for (const auto& record : result.records) {
    EXPECT_GE(record.num_classes, previous);
    previous = record.num_classes;
    EXPECT_LE(record.num_classes, n);
  }
  // Observation 3.2: partitions refine (same class later ⇒ same class earlier).
  for (std::size_t j = 1; j < result.records.size(); ++j) {
    const auto& earlier = result.records[j - 1].clazz;
    const auto& later = result.records[j].clazz;
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v = u + 1; v < n; ++v) {
        if (later[u] == later[v]) {
          EXPECT_EQ(earlier[u], earlier[v]);
        }
      }
    }
  }
  // Representatives live in their class.
  for (const auto& record : result.records) {
    for (ClassId k = 1; k <= record.num_classes; ++k) {
      EXPECT_EQ(record.clazz[record.reps[k - 1]], k);
    }
  }
  // Feasible ⇔ singleton in the final partition.
  const auto& final_record = result.records.back();
  const auto singleton = core::find_singleton(final_record.clazz, final_record.num_classes);
  EXPECT_EQ(result.feasible(), singleton.has_value());
  if (result.feasible()) {
    EXPECT_EQ(result.leader_class, singleton->first);
    EXPECT_EQ(result.leader, singleton->second);
  }
  EXPECT_GT(result.steps, 0u);
}

TEST(Classifier, StructuralInvariantsOnFamilies) {
  expect_structural_invariants(core::Classifier{}.run(config::family_g(4)), 17);
  expect_structural_invariants(core::Classifier{}.run(config::family_h(3)), 4);
  expect_structural_invariants(core::Classifier{}.run(config::family_s(3)), 4);
  expect_structural_invariants(core::Classifier{}.run(config::staggered_path(9)), 9);
}

// ----------------------------------------- differential: fast classifier

void expect_identical_results(const core::ClassifierResult& a, const core::ClassifierResult& b) {
  ASSERT_EQ(a.verdict, b.verdict);
  ASSERT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.leader_class, b.leader_class);
  EXPECT_EQ(a.leader, b.leader);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t j = 0; j < a.records.size(); ++j) {
    EXPECT_EQ(a.records[j].clazz, b.records[j].clazz) << "iteration " << j + 1;
    EXPECT_EQ(a.records[j].num_classes, b.records[j].num_classes);
    EXPECT_EQ(a.records[j].reps, b.records[j].reps);
    EXPECT_EQ(a.records[j].labels, b.records[j].labels);
  }
}

/// Parameterized over RNG seeds: random topology + tags, both classifiers
/// must agree bit-for-bit.
class ClassifierEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierEquivalence, FastMatchesPaperOnRandomConfigurations) {
  support::Rng rng(GetParam());
  for (int repeat = 0; repeat < 8; ++repeat) {
    const auto n = static_cast<graph::NodeId>(2 + rng.below(18));
    const auto sigma = static_cast<config::Tag>(rng.below(4));
    graph::Graph g;
    switch (rng.below(4)) {
      case 0:
        g = graph::path(n);
        break;
      case 1:
        g = n >= 3 ? graph::cycle(n) : graph::path(n);
        break;
      case 2:
        g = graph::random_tree(n, rng);
        break;
      default:
        g = graph::gnp_connected(n, 0.3, rng);
        break;
    }
    const config::Configuration c = config::random_tags(std::move(g), sigma, rng);
    const core::ClassifierResult paper = core::Classifier{}.run(c);
    const core::ClassifierResult fast = core::FastClassifier{}.run(c);
    expect_identical_results(paper, fast);
    expect_structural_invariants(paper, c.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
