/// \file test_baselines.cpp
/// The related-work baseline protocols: labeled deterministic election
/// (binary search, tree splitting) and randomized anonymous election —
/// including the headline contrast: randomization succeeds on configurations
/// the paper proves impossible for deterministic anonymous algorithms.
/// Elections run through core::run_protocol (the same dispatch the engine
/// uses); the Drip-level contract checks keep exercising the raw simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "baselines/binary_search.hpp"
#include "baselines/randomized.hpp"
#include "baselines/tree_split.hpp"
#include "config/families.hpp"
#include "core/classifier.hpp"
#include "core/protocol.hpp"
#include "graph/generators.hpp"
#include "radio/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

config::Configuration simultaneous_single_hop(graph::NodeId n) {
  return config::single_hop(std::vector<config::Tag>(n, 0));
}

std::vector<std::uint64_t> identity_labels(graph::NodeId n) {
  std::vector<std::uint64_t> labels(n);
  std::iota(labels.begin(), labels.end(), 0);
  return labels;
}

core::ElectionReport run_with_labels(const config::Configuration& c,
                                     const core::ProtocolSpec& spec,
                                     std::vector<std::uint64_t> labels) {
  core::ElectionOptions options;
  options.simulator.labels = std::move(labels);
  return core::run_protocol(c, spec, options);
}

// --------------------------------------------------------- binary search

TEST(BinarySearch, ElectsTheMinimumLabel) {
  support::Rng rng(31);
  for (const graph::NodeId n : {2u, 3u, 5u, 16u, 33u}) {
    const config::Configuration c = simultaneous_single_hop(n);
    auto labels = identity_labels(n);
    for (auto& label : labels) {
      label += 5;  // labels need not start at zero
    }
    rng.shuffle(labels);
    const auto min_position = static_cast<graph::NodeId>(
        std::min_element(labels.begin(), labels.end()) - labels.begin());
    const core::ElectionReport report =
        run_with_labels(c, core::ProtocolSpec::binary_search(8), labels);
    EXPECT_EQ(report.disposition, core::Disposition::Elected) << "n=" << n;
    ASSERT_TRUE(report.leader.has_value()) << "n=" << n;
    EXPECT_EQ(*report.leader, min_position);
  }
}

TEST(BinarySearch, RunsInExactlyLPlusOneRounds) {
  const unsigned L = 6;
  const core::ElectionReport report = run_with_labels(
      simultaneous_single_hop(10), core::ProtocolSpec::binary_search(L), identity_labels(10));
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(report.local_rounds, L + 1);
}

TEST(BinarySearch, SingleNodeElectsItself) {
  const core::ElectionReport report = run_with_labels(
      simultaneous_single_hop(1), core::ProtocolSpec::binary_search(4), {9});
  EXPECT_EQ(report.disposition, core::Disposition::Elected);
  EXPECT_EQ(report.leader, std::optional<graph::NodeId>{0});
}

TEST(BinarySearch, RequiresLabels) {
  // Drip-level contract: the raw simulator hands out no labels, and the
  // protocol refuses to run without them.  (run_protocol always supplies
  // labels — wakeup order by default — so this stays a simulator test.)
  const config::Configuration c = simultaneous_single_hop(3);
  const baselines::BinarySearchElection drip(4);
  EXPECT_THROW((void)radio::simulate(c, drip), support::ContractViolation);
}

TEST(BinarySearch, RejectsOversizedLabels) {
  EXPECT_THROW((void)run_with_labels(simultaneous_single_hop(2),
                                     core::ProtocolSpec::binary_search(3), {1, 200}),
               support::ContractViolation);  // 200 >= 2^3
}

// --------------------------------------------------------- tree splitting

TEST(TreeSplit, ElectsTheMinimumLabel) {
  support::Rng rng(77);
  for (const graph::NodeId n : {2u, 3u, 6u, 12u, 20u}) {
    const config::Configuration c = simultaneous_single_hop(n);
    auto labels = identity_labels(n);
    rng.shuffle(labels);
    const auto min_position = static_cast<graph::NodeId>(
        std::min_element(labels.begin(), labels.end()) - labels.begin());
    const core::ElectionReport report =
        run_with_labels(c, core::ProtocolSpec::tree_split(6), labels);
    EXPECT_EQ(report.disposition, core::Disposition::Elected) << "n=" << n;
    ASSERT_TRUE(report.leader.has_value()) << "n=" << n;
    EXPECT_EQ(*report.leader, min_position) << "n=" << n;
  }
}

TEST(TreeSplit, AllNodesTerminateTogether) {
  // The harness's verification covers the termination discipline; the raw
  // run confirms the per-node rounds really are identical.
  const config::Configuration c = simultaneous_single_hop(7);
  const baselines::TreeSplitElection drip(5);
  radio::SimulatorOptions options;
  options.labels = identity_labels(7);
  const radio::RunResult run = radio::simulate(c, drip, options);
  ASSERT_TRUE(run.all_terminated);
  for (const auto& node : run.nodes) {
    EXPECT_EQ(node.done_round, run.nodes[0].done_round);
  }
}

TEST(TreeSplit, DuplicateLabelsFailDetectably) {
  // Failure injection: duplicate labels make a fully refined prefix collide;
  // the protocol must terminate everywhere with no leader rather than loop
  // (NoLeader means clean termination — a horizon truncation reports Failed).
  const core::ElectionReport report = run_with_labels(
      simultaneous_single_hop(4), core::ProtocolSpec::tree_split(3), {5, 5, 2, 2});
  EXPECT_EQ(report.disposition, core::Disposition::NoLeader);
  EXPECT_FALSE(report.leader.has_value());
  EXPECT_TRUE(report.simulated);
}

// ------------------------------------------------------------- randomized

TEST(Randomized, ElectsExactlyOneLeaderAcrossSeeds) {
  // The deterministic-anonymous-impossible configuration: all tags equal.
  // Private coins must still elect exactly one leader, for every seed.
  for (const graph::NodeId n : {2u, 5u, 17u}) {
    const config::Configuration c = simultaneous_single_hop(n);
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      core::ElectionOptions options;
      options.simulator.coin_seed = seed;
      const core::ElectionReport report =
          core::run_protocol(c, core::ProtocolSpec::randomized(), options);
      EXPECT_EQ(report.disposition, core::Disposition::Elected)
          << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(report.valid) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Randomized, ContrastWithDeterministicImpossibility) {
  // The same configuration is infeasible for deterministic anonymous
  // protocols (Classifier verdict), yet the randomized baseline elects.
  const config::Configuration c = simultaneous_single_hop(8);
  EXPECT_FALSE(core::Classifier{}.run(c).feasible());
  core::ElectionOptions options;
  options.simulator.coin_seed = 4242;
  const core::ElectionReport report =
      core::run_protocol(c, core::ProtocolSpec::randomized(), options);
  EXPECT_EQ(report.disposition, core::Disposition::Elected);
}

TEST(Randomized, SlotGuardForcesTermination) {
  // With one node there are never echo listeners, so no slot can succeed;
  // the guard must still terminate the protocol cleanly (with no leader).
  const core::ElectionReport report =
      core::run_protocol(simultaneous_single_hop(1), core::ProtocolSpec::randomized(16));
  EXPECT_EQ(report.disposition, core::Disposition::NoLeader);
  EXPECT_FALSE(report.leader.has_value());
}

TEST(Randomized, DifferentSeedsCanPickDifferentLeaders) {
  const config::Configuration c = simultaneous_single_hop(6);
  std::set<graph::NodeId> winners;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    core::ElectionOptions options;
    options.simulator.coin_seed = seed;
    const core::ElectionReport report =
        core::run_protocol(c, core::ProtocolSpec::randomized(), options);
    if (report.leader.has_value()) {
      winners.insert(*report.leader);
    }
  }
  EXPECT_GT(winners.size(), 1u);  // anonymity: no node is structurally favoured
}

}  // namespace
