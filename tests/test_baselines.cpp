/// \file test_baselines.cpp
/// The related-work baseline protocols: labeled deterministic election
/// (binary search, tree splitting) and randomized anonymous election —
/// including the headline contrast: randomization succeeds on configurations
/// the paper proves impossible for deterministic anonymous algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "baselines/binary_search.hpp"
#include "baselines/randomized.hpp"
#include "baselines/tree_split.hpp"
#include "config/families.hpp"
#include "core/classifier.hpp"
#include "graph/generators.hpp"
#include "radio/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

config::Configuration simultaneous_single_hop(graph::NodeId n) {
  return config::single_hop(std::vector<config::Tag>(n, 0));
}

std::vector<std::uint64_t> identity_labels(graph::NodeId n) {
  std::vector<std::uint64_t> labels(n);
  std::iota(labels.begin(), labels.end(), 0);
  return labels;
}

// --------------------------------------------------------- binary search

TEST(BinarySearch, ElectsTheMinimumLabel) {
  support::Rng rng(31);
  for (const graph::NodeId n : {2u, 3u, 5u, 16u, 33u}) {
    const config::Configuration c = simultaneous_single_hop(n);
    auto labels = identity_labels(n);
    for (auto& label : labels) {
      label += 5;  // labels need not start at zero
    }
    rng.shuffle(labels);
    const baselines::BinarySearchElection drip(8);
    radio::SimulatorOptions options;
    options.labels = labels;
    const radio::RunResult run = radio::simulate(c, drip, options);
    ASSERT_TRUE(run.all_terminated);
    const auto leaders = run.leaders();
    ASSERT_EQ(leaders.size(), 1u) << "n=" << n;
    const auto min_position = static_cast<graph::NodeId>(
        std::min_element(labels.begin(), labels.end()) - labels.begin());
    EXPECT_EQ(leaders.front(), min_position);
  }
}

TEST(BinarySearch, RunsInExactlyLPlusOneRounds) {
  const unsigned L = 6;
  const config::Configuration c = simultaneous_single_hop(10);
  const baselines::BinarySearchElection drip(L);
  radio::SimulatorOptions options;
  options.labels = identity_labels(10);
  const radio::RunResult run = radio::simulate(c, drip, options);
  ASSERT_TRUE(run.all_terminated);
  for (const auto& node : run.nodes) {
    EXPECT_EQ(node.done_round, L + 1);
  }
  EXPECT_EQ(drip.rounds(), L + 1);
}

TEST(BinarySearch, SingleNodeElectsItself) {
  const config::Configuration c = simultaneous_single_hop(1);
  const baselines::BinarySearchElection drip(4);
  radio::SimulatorOptions options;
  options.labels = {9};
  const radio::RunResult run = radio::simulate(c, drip, options);
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(BinarySearch, RequiresLabels) {
  const config::Configuration c = simultaneous_single_hop(3);
  const baselines::BinarySearchElection drip(4);
  EXPECT_THROW((void)radio::simulate(c, drip), support::ContractViolation);
}

TEST(BinarySearch, RejectsOversizedLabels) {
  const config::Configuration c = simultaneous_single_hop(2);
  const baselines::BinarySearchElection drip(3);
  radio::SimulatorOptions options;
  options.labels = {1, 200};  // 200 >= 2^3
  EXPECT_THROW((void)radio::simulate(c, drip, options), support::ContractViolation);
}

// --------------------------------------------------------- tree splitting

TEST(TreeSplit, ElectsTheMinimumLabel) {
  support::Rng rng(77);
  for (const graph::NodeId n : {2u, 3u, 6u, 12u, 20u}) {
    const config::Configuration c = simultaneous_single_hop(n);
    auto labels = identity_labels(n);
    rng.shuffle(labels);
    const baselines::TreeSplitElection drip(6);
    radio::SimulatorOptions options;
    options.labels = labels;
    const radio::RunResult run = radio::simulate(c, drip, options);
    ASSERT_TRUE(run.all_terminated) << "n=" << n;
    const auto leaders = run.leaders();
    ASSERT_EQ(leaders.size(), 1u) << "n=" << n;
    const auto min_position = static_cast<graph::NodeId>(
        std::min_element(labels.begin(), labels.end()) - labels.begin());
    EXPECT_EQ(leaders.front(), min_position) << "n=" << n;
  }
}

TEST(TreeSplit, AllNodesTerminateTogether) {
  const config::Configuration c = simultaneous_single_hop(7);
  const baselines::TreeSplitElection drip(5);
  radio::SimulatorOptions options;
  options.labels = identity_labels(7);
  const radio::RunResult run = radio::simulate(c, drip, options);
  ASSERT_TRUE(run.all_terminated);
  for (const auto& node : run.nodes) {
    EXPECT_EQ(node.done_round, run.nodes[0].done_round);
  }
}

TEST(TreeSplit, DuplicateLabelsFailDetectably) {
  // Failure injection: duplicate labels make a fully refined prefix collide;
  // the protocol must terminate everywhere with no leader rather than loop.
  const config::Configuration c = simultaneous_single_hop(4);
  const baselines::TreeSplitElection drip(3);
  radio::SimulatorOptions options;
  options.labels = {5, 5, 2, 2};
  const radio::RunResult run = radio::simulate(c, drip, options);
  ASSERT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.leaders().empty());
}

// ------------------------------------------------------------- randomized

TEST(Randomized, ElectsExactlyOneLeaderAcrossSeeds) {
  // The deterministic-anonymous-impossible configuration: all tags equal.
  // Private coins must still elect exactly one leader, for every seed.
  for (const graph::NodeId n : {2u, 5u, 17u}) {
    const config::Configuration c = simultaneous_single_hop(n);
    const baselines::RandomizedElection drip;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      radio::SimulatorOptions options;
      options.coin_seed = seed;
      const radio::RunResult run = radio::simulate(c, drip, options);
      ASSERT_TRUE(run.all_terminated) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(run.leaders().size(), 1u) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Randomized, ContrastWithDeterministicImpossibility) {
  // The same configuration is infeasible for deterministic anonymous
  // protocols (Classifier verdict), yet the randomized baseline elects.
  const config::Configuration c = simultaneous_single_hop(8);
  EXPECT_FALSE(core::Classifier{}.run(c).feasible());
  const baselines::RandomizedElection drip;
  radio::SimulatorOptions options;
  options.coin_seed = 4242;
  const radio::RunResult run = radio::simulate(c, drip, options);
  ASSERT_TRUE(run.all_terminated);
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(Randomized, SlotGuardForcesTermination) {
  // With one node there are never echo listeners, so no slot can succeed;
  // the guard must still terminate the protocol (with no leader).
  const config::Configuration c = simultaneous_single_hop(1);
  const baselines::RandomizedElection drip(/*max_slots=*/16);
  const radio::RunResult run = radio::simulate(c, drip);
  ASSERT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.leaders().empty());
}

TEST(Randomized, DifferentSeedsCanPickDifferentLeaders) {
  const config::Configuration c = simultaneous_single_hop(6);
  const baselines::RandomizedElection drip;
  std::set<graph::NodeId> winners;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    radio::SimulatorOptions options;
    options.coin_seed = seed;
    const radio::RunResult run = radio::simulate(c, drip, options);
    const auto leaders = run.leaders();
    if (leaders.size() == 1) {
      winners.insert(leaders.front());
    }
  }
  EXPECT_GT(winners.size(), 1u);  // anonymity: no node is structurally favoured
}

}  // namespace
