/// \file test_quotient.cpp
/// Symmetry-quotient analysis: orbits of indistinguishable nodes and the
/// quotient graph over them.

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "core/quotient.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

TEST(Quotient, FamilySHasTwoPairedOrbits) {
  // S_2 stabilizes at {a,d} and {b,c}: two orbits of two, no singleton.
  const core::SymmetryReport report = core::analyze_symmetry(config::family_s(2));
  ASSERT_EQ(report.orbits.size(), 2u);
  EXPECT_EQ(report.orbits[0].members, (std::vector<graph::NodeId>{0, 3}));
  EXPECT_EQ(report.orbits[1].members, (std::vector<graph::NodeId>{1, 2}));
  EXPECT_FALSE(report.feasible());
  EXPECT_TRUE(report.singleton_orbits.empty());
  // Quotient: the two orbits are adjacent (a-b and c-d edges collapse).
  EXPECT_EQ(report.quotient.node_count(), 2u);
  EXPECT_TRUE(report.quotient.has_edge(0, 1));
}

TEST(Quotient, FamilyHIsFullyAsymmetric) {
  const core::SymmetryReport report = core::analyze_symmetry(config::family_h(2));
  EXPECT_EQ(report.orbits.size(), 4u);
  EXPECT_EQ(report.singleton_orbits.size(), 4u);
  EXPECT_TRUE(report.feasible());
  // The quotient of a fully asymmetric configuration is the graph itself.
  EXPECT_EQ(report.quotient.node_count(), 4u);
  EXPECT_EQ(report.quotient.edge_count(), 3u);
}

TEST(Quotient, FamilyGMirrorOrbits) {
  // G_m's stable partition pairs every node with its mirror image except the
  // centre — the palindromic structure of Proposition 4.1.
  const config::Tag m = 3;
  const core::SymmetryReport report = core::analyze_symmetry(config::family_g(m));
  const graph::NodeId n = 4 * m + 1;
  ASSERT_TRUE(report.feasible());
  EXPECT_EQ(report.singleton_orbits.size(), 1u);
  const core::Orbit& centre = report.orbits[report.singleton_orbits.front()];
  EXPECT_EQ(centre.members, (std::vector<graph::NodeId>{config::family_g_center(m)}));
  for (const core::Orbit& orbit : report.orbits) {
    if (orbit.members.size() == 2) {
      EXPECT_EQ(orbit.members[0] + orbit.members[1], n - 1)  // mirror pair
          << orbit.members[0] << "," << orbit.members[1];
    }
  }
  // Quotient of a palindromic path is a path of half the length.
  EXPECT_EQ(report.quotient.node_count(), 2 * m + 1);
}

TEST(Quotient, StaggeredPathInteriorMergesAcrossTags) {
  // The documented subtlety: one orbit can span nodes with different tags.
  const core::SymmetryReport report = core::analyze_symmetry(config::staggered_path(6));
  bool found_mixed_tag_orbit = false;
  const config::Configuration c = config::staggered_path(6);
  for (const core::Orbit& orbit : report.orbits) {
    if (orbit.members.size() >= 2) {
      for (std::size_t i = 1; i < orbit.members.size(); ++i) {
        if (c.tag(orbit.members[i]) != c.tag(orbit.members[0])) {
          found_mixed_tag_orbit = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_mixed_tag_orbit);
  EXPECT_TRUE(report.feasible());
}

TEST(Quotient, VertexTransitiveEqualTagsCollapseToAPoint) {
  const config::Configuration c(graph::cycle(8), std::vector<config::Tag>(8, 0));
  const core::SymmetryReport report = core::analyze_symmetry(c);
  EXPECT_EQ(report.orbits.size(), 1u);
  EXPECT_EQ(report.orbits[0].members.size(), 8u);
  EXPECT_EQ(report.quotient.node_count(), 1u);
  EXPECT_EQ(report.quotient.edge_count(), 0u);
  EXPECT_FALSE(report.feasible());
}

TEST(Quotient, OrbitsPartitionTheNodeSet) {
  support::Rng rng(22);
  for (int repeat = 0; repeat < 10; ++repeat) {
    const auto n = static_cast<graph::NodeId>(2 + rng.below(14));
    const config::Configuration c =
        config::random_tags(graph::gnp_connected(n, 0.35, rng), 2, rng);
    const core::SymmetryReport report = core::analyze_symmetry(c);
    std::vector<bool> seen(n, false);
    for (const core::Orbit& orbit : report.orbits) {
      for (const graph::NodeId v : orbit.members) {
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
      }
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      EXPECT_TRUE(seen[v]);
    }
    EXPECT_LE(report.quotient.node_count(), n);
  }
}

}  // namespace
