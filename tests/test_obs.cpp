/// \file test_obs.cpp
/// Unit tests for the observability layer: log-bucketed latency histograms
/// (exact bucket placement, percentile determinism, the merge/delta
/// algebra), concurrent recording, the registry's enabled switch, per-job
/// frames, the JSON-lines trace sink and the flat JSON snapshot writer.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace arl::obs;

HistogramSnapshot snapshot_of(const std::vector<std::uint64_t>& samples) {
  LatencyHistogram histogram;
  for (const std::uint64_t sample : samples) {
    histogram.record(sample);
  }
  return histogram.snapshot();
}

// ------------------------------------------------------------------ buckets

TEST(Histogram, BucketBoundariesAreExact) {
  // Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i - 1].  Probe
  // every boundary on both sides up to 2^20 plus the extreme top.
  LatencyHistogram histogram;
  histogram.record(0);
  HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);

  for (std::size_t bucket = 1; bucket <= 20; ++bucket) {
    const std::uint64_t lower = std::uint64_t{1} << (bucket - 1);
    const std::uint64_t upper = bucket_upper_bound(bucket);
    EXPECT_EQ(upper, (std::uint64_t{1} << bucket) - 1);
    const HistogramSnapshot edges = snapshot_of({lower, upper});
    EXPECT_EQ(edges.buckets[bucket], 2u) << "bucket " << bucket;
    EXPECT_EQ(edges.count(), 2u);
  }

  // The extremes: 2^63 and the largest uint64 land in the top bucket.
  const HistogramSnapshot top = snapshot_of({std::uint64_t{1} << 63, ~std::uint64_t{0}});
  EXPECT_EQ(top.buckets[64], 2u);
  EXPECT_EQ(bucket_upper_bound(64), ~std::uint64_t{0});
  EXPECT_EQ(bucket_upper_bound(0), 0u);
}

TEST(Histogram, CountMeanTotalAreExact) {
  const HistogramSnapshot snap = snapshot_of({0, 1, 2, 3, 4});
  EXPECT_EQ(snap.count(), 5u);
  EXPECT_EQ(snap.total, 10u);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

// -------------------------------------------------------------- percentiles

TEST(Histogram, EmptyPercentilesAreZero) {
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(0.50), 0u);
  EXPECT_EQ(empty.percentile(0.99), 0u);
  EXPECT_EQ(empty.percentile(1.0), 0u);
  EXPECT_EQ(empty.max_bound(), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(Histogram, PercentilesAreBucketUpperBounds) {
  // Samples {0, 1, 2, 3, 4}: buckets 0:{0}, 1:{1}, 2:{2,3}, 3:{4}.
  // rank(q) = ceil(q * 5); the percentile is the upper bound of the bucket
  // holding that rank — a pure function of the recorded multiset.
  const HistogramSnapshot snap = snapshot_of({0, 1, 2, 3, 4});
  EXPECT_EQ(snap.percentile(0.20), 0u);  // rank 1 -> bucket 0
  EXPECT_EQ(snap.percentile(0.40), 1u);  // rank 2 -> bucket 1
  EXPECT_EQ(snap.percentile(0.50), 3u);  // rank 3 -> bucket 2
  EXPECT_EQ(snap.percentile(0.80), 3u);  // rank 4 -> bucket 2
  EXPECT_EQ(snap.percentile(0.99), 7u);  // rank 5 -> bucket 3
  EXPECT_EQ(snap.percentile(1.0), 7u);
  EXPECT_EQ(snap.max_bound(), 7u);
}

TEST(Histogram, PercentileIsDeterministicAcrossRecordingOrder) {
  const std::vector<std::uint64_t> samples = {9, 100, 3, 70000, 1, 0, 255, 256, 12, 12};
  std::vector<std::uint64_t> reversed(samples.rbegin(), samples.rend());
  const HistogramSnapshot forward = snapshot_of(samples);
  const HistogramSnapshot backward = snapshot_of(reversed);
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.percentile(0.5), backward.percentile(0.5));
  EXPECT_EQ(forward.percentile(0.9), backward.percentile(0.9));
}

// -------------------------------------------------------------- merge/delta

TEST(Histogram, MergeOfShardsEqualsUnshardedSnapshot) {
  // The acceptance bar: snapshots from K sharded runs merge bit-identical
  // to the unsharded snapshot of the concatenated samples.
  std::vector<std::uint64_t> all;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    all.push_back(i * i % 40009);
  }
  for (const std::size_t shards : {2u, 3u, 7u}) {
    HistogramSnapshot merged;
    for (std::size_t shard = 0; shard < shards; ++shard) {
      std::vector<std::uint64_t> part;
      for (std::size_t i = shard; i < all.size(); i += shards) {
        part.push_back(all[i]);
      }
      merged.merge(snapshot_of(part));
    }
    EXPECT_EQ(merged, snapshot_of(all)) << shards << " shards";
  }
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const HistogramSnapshot a = snapshot_of({1, 2, 3});
  const HistogramSnapshot b = snapshot_of({100, 200});
  const HistogramSnapshot c = snapshot_of({0, 0, 70000});

  HistogramSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);

  HistogramSnapshot cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cba);
}

TEST(Histogram, SinceAttributesGrowthExactly) {
  LatencyHistogram histogram;
  histogram.record(5);
  histogram.record(1000);
  const HistogramSnapshot before = histogram.snapshot();
  histogram.record(7);
  histogram.record(7);
  const HistogramSnapshot delta = histogram.snapshot().since(before);
  EXPECT_EQ(delta, snapshot_of({7, 7}));
}

TEST(Metrics, SnapshotMergeAndSinceLiftPointwise) {
  Registry shard_a;
  Registry shard_b;
  Registry whole;
  shard_a.record(Phase::Simulate, 10);
  shard_a.record(Phase::Classify, 3);
  shard_b.record(Phase::Simulate, 900);
  for (const std::uint64_t nanos : {10u, 3u, 900u}) {
    whole.record(nanos == 3 ? Phase::Classify : Phase::Simulate, nanos);
  }
  MetricsSnapshot merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  EXPECT_EQ(merged, whole.snapshot());
  EXPECT_FALSE(merged.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());

  const MetricsSnapshot before = whole.snapshot();
  whole.record(Phase::StoreLoad, 42);
  const MetricsSnapshot delta = whole.snapshot().since(before);
  EXPECT_EQ(delta[Phase::StoreLoad].count(), 1u);
  EXPECT_EQ(delta[Phase::StoreLoad].total, 42u);
  EXPECT_EQ(delta[Phase::Simulate].count(), 0u);
}

// -------------------------------------------------------------- concurrency

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  // 1, 2 and 8 threads each record a disjoint arithmetic series; after the
  // writers join, counts and totals are exact — no lost updates.
  for (const unsigned threads : {1u, 2u, 8u}) {
    LatencyHistogram histogram;
    constexpr std::uint64_t kPerThread = 20'000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&histogram, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          histogram.record(t * kPerThread + i);
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    const HistogramSnapshot snap = histogram.snapshot();
    const std::uint64_t n = threads * kPerThread;
    EXPECT_EQ(snap.count(), n) << threads << " threads";
    EXPECT_EQ(snap.total, n * (n - 1) / 2) << threads << " threads";
  }
}

// ----------------------------------------------------------------- registry

TEST(Registry, PhaseNamesAreCanonicalAndComplete) {
  EXPECT_EQ(all_phases().size(), kPhaseCount);
  std::vector<std::string> seen;
  for (const Phase phase : all_phases()) {
    seen.emplace_back(phase_name(phase));
  }
  const std::vector<std::string> expected = {
      "classify",      "schedule-compile", "simulate",   "fault-inject",
      "cache-lookup",  "cache-promote",    "store-load", "store-save",
      "serve-queue-wait", "serve-dispatch"};
  EXPECT_EQ(seen, expected);
}

TEST(Registry, DisabledTimersAreInertEnabledTimersRecord) {
  Registry registry;
  registry.set_enabled(false);
  { const PhaseTimer span(Phase::Simulate, registry); }
  EXPECT_TRUE(registry.snapshot().empty());

  registry.set_enabled(true);
  { const PhaseTimer span(Phase::Simulate, registry); }
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap[Phase::Simulate].count(), 1u);
  EXPECT_EQ(snap[Phase::Classify].count(), 0u);
}

TEST(Registry, JobFrameAccumulatesThisThreadsSpans) {
  Registry registry;
  EXPECT_EQ(ScopedJobFrame::active(), nullptr);
  JobFrame outer;
  {
    const ScopedJobFrame active(outer);
    ASSERT_EQ(ScopedJobFrame::active(), &outer);
    { const PhaseTimer span(Phase::Classify, registry); }
    { const PhaseTimer span(Phase::Classify, registry); }
    // A nested frame shadows, then restores, the outer one.
    JobFrame inner;
    {
      const ScopedJobFrame nested(inner);
      EXPECT_EQ(ScopedJobFrame::active(), &inner);
      { const PhaseTimer span(Phase::Simulate, registry); }
    }
    EXPECT_EQ(ScopedJobFrame::active(), &outer);
  }
  EXPECT_EQ(ScopedJobFrame::active(), nullptr);
  // Two classify spans landed on the outer frame, the simulate span on the
  // inner one; the registry saw all three.
  EXPECT_EQ(outer[Phase::Simulate], 0u);
  EXPECT_EQ(registry.snapshot()[Phase::Classify].count(), 2u);
  EXPECT_EQ(registry.snapshot()[Phase::Simulate].count(), 1u);
}

// -------------------------------------------------------------------- trace

/// A temp file path cleaned up on scope exit.
struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) : path(std::string("/tmp/arl-obs-test-") + tag + "-" +
                                            std::to_string(::getpid())) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Trace, JsonLinesCarryEveryPhaseKey) {
  const TempFile file("trace");
  {
    JsonLinesTraceSink sink(file.path);
    TraceEvent event;
    event.job_id = 7;
    event.protocol = "canonical";
    event.config_fingerprint = 0xdeadbeef;
    event.nodes = 16;
    event.span = 3;
    event.disposition = "elected";
    event.feasible = true;
    event.simulated = true;
    event.valid = true;
    event.local_rounds = 12;
    event.frame.nanos[static_cast<std::size_t>(Phase::Simulate)] = 1234;
    sink.emit(event);
    sink.flush();
  }
  const std::string text = slurp(file.path);
  EXPECT_NE(text.find("\"job\":7"), std::string::npos) << text;
  EXPECT_NE(text.find("\"protocol\":\"canonical\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"disposition\":\"elected\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"simulate_ns\":1234"), std::string::npos) << text;
  // Every phase key appears on every line, ran or not.
  for (const Phase phase : all_phases()) {
    std::string key = "\"";
    key += phase_name(phase);
    key += "_ns\":";
    EXPECT_NE(text.find(key), std::string::npos) << key << " missing: " << text;
  }
  // One line, newline-terminated.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(Trace, StringsAreEscaped) {
  const TempFile file("escape");
  {
    JsonLinesTraceSink sink(file.path);
    TraceEvent event;
    event.protocol = "we\"ird\\name\n";
    sink.emit(event);
    sink.flush();
  }
  const std::string text = slurp(file.path);
  EXPECT_NE(text.find("we\\\"ird\\\\name\\n"), std::string::npos) << text;
}

TEST(Trace, UnwritablePathThrows) {
  EXPECT_THROW(JsonLinesTraceSink("/nonexistent-dir/trace.jsonl"), std::runtime_error);
}

// ------------------------------------------------------------ json snapshot

TEST(JsonSnapshot, WritesFlatObjectInInsertionOrder) {
  const TempFile file("snapshot");
  JsonSnapshot snapshot;
  snapshot.add("schema", std::string("arl-metrics 1"));
  snapshot.add("jobs", std::uint64_t{12});
  snapshot.add("ratio", 1.5);
  snapshot.add("flag", true);
  ASSERT_TRUE(snapshot.write_file(file.path));
  const std::string text = slurp(file.path);
  EXPECT_NE(text.find("\"schema\": \"arl-metrics 1\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"jobs\": 12"), std::string::npos) << text;
  EXPECT_NE(text.find("\"ratio\": 1.5"), std::string::npos) << text;
  EXPECT_NE(text.find("\"flag\": true"), std::string::npos) << text;
  EXPECT_LT(text.find("schema"), text.find("jobs"));
  EXPECT_LT(text.find("jobs"), text.find("ratio"));
}

TEST(JsonSnapshot, UnwritablePathReturnsFalse) {
  JsonSnapshot snapshot;
  snapshot.add("k", std::uint64_t{1});
  EXPECT_FALSE(snapshot.write_file("/nonexistent-dir/out.json"));
}

}  // namespace
