/// \file test_serve.cpp
/// The sweep service: protocol round trips and strictness (serve_proto),
/// then live server behaviour over a real Unix socket — submissions
/// bit-identical to local runs, shared-cache hit accounting across
/// requests, backpressure, malformed-request rejection, graceful drain.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/merge.hpp"
#include "dist/report_io.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/serve_proto.hpp"
#include "serve/server.hpp"
#include "store/artifact_store.hpp"

#if ARL_SERVE_HAS_UNIX_SOCKETS
#include <dirent.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

using namespace arl;

// ------------------------------------------------------ protocol round trip

serve::SweepRequest small_sweep_request() {
  serve::SweepRequest request;
  request.workload = engine::parse_workload("random:n=8,p=0.3,sigma=3");
  request.protocols = {core::ProtocolSpec::canonical(), core::ProtocolSpec::classify_only()};
  request.seed = 7;
  request.count = 6;
  return request;
}

TEST(ServeProto, PingRoundTrips) {
  serve::Request request;
  request.kind = serve::Request::Kind::Ping;
  const std::string line = serve::format_request(request);
  EXPECT_EQ(line, "arl-serve 1 ping");
  EXPECT_EQ(serve::parse_request(line), request);
}

TEST(ServeProto, MinimalSweepRoundTrips) {
  serve::Request request;
  request.kind = serve::Request::Kind::Sweep;
  request.sweep = small_sweep_request();
  const std::string line = serve::format_request(request);
  EXPECT_EQ(line,
            "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 "
            "protocols=canonical,classify seed=7 count=6");
  EXPECT_EQ(serve::parse_request(line), request);
}

TEST(ServeProto, FullyOptionedSweepRoundTrips) {
  serve::Request request;
  request.kind = serve::Request::Kind::Sweep;
  request.sweep = small_sweep_request();
  request.sweep.shard = dist::ShardSpec{1, 3};
  request.sweep.engine = engine::EngineMode::Scalar;
  request.sweep.threads = 2;
  request.sweep.use_cache = false;
  const std::string line = serve::format_request(request);
  EXPECT_EQ(serve::parse_request(line), request);
  // Canonical spelling: every optional field in its fixed position.
  EXPECT_NE(line.find("count=6 shard=1/3 engine=scalar threads=2 cache=off"), std::string::npos);
}

TEST(ServeProto, FaultedSweepRoundTrips) {
  serve::Request request;
  request.kind = serve::Request::Kind::Sweep;
  request.sweep = small_sweep_request();
  request.sweep.fault = fault::FaultSpec::drop(0.1);
  const std::string line = serve::format_request(request);
  // Canonical spelling in its fixed position: after seed, before count.
  EXPECT_NE(line.find("seed=7 fault=drop:0.1 count=6"), std::string::npos);
  EXPECT_EQ(serve::parse_request(line), request);

  // Every registered active fault travels verbatim.
  for (const fault::FaultSpec& spec : fault::registered_faults()) {
    if (!spec.active()) {
      continue;
    }
    request.sweep.fault = spec;
    EXPECT_EQ(serve::parse_request(serve::format_request(request)), request) << spec.name();
  }

  // The inactive default is spelled by omitting the field entirely.
  request.sweep.fault = fault::FaultSpec::none();
  EXPECT_EQ(serve::format_request(request).find("fault="), std::string::npos);
}

TEST(ServeProto, RejectsMalformedFaultFields) {
  const std::string prefix =
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 ";
  const std::vector<std::string> bad = {
      // Explicit inactive spellings (canonical absence is the only spelling).
      prefix + "fault=none count=5",
      prefix + "fault=drop:0 count=5",
      // Unknown, empty and malformed specs.
      prefix + "fault=bogus count=5",
      prefix + "fault= count=5",
      prefix + "fault=drop: count=5",
      prefix + "fault=drop:2 count=5",
      // Non-canonical spelling of a valid spec.
      prefix + "fault=drop:0.10 count=5",
      prefix + "fault=crash:1,64 count=5",
      // Out of position (before seed / after count) and duplicated.
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical "
      "fault=drop:0.1 seed=1 count=5",
      prefix + "count=5 fault=drop:0.1",
      prefix + "fault=drop:0.1 fault=drop:0.1 count=5",
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)serve::parse_request(line), serve::ProtoError) << "accepted: " << line;
  }
}

TEST(ServeProto, BoundedWorkloadCarriesNoCount) {
  serve::Request request;
  request.kind = serve::Request::Kind::Sweep;
  request.sweep.workload = engine::parse_workload("exhaustive:n=3,tau=1");
  request.sweep.protocols = {core::ProtocolSpec::canonical()};
  request.sweep.seed = 1;
  request.sweep.count = std::nullopt;  // bounded: the workload counts itself
  const std::string line = serve::format_request(request);
  EXPECT_EQ(line.find("count="), std::string::npos);
  EXPECT_EQ(serve::parse_request(line), request);
}

TEST(ServeProto, RejectsMalformedRequests) {
  const std::vector<std::string> bad = {
      "",                                                             // empty
      "arl-serve 1",                                                  // no request
      "arl-serve 2 ping",                                             // unknown version
      "arl-serve one ping",                                           // non-numeric version
      "arl-serve 1 ping extra",                                       // trailing garbage
      "arl-serve 1 reboot",                                           // unknown request
      "arl-serve 1  ping",                                            // doubled space
      "arl-serve 1 sweep",                                            // missing fields
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3",          // no protocols
      "arl-serve 1 sweep workload=bogus protocols=canonical seed=1",  // unknown workload
      // Non-canonical workload spelling (registry default spelled by hand).
      "arl-serve 1 sweep workload=random protocols=canonical seed=1 count=5",
      // Non-canonical protocol spelling.
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=randomized:2048 "
      "seed=1 count=5",
      // Unbounded workload without a count.
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1",
      // Bounded workload with a count.
      "arl-serve 1 sweep workload=exhaustive:n=3,tau=1 protocols=canonical seed=1 count=5",
      // Zero count / zero threads / bad engine / bad shard / bad cache.
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 count=0",
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 count=5 "
      "threads=0",
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 count=5 "
      "engine=auto",
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 count=5 "
      "shard=3/3",
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 count=5 "
      "cache=on",
      // Out-of-order fields (seed before protocols).
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 seed=1 protocols=canonical count=5",
      // Duplicate field.
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical seed=1 seed=2 "
      "count=5",
      // Empty protocol entry.
      "arl-serve 1 sweep workload=random:n=8,p=0.3,sigma=3 protocols=canonical, seed=1 count=5",
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)serve::parse_request(line), serve::ProtoError) << "accepted: " << line;
  }
}

TEST(ServeProto, ResponsesRoundTrip) {
  std::vector<serve::Response> responses;
  serve::Response pong;
  pong.kind = serve::Response::Kind::Pong;
  pong.totals = {10, 4, 3};
  responses.push_back(pong);
  serve::Response error;
  error.kind = serve::Response::Kind::Error;
  error.message = "bad workload: unknown kind 'bogus'";  // spaces survive
  responses.push_back(error);
  serve::Response busy;
  busy.kind = serve::Response::Kind::Busy;
  busy.queue_limit = 8;
  responses.push_back(busy);
  serve::Response ack;
  ack.kind = serve::Response::Kind::Ack;
  ack.id = 42;
  responses.push_back(ack);
  serve::Response begin = ack;
  begin.kind = serve::Response::Kind::Begin;
  responses.push_back(begin);
  serve::Response done;
  done.kind = serve::Response::Kind::Done;
  done.id = 42;
  done.request_cache = {5, 2, 2};
  done.totals = {15, 6, 6};
  responses.push_back(done);
  for (const serve::Response& response : responses) {
    const std::string line = serve::format_response(response);
    const auto matched = serve::match_response(line);
    ASSERT_TRUE(matched.has_value()) << line;
    EXPECT_EQ(*matched, response) << line;
  }
}

TEST(ServeProto, ReportBodyLinesAreNotResponses) {
  EXPECT_EQ(serve::match_response("arl-shard-report 1"), std::nullopt);
  EXPECT_EQ(serve::match_response("job 0 canonical elected 8 3 1 1 1 4 2 10 11 90 ab 1 2 3 4 5"),
            std::nullopt);
  EXPECT_EQ(serve::match_response("end 12 c47fd3adaa7ba95e"), std::nullopt);
}

TEST(ServeProto, MalformedResponsesThrow) {
  EXPECT_THROW((void)serve::match_response("arl-serve 1 pong 1 2"), serve::ProtoError);
  EXPECT_THROW((void)serve::match_response("arl-serve 1 done 1 2 3"), serve::ProtoError);
  EXPECT_THROW((void)serve::match_response("arl-serve 1 error "), serve::ProtoError);
  EXPECT_THROW((void)serve::match_response("arl-serve 2 pong 1 2 3"), serve::ProtoError);
  EXPECT_THROW((void)serve::match_response("arl-serve 1 nonsense"), serve::ProtoError);
}

#if ARL_SERVE_HAS_UNIX_SOCKETS

// ------------------------------------------------------------- live servers

/// A private temp directory holding the test's socket, removed on teardown.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char pattern[] = "/tmp/arl-serve-test-XXXXXX";
    ASSERT_NE(::mkdtemp(pattern), nullptr);
    dir_ = pattern;
    socket_path_ = dir_ + "/arl.sock";
  }

  void TearDown() override {
    ::unlink(socket_path_.c_str());
    ::rmdir(dir_.c_str());
  }

  /// Starts run() on a thread and returns it; callers stop via
  /// server.request_stop() and join.
  static std::thread serve_on_thread(serve::SweepServer& server) {
    return std::thread([&server] { server.run(); });
  }

  std::string dir_;
  std::string socket_path_;
};

TEST_F(ServeTest, PingAndGracefulStop) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  const serve::Response pong = client.ping();
  EXPECT_EQ(pong.kind, serve::Response::Kind::Pong);
  EXPECT_EQ(pong.totals, (serve::CacheTotals{0, 0, 0}));

  server.request_stop();
  runner.join();
  // The drain unlinked the socket; new connections must fail.
  struct stat info {};
  EXPECT_NE(::stat(socket_path_.c_str(), &info), 0);
  EXPECT_THROW(serve::Client{socket_path_}, serve::ClientError);
}

TEST_F(ServeTest, RefusesAnAlreadyBoundPath) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  serve::SweepServer first(options);
  EXPECT_THROW(serve::SweepServer{options}, serve::ServeError);
}

TEST_F(ServeTest, SubmissionIsBitIdenticalToALocalRun) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  const serve::SweepRequest request = small_sweep_request();
  const serve::SubmitResult result = client.submit(request);
  ASSERT_TRUE(result.ok()) << result.outcome.message;

  // The streamed bytes parse as a shard report of the whole sweep...
  std::istringstream body(result.report);
  const dist::ShardReport served = dist::read_shard_report(body);
  EXPECT_EQ(served.key.description, request.workload.name());
  EXPECT_EQ(served.key.seed, request.seed);

  // ...whose results are bit-identical to the same sweep run locally.
  const engine::CountedSweep sweep =
      request.workload.instantiate(request.seed, request.protocols,
                                   {.count = static_cast<std::size_t>(*request.count)});
  engine::BatchRunner local(engine::BatchOptions{.threads = 1, .seed = request.seed});
  const engine::BatchReport expected = local.run(sweep.count, sweep.source);
  EXPECT_TRUE(engine::same_results(served.report, expected));

  server.request_stop();
  runner.join();
}

TEST_F(ServeTest, FaultedSubmissionIsBitIdenticalToALocalFaultedRun) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  serve::SweepRequest request = small_sweep_request();
  request.fault = fault::FaultSpec::drop(0.1);
  const serve::SubmitResult result = client.submit(request);
  ASSERT_TRUE(result.ok()) << result.outcome.message;

  // The streamed report carries the canonical fault spelling in its sweep
  // identity and round-trips through the wire parser.
  std::istringstream body(result.report);
  const dist::ShardReport served = dist::read_shard_report(body);
  EXPECT_EQ(served.key.fault, "drop:0.1");
  EXPECT_EQ(served.report.fault, request.fault);

  // Results are bit-identical to the same faulted sweep run locally.
  const engine::CountedSweep sweep =
      request.workload.instantiate(request.seed, request.protocols,
                                   {.count = static_cast<std::size_t>(*request.count)});
  engine::BatchRunner local(
      engine::BatchOptions{.threads = 1, .seed = request.seed, .fault = request.fault});
  const engine::BatchReport expected = local.run(sweep.count, sweep.source);
  EXPECT_TRUE(engine::same_results(served.report, expected));
  EXPECT_GT(served.report.total_stats.injected_drops, 0u);

  server.request_stop();
  runner.join();
}

TEST_F(ServeTest, ShardedSubmissionsMergeToTheUnshardedSweep) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  std::vector<dist::ShardReport> shards;
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    serve::SweepRequest request = small_sweep_request();
    request.shard = dist::ShardSpec{shard, 3};
    const serve::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok()) << result.outcome.message;
    std::istringstream body(result.report);
    shards.push_back(dist::read_shard_report(body));
  }
  const engine::BatchReport merged = dist::complete_report(dist::merge_shards(shards));

  const serve::SubmitResult whole = client.submit(small_sweep_request());
  ASSERT_TRUE(whole.ok());
  std::istringstream body(whole.report);
  EXPECT_TRUE(engine::same_results(merged, dist::read_shard_report(body).report));

  server.request_stop();
  runner.join();
}

TEST_F(ServeTest, SharedCacheSpansRequests) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  const serve::SweepRequest request = small_sweep_request();

  // Cold: every configuration misses once (two protocols share each one,
  // so there are hits within the request too).
  const serve::SubmitResult cold = client.submit(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.outcome.request_cache.misses, 6u);  // one per configuration
  EXPECT_EQ(cold.outcome.request_cache.hits, 6u);    // second protocol of each

  // Warm: the re-submission hits entries the *previous request* compiled.
  const serve::SubmitResult warm = client.submit(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.outcome.request_cache.misses, 0u);
  EXPECT_EQ(warm.outcome.request_cache.hits, 12u);
  EXPECT_EQ(warm.outcome.request_cache.schedule_builds, 0u);

  // Cumulative counters on the done line match the server's own view.
  const engine::ScheduleCacheStats stats = server.cache_stats();
  EXPECT_EQ(warm.outcome.totals.hits, stats.hits);
  EXPECT_EQ(warm.outcome.totals.misses, stats.misses);
  EXPECT_EQ(stats.entries, 6u);

  // Warm and cold runs computed identical results (the cache is invisible
  // in outcomes).
  std::istringstream cold_body(cold.report);
  std::istringstream warm_body(warm.report);
  EXPECT_TRUE(engine::same_results(dist::read_shard_report(cold_body).report,
                                   dist::read_shard_report(warm_body).report));

  // A cache=off request bypasses the shared cache entirely.
  serve::SweepRequest uncached = request;
  uncached.use_cache = false;
  const serve::SubmitResult bypassed = client.submit(uncached);
  ASSERT_TRUE(bypassed.ok());
  EXPECT_EQ(bypassed.outcome.request_cache, (serve::RequestCacheUse{0, 0, 0}));
  EXPECT_EQ(server.cache_stats().hits, stats.hits);  // untouched

  server.request_stop();
  runner.join();
}

TEST_F(ServeTest, StatsReflectServedWork) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);

  // A fresh server has served nothing; the gauges see this open session.
  const serve::ServerStats fresh = client.stats();
  EXPECT_EQ(fresh.queued, 0u);
  EXPECT_EQ(fresh.active, 0u);
  EXPECT_GE(fresh.sessions, 1u);
  EXPECT_EQ(fresh.accepted, 0u);
  EXPECT_EQ(fresh.completed, 0u);
  EXPECT_EQ(fresh.failed, 0u);

  const serve::SubmitResult result = client.submit(small_sweep_request());
  ASSERT_TRUE(result.ok()) << result.outcome.message;

  const serve::ServerStats after = client.stats();
  EXPECT_EQ(after.accepted, 1u);
  EXPECT_EQ(after.completed, 1u);
  EXPECT_EQ(after.failed, 0u);
  EXPECT_EQ(after.queued, 0u);
  EXPECT_EQ(after.active, 0u);
  EXPECT_GE(after.uptime_ms, fresh.uptime_ms);
  // The executed request passed through both serve-side histograms.
  EXPECT_GE(after.queue_wait.count, 1u);
  EXPECT_GE(after.dispatch.count, 1u);
  EXPECT_GE(after.queue_wait.p99_us, after.queue_wait.p50_us);
  EXPECT_GE(after.dispatch.p99_us, after.dispatch.p50_us);
  // Cache counters on the stats line agree with the server's own view.
  const engine::ScheduleCacheStats cache = server.cache_stats();
  EXPECT_EQ(after.cache.hits, cache.hits);
  EXPECT_EQ(after.cache.misses, cache.misses);
  EXPECT_EQ(after.cache.entries, cache.entries);
  // No store configured: all store counters stay zero.
  EXPECT_EQ(after.store, (serve::StoreTotals{0, 0, 0}));

  // The wire snapshot is the server's own snapshot (modulo fields that move
  // with time and the polling connection itself).
  serve::ServerStats direct = server.stats();
  serve::ServerStats wire = after;
  direct.uptime_ms = wire.uptime_ms = 0;
  direct.sessions = wire.sessions = 0;
  direct.accepted = wire.accepted = 0;      // the stats request itself
  direct.completed = wire.completed = 0;    // may tick between snapshots
  EXPECT_EQ(direct.queued, wire.queued);
  EXPECT_EQ(direct.cache, wire.cache);
  EXPECT_EQ(direct.store, wire.store);

  server.request_stop();
  runner.join();

  // Counters survive the drain: the final snapshot still remembers the work.
  const serve::ServerStats drained = server.stats();
  EXPECT_EQ(drained.completed, after.completed);
  EXPECT_EQ(drained.sessions, 0u);
}

TEST_F(ServeTest, InvalidSweepIsRefusedAndTheSessionSurvives) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  // A spec built by hand can spell a request the server's re-validation
  // rejects (p out of range); the client sees the Error outcome, not a
  // throw, and the connection stays usable.
  serve::SweepRequest request = small_sweep_request();
  request.workload.edge_probability = 2.0;
  serve::Client client(socket_path_);
  const serve::SubmitResult result = client.submit(request);
  EXPECT_EQ(result.outcome.kind, serve::Response::Kind::Error);
  EXPECT_NE(result.outcome.message.find("p must be in [0, 1]"), std::string::npos)
      << result.outcome.message;
  EXPECT_TRUE(result.report.empty());
  EXPECT_EQ(server.counters().protocol_errors, 1u);
  EXPECT_EQ(server.counters().failed, 0u);

  // The session survives: the same connection still serves good requests.
  const serve::SubmitResult retry = client.submit(small_sweep_request());
  EXPECT_TRUE(retry.ok());

  server.request_stop();
  runner.join();
}

/// Raw-socket sender for lines the strict Client API cannot produce.
std::string raw_exchange(const std::string& socket_path, const std::string& line) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::snprintf(address.sun_path, sizeof(address.sun_path), "%s", socket_path.c_str());
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
  const std::string framed = line + "\n";
  EXPECT_EQ(::send(fd, framed.data(), framed.size(), 0), static_cast<ssize_t>(framed.size()));
  std::string reply;
  char byte = 0;
  while (::recv(fd, &byte, 1, 0) == 1 && byte != '\n') {
    reply.push_back(byte);
  }
  ::close(fd);
  return reply;
}

TEST_F(ServeTest, MalformedLinesGetErrorResponsesNotCrashes) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  for (const std::string& line :
       {std::string("total garbage"), std::string("arl-serve 9 ping"),
        std::string("arl-serve 1 sweep workload=bogus protocols=canonical seed=1")}) {
    const std::string reply = raw_exchange(socket_path_, line);
    EXPECT_EQ(reply.rfind("arl-serve 1 error ", 0), 0u) << reply;
  }
  EXPECT_EQ(server.counters().protocol_errors, 3u);

  // And the server still serves: a well-formed submission succeeds.
  serve::Client client(socket_path_);
  EXPECT_TRUE(client.submit(small_sweep_request()).ok());

  server.request_stop();
  runner.join();
}

TEST_F(ServeTest, BackpressureAnswersBusyAndDrainFinishesAcknowledgedJobs) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  options.queue_limit = 1;
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  // A deliberately slow request (~0.5 s of single-core simulation) keeps
  // the dispatcher busy while the test fills and overflows the queue.
  serve::SweepRequest slow;
  slow.workload = engine::parse_workload("random:n=256,p=0.03,sigma=3");
  slow.protocols = {core::ProtocolSpec::canonical()};
  slow.seed = 3;
  slow.count = 1000;

  serve::Client first(socket_path_);
  serve::Client second(socket_path_);
  serve::SubmitResult first_result;
  serve::SubmitResult second_result;
  std::thread submit_first([&] { first_result = first.submit(slow); });
  // Deterministic, no sleeps: wait for the dispatcher to pick up the first
  // job...
  while (server.counters().active != 1) {
    std::this_thread::yield();
  }
  std::thread submit_second([&] { second_result = second.submit(slow); });
  // ...and for the second submission to occupy the queue's single slot.
  while (server.counters().queued != 1) {
    std::this_thread::yield();
  }

  // The queue is full and the engine busy: a third submission is refused
  // immediately (the slow job is still running — `active` says so).
  serve::Client third(socket_path_);
  const serve::SubmitResult rejected = third.submit(slow);
  EXPECT_EQ(rejected.outcome.kind, serve::Response::Kind::Busy);
  EXPECT_EQ(rejected.outcome.queue_limit, 1u);
  EXPECT_GE(server.counters().busy_rejections, 1u);

  // Stop while one job runs and one waits: the drain must finish BOTH
  // acknowledged jobs and stream their reports before run() returns.
  server.request_stop();
  submit_first.join();
  submit_second.join();
  runner.join();
  ASSERT_TRUE(first_result.ok()) << first_result.outcome.message;
  ASSERT_TRUE(second_result.ok()) << second_result.outcome.message;
  EXPECT_EQ(server.counters().completed, 2u);

  // After the drain, new submissions cannot even connect.
  EXPECT_THROW(serve::Client{socket_path_}, serve::ClientError);
}

// ----------------------------------------------------------- serve hardening

TEST_F(ServeTest, SocketModeIsOwnerOnly) {
  // The socket must never carry the umask's default world-writable mode:
  // anyone who can connect can submit sweeps.  chmod runs between bind and
  // listen, so no client ever observes a laxer mode.
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  serve::SweepServer server(options);

  struct stat info {};
  ASSERT_EQ(::stat(socket_path_.c_str(), &info), 0);
  EXPECT_EQ(info.st_mode & 0777u, 0600u)
      << "socket mode is " << std::oct << (info.st_mode & 0777u);
}

TEST_F(ServeTest, AStaleSocketFileIsReclaimed) {
  // Simulate a SIGKILLed daemon: bind the path, then close the listener
  // without unlinking — exactly the residue a dead process leaves.  No
  // process listens, so connect() yields ECONNREFUSED and the new server
  // must unlink and rebind instead of failing with EADDRINUSE.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
    ASSERT_EQ(::listen(fd, 1), 0);
    ::close(fd);
  }
  struct stat residue {};
  ASSERT_EQ(::stat(socket_path_.c_str(), &residue), 0) << "no stale socket to reclaim";

  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  serve::SweepServer server(options);  // must not throw
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  EXPECT_EQ(client.ping().kind, serve::Response::Kind::Pong);

  server.request_stop();
  runner.join();
}

TEST_F(ServeTest, ANonSocketFileIsRefusedAndNeverUnlinked) {
  // A regular file at the socket path is someone's data, not daemon
  // residue: the server must refuse to start and must not delete it.
  {
    std::ofstream file(socket_path_);
    file << "precious bytes\n";
  }
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  EXPECT_THROW(serve::SweepServer{options}, serve::ServeError);

  std::ifstream survivor(socket_path_);
  std::string content;
  std::getline(survivor, content);
  EXPECT_EQ(content, "precious bytes");
}

TEST_F(ServeTest, ALiveSocketIsStillRefused) {
  // The reclaim probe must not break the original guarantee: a path a
  // *running* server owns stays refused (connect() succeeds → not stale).
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  serve::SweepServer first(options);
  EXPECT_THROW(serve::SweepServer{options}, serve::ServeError);
  struct stat info {};
  EXPECT_EQ(::stat(socket_path_.c_str(), &info), 0) << "the live socket was unlinked";
}

TEST_F(ServeTest, AClientTimeoutUnwedgesASilentServer) {
  // A listener that accepts connections into its backlog but never reads
  // or answers — the wedge `arl submit --timeout` exists for.  Without the
  // timeout the ping would block forever; with it, ClientError after ~1s.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
  ASSERT_EQ(::listen(fd, 4), 0);

  serve::Client client(socket_path_, /*timeout_seconds=*/1);
  try {
    (void)client.ping();
    FAIL() << "ping against a silent server returned";
  } catch (const serve::ClientError& error) {
    EXPECT_NE(std::string(error.what()).find("within 1s"), std::string::npos) << error.what();
  }
  ::close(fd);
}

// ------------------------------------------------------------ store-backed

TEST_F(ServeTest, StoreRequiresACache) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.cache_capacity = 0;
  options.store_directory = dir_ + "/store";
  EXPECT_THROW(serve::SweepServer{options}, serve::ServeError);
}

TEST_F(ServeTest, TheWarmCacheSurvivesARestartThroughTheStore) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  options.store_directory = dir_ + "/store";
  const serve::SweepRequest request = small_sweep_request();

  // First daemon lifetime: a cold submission compiles and persists.
  std::string first_report;
  {
    serve::SweepServer server(options);
    std::thread runner = serve_on_thread(server);
    serve::Client client(socket_path_);
    const serve::SubmitResult cold = client.submit(request);
    ASSERT_TRUE(cold.ok()) << cold.outcome.message;
    first_report = cold.report;
    EXPECT_GT(server.store_stats().saves, 0u);
    server.request_stop();
    runner.join();
  }

  // Second daemon lifetime over the same store: the fresh process preloads
  // every configuration from disk — no schedule is ever rebuilt — and the
  // response bytes are identical to the first lifetime's.
  {
    serve::SweepServer server(options);
    std::thread runner = serve_on_thread(server);
    serve::Client client(socket_path_);
    const serve::SubmitResult warm = client.submit(request);
    ASSERT_TRUE(warm.ok()) << warm.outcome.message;
    EXPECT_GT(server.store_stats().hits, 0u);
    EXPECT_EQ(server.store_stats().saves, 0u) << "a preloaded run recompiled something";
    EXPECT_EQ(server.store_stats().rejected, 0u);
    // Every configuration was a *disk* hit (the memory tier records them as
    // misses-then-promotes; nothing was classified from scratch).
    EXPECT_EQ(server.store_stats().hits, warm.outcome.request_cache.misses);

    std::istringstream cold_body(first_report);
    std::istringstream warm_body(warm.report);
    EXPECT_TRUE(engine::same_results(dist::read_shard_report(cold_body).report,
                                     dist::read_shard_report(warm_body).report));
    server.request_stop();
    runner.join();
  }

  // Store teardown (the fixture only removes dir_ itself).
  const std::string store_dir = dir_ + "/store";
  if (DIR* d = ::opendir(store_dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        (void)::unlink((store_dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(store_dir.c_str());
}

TEST_F(ServeTest, AStoreOffRequestSkipsTheDiskTierOnly) {
  serve::ServerOptions options;
  options.socket_path = socket_path_;
  options.threads = 1;
  options.store_directory = dir_ + "/store";
  serve::SweepServer server(options);
  std::thread runner = serve_on_thread(server);

  serve::Client client(socket_path_);
  serve::SweepRequest request = small_sweep_request();
  request.use_store = false;

  // store=off: the sweep runs against the memory tier alone — nothing is
  // persisted, nothing is read.
  const serve::SubmitResult bypassed = client.submit(request);
  ASSERT_TRUE(bypassed.ok()) << bypassed.outcome.message;
  EXPECT_EQ(server.store_stats(), store::ArtifactStoreStats{});
  EXPECT_GT(server.cache_stats().entries, 0u) << "the memory tier was skipped too";

  // A store-on request over *new* configurations compiles and persists them
  // (the store=off entries stay memory-only: write-through persists at
  // compile time, and those compiles opted out).
  serve::SweepRequest fresh = small_sweep_request();
  fresh.seed = request.seed + 1;
  const serve::SubmitResult persisted = client.submit(fresh);
  ASSERT_TRUE(persisted.ok()) << persisted.outcome.message;
  EXPECT_GT(server.store_stats().saves, 0u);

  server.request_stop();
  runner.join();

  const std::string store_dir = dir_ + "/store";
  if (DIR* d = ::opendir(store_dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        (void)::unlink((store_dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(store_dir.c_str());
}

#endif  // ARL_SERVE_HAS_UNIX_SOCKETS

}  // namespace
