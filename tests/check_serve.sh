#!/usr/bin/env bash
# End-to-end checks for the sweep service, run by ctest (see CMakeLists.txt):
# a daemon on a Unix socket, concurrent sharded submissions whose merged
# reports reproduce a single-process sweep's tables exactly, warm-cache
# accounting across requests, and a graceful SIGTERM drain that unlinks the
# socket.  Usage: check_serve.sh <path-to-arl-binary>
set -u

cli="$1"
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

tmpdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
  fi
  rm -rf "$tmpdir"
}
trap cleanup EXIT

socket="$tmpdir/arl.sock"

# Usage errors (exit 2) before any server exists; a missing server is a
# runtime error (exit 1), not a usage error.
"$cli" serve >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve without --socket should exit 2"
"$cli" serve --socket="$socket" --queue=0 >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve --queue=0 should exit 2"
"$cli" submit >/dev/null 2>&1
[ $? -eq 2 ] || fail "submit without --socket should exit 2"
"$cli" submit --socket="$socket" --ping >/dev/null 2>&1
[ $? -eq 1 ] || fail "submit to a missing server should exit 1"

# Start the daemon and wait for its socket to appear.
"$cli" serve --socket="$socket" --queue=8 2>"$tmpdir/serve.log" &
server_pid=$!
for _ in $(seq 1 100); do
  [ -S "$socket" ] && break
  sleep 0.05
done
[ -S "$socket" ] || fail "server did not create its socket"

out=$("$cli" submit --socket="$socket" --ping 2>&1)
[ $? -eq 0 ] || fail "ping should exit 0: $out"
case "$out" in
  *pong*) ;;
  *) fail "ping should answer pong: $out" ;;
esac

# Flag validation that needs a live connection (submit connects first):
# a numeric cache capacity is a server-side knob, a usage error here.
"$cli" submit --socket="$socket" --cache=64 >/dev/null 2>&1
[ $? -eq 2 ] || fail "submit --cache=<N> (a server-side knob) should exit 2"

# The path is taken: a second daemon must refuse to start, and must not
# disturb the first one's socket.
"$cli" serve --socket="$socket" >/dev/null 2>&1
[ $? -eq 1 ] || fail "serve on an occupied socket should exit 1"
[ -S "$socket" ] || fail "the refused daemon must leave the live socket alone"

# Four concurrent sharded submissions; their merged reports print exactly
# the single-process sweep's tables.  Wall time, throughput, worker counts
# and cache counters are execution circumstances, filtered as in
# check_cli.sh; whitespace is squeezed because column widths align to the
# widest cell.
sweep_flags="--count=12 --n=8 --protocol=canonical --protocol=classify --seed=5"
filter() {
  # cat -s squeezes the blank line orphaned by removing the cache block;
  # the trailing phase-timing block is all timings, dropped wholesale.
  sed '/^phase timings:/,$d' "$1" | sed '${/^$/d}' |
    grep -vE "wall time|per second|worker threads|schedule cache" |
    sed -E 's/ +/ /g; s/-+/-/g' | cat -s
}
"$cli" sweep $sweep_flags >"$tmpdir/single.txt" 2>&1 ||
  fail "single-process reference sweep should exit 0"
pids=""
for i in 0 1 2 3; do
  "$cli" submit --socket="$socket" $sweep_flags --shard=$i/4 \
    --out="$tmpdir/shard-$i.txt" >/dev/null 2>"$tmpdir/submit-$i.log" &
  pids="$pids $!"
done
for pid in $pids; do
  wait "$pid" || fail "concurrent submit (pid $pid) should exit 0"
done
for i in 0 1 2 3; do
  head -1 "$tmpdir/shard-$i.txt" | grep -q "arl-shard-report" ||
    fail "submit --out should write a versioned shard report (shard $i)"
done
"$cli" merge "$tmpdir"/shard-[0-3].txt >"$tmpdir/merged.txt" 2>&1 ||
  fail "merge of the served shards should exit 0"
if ! diff <(filter "$tmpdir/merged.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "merged served shards should print exactly the single-process tables"
fi

# An unsharded submit prints those same tables directly.
"$cli" submit --socket="$socket" $sweep_flags >"$tmpdir/served.txt" 2>"$tmpdir/cold.log" ||
  fail "unsharded submit should exit 0"
if ! diff <(filter "$tmpdir/served.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "submit should print exactly the tables 'arl sweep' prints"
fi

# Warm re-submission: the shared cache answers every configuration the
# earlier requests compiled — nonzero hits, zero misses, zero builds.
"$cli" submit --socket="$socket" $sweep_flags >/dev/null 2>"$tmpdir/warm.log" ||
  fail "warm submit should exit 0"
warm=$(sed -n 's/^serve cache: \([0-9]*\) hits, \([0-9]*\) misses, \([0-9]*\) schedule builds.*/\1 \2 \3/p' "$tmpdir/warm.log")
set -- $warm
if [ $# -ne 3 ]; then
  fail "warm submit should report its cache use on stderr: $(cat "$tmpdir/warm.log")"
else
  [ "$1" -gt 0 ] || fail "warm submit should hit the shared cache (got $1 hits)"
  [ "$2" -eq 0 ] || fail "warm submit should miss nothing (got $2 misses)"
  [ "$3" -eq 0 ] || fail "warm submit should build no schedules (got $3 builds)"
fi

# Opting out of the cache leaves the shared counters untouched.
out=$("$cli" submit --socket="$socket" $sweep_flags --cache=off 2>&1 >/dev/null)
case "$out" in
  *"serve cache: 0 hits, 0 misses, 0 schedule builds"*) ;;
  *) fail "--cache=off should bypass the shared cache: $out" ;;
esac

# ---------------------------------------------------------------- arl stats

# Usage errors mirror submit's: no socket is misuse, a missing server is a
# runtime failure.
"$cli" stats >/dev/null 2>&1
[ $? -eq 2 ] || fail "stats without --socket should exit 2"
"$cli" stats --socket="$tmpdir/nowhere.sock" >/dev/null 2>&1
[ $? -eq 1 ] || fail "stats against a missing server should exit 1"
"$cli" stats --socket="$socket" --timeout=bogus >/dev/null 2>&1
[ $? -eq 2 ] || fail "stats --timeout=bogus should exit 2"

# A live query answers the full snapshot: uptime, gauges, request counters,
# cache/store totals, latency percentiles.
"$cli" stats --socket="$socket" > "$tmpdir/stats.txt" 2>&1 ||
  fail "stats against the live server should exit 0"
for token in "uptime" "requests:" "cache:" "store " "queue wait us:" "dispatch us:"; do
  grep -q "$token" "$tmpdir/stats.txt" ||
    fail "stats output should contain '$token': $(cat "$tmpdir/stats.txt")"
done
grep -q "queue 0 waiting" "$tmpdir/stats.txt" ||
  fail "an idle server should report an empty queue: $(cat "$tmpdir/stats.txt")"
queue_sampled=$(sed -n 's/^queue wait us: \([0-9]*\) sampled.*/\1/p' "$tmpdir/stats.txt")
[ -n "$queue_sampled" ] && [ "$queue_sampled" -gt 0 ] ||
  fail "the executed sweeps should have sampled queue-wait latencies: $(cat "$tmpdir/stats.txt")"

# Graceful drain: SIGTERM finishes in-flight work, prints a summary, exits
# 0 and unlinks the socket — no orphaned daemon, no leftover path.
kill -TERM "$server_pid"
wait "$server_pid"
status=$?
server_pid=""
[ "$status" -eq 0 ] || fail "SIGTERM drain should exit 0, got $status"
grep -q "drained" "$tmpdir/serve.log" ||
  fail "the drain should log a summary: $(cat "$tmpdir/serve.log")"
[ ! -e "$socket" ] || fail "the drain should unlink the socket"

# The drain summary and the earlier `arl stats` answer came from the same
# snapshot path and formatter, so every cumulative line (requests, cache,
# store, latency percentiles) must agree verbatim — nothing ran in between.
# Only the uptime/gauge line may differ (time passed, the stats session
# itself came and went).
cumulative() {
  grep -E "^(requests:|cache:|store |queue wait us:|dispatch us:)" "$1"
}
sed -n 's/^arl serve: //p' "$tmpdir/serve.log" > "$tmpdir/drain-stats.txt"
if ! diff <(cumulative "$tmpdir/stats.txt") <(cumulative "$tmpdir/drain-stats.txt") >/dev/null
then
  fail "arl stats and the drain summary disagree: $(diff "$tmpdir/stats.txt" \
    "$tmpdir/drain-stats.txt")"
fi
"$cli" submit --socket="$socket" --ping >/dev/null 2>&1
[ $? -eq 1 ] || fail "submit after the drain should exit 1"

# --------------------------------------------- hardening + artifact store

# Submit-side flag validation: a timeout outside [0, 86400] and a directory
# --store (a server-side knob) are usage errors.
for value in bogus -1 86401; do
  "$cli" submit --socket="$socket" --timeout=$value --ping >/dev/null 2>&1
  [ $? -eq 2 ] || fail "submit --timeout=$value should exit 2"
done
"$cli" submit --socket="$socket" --store="$tmpdir/dir" --ping >/dev/null 2>&1
[ $? -eq 2 ] || fail "submit --store=<DIR> (a server-side knob) should exit 2"

# A store without a cache is contradictory (the store is the cache's disk
# tier) — refused at flag parse time.
"$cli" serve --socket="$socket" --store="$tmpdir/store" --cache=off >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve --store with --cache=off should exit 2"

# A non-socket file at the path is refused and never unlinked.
echo "precious" > "$socket"
"$cli" serve --socket="$socket" >/dev/null 2>&1
[ $? -eq 1 ] || fail "serve on a non-socket path should exit 1"
[ "$(cat "$socket" 2>/dev/null)" = "precious" ] ||
  fail "the refused daemon must not unlink a non-socket file"
rm -f "$socket"

# A store-backed daemon: the socket is owner-only, submissions persist
# artifacts, and — after a SIGKILL that leaves a stale socket behind — a
# fresh daemon reclaims the path and preloads the store (zero compiles).
"$cli" serve --socket="$socket" --store="$tmpdir/store" 2>"$tmpdir/serve2.log" &
server_pid=$!
disown "$server_pid"  # keep bash from announcing the deliberate SIGKILL below
for _ in $(seq 1 100); do
  [ -S "$socket" ] && break
  sleep 0.05
done
[ -S "$socket" ] || fail "store-backed server did not create its socket"
mode=$(stat -c %a "$socket" 2>/dev/null || stat -f %Lp "$socket" 2>/dev/null)
[ "$mode" = "600" ] || fail "the socket should be chmod 0600, got $mode"
grep -q "store $tmpdir/store" "$tmpdir/serve2.log" ||
  fail "the startup line should name the store: $(cat "$tmpdir/serve2.log")"

"$cli" submit --socket="$socket" $sweep_flags >/dev/null 2>&1 ||
  fail "submit to the store-backed server should exit 0"
ls "$tmpdir/store"/*.arl >/dev/null 2>&1 ||
  fail "the served sweep should persist artifact entries"

# SIGKILL: the crash that leaves a stale socket file on disk.
kill -KILL "$server_pid"
while kill -0 "$server_pid" 2>/dev/null; do sleep 0.05; done
server_pid=""
[ -S "$socket" ] || fail "SIGKILL should leave the stale socket behind (test premise)"

"$cli" serve --socket="$socket" --store="$tmpdir/store" 2>"$tmpdir/serve3.log" &
server_pid=$!
started=0
for _ in $(seq 1 100); do
  if "$cli" submit --socket="$socket" --ping >/dev/null 2>&1; then
    started=1
    break
  fi
  sleep 0.05
done
[ "$started" -eq 1 ] || fail "a fresh daemon should reclaim the stale socket and serve"

# The same submission against the restarted daemon: identical tables, and
# the drain summary shows disk loads with zero saves (nothing recompiled).
"$cli" submit --socket="$socket" $sweep_flags >"$tmpdir/served-warm.txt" \
    2>"$tmpdir/warm2.log" ||
  fail "submit to the restarted server should exit 0"
if ! diff <(filter "$tmpdir/served-warm.txt") <(filter "$tmpdir/single.txt") >/dev/null; then
  fail "the store-preloaded submit should print exactly the single-process tables"
fi
kill -TERM "$server_pid"
wait "$server_pid"
status=$?
server_pid=""
[ "$status" -eq 0 ] || fail "the restarted daemon's SIGTERM drain should exit 0, got $status"
store_line=$(sed -n 's/^arl serve: store \([0-9]*\) loads, .* \([0-9]*\) saves.*/\1 \2/p' \
  "$tmpdir/serve3.log")
set -- $store_line
if [ $# -ne 2 ]; then
  fail "the drain should log store counters: $(cat "$tmpdir/serve3.log")"
else
  [ "$1" -gt 0 ] || fail "the restarted daemon should load from the store (got $1 loads)"
  [ "$2" -eq 0 ] || fail "the restarted daemon should save nothing (got $2 saves)"
fi

if [ "$failures" -gt 0 ]; then
  exit 1
fi
echo "serve e2e ok"
