/// \file test_store.cpp
/// The persistent artifact store's contract: entries round-trip through the
/// on-disk text format bit-exactly (classification and schedule alike);
/// every corruption — truncation, flipped bytes, swapped files, partial tmp
/// residue — reads as a *miss*, never as a wrong artifact; crash-safe
/// writes leave no partial entry visible; and store-on, store-off and
/// store-warm batch runs are bit-identical job for job.  Plus the tiered
/// cache's promote/write-through plumbing and the classification text
/// format itself.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/families.hpp"
#include "config/fingerprint.hpp"
#include "config/io.hpp"
#include "core/classifier.hpp"
#include "core/protocol.hpp"
#include "core/schedule.hpp"
#include "core/schedule_io.hpp"
#include "engine/batch_runner.hpp"
#include "engine/sweep.hpp"
#include "store/artifact_store.hpp"
#include "store/tiered_cache.hpp"
#include "support/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>
#endif

namespace {

using namespace arl;

// ---------------------------------------------------- classification format

TEST(ClassificationIo, FeasibleRunRoundTrips) {
  const config::Configuration c = config::family_g(2);
  const core::ClassifierResult result = core::Classifier().run(c);
  ASSERT_TRUE(result.feasible());

  const std::string text = core::classification_to_text_string(result);
  const core::ClassifierResult back = core::classification_from_text_string(text);
  EXPECT_EQ(back, result);
  EXPECT_EQ(core::classification_fingerprint(back), core::classification_fingerprint(result));
  // Idempotent: re-serializing the parse reproduces the bytes.
  EXPECT_EQ(core::classification_to_text_string(back), text);
}

TEST(ClassificationIo, InfeasibleRunRoundTrips) {
  const config::Configuration c = config::family_s(2);
  const core::ClassifierResult result = core::Classifier().run(c);
  ASSERT_FALSE(result.feasible());

  const core::ClassifierResult back =
      core::classification_from_text_string(core::classification_to_text_string(result));
  EXPECT_EQ(back, result);
}

TEST(ClassificationIo, NoCollisionDetectionModelRoundTrips) {
  const config::Configuration c = config::family_h(2);
  const core::ClassifierResult result =
      core::Classifier(radio::ChannelModel::NoCollisionDetection).run(c);
  const core::ClassifierResult back =
      core::classification_from_text_string(core::classification_to_text_string(result));
  EXPECT_EQ(back, result);
  EXPECT_EQ(back.model, radio::ChannelModel::NoCollisionDetection);
}

TEST(ClassificationIo, MalformedTextIsRejected) {
  const config::Configuration c = config::family_h(1);
  const std::string good = core::classification_to_text_string(core::Classifier().run(c));

  const std::vector<std::string> bad = {
      "",
      "arl-classification v2\n",
      good.substr(0, good.size() / 2),                 // truncated mid-record
      "arl-classification v1\nmodel maybe\n",          // unknown model
  };
  for (const std::string& text : bad) {
    EXPECT_THROW((void)core::classification_from_text_string(text), support::ContractViolation)
        << "accepted: " << text.substr(0, 40);
  }
}

TEST(ClassificationIo, FingerprintSeparatesVerdictAndModel) {
  const config::Configuration feasible = config::family_h(2);
  const config::Configuration infeasible = config::family_s(2);
  const auto cd = core::Classifier().run(feasible);
  const auto nocd = core::Classifier(radio::ChannelModel::NoCollisionDetection).run(feasible);
  const auto inf = core::Classifier().run(infeasible);
  EXPECT_NE(core::classification_fingerprint(cd), core::classification_fingerprint(nocd));
  EXPECT_NE(core::classification_fingerprint(cd), core::classification_fingerprint(inf));
}

// ------------------------------------------------------------- store fixture

#if defined(__unix__) || defined(__APPLE__)

/// A private temp directory for one test's store, removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char pattern[] = "/tmp/arl-store-test-XXXXXX";
    ASSERT_NE(::mkdtemp(pattern), nullptr);
    dir_ = pattern;
  }

  void TearDown() override {
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          (void)::unlink((dir_ + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  /// Entries currently visible to a load (final names, not tmp files).
  [[nodiscard]] std::vector<std::string> entry_files() const {
    std::vector<std::string> entries;
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() > 4 && name.substr(name.size() - 4) == ".arl") {
          entries.push_back(name);
        }
      }
      ::closedir(d);
    }
    return entries;
  }

  /// Any tmp residue (there must never be any after a completed save).
  [[nodiscard]] std::vector<std::string> tmp_files() const {
    std::vector<std::string> leftovers;
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.find(".tmp") != std::string::npos) {
          leftovers.push_back(name);
        }
      }
      ::closedir(d);
    }
    return leftovers;
  }

  std::string dir_;
};

/// A fully compiled entry (classification + schedule) for a configuration.
core::CompiledConfiguration compile(const config::Configuration& c,
                                    radio::ChannelModel model, bool with_schedule) {
  core::CompiledConfiguration compiled;
  compiled.classification = core::Classifier(model).run(c);
  if (with_schedule && compiled.classification.feasible()) {
    compiled.schedule = std::make_shared<const core::CanonicalSchedule>(
        core::build_schedule(c, compiled.classification));
  }
  return compiled;
}

TEST_F(StoreTest, ScheduleBearingEntryRoundTrips) {
  const config::Configuration c = config::family_g(2);
  const core::CompiledConfiguration compiled =
      compile(c, radio::ChannelModel::CollisionDetection, true);
  ASSERT_NE(compiled.schedule, nullptr);

  store::ArtifactStore writer(dir_);
  writer.save(c, radio::ChannelModel::CollisionDetection, false, compiled);
  EXPECT_EQ(writer.stats().saves, 1u);
  EXPECT_TRUE(tmp_files().empty());

  // A *fresh* handle (fresh process, as far as the store can tell) loads it.
  store::ArtifactStore reader(dir_);
  const auto loaded = reader.load(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->classification, compiled.classification);
  ASSERT_NE(loaded->schedule, nullptr);
  EXPECT_EQ(core::schedule_fingerprint(*loaded->schedule),
            core::schedule_fingerprint(*compiled.schedule));
  EXPECT_EQ(core::schedule_to_text_string(*loaded->schedule),
            core::schedule_to_text_string(*compiled.schedule));
  EXPECT_EQ(reader.stats().hits, 1u);
}

TEST_F(StoreTest, ClassificationOnlyEntryRoundTrips) {
  const config::Configuration c = config::family_s(3);  // infeasible: never a schedule
  const core::CompiledConfiguration compiled =
      compile(c, radio::ChannelModel::CollisionDetection, true);
  ASSERT_EQ(compiled.schedule, nullptr);

  store::ArtifactStore store(dir_);
  store.save(c, radio::ChannelModel::CollisionDetection, false, compiled);
  const auto loaded = store.load(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->classification, compiled.classification);
  EXPECT_EQ(loaded->schedule, nullptr);
}

TEST_F(StoreTest, KeySeparatesModelAndClassifierFlavor) {
  const config::Configuration c = config::family_h(2);
  store::ArtifactStore store(dir_);
  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, false));

  // Same configuration under the other model / the fast classifier: misses.
  EXPECT_EQ(store.load(c, radio::ChannelModel::NoCollisionDetection, false), nullptr);
  EXPECT_EQ(store.load(c, radio::ChannelModel::CollisionDetection, true), nullptr);
  EXPECT_EQ(store.stats().misses, 2u);
  EXPECT_EQ(store.stats().rejected, 0u);
}

TEST_F(StoreTest, AbsentEntryIsAMiss) {
  store::ArtifactStore store(dir_);
  EXPECT_EQ(store.load(config::family_h(1), radio::ChannelModel::CollisionDetection, false),
            nullptr);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().errors, 0u);
}

TEST_F(StoreTest, EveryTruncationReadsAsAMiss) {
  const config::Configuration c = config::family_g(2);
  store::ArtifactStore store(dir_);
  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, true));
  const std::string path = store.entry_path(c, radio::ChannelModel::CollisionDetection, false);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_FALSE(bytes.empty());

  // Truncate at a spread of byte counts, including 0 (empty file) and a cut
  // right before the end line; every one must reject, never crash, never
  // return an artifact.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, bytes.size() / 4, bytes.size() / 2,
        bytes.size() - 20, bytes.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    store::ArtifactStore reader(dir_);
    EXPECT_EQ(reader.load(c, radio::ChannelModel::CollisionDetection, false), nullptr)
        << "accepted a file truncated to " << keep << " bytes";
    EXPECT_EQ(reader.stats().rejected, 1u) << keep;
  }
}

TEST_F(StoreTest, EveryFlippedByteReadsAsAMiss) {
  const config::Configuration c = config::family_h(3);
  store::ArtifactStore store(dir_);
  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, true));
  const std::string path = store.entry_path(c, radio::ChannelModel::CollisionDetection, false);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_FALSE(bytes.empty());

  // Flip one bit at a stride of positions across the whole file — header,
  // config section, classification, schedule, end digest alike.
  for (std::size_t position = 0; position < bytes.size(); position += 7) {
    std::string corrupt = bytes;
    corrupt[position] = static_cast<char>(corrupt[position] ^ 0x20);
    if (corrupt == bytes) {
      continue;
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    store::ArtifactStore reader(dir_);
    EXPECT_EQ(reader.load(c, radio::ChannelModel::CollisionDetection, false), nullptr)
        << "accepted a byte flip at position " << position;
  }
}

TEST_F(StoreTest, SwappedEntryFilesReadAsMisses) {
  // Two valid entries renamed over each other: the embedded key/config
  // checks reject both (a digest-level collision degrades to a miss).
  const config::Configuration c1 = config::family_g(2);
  const config::Configuration c2 = config::family_h(2);
  store::ArtifactStore store(dir_);
  store.save(c1, radio::ChannelModel::CollisionDetection, false,
             compile(c1, radio::ChannelModel::CollisionDetection, true));
  store.save(c2, radio::ChannelModel::CollisionDetection, false,
             compile(c2, radio::ChannelModel::CollisionDetection, true));
  const std::string p1 = store.entry_path(c1, radio::ChannelModel::CollisionDetection, false);
  const std::string p2 = store.entry_path(c2, radio::ChannelModel::CollisionDetection, false);
  const std::string held = p1 + ".held";
  ASSERT_EQ(std::rename(p1.c_str(), held.c_str()), 0);
  ASSERT_EQ(std::rename(p2.c_str(), p1.c_str()), 0);
  ASSERT_EQ(std::rename(held.c_str(), p2.c_str()), 0);

  store::ArtifactStore reader(dir_);
  EXPECT_EQ(reader.load(c1, radio::ChannelModel::CollisionDetection, false), nullptr);
  EXPECT_EQ(reader.load(c2, radio::ChannelModel::CollisionDetection, false), nullptr);
  EXPECT_EQ(reader.stats().rejected, 2u);
}

TEST_F(StoreTest, TmpResidueIsInvisibleAndOverwritable) {
  // A crashed writer's half-written tmp file must not satisfy loads, and
  // must not block a later writer from landing the real entry.
  const config::Configuration c = config::family_h(2);
  store::ArtifactStore store(dir_);
  const std::string path = store.entry_path(c, radio::ChannelModel::CollisionDetection, false);
  {
    std::ofstream fake(path + ".tmp.999.0");
    fake << "arl-artifact 1\ngarbage";
  }
  EXPECT_EQ(store.load(c, radio::ChannelModel::CollisionDetection, false), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);

  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, true));
  EXPECT_NE(store.load(c, radio::ChannelModel::CollisionDetection, false), nullptr);
}

TEST_F(StoreTest, ClassificationOnlySaveNeverDowngradesASchedule) {
  const config::Configuration c = config::family_g(2);
  const core::CompiledConfiguration full =
      compile(c, radio::ChannelModel::CollisionDetection, true);
  const core::CompiledConfiguration classify_only =
      compile(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(full.schedule, nullptr);
  ASSERT_EQ(classify_only.schedule, nullptr);

  store::ArtifactStore store(dir_);
  store.save(c, radio::ChannelModel::CollisionDetection, false, full);
  store.save(c, radio::ChannelModel::CollisionDetection, false, classify_only);
  EXPECT_EQ(store.stats().saves, 1u);
  EXPECT_EQ(store.stats().skipped, 1u);

  const auto loaded = store.load(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(loaded, nullptr);
  EXPECT_NE(loaded->schedule, nullptr) << "schedule-bearing entry was downgraded";
}

TEST_F(StoreTest, ScheduleBearingSaveUpgradesAClassificationOnlyEntry) {
  const config::Configuration c = config::family_g(2);
  store::ArtifactStore store(dir_);
  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, false));
  {
    const auto loaded = store.load(c, radio::ChannelModel::CollisionDetection, false);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->schedule, nullptr);
  }
  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, true));
  const auto upgraded = store.load(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_NE(upgraded->schedule, nullptr);
  EXPECT_EQ(store.stats().saves, 2u);
}

TEST_F(StoreTest, StatsSinceSubtractsCounters) {
  const config::Configuration c = config::family_h(1);
  store::ArtifactStore store(dir_);
  (void)store.load(c, radio::ChannelModel::CollisionDetection, false);
  const store::ArtifactStoreStats before = store.stats();
  store.save(c, radio::ChannelModel::CollisionDetection, false,
             compile(c, radio::ChannelModel::CollisionDetection, false));
  (void)store.load(c, radio::ChannelModel::CollisionDetection, false);
  const store::ArtifactStoreStats delta = store.stats().since(before);
  EXPECT_EQ(delta.misses, 0u);
  EXPECT_EQ(delta.saves, 1u);
  EXPECT_EQ(delta.hits, 1u);
}

// --------------------------------------------------------------- tiered cache

TEST_F(StoreTest, TieredLookupPromotesDiskHitsIntoMemory) {
  const config::Configuration c = config::family_g(2);
  {
    store::ArtifactStore seed(dir_);
    seed.save(c, radio::ChannelModel::CollisionDetection, false,
              compile(c, radio::ChannelModel::CollisionDetection, true));
  }

  store::TieredScheduleCache tiered(dir_, 64);
  const auto first = tiered.lookup(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(tiered.artifacts().stats().hits, 1u);
  EXPECT_EQ(tiered.memory().stats().entries, 1u) << "disk hit was not promoted";

  // The second lookup is served from memory: disk counters do not move.
  const auto second = tiered.lookup(c, radio::ChannelModel::CollisionDetection, false);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(tiered.artifacts().stats().hits, 1u);
  EXPECT_EQ(second->classification, first->classification);
}

TEST_F(StoreTest, TieredStoreIsWriteThrough) {
  const config::Configuration c = config::family_h(2);
  store::TieredScheduleCache tiered(dir_, 64);
  (void)tiered.store(c, radio::ChannelModel::CollisionDetection, false,
                     compile(c, radio::ChannelModel::CollisionDetection, true));
  EXPECT_EQ(tiered.artifacts().stats().saves, 1u);

  // A brand-new tiered cache over the same directory (fresh process) finds
  // the entry on disk without any prior store() in its lifetime.
  store::TieredScheduleCache fresh(dir_, 64);
  EXPECT_NE(fresh.lookup(c, radio::ChannelModel::CollisionDetection, false), nullptr);
}

// ------------------------------------------------------------- batch parity

/// The parity workload: a seeded random sweep crossed with every registered
/// protocol (mirrors tests/test_schedule_cache.cpp).
engine::RandomSweep parity_sweep() {
  engine::RandomSweep sweep;
  sweep.nodes = 10;
  sweep.span = 2;
  sweep.seed = 4242;
  sweep.protocols = core::registered_protocols();
  return sweep;
}

TEST_F(StoreTest, StoreOnColdWarmAndOffBatchesAreBitIdentical) {
  const engine::RandomSweep sweep = parity_sweep();
  const engine::JobSource source = engine::random_jobs(sweep);
  const auto count = 8 * static_cast<engine::JobId>(sweep.protocols.size());

  engine::BatchOptions no_store;
  no_store.threads = 2;
  no_store.seed = 99;
  no_store.cache_capacity = 64;
  engine::BatchRunner plain(no_store);
  const engine::BatchReport off = plain.run(count, source);
  EXPECT_FALSE(off.artifact_store.has_value());

  engine::BatchOptions with_store;
  with_store.threads = 2;
  with_store.seed = 99;
  with_store.cache_capacity = 64;
  with_store.store_directory = dir_;

  engine::BatchRunner cold_runner(with_store);
  const engine::BatchReport cold = cold_runner.run(count, source);
  ASSERT_TRUE(cold.artifact_store.has_value());
  EXPECT_GT(cold.artifact_store->saves, 0u);

  engine::BatchRunner warm_runner(with_store);
  const engine::BatchReport warm = warm_runner.run(count, source);
  ASSERT_TRUE(warm.artifact_store.has_value());
  EXPECT_GT(warm.artifact_store->hits, 0u);
  EXPECT_EQ(warm.artifact_store->saves, 0u) << "a warm run recompiled something";

  EXPECT_EQ(cold.jobs, off.jobs);
  EXPECT_EQ(warm.jobs, off.jobs);
  EXPECT_EQ(cold.by_protocol, off.by_protocol);
  EXPECT_EQ(warm.by_protocol, off.by_protocol);
  EXPECT_GT(off.valid_count, 0u);
}

TEST_F(StoreTest, CorruptedStoreStillYieldsBitIdenticalResults) {
  const engine::RandomSweep sweep = parity_sweep();
  const engine::JobSource source = engine::random_jobs(sweep);
  const auto count = 4 * static_cast<engine::JobId>(sweep.protocols.size());

  engine::BatchOptions with_store;
  with_store.threads = 1;
  with_store.seed = 5;
  with_store.cache_capacity = 64;
  with_store.store_directory = dir_;

  engine::BatchRunner seed_runner(with_store);
  const engine::BatchReport reference = seed_runner.run(count, source);

  // Vandalize every entry file: truncate half of them, bit-flip the rest.
  const std::vector<std::string> entries = entry_files();
  ASSERT_FALSE(entries.empty());
  bool truncate = true;
  for (const std::string& name : entries) {
    const std::string path = dir_ + "/" + name;
    if (truncate) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << "arl-art";
    } else {
      std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
      out.seekp(10);
      out.put('~');
    }
    truncate = !truncate;
  }

  engine::BatchRunner rerun(with_store);
  const engine::BatchReport recovered = rerun.run(count, source);
  ASSERT_TRUE(recovered.artifact_store.has_value());
  EXPECT_GT(recovered.artifact_store->rejected, 0u);
  EXPECT_EQ(recovered.artifact_store->hits, 0u);
  EXPECT_EQ(recovered.jobs, reference.jobs);
  EXPECT_EQ(recovered.by_protocol, reference.by_protocol);

  // The recovery run re-saved clean entries; a final run is all hits again.
  engine::BatchRunner final_runner(with_store);
  const engine::BatchReport healed = final_runner.run(count, source);
  ASSERT_TRUE(healed.artifact_store.has_value());
  EXPECT_EQ(healed.artifact_store->rejected, 0u);
  EXPECT_GT(healed.artifact_store->hits, 0u);
  EXPECT_EQ(healed.jobs, reference.jobs);
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
