/// \file test_engine.cpp
/// The batch election engine's core contract: a parallel BatchRunner sweep
/// is bit-identical to the serial elect() loop over the same jobs — over
/// exhaustive small configurations and seeded random families — and the
/// per-job coin seeding makes reports invariant across thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "config/families.hpp"
#include "engine/batch_runner.hpp"
#include "engine/sweep.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

/// The job mix the parity suites sweep: every connected configuration with
/// up to 3 nodes and tags in 0..2, the paper families, staggered paths, and
/// a seeded random family.
std::vector<engine::BatchJob> parity_jobs() {
  std::vector<engine::BatchJob> jobs;
  for (graph::NodeId n = 1; n <= 3; ++n) {
    for (auto& job : engine::exhaustive_jobs(n, 2)) {
      jobs.push_back(std::move(job));
    }
  }
  for (const config::Tag m : {1u, 2u, 3u}) {
    jobs.push_back({config::family_h(m), core::ProtocolSpec::canonical(), {}});
    jobs.push_back({config::family_s(m), core::ProtocolSpec::canonical(), {}});
  }
  jobs.push_back({config::family_g(2), core::ProtocolSpec::canonical(), {}});
  for (auto& job : engine::staggered_jobs(2, 4)) {
    jobs.push_back(std::move(job));
  }
  support::Rng rng(0xE16E);
  for (std::uint64_t i = 0; i < 20; ++i) {
    support::Rng stream = rng.split(i);
    jobs.push_back({config::random_tags_with_span(graph::gnp_connected(8, 0.3, stream), 3, stream),
                    core::ProtocolSpec::canonical(),
                    {}});
  }
  return jobs;
}

/// The protocol mix head-to-head sweeps exercise: the canonical DRIP, the
/// classify-only fast path, both labeled baselines and the randomized one.
std::vector<core::ProtocolSpec> protocol_mix() {
  return {core::ProtocolSpec::canonical(), core::ProtocolSpec::classify_only(),
          core::ProtocolSpec::binary_search(), core::ProtocolSpec::tree_split(),
          core::ProtocolSpec::randomized(64)};
}

/// Deep equality of two election reports (schedule compared by content).
void expect_reports_identical(const core::ElectionReport& a, const core::ElectionReport& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.disposition, b.disposition);
  EXPECT_EQ(a.classification.verdict, b.classification.verdict);
  EXPECT_EQ(a.classification.model, b.classification.model);
  EXPECT_EQ(a.classification.iterations, b.classification.iterations);
  EXPECT_EQ(a.classification.steps, b.classification.steps);
  EXPECT_EQ(a.classification.leader, b.classification.leader);
  EXPECT_EQ(a.classification.leader_class, b.classification.leader_class);
  EXPECT_EQ(a.classification.records, b.classification.records);
  ASSERT_EQ(a.schedule != nullptr, b.schedule != nullptr);
  if (a.schedule != nullptr) {
    EXPECT_EQ(a.schedule->total_rounds(), b.schedule->total_rounds());
  }
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.simulated, b.simulated);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.global_rounds, b.global_rounds);
  EXPECT_EQ(a.local_rounds, b.local_rounds);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(BatchRunner, ParallelSweepMatchesSerialElectLoop) {
  const std::vector<engine::BatchJob> jobs = parity_jobs();
  constexpr std::uint64_t kSeed = 42;

  engine::BatchRunner runner({.threads = 4, .seed = kSeed, .keep_reports = true});
  const engine::BatchReport batch = runner.run(jobs);
  ASSERT_EQ(batch.jobs.size(), jobs.size());
  ASSERT_EQ(batch.reports.size(), jobs.size());

  // The reference path: plain serial elect() with the engine's seeding rule.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    core::ElectionOptions options = jobs[i].options;
    options.simulate = true;
    options.simulator.coin_seed = engine::job_coin_seed(kSeed, i);
    const core::ElectionReport serial = core::elect(jobs[i].configuration, options);
    expect_reports_identical(batch.reports[i], serial);
    EXPECT_EQ(batch.jobs[i].id, i);
    EXPECT_EQ(batch.jobs[i].feasible, serial.feasible);
    EXPECT_EQ(batch.jobs[i].valid, serial.valid);
    EXPECT_EQ(batch.jobs[i].leader, serial.leader);
    EXPECT_EQ(batch.jobs[i].local_rounds, serial.local_rounds);
    EXPECT_EQ(batch.jobs[i].global_rounds, serial.global_rounds);
    EXPECT_EQ(batch.jobs[i].stats, serial.stats);
  }
}

TEST(BatchRunner, OutcomesAreInvariantAcrossThreadCounts) {
  const std::vector<engine::BatchJob> jobs = parity_jobs();
  std::vector<engine::BatchReport> reports;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    engine::BatchRunner runner({.threads = threads, .seed = 7});
    reports.push_back(runner.run(jobs));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].jobs, reports[0].jobs);
    EXPECT_EQ(reports[i].feasible_count, reports[0].feasible_count);
    EXPECT_EQ(reports[i].valid_count, reports[0].valid_count);
    EXPECT_EQ(reports[i].total_local_rounds, reports[0].total_local_rounds);
    EXPECT_EQ(reports[i].max_local_rounds, reports[0].max_local_rounds);
    EXPECT_EQ(reports[i].total_stats, reports[0].total_stats);
  }
}

TEST(BatchRunner, GeneratorAndMaterializedFormsAgree) {
  engine::RandomSweep sweep;
  sweep.nodes = 10;
  sweep.span = 2;
  sweep.seed = 99;
  const engine::JobSource source = engine::random_jobs(sweep);

  constexpr engine::JobId kCount = 40;
  std::vector<engine::BatchJob> materialized;
  materialized.reserve(kCount);
  for (engine::JobId i = 0; i < kCount; ++i) {
    materialized.push_back(source(i));
  }

  engine::BatchRunner runner({.threads = 4, .seed = 3});
  const engine::BatchReport lazy = runner.run(kCount, source);
  const engine::BatchReport eager = runner.run(materialized);
  EXPECT_EQ(lazy.jobs, eager.jobs);
}

TEST(BatchRunner, CoinSeedingIsAPureFunctionOfBatchSeedAndJobId) {
  EXPECT_EQ(engine::job_coin_seed(1, 0), engine::job_coin_seed(1, 0));
  EXPECT_NE(engine::job_coin_seed(1, 0), engine::job_coin_seed(1, 1));
  EXPECT_NE(engine::job_coin_seed(1, 0), engine::job_coin_seed(2, 0));

  // A job's preset coin seed is overwritten by the engine's derivation, so
  // two identical batches agree regardless of what callers left in options.
  std::vector<engine::BatchJob> jobs = engine::staggered_jobs(2, 6);
  jobs[0].options.simulator.coin_seed = 0xDEAD;
  engine::BatchRunner runner({.threads = 2, .seed = 11});
  const engine::BatchReport first = runner.run(jobs);
  jobs[0].options.simulator.coin_seed = 0xBEEF;
  const engine::BatchReport second = runner.run(jobs);
  EXPECT_EQ(first.jobs, second.jobs);
}

TEST(BatchRunner, ClassifyOnlySkipsTheSimulator) {
  std::vector<engine::BatchJob> jobs;
  jobs.push_back({config::family_h(2), core::ProtocolSpec::classify_only(), {}});
  jobs.push_back({config::family_s(2), core::ProtocolSpec::classify_only(), {}});
  const engine::BatchReport report = engine::run_batch(jobs, {.threads = 2});
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_TRUE(report.jobs[0].feasible);
  EXPECT_FALSE(report.jobs[1].feasible);
  for (const engine::JobOutcome& outcome : report.jobs) {
    EXPECT_FALSE(outcome.simulated);
    EXPECT_FALSE(outcome.leader.has_value());
    EXPECT_EQ(outcome.stats, radio::RunStats{});
    EXPECT_TRUE(outcome.valid);  // nothing further to verify
  }
  EXPECT_EQ(report.feasible_count, 1u);
}

TEST(BatchRunner, AggregatesMatchThePerJobOutcomes) {
  const std::vector<engine::BatchJob> jobs = parity_jobs();
  engine::BatchRunner runner({.threads = 4, .seed = 5});
  const engine::BatchReport report = runner.run(jobs);

  std::uint64_t feasible = 0;
  std::uint64_t valid = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t max_rounds = 0;
  std::uint64_t transmissions = 0;
  for (const engine::JobOutcome& outcome : report.jobs) {
    feasible += outcome.feasible ? 1 : 0;
    valid += outcome.valid ? 1 : 0;
    total_rounds += outcome.local_rounds;
    max_rounds = std::max(max_rounds, outcome.local_rounds);
    transmissions += outcome.stats.transmissions;
  }
  EXPECT_EQ(report.feasible_count, feasible);
  EXPECT_EQ(report.valid_count, valid);
  EXPECT_EQ(report.total_local_rounds, total_rounds);
  EXPECT_EQ(report.max_local_rounds, max_rounds);
  EXPECT_EQ(report.total_stats.transmissions, transmissions);
  EXPECT_GT(report.valid_count, 0u);
  EXPECT_GE(report.wall_millis, 0.0);
}

TEST(BatchRunner, EmptyBatchYieldsEmptyReport) {
  engine::BatchRunner runner({.threads = 2});
  const engine::BatchReport report = runner.run(std::vector<engine::BatchJob>{});
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_EQ(report.feasible_count, 0u);
  EXPECT_EQ(report.total_stats, radio::RunStats{});
}

TEST(BatchRunner, ExhaustiveSweepAllVerify) {
  // Every small configuration elects correctly through the engine: the
  // verification flag holds for feasible and infeasible runs alike.
  const std::vector<engine::BatchJob> jobs = engine::exhaustive_jobs(3, 2);
  engine::BatchRunner runner({.threads = 4});
  const engine::BatchReport report = runner.run(jobs);
  EXPECT_EQ(report.valid_count, report.jobs.size());
  EXPECT_GT(report.feasible_count, 0u);
  EXPECT_LT(report.feasible_count, report.jobs.size());

  // The lazy enumeration is the same sweep: same count, same outcomes.
  const engine::CountedSweep sweep = engine::exhaustive_sweep(3, 2);
  ASSERT_EQ(sweep.count, jobs.size());
  const engine::BatchReport lazy = runner.run(sweep.count, sweep.source);
  EXPECT_EQ(lazy.jobs, report.jobs);
}

TEST(BatchRunner, MixedProtocolSweepIsInvariantAcrossThreadCounts) {
  // The acceptance bar of the protocol-axis redesign: one cross-product
  // batch running the canonical DRIP and every baseline is bit-identical
  // regardless of the thread count, per-job outcomes and per-protocol
  // breakdowns alike.
  engine::RandomSweep sweep;
  sweep.nodes = 10;
  sweep.span = 2;
  sweep.seed = 5;
  sweep.protocols = protocol_mix();
  const engine::JobSource source = engine::random_jobs(sweep);
  constexpr engine::JobId kConfigurations = 24;
  const auto count = kConfigurations * static_cast<engine::JobId>(sweep.protocols.size());

  std::vector<engine::BatchReport> reports;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    engine::BatchRunner runner({.threads = threads, .seed = 13});
    reports.push_back(runner.run(count, source));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].jobs, reports[0].jobs);
    EXPECT_EQ(reports[i].by_protocol, reports[0].by_protocol);
  }

  // The cross product is head-to-head: one breakdown row per protocol, in
  // sweep order, each over the same number of configurations.
  ASSERT_EQ(reports[0].by_protocol.size(), sweep.protocols.size());
  for (std::size_t k = 0; k < sweep.protocols.size(); ++k) {
    EXPECT_EQ(reports[0].by_protocol[k].protocol, sweep.protocols[k]);
    EXPECT_EQ(reports[0].by_protocol[k].jobs, kConfigurations);
  }
  // The comparison has signal: the canonical protocol elects on the
  // feasible configurations, while the baselines — whose single-hop
  // simultaneous-wakeup model these random staggered networks violate —
  // report their failures as dispositions instead of crashing the batch.
  EXPECT_GT(reports[0].by_protocol.front().elected, 0u);
  EXPECT_EQ(reports[0].by_protocol.front().elected +
                reports[0].by_protocol.front().no_leader,
            kConfigurations);
}

TEST(BatchRunner, CrossProductJobsShareConfigurations) {
  engine::RandomSweep sweep;
  sweep.nodes = 8;
  sweep.span = 2;
  sweep.seed = 77;
  sweep.protocols = protocol_mix();
  const engine::JobSource source = engine::random_jobs(sweep);
  const auto P = static_cast<engine::JobId>(sweep.protocols.size());
  for (const engine::JobId configuration : {engine::JobId{0}, engine::JobId{5}}) {
    const engine::BatchJob first = source(configuration * P);
    for (engine::JobId k = 0; k < P; ++k) {
      const engine::BatchJob job = source(configuration * P + k);
      EXPECT_EQ(job.configuration, first.configuration);
      EXPECT_EQ(job.protocol, sweep.protocols[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(BatchRunner, CrossProtocolsWrapsAnyCountedSweep) {
  const std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical(),
                                                     core::ProtocolSpec::classify_only()};
  const engine::CountedSweep base = engine::exhaustive_sweep(3, 1);
  const engine::CountedSweep crossed = engine::cross_protocols(engine::exhaustive_sweep(3, 1),
                                                               protocols);
  ASSERT_EQ(crossed.count, base.count * 2);
  for (const engine::JobId id : {engine::JobId{0}, engine::JobId{7}}) {
    EXPECT_EQ(crossed.source(2 * id).configuration, base.source(id).configuration);
    EXPECT_EQ(crossed.source(2 * id).protocol, protocols[0]);
    EXPECT_EQ(crossed.source(2 * id + 1).configuration, base.source(id).configuration);
    EXPECT_EQ(crossed.source(2 * id + 1).protocol, protocols[1]);
  }

  engine::BatchRunner runner({.threads = 4});
  const engine::BatchReport report = runner.run(crossed.count, crossed.source);
  ASSERT_EQ(report.by_protocol.size(), 2u);
  EXPECT_EQ(report.by_protocol[0].protocol, protocols[0]);
  EXPECT_EQ(report.by_protocol[1].protocol, protocols[1]);
  // Same configurations, same classifier: identical feasible counts.
  EXPECT_EQ(report.by_protocol[0].feasible, report.by_protocol[1].feasible);
}

TEST(BatchRunner, SweepConfigurationSeedIsAPureDocumentedDerivation) {
  EXPECT_EQ(engine::sweep_configuration_seed(1), engine::sweep_configuration_seed(1));
  EXPECT_NE(engine::sweep_configuration_seed(1), engine::sweep_configuration_seed(2));
  // Independent of the per-job coin-seed stream: no job id collides with it.
  for (engine::JobId id = 0; id < 64; ++id) {
    EXPECT_NE(engine::sweep_configuration_seed(1), engine::job_coin_seed(1, id));
  }
}

TEST(BatchRunner, ClassifyOnlyOmitsTheSchedule) {
  // Classify-only jobs never pay for schedule compilation.
  std::vector<engine::BatchJob> jobs;
  jobs.push_back({config::family_h(2), core::ProtocolSpec::classify_only(), {}});
  engine::BatchRunner runner({.threads = 1, .keep_reports = true});
  const engine::BatchReport report = runner.run(jobs);
  ASSERT_EQ(report.reports.size(), 1u);
  EXPECT_EQ(report.reports[0].schedule, nullptr);
  EXPECT_TRUE(report.reports[0].feasible);
}

}  // namespace
