/// \file test_dist.cpp
/// The distributed sweep subsystem's contract: the shard planner tiles any
/// sweep exactly; shard reports round-trip through the wire format; and the
/// merge algebra — associative, order-insensitive — reassembles shard runs
/// into a report bit-identical to the unsharded one, for K ∈ {1, 2, 3, 7}
/// across the full protocol registry.  Malformed, overlapping or mismatched
/// inputs are rejected, never merged silently.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "dist/merge.hpp"
#include "dist/report_io.hpp"
#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"
#include "engine/schedule_cache.hpp"
#include "engine/sweep.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "support/assert.hpp"

namespace {

using namespace arl;

// ---------------------------------------------------------------- the sweep
// The workload the algebra suites shard: a registry WorkloadSpec crossed
// with every registered protocol, so merge correctness is checked on
// mixed-protocol reports (per-protocol breakdown rows, baselines that fail
// out of model, randomized dispositions) rather than a single uniform batch
// — and the sweep identity shard reports carry is the workload's own
// canonical name + digest, exactly as the CLI emits it.

constexpr std::uint64_t kSeed = 77;
constexpr engine::JobId kConfigurations = 6;

engine::WorkloadSpec registry_workload() {
  return engine::parse_workload("random:n=8,p=0.3,sigma=3");
}

engine::CountedSweep registry_sweep() {
  return registry_workload().instantiate(kSeed, core::registered_protocols(),
                                         {.count = kConfigurations});
}

/// The sweep identity of a (workload, sweep, protocols) triple — what
/// make_sweep_key in the CLI builds.
dist::SweepKey workload_key(const engine::WorkloadSpec& workload,
                            const engine::CountedSweep& sweep,
                            const std::vector<core::ProtocolSpec>& protocols) {
  dist::SweepKey key;
  key.description = workload.name();
  key.digest = workload.digest();
  key.seed = kSeed;
  key.total_jobs = sweep.count;
  for (const core::ProtocolSpec& protocol : protocols) {
    key.protocols.push_back(protocol.name());
  }
  return key;
}

dist::SweepKey registry_key(const engine::CountedSweep& sweep) {
  return workload_key(registry_workload(), sweep, core::registered_protocols());
}

engine::BatchReport run_unsharded(const engine::CountedSweep& sweep) {
  engine::BatchRunner runner({.threads = 2, .seed = kSeed});
  return runner.run(sweep.count, sweep.source);
}

/// Runs every shard of a K-way plan in its own runner (as separate worker
/// processes would) and serializes + reparses each report, so every merge
/// test also exercises the wire format.
std::vector<dist::ShardReport> run_shards(const engine::CountedSweep& sweep,
                                          const dist::SweepKey& key, std::uint32_t k,
                                          std::size_t cache_capacity = 0) {
  std::vector<dist::ShardReport> shards;
  for (const dist::JobRange& range : dist::shard_ranges(sweep.count, k)) {
    engine::BatchRunner runner({.threads = 2, .seed = kSeed, .cache_capacity = cache_capacity});
    engine::BatchReport report = runner.run_range(range.begin, range.end, sweep.source);
    const dist::ShardReport shard = dist::make_shard_report(key, range, std::move(report));
    std::stringstream wire;
    dist::write_shard_report(shard, wire);
    shards.push_back(dist::read_shard_report(wire));
  }
  return shards;
}

std::vector<dist::ShardReport> run_shards(const engine::CountedSweep& sweep, std::uint32_t k,
                                          std::size_t cache_capacity = 0) {
  return run_shards(sweep, registry_key(sweep), k, cache_capacity);
}

// ------------------------------------------------------------ shard planner

TEST(ShardPlanner, RangesTileEveryTotalExactly) {
  for (const engine::JobId total : {0ull, 1ull, 2ull, 5ull, 7ull, 64ull, 1000ull, 1001ull}) {
    for (std::uint32_t k = 1; k <= 16; ++k) {
      const std::vector<dist::JobRange> ranges = dist::shard_ranges(total, k);
      ASSERT_EQ(ranges.size(), k);
      engine::JobId next = 0;
      engine::JobId smallest = total;
      engine::JobId largest = 0;
      for (std::uint32_t i = 0; i < k; ++i) {
        EXPECT_EQ(ranges[i], dist::shard_range(total, {i, k}));
        EXPECT_EQ(ranges[i].begin, next) << "gap or overlap at shard " << i;
        EXPECT_LE(ranges[i].begin, ranges[i].end);
        next = ranges[i].end;
        smallest = std::min(smallest, ranges[i].size());
        largest = std::max(largest, ranges[i].size());
      }
      EXPECT_EQ(next, total) << "plan must cover [0, total) exactly";
      EXPECT_LE(largest - smallest, 1u) << "shards must be balanced to within one job";
    }
  }
}

TEST(ShardPlanner, SpecParsesAndRoundTrips) {
  for (std::uint32_t k = 1; k <= 9; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      const dist::ShardSpec spec{i, k};
      EXPECT_EQ(dist::parse_shard(spec.name()), spec);
    }
  }
  for (const char* bad : {"", "/", "1/", "/2", "2/2", "3/2", "0/0", "a/2", "1/b", "1/2/3",
                          "-1/2", "1.0/2", " 1/2", "1/2 "}) {
    EXPECT_THROW((void)dist::parse_shard(bad), support::ContractViolation) << bad;
  }
}

// ------------------------------------------------------------- wire format

TEST(ReportIo, ShardReportsRoundTripExactly) {
  const engine::CountedSweep sweep = registry_sweep();
  const dist::SweepKey key = registry_key(sweep);
  for (const dist::JobRange& range : dist::shard_ranges(sweep.count, 3)) {
    engine::BatchRunner runner({.threads = 1, .seed = kSeed});
    const dist::ShardReport shard = dist::make_shard_report(
        key, range, runner.run_range(range.begin, range.end, sweep.source));

    std::stringstream wire;
    dist::write_shard_report(shard, wire);
    const dist::ShardReport parsed = dist::read_shard_report(wire);

    EXPECT_EQ(parsed.key, shard.key);
    EXPECT_EQ(parsed.ranges, shard.ranges);
    EXPECT_TRUE(engine::same_results(parsed.report, shard.report));
    EXPECT_EQ(parsed.report.wall_millis, shard.report.wall_millis);
    EXPECT_EQ(parsed.report.threads_used, shard.report.threads_used);
    EXPECT_EQ(parsed.report.cache.has_value(), shard.report.cache.has_value());

    // Serialization is canonical: writing the parse reproduces the bytes.
    std::stringstream rewire;
    dist::write_shard_report(parsed, rewire);
    EXPECT_EQ(rewire.str(), wire.str());
  }
}

TEST(ReportIo, CacheStatsSurviveTheRoundTrip) {
  const engine::CountedSweep sweep = registry_sweep();
  const std::vector<dist::ShardReport> shards =
      run_shards(sweep, 2, engine::ScheduleCache::kDefaultCapacity);
  for (const dist::ShardReport& shard : shards) {
    ASSERT_TRUE(shard.report.cache.has_value());
    EXPECT_GT(shard.report.cache->misses, 0u);
  }
  const dist::ShardReport merged = dist::merge_shards(shards);
  ASSERT_TRUE(merged.report.cache.has_value());
  EXPECT_EQ(merged.report.cache->misses,
            shards[0].report.cache->misses + shards[1].report.cache->misses);
}

TEST(ReportIo, RejectsVersionMismatch) {
  const engine::CountedSweep sweep = registry_sweep();
  std::stringstream wire;
  dist::write_shard_report(run_shards(sweep, 2).front(), wire);
  std::string text = wire.str();
  const std::string header =
      "arl-shard-report " + std::to_string(dist::kShardReportVersion);
  ASSERT_EQ(text.compare(0, header.size(), header), 0);
  text.replace(0, header.size(), "arl-shard-report 99");
  std::istringstream bumped(text);
  EXPECT_THROW((void)dist::read_shard_report(bumped), dist::ReportFormatError);
}

TEST(ReportIo, RejectsEveryTruncation) {
  const engine::CountedSweep sweep = registry_sweep();
  std::stringstream wire;
  dist::write_shard_report(run_shards(sweep, 2).front(), wire);
  const std::string text = wire.str();
  // Dropping any suffix of whole lines loses the `end` marker (or the
  // counts stop agreeing): every prefix must be rejected.
  for (std::size_t cut = text.find('\n'); cut + 1 < text.size(); cut = text.find('\n', cut + 1)) {
    std::istringstream truncated(text.substr(0, cut + 1));
    EXPECT_THROW((void)dist::read_shard_report(truncated), dist::ReportFormatError);
  }
}

TEST(ReportIo, MakeShardReportRejectsMismatchedIds) {
  const engine::CountedSweep sweep = registry_sweep();
  const dist::SweepKey key = registry_key(sweep);
  engine::BatchRunner runner({.threads = 1, .seed = kSeed});
  engine::BatchReport report = runner.run_range(0, 5, sweep.source);
  // Claiming a different range than the one that ran is a misuse.
  EXPECT_THROW((void)dist::make_shard_report(key, {5, 10}, report), support::ContractViolation);
  EXPECT_THROW((void)dist::make_shard_report(key, {0, 4}, report), support::ContractViolation);
}

// ------------------------------------------------------------ merge algebra

TEST(MergeAlgebra, ShardedRunsMergeBitIdenticalToUnsharded) {
  const engine::CountedSweep sweep = registry_sweep();
  const engine::BatchReport unsharded = run_unsharded(sweep);
  ASSERT_EQ(unsharded.jobs.size(), sweep.count);
  for (const std::uint32_t k : {1u, 2u, 3u, 7u}) {
    const engine::BatchReport merged =
        dist::complete_report(dist::merge_shards(run_shards(sweep, k)));
    EXPECT_TRUE(engine::same_results(merged, unsharded)) << "K = " << k;
    // Spot-check that same_results covered what the acceptance criterion
    // names: per-job outcomes (ids, dispositions, fingerprints) and the
    // per-protocol aggregate rows.
    ASSERT_EQ(merged.jobs.size(), unsharded.jobs.size());
    EXPECT_EQ(merged.jobs == unsharded.jobs, true);
    EXPECT_EQ(merged.by_protocol == unsharded.by_protocol, true);
  }
}

TEST(MergeAlgebra, FaultedShardedRunsMergeBitIdenticalToUnsharded) {
  // The fault subsystem's determinism bar: a `--fault=drop:0.1` sweep is
  // shard-invariant because every die roll is a pure function of
  // (seed, job, round, node) — never of which worker ran the job — so the
  // merged report is bit-identical to the unsharded one at every K.
  const fault::FaultSpec fault = fault::FaultSpec::drop(0.1);
  const engine::CountedSweep sweep = registry_sweep();
  dist::SweepKey key = registry_key(sweep);
  key.fault = fault.name();

  engine::BatchRunner runner({.threads = 2, .seed = kSeed, .fault = fault});
  const engine::BatchReport unsharded = runner.run(sweep.count, sweep.source);
  ASSERT_EQ(unsharded.jobs.size(), sweep.count);
  ASSERT_GT(unsharded.total_stats.injected_drops, 0u);

  for (const std::uint32_t k : {1u, 2u, 3u, 7u}) {
    std::vector<dist::ShardReport> shards;
    for (const dist::JobRange& range : dist::shard_ranges(sweep.count, k)) {
      engine::BatchRunner worker({.threads = 2, .seed = kSeed, .fault = fault});
      const dist::ShardReport shard = dist::make_shard_report(
          key, range, worker.run_range(range.begin, range.end, sweep.source));
      std::stringstream wire;
      dist::write_shard_report(shard, wire);
      shards.push_back(dist::read_shard_report(wire));
    }
    const dist::ShardReport merged = dist::merge_shards(shards);
    EXPECT_EQ(merged.key.fault, fault.name());
    EXPECT_EQ(merged.report.fault, fault);
    EXPECT_TRUE(engine::same_results(dist::complete_report(merged), unsharded)) << "K = " << k;
  }
}

TEST(MergeAlgebra, MergeIsOrderInsensitive) {
  const engine::CountedSweep sweep = registry_sweep();
  std::vector<dist::ShardReport> shards = run_shards(sweep, 3);
  const engine::BatchReport forward = dist::complete_report(dist::merge_shards(shards));
  std::reverse(shards.begin(), shards.end());
  const engine::BatchReport backward = dist::complete_report(dist::merge_shards(shards));
  std::swap(shards[0], shards[1]);
  const engine::BatchReport shuffled = dist::complete_report(dist::merge_shards(shards));
  EXPECT_TRUE(engine::same_results(forward, backward));
  EXPECT_TRUE(engine::same_results(forward, shuffled));
}

TEST(MergeAlgebra, MergeIsAssociative) {
  const engine::CountedSweep sweep = registry_sweep();
  const std::vector<dist::ShardReport> shards = run_shards(sweep, 7);

  // ((s0 + s1) + (s2 + s3 + s4)) + (s5 + s6), versus one flat merge.
  const dist::ShardReport left = dist::merge_shards({shards[0], shards[1]});
  const dist::ShardReport middle = dist::merge_shards({shards[2], shards[3], shards[4]});
  const dist::ShardReport right = dist::merge_shards({shards[5], shards[6]});
  const dist::ShardReport nested = dist::merge_shards({dist::merge_shards({left, middle}), right});
  const engine::BatchReport flat = dist::complete_report(dist::merge_shards(shards));
  EXPECT_TRUE(engine::same_results(dist::complete_report(nested), flat));

  // A partial merge round-trips through the wire format too (a coordinator
  // can re-ship a combined report), with coalesced multi-range covers.
  const dist::ShardReport gappy = dist::merge_shards({shards[0], shards[2]});
  EXPECT_EQ(gappy.ranges.size(), 2u);
  std::stringstream wire;
  dist::write_shard_report(gappy, wire);
  const dist::ShardReport reparsed = dist::read_shard_report(wire);
  EXPECT_EQ(reparsed.ranges, gappy.ranges);
  EXPECT_TRUE(engine::same_results(reparsed.report, gappy.report));
}

TEST(MergeAlgebra, RejectsOverlapGapAndForeignShards) {
  const engine::CountedSweep sweep = registry_sweep();
  const std::vector<dist::ShardReport> shards = run_shards(sweep, 3);

  // Overlap: the same shard twice claims the same jobs.
  EXPECT_THROW((void)dist::merge_shards({shards[0], shards[0]}), dist::MergeError);

  // Gap: a partial merge is representable, but completing it is not.
  EXPECT_THROW((void)dist::complete_report(dist::merge_shards({shards[0], shards[2]})),
               dist::MergeError);

  // Foreign shard: same shape, different sweep identity fields.
  for (const char* field : {"digest", "seed", "jobs", "protocols"}) {
    dist::ShardReport foreign = shards[1];
    if (std::string(field) == "digest") {
      foreign.key.description += " (edited)";
      foreign.key.digest = dist::sweep_digest(foreign.key.description);
    } else if (std::string(field) == "seed") {
      foreign.key.seed += 1;
    } else if (std::string(field) == "jobs") {
      foreign.key.total_jobs += 1;
    } else {
      foreign.key.protocols.pop_back();
    }
    EXPECT_THROW((void)dist::merge_shards({shards[0], foreign}), dist::MergeError) << field;
  }

  // Nothing at all.
  EXPECT_THROW((void)dist::merge_shards({}), dist::MergeError);
}

TEST(MergeAlgebra, EmptySweepMergesToEmptyReport) {
  engine::CountedSweep empty;
  empty.count = 0;
  empty.source = [](engine::JobId) -> engine::BatchJob {
    throw support::ContractViolation("an empty sweep has no jobs");
  };
  dist::SweepKey key;
  key.description = engine::WorkloadSpec::staggered().name();
  key.digest = engine::WorkloadSpec::staggered().digest();
  key.total_jobs = 0;
  key.protocols = {core::ProtocolSpec::canonical().name()};

  std::vector<dist::ShardReport> shards;
  for (const dist::JobRange& range : dist::shard_ranges(0, 3)) {
    engine::BatchRunner runner({.threads = 1});
    engine::BatchReport report = runner.run_range(range.begin, range.end, empty.source);
    const dist::ShardReport shard = dist::make_shard_report(key, range, std::move(report));
    std::stringstream wire;
    dist::write_shard_report(shard, wire);
    shards.push_back(dist::read_shard_report(wire));
  }
  const engine::BatchReport merged = dist::complete_report(dist::merge_shards(shards));
  EXPECT_TRUE(merged.jobs.empty());
  EXPECT_TRUE(merged.by_protocol.empty());
}

// -------------------------------------------------- workload-kind coverage
// The merge algebra over the *workload* registry: every new workload kind —
// generator topologies and mutation neighbourhoods alike — shards and
// merges bit-identically to its unsharded run at the same K fan-outs as the
// protocol-registry suite above, with the sweep identity taken straight
// from the spec (name + digest).

class WorkloadMergeAlgebra : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadMergeAlgebra, ShardedRunsMergeBitIdenticalToUnsharded) {
  const engine::WorkloadSpec workload = engine::parse_workload(GetParam());
  const std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical(),
                                                     core::ProtocolSpec::classify_only()};
  const engine::CountedSweep sweep = workload.instantiate(kSeed, protocols, {.count = 3});
  const dist::SweepKey key = workload_key(workload, sweep, protocols);
  ASSERT_GT(sweep.count, 0u);

  const engine::BatchReport unsharded = run_unsharded(sweep);
  ASSERT_EQ(unsharded.jobs.size(), sweep.count);
  for (const std::uint32_t k : {1u, 2u, 3u, 7u}) {
    const engine::BatchReport merged =
        dist::complete_report(dist::merge_shards(run_shards(sweep, key, k)));
    EXPECT_TRUE(engine::same_results(merged, unsharded)) << workload.name() << " K = " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadKinds, WorkloadMergeAlgebra,
                         ::testing::Values("grid:rows=3,cols=3,sigma=2",
                                           "torus:rows=3,cols=3,sigma=2",
                                           "hypercube:d=3,sigma=2", "tree:n=9,sigma=2",
                                           "single-hop:n=6,sigma=2", "mutations:family-h"));

// ------------------------------------------------------------ sweep identity

// ---------------------------------------------------------- resume notation

TEST(ResumeNotation, JobRangesParseStrictly) {
  EXPECT_EQ(dist::parse_job_range("0-5"), (dist::JobRange{0, 5}));
  EXPECT_EQ(dist::parse_job_range("17-18"), (dist::JobRange{17, 18}));
  EXPECT_EQ(dist::parse_job_range("100-250"), (dist::JobRange{100, 250}));

  for (const char* bad : {"", "-", "3-3", "5-3", "a-b", "1-2-3", "1/2", " 1-2", "1-2 ", "-5",
                          "3-", "0x1-2", "+1-2", "12345678901234567890-12345678901234567899"}) {
    EXPECT_THROW((void)dist::parse_job_range(bad), support::ContractViolation) << "'" << bad << "'";
  }
}

TEST(ResumeNotation, MissingRangesComplementTheCover) {
  const engine::CountedSweep sweep = registry_sweep();
  const std::vector<dist::ShardReport> shards = run_shards(sweep, 3);
  ASSERT_EQ(shards.size(), 3u);
  const engine::JobId total = shards[0].key.total_jobs;

  // Full cover: nothing missing.
  EXPECT_TRUE(dist::missing_ranges(dist::merge_shards(shards)).empty());

  // One lost shard: exactly its range is missing (head, middle, tail).
  for (std::size_t lost = 0; lost < shards.size(); ++lost) {
    std::vector<dist::ShardReport> survivors;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (i != lost) {
        survivors.push_back(shards[i]);
      }
    }
    const std::vector<dist::JobRange> gaps =
        dist::missing_ranges(dist::merge_shards(survivors));
    ASSERT_EQ(gaps.size(), 1u) << "lost shard " << lost;
    EXPECT_EQ(gaps[0], shards[lost].ranges.front()) << "lost shard " << lost;
  }

  // Two lost, non-adjacent shards: two gaps, in job-id order.
  const std::vector<dist::JobRange> gaps =
      dist::missing_ranges(dist::merge_shards({shards[1]}));
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], shards[0].ranges.front());
  EXPECT_EQ(gaps[1], shards[2].ranges.front());

  // The complement really is a partition: gaps + covered ranges tile
  // [0, total) exactly.
  engine::JobId covered = 0;
  for (const dist::JobRange& gap : gaps) {
    covered += gap.size();
  }
  EXPECT_EQ(covered + shards[1].ranges.front().size(), total);
}

TEST(ResumeNotation, ResumedShardsMergeBitIdenticalToTheUninterruptedRun) {
  // The crash-recovery contract end to end: drop one shard of a sharded run
  // (the SIGKILLed worker), re-run exactly the gap missing_ranges() names,
  // and the merge of survivors + resumed shard equals the full merge.
  const engine::CountedSweep sweep = registry_sweep();
  const dist::SweepKey key = registry_key(sweep);
  const std::vector<dist::ShardReport> shards = run_shards(sweep, 3);

  std::vector<dist::ShardReport> survivors = {shards[0], shards[2]};
  const std::vector<dist::JobRange> gaps =
      dist::missing_ranges(dist::merge_shards(survivors));
  for (const dist::JobRange& gap : gaps) {
    engine::BatchRunner runner({.threads = 2, .seed = kSeed});
    engine::BatchReport report = runner.run_range(gap.begin, gap.end, sweep.source);
    survivors.push_back(dist::make_shard_report(key, gap, std::move(report)));
  }

  const engine::BatchReport resumed = dist::complete_report(dist::merge_shards(survivors));
  const engine::BatchReport reference = dist::complete_report(dist::merge_shards(shards));
  EXPECT_EQ(resumed.jobs, reference.jobs);
  EXPECT_EQ(resumed.by_protocol, reference.by_protocol);
  EXPECT_TRUE(engine::same_results(resumed, run_unsharded(sweep)));
}

TEST(SweepIdentity, WorkloadDigestIsTheSweepDigestOfItsName) {
  // The contract that lets a spec's digest feed dist::SweepKey directly.
  for (const engine::WorkloadSpec& workload : engine::registered_workloads()) {
    EXPECT_EQ(workload.digest(), dist::sweep_digest(workload.name())) << workload.name();
  }
}

TEST(SweepIdentity, DescriptionsMustReParseAsCanonicalWorkloads) {
  // Identity is re-parsed, not trusted: a report whose description is not a
  // registered workload — or not its canonical spelling — is rejected even
  // though its digest line is internally consistent.
  const engine::CountedSweep sweep = registry_sweep();
  for (const char* description : {"not a workload", "random:sigma=5", "grid:rows=3"}) {
    dist::SweepKey key = registry_key(sweep);
    key.description = description;
    key.digest = dist::sweep_digest(key.description);
    engine::BatchRunner runner({.threads = 1, .seed = kSeed});
    const dist::ShardReport shard = dist::make_shard_report(
        key, {0, sweep.count}, runner.run_range(0, sweep.count, sweep.source));
    std::stringstream wire;
    dist::write_shard_report(shard, wire);
    EXPECT_THROW((void)dist::read_shard_report(wire), dist::ReportFormatError) << description;
  }
}

// ----------------------------------------------------- engine range contract

TEST(RunRange, ShardOutcomesEqualTheUnshardedSlice) {
  const engine::CountedSweep sweep = registry_sweep();
  const engine::BatchReport unsharded = run_unsharded(sweep);
  for (const dist::JobRange& range : dist::shard_ranges(sweep.count, 4)) {
    engine::BatchRunner runner({.threads = 1, .seed = kSeed});
    const engine::BatchReport shard = runner.run_range(range.begin, range.end, sweep.source);
    ASSERT_EQ(shard.jobs.size(), range.size());
    for (std::size_t i = 0; i < shard.jobs.size(); ++i) {
      EXPECT_EQ(shard.jobs[i], unsharded.jobs[static_cast<std::size_t>(range.begin) + i]);
    }
  }
}

}  // namespace
