/// \file test_graph.cpp
/// Unit and property tests for the graph library: construction contracts,
/// generator invariants, algorithms, exhaustive enumeration counts.

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/enumeration.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;
using arl::support::ContractViolation;

// -------------------------------------------------------------- construction

TEST(Graph, BuilderRejectsSelfLoops) {
  graph::Graph::Builder builder(3);
  EXPECT_THROW(builder.add_edge(1, 1), ContractViolation);
}

TEST(Graph, BuilderRejectsParallelEdges) {
  graph::Graph::Builder builder(3);
  builder.add_edge(0, 1);
  EXPECT_THROW(builder.add_edge(1, 0), ContractViolation);
}

TEST(Graph, BuilderRejectsOutOfRange) {
  graph::Graph::Builder builder(3);
  EXPECT_THROW(builder.add_edge(0, 3), ContractViolation);
}

TEST(Graph, NeighborsAreSortedAndSymmetric) {
  const graph::Graph g = graph::Graph::from_edges(4, {{2, 0}, {3, 0}, {0, 1}});
  const auto around_zero = g.neighbors(0);
  EXPECT_EQ(std::vector<graph::NodeId>(around_zero.begin(), around_zero.end()),
            (std::vector<graph::NodeId>{1, 2, 3}));
  for (graph::NodeId v = 1; v <= 3; ++v) {
    EXPECT_TRUE(g.has_edge(v, 0));
    EXPECT_TRUE(g.has_edge(0, v));
  }
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<graph::Edge> edges{{0, 1}, {0, 3}, {1, 2}};
  const graph::Graph g = graph::Graph::from_edges(4, edges);
  EXPECT_EQ(g.edges(), edges);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(Graph, EqualityIsStructural) {
  const graph::Graph a = graph::Graph::from_edges(3, {{0, 1}, {1, 2}});
  const graph::Graph b = graph::Graph::from_edges(3, {{1, 2}, {0, 1}});
  const graph::Graph c = graph::Graph::from_edges(3, {{0, 1}, {0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ---------------------------------------------------------------- generators

TEST(Generators, PathShape) {
  const graph::Graph p = graph::path(5);
  EXPECT_EQ(p.node_count(), 5u);
  EXPECT_EQ(p.edge_count(), 4u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(2), 2u);
  EXPECT_EQ(graph::diameter(p), 4u);
}

TEST(Generators, SingleNodePath) {
  const graph::Graph p = graph::path(1);
  EXPECT_EQ(p.node_count(), 1u);
  EXPECT_EQ(p.edge_count(), 0u);
  EXPECT_TRUE(graph::is_connected(p));
}

TEST(Generators, CycleShape) {
  const graph::Graph c = graph::cycle(6);
  EXPECT_EQ(c.edge_count(), 6u);
  for (graph::NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(c.degree(v), 2u);
  }
  EXPECT_EQ(graph::diameter(c), 3u);
}

TEST(Generators, CompleteShape) {
  const graph::Graph k = graph::complete(5);
  EXPECT_EQ(k.edge_count(), 10u);
  EXPECT_EQ(k.max_degree(), 4u);
  EXPECT_EQ(graph::diameter(k), 1u);
}

TEST(Generators, StarShape) {
  const graph::Graph s = graph::star(7);
  EXPECT_EQ(s.edge_count(), 6u);
  EXPECT_EQ(s.degree(0), 6u);
  EXPECT_EQ(s.degree(3), 1u);
  EXPECT_EQ(graph::diameter(s), 2u);
}

TEST(Generators, CompleteBipartiteShape) {
  const graph::Graph kb = graph::complete_bipartite(2, 3);
  EXPECT_EQ(kb.node_count(), 5u);
  EXPECT_EQ(kb.edge_count(), 6u);
  EXPECT_EQ(kb.degree(0), 3u);  // left side
  EXPECT_EQ(kb.degree(2), 2u);  // right side
  EXPECT_FALSE(kb.has_edge(0, 1));
  EXPECT_TRUE(kb.has_edge(0, 2));
}

TEST(Generators, GridShape) {
  const graph::Graph g = graph::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 2u * 4);  // 17
  EXPECT_EQ(g.degree(0), 2u);                  // corner
  EXPECT_EQ(g.degree(5), 4u);                  // interior
  EXPECT_EQ(graph::diameter(g), 5u);
}

TEST(Generators, TorusIsRegular) {
  const graph::Graph t = graph::torus(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  for (graph::NodeId v = 0; v < 12; ++v) {
    EXPECT_EQ(t.degree(v), 4u);
  }
  EXPECT_EQ(t.edge_count(), 24u);
}

TEST(Generators, HypercubeShape) {
  const graph::Graph h = graph::hypercube(4);
  EXPECT_EQ(h.node_count(), 16u);
  for (graph::NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(h.degree(v), 4u);
  }
  EXPECT_EQ(graph::diameter(h), 4u);
}

TEST(Generators, BinaryTreeShape) {
  const graph::Graph t = graph::binary_tree(7);
  EXPECT_EQ(t.edge_count(), 6u);
  EXPECT_TRUE(graph::is_connected(t));
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(1), 3u);
  EXPECT_EQ(t.degree(6), 1u);
}

TEST(Generators, RandomTreeIsATree) {
  support::Rng rng(2024);
  for (graph::NodeId n : {1u, 2u, 3u, 8u, 25u, 60u}) {
    const graph::Graph t = graph::random_tree(n, rng);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.edge_count(), static_cast<std::size_t>(n) - 1);
    EXPECT_TRUE(graph::is_connected(t));
  }
}

TEST(Generators, RandomTreesVary) {
  support::Rng rng(7);
  std::set<std::vector<graph::Edge>> shapes;
  for (int i = 0; i < 20; ++i) {
    shapes.insert(graph::random_tree(8, rng).edges());
  }
  EXPECT_GT(shapes.size(), 5u);
}

TEST(Generators, GnpConnectedIsAlwaysConnected) {
  support::Rng rng(99);
  for (const double p : {0.0, 0.05, 0.3, 0.9}) {
    for (int repeat = 0; repeat < 5; ++repeat) {
      const graph::Graph g = graph::gnp_connected(20, p, rng);
      EXPECT_EQ(g.node_count(), 20u);
      EXPECT_TRUE(graph::is_connected(g));
    }
  }
}

TEST(Generators, GnpDensityScalesWithP) {
  support::Rng rng(5);
  const graph::Graph sparse = graph::gnp_connected(40, 0.05, rng);
  const graph::Graph dense = graph::gnp_connected(40, 0.6, rng);
  EXPECT_LT(sparse.edge_count(), dense.edge_count());
}

TEST(Generators, BarbellShape) {
  const graph::Graph b = graph::barbell(4, 3);
  // Two K_4 (12 edges) + a 3-edge bridge with 2 intermediate nodes.
  EXPECT_EQ(b.node_count(), 10u);
  EXPECT_EQ(b.edge_count(), 12u + 3u);
  EXPECT_TRUE(graph::is_connected(b));
  EXPECT_EQ(b.max_degree(), 4u);
}

TEST(Generators, CaterpillarShape) {
  const graph::Graph c = graph::caterpillar(4, 2);
  EXPECT_EQ(c.node_count(), 12u);
  EXPECT_EQ(c.edge_count(), 11u);  // it is a tree
  EXPECT_TRUE(graph::is_connected(c));
}

// ---------------------------------------------------------------- algorithms

TEST(Algorithms, BfsDistancesOnPath) {
  const graph::Graph p = graph::path(5);
  const auto d = graph::bfs_distances(p, 0);
  EXPECT_EQ(d, (std::vector<graph::NodeId>{0, 1, 2, 3, 4}));
}

TEST(Algorithms, ComponentsSplitDisconnected) {
  const graph::Graph g = graph::Graph::from_edges(5, {{0, 1}, {2, 3}});
  const auto comp = graph::components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
  EXPECT_FALSE(graph::is_connected(g));
}

TEST(Algorithms, EmptyGraphIsNotConnected) {
  const graph::Graph g;
  EXPECT_FALSE(graph::is_connected(g));
}

TEST(Algorithms, DiameterRequiresConnectivity) {
  const graph::Graph g = graph::Graph::from_edges(4, {{0, 1}});
  EXPECT_THROW((void)graph::diameter(g), ContractViolation);
}

// --------------------------------------------------------------- enumeration

TEST(Enumeration, CountsMatchOeisA001187) {
  for (graph::NodeId n = 1; n <= 5; ++n) {
    std::uint64_t visited = graph::for_each_connected_graph(n, [](const graph::Graph&) {});
    EXPECT_EQ(visited, graph::connected_graph_count(n)) << "n=" << n;
  }
}

TEST(Enumeration, VisitedGraphsAreConnectedAndSized) {
  graph::for_each_connected_graph(4, [](const graph::Graph& g) {
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_TRUE(graph::is_connected(g));
  });
}

TEST(Enumeration, RejectsOversizedN) {
  EXPECT_THROW(graph::for_each_connected_graph(8, [](const graph::Graph&) {}),
               ContractViolation);
}

}  // namespace
