/// \file test_fuzz.cpp
/// Randomized differential testing: arbitrary protocols on arbitrary
/// configurations, with the independent validator as the oracle.  Where the
/// unit suites check hand-picked scenarios, these sweeps check that the
/// engine and the model definition agree on *whatever* a protocol does —
/// chaotic transmissions, mid-sleep wakeups, early terminations, both
/// channel models, both wake policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/families.hpp"
#include "config/fingerprint.hpp"
#include "config/io.hpp"
#include "core/canonical_drip.hpp"
#include "core/classifier.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "core/patient.hpp"
#include "core/schedule.hpp"
#include "core/schedule_io.hpp"
#include "dist/merge.hpp"
#include "dist/report_io.hpp"
#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"
#include "engine/sweep.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/validator.hpp"
#include "serve/serve_proto.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

/// A protocol that acts at random (from its private coins): transmits one of
/// three payloads, listens, or — eventually surely — terminates.
class ChaosDrip final : public radio::Drip {
 public:
  explicit ChaosDrip(config::Round max_life) : max_life_(max_life) {}

  std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv& env) const override {
    class Program final : public radio::NodeProgram {
     public:
      Program(std::uint64_t seed, config::Round max_life)
          : coins_(seed), max_life_(max_life) {}

      radio::Action decide(config::Round i, const radio::HistoryView&) override {
        if (done_) {
          return radio::Action::terminate();
        }
        if (i >= max_life_ || coins_.bernoulli(0.05)) {
          done_ = true;
          return radio::Action::terminate();
        }
        if (coins_.bernoulli(0.35)) {
          return radio::Action::transmit(1 + coins_.below(3));
        }
        return radio::Action::listen();
      }

     private:
      support::Rng coins_;
      config::Round max_life_;
      bool done_ = false;
    };
    return std::make_unique<Program>(env.coin_seed, max_life_);
  }
  std::string name() const override { return "chaos"; }

 private:
  config::Round max_life_;
};

config::Configuration random_configuration(support::Rng& rng) {
  const auto n = static_cast<graph::NodeId>(2 + rng.below(10));
  const auto sigma = static_cast<config::Tag>(rng.below(6));
  graph::Graph g;
  switch (rng.below(4)) {
    case 0:
      g = graph::path(n);
      break;
    case 1:
      g = graph::star(n);
      break;
    case 2:
      g = graph::random_tree(n, rng);
      break;
    default:
      g = graph::gnp_connected(n, 0.4, rng);
      break;
  }
  return config::random_tags(std::move(g), sigma, rng);
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, ChaoticRunsValidateUnderEveryModelCombination) {
  support::Rng rng(GetParam());
  for (int repeat = 0; repeat < 6; ++repeat) {
    const config::Configuration c = random_configuration(rng);
    const ChaosDrip drip(20);
    for (const auto model : {radio::ChannelModel::CollisionDetection,
                             radio::ChannelModel::NoCollisionDetection}) {
      for (const auto policy : {radio::WakePolicy::HearAll, radio::WakePolicy::SilentWake}) {
        radio::ExecutionRecorder recorder;
        radio::SimulatorOptions options;
        options.trace = &recorder;
        options.history_window = 0;
        options.channel_model = model;
        options.wake_policy = policy;
        options.coin_seed = rng.next();
        const radio::RunResult run = radio::simulate(c, drip, options);
        ASSERT_TRUE(run.all_terminated);
        const radio::ValidationReport report =
            radio::validate_execution(c, recorder, run, model, policy);
        ASSERT_TRUE(report.ok) << report.error;
        ASSERT_GT(report.checks, 0u);
      }
    }
  }
}

TEST_P(FuzzSweep, SimulationIsDeterministic) {
  support::Rng rng(GetParam() ^ 0xD5);
  const config::Configuration c = random_configuration(rng);
  const ChaosDrip drip(15);
  radio::SimulatorOptions options;
  options.history_window = 0;
  options.coin_seed = 1234;
  const radio::RunResult first = radio::simulate(c, drip, options);
  const radio::RunResult second = radio::simulate(c, drip, options);
  ASSERT_EQ(first.nodes.size(), second.nodes.size());
  for (std::size_t v = 0; v < first.nodes.size(); ++v) {
    EXPECT_EQ(first.nodes[v].history, second.nodes[v].history);
    EXPECT_EQ(first.nodes[v].wake_round, second.nodes[v].wake_round);
    EXPECT_EQ(first.nodes[v].done_round, second.nodes[v].done_round);
  }
  EXPECT_EQ(first.stats.transmissions, second.stats.transmissions);
}

TEST_P(FuzzSweep, PatienceWrapperTamesArbitraryProtocols) {
  // Claim 1 of Lemma 3.12, for protocols far wilder than the proof needs:
  // wrap chaos, and nothing transmits through global rounds 0..σ — every
  // wakeup is spontaneous.
  support::Rng rng(GetParam() ^ 0xBEEF);
  for (int repeat = 0; repeat < 4; ++repeat) {
    const config::Configuration c = random_configuration(rng);
    const auto inner = std::make_shared<ChaosDrip>(15);
    const core::PatientWrapper wrapped(inner, c.span());
    testkit::TransmissionLog log;
    radio::SimulatorOptions options;
    options.trace = &log;
    options.coin_seed = rng.next();
    const radio::RunResult run = radio::simulate(c, wrapped, options);
    ASSERT_TRUE(run.all_terminated);
    if (const auto first = log.first_round()) {
      EXPECT_GT(*first, c.span());
    }
    for (graph::NodeId v = 0; v < c.size(); ++v) {
      EXPECT_FALSE(run.nodes[v].forced_wake);
      EXPECT_EQ(run.nodes[v].wake_round, c.tag(v));
    }
  }
}

TEST_P(FuzzSweep, CollisionDetectionRefinesTheNoCdPartition) {
  // Channel-model monotonicity at every iteration: nodes the CD classifier
  // separates may merge without CD, never the other way around.
  support::Rng rng(GetParam() ^ 0xCD);
  for (int repeat = 0; repeat < 6; ++repeat) {
    const config::Configuration c = random_configuration(rng);
    const auto cd = core::Classifier(radio::ChannelModel::CollisionDetection).run(c);
    const auto nocd = core::Classifier(radio::ChannelModel::NoCollisionDetection).run(c);
    const std::uint32_t shared = std::min(cd.iterations, nocd.iterations);
    for (std::uint32_t j = 1; j <= shared; ++j) {
      const auto fine = cd.classes_after(j);
      const auto coarse = nocd.classes_after(j);
      for (graph::NodeId u = 0; u < c.size(); ++u) {
        for (graph::NodeId v = u + 1; v < c.size(); ++v) {
          if (fine[u] == fine[v]) {
            EXPECT_EQ(coarse[u], coarse[v])
                << "CD merged " << u << "," << v << " but no-CD separated them (iter " << j
                << ")";
          }
        }
      }
    }
    // Verdict monotonicity.
    EXPECT_TRUE(cd.feasible() || !nocd.feasible());
  }
}

TEST_P(FuzzSweep, ScheduleTextRoundTripPreservesElections) {
  support::Rng rng(GetParam() ^ 0x10);
  for (int repeat = 0; repeat < 4; ++repeat) {
    const config::Configuration c = random_configuration(rng);
    const auto compiled = core::make_schedule(c);
    const auto parsed = std::make_shared<const core::CanonicalSchedule>(
        core::schedule_from_text_string(core::schedule_to_text_string(*compiled)));
    const radio::RunResult original = radio::simulate(c, core::CanonicalDrip(compiled));
    const radio::RunResult reloaded = radio::simulate(c, core::CanonicalDrip(parsed));
    EXPECT_EQ(original.leaders(), reloaded.leaders());
    EXPECT_EQ(original.rounds_executed, reloaded.rounds_executed);
  }
}

TEST_P(FuzzSweep, ConfigurationTextRoundTripsExactly) {
  support::Rng rng(GetParam() ^ 0x70);
  for (int repeat = 0; repeat < 8; ++repeat) {
    const config::Configuration original = random_configuration(rng);
    const config::Configuration parsed =
        config::from_text_string(config::to_text_string(original));
    EXPECT_EQ(parsed, original);
  }
}

TEST_P(FuzzSweep, ElectReportsAreInternallyConsistent) {
  // Field-check every invariant the report promises, on random inputs:
  // classification/schedule/leader coherence, round accounting, stats.
  support::Rng rng(GetParam() ^ 0xE1);
  for (int repeat = 0; repeat < 4; ++repeat) {
    const config::Configuration c = random_configuration(rng);
    const core::ElectionReport report = core::elect(c);
    ASSERT_TRUE(report.valid);
    EXPECT_EQ(report.feasible, report.classification.feasible());
    EXPECT_EQ(report.feasible, report.schedule->feasible);
    EXPECT_EQ(report.local_rounds, report.schedule->total_rounds());
    if (report.feasible) {
      ASSERT_TRUE(report.leader.has_value());
      EXPECT_EQ(*report.leader, report.classification.leader);
    } else {
      EXPECT_FALSE(report.leader.has_value());
    }
    // Each node transmits once per phase (Lemma 3.7's structure).
    EXPECT_EQ(report.stats.transmissions,
              static_cast<std::uint64_t>(c.size()) * report.schedule->phases.size());
    // Global completion covers the last waker's local schedule.
    const config::Tag max_tag =
        *std::max_element(c.tags().begin(), c.tags().end());
    EXPECT_GE(report.global_rounds, max_tag + report.local_rounds);
  }
}

TEST_P(FuzzSweep, WakePolicyIsUnobservableForPatientProtocols) {
  // The wake-round hearing policy only matters when something transmits
  // while a node wakes; patient protocols never do that, so the canonical
  // DRIP must behave identically under both policies.
  support::Rng rng(GetParam() ^ 0x9A);
  const config::Configuration c = random_configuration(rng);
  const auto schedule = core::make_schedule(c);
  const core::CanonicalDrip drip(schedule);
  radio::RunResult runs[2];
  int index = 0;
  for (const auto policy : {radio::WakePolicy::HearAll, radio::WakePolicy::SilentWake}) {
    radio::SimulatorOptions options;
    options.wake_policy = policy;
    options.history_window = 0;
    runs[index++] = radio::simulate(c, drip, options);
  }
  ASSERT_EQ(runs[0].nodes.size(), runs[1].nodes.size());
  for (graph::NodeId v = 0; v < c.size(); ++v) {
    EXPECT_EQ(runs[0].nodes[v].history, runs[1].nodes[v].history);
    EXPECT_EQ(runs[0].nodes[v].elected, runs[1].nodes[v].elected);
  }
}

TEST(FingerprintFuzz, TenThousandRandomConfigurationsNeverShareFalsely) {
  // The schedule cache's keying property, fuzzed: across 10k random
  // configurations, equal digests only ever come from equal configurations
  // (the generator does repeat small configurations — those duplicates are
  // exactly the collisions the digest must have).
  support::Rng rng(0xF1D6E5);
  std::unordered_map<config::Fingerprint, config::Configuration> seen;
  std::size_t duplicates = 0;
  for (int i = 0; i < 10'000; ++i) {
    const config::Configuration c = random_configuration(rng);
    const config::Fingerprint digest = config::fingerprint(c);
    const auto [slot, inserted] = seen.try_emplace(digest, c);
    if (!inserted) {
      ASSERT_EQ(slot->second, c)
          << "digest collision between distinct configurations at i=" << i << ":\n"
          << config::to_text_string(slot->second) << "vs\n"
          << config::to_text_string(c);
      ++duplicates;
    }
  }
  // Sanity on the workload itself: the small-configuration space guarantees
  // honest repeats, so the no-false-sharing branch above really executed.
  EXPECT_GT(duplicates, 0u);
}

// ------------------------------------------------------- workload digests

/// A random spec assembled as a grammar string and pushed through
/// parse_workload — so the fuzz exercises the parser on every sample, and
/// duplicates (equal specs) occur honestly for the collision check below.
engine::WorkloadSpec random_workload_spec(support::Rng& rng, bool allow_mutations = true) {
  std::string name;
  std::vector<std::string> params;
  switch (rng.below(allow_mutations ? 12 : 11)) {
    case 0:
      name = "random";
      params.push_back("n=" + std::to_string(2 + rng.below(39)));
      params.push_back("p=0." + std::to_string(1 + rng.below(9)));
      params.push_back("sigma=" + std::to_string(rng.below(6)));
      if (rng.bernoulli(0.2)) {
        params.push_back("exact=0");
      }
      break;
    case 1:
      name = "exhaustive";
      params.push_back("n=" + std::to_string(1 + rng.below(5)));
      params.push_back("tau=" + std::to_string(rng.below(4)));
      break;
    case 2:
      name = "family-g";
      break;
    case 3:
      name = "family-h";
      break;
    case 4:
      name = "family-s";
      break;
    case 5:
      name = "staggered";
      break;
    case 6:
      name = "grid";
      params.push_back("rows=" + std::to_string(1 + rng.below(8)));
      params.push_back("cols=" + std::to_string(2 + rng.below(7)));
      params.push_back("sigma=" + std::to_string(rng.below(5)));
      break;
    case 7:
      name = "torus";
      params.push_back("rows=" + std::to_string(3 + rng.below(6)));
      params.push_back("cols=" + std::to_string(3 + rng.below(6)));
      params.push_back("sigma=" + std::to_string(rng.below(5)));
      break;
    case 8:
      name = "hypercube";
      params.push_back("d=" + std::to_string(1 + rng.below(8)));
      params.push_back("sigma=" + std::to_string(rng.below(5)));
      break;
    case 9:
      name = "tree";
      params.push_back("n=" + std::to_string(2 + rng.below(59)));
      params.push_back("sigma=" + std::to_string(rng.below(5)));
      break;
    case 10:
      name = "single-hop";
      params.push_back("n=" + std::to_string(2 + rng.below(39)));
      params.push_back("sigma=" + std::to_string(rng.below(5)));
      break;
    default:
      return engine::WorkloadSpec::mutations(random_workload_spec(rng, false));
  }
  if (rng.bernoulli(0.25)) {
    params.push_back("model=nocd");
  }
  if (rng.bernoulli(0.25)) {
    params.push_back("fast=1");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    name += (i == 0 ? ':' : ',');
    name += params[i];
  }
  return engine::parse_workload(name);
}

TEST(WorkloadFuzz, TenThousandRandomSpecsNeverShareADigestFalsely) {
  // The sweep-identity keying property, fuzzed like the configuration
  // fingerprint above: across 10k random workload specs, equal digests only
  // ever come from equal specs.  (The generator repeats the parameterless
  // families constantly — those duplicates are exactly the collisions the
  // digest must have.)
  support::Rng rng(0x3A11);
  std::unordered_map<std::uint64_t, engine::WorkloadSpec> seen;
  std::size_t duplicates = 0;
  for (int i = 0; i < 10'000; ++i) {
    const engine::WorkloadSpec spec = random_workload_spec(rng);
    const auto [slot, inserted] = seen.try_emplace(spec.digest(), spec);
    if (!inserted) {
      ASSERT_EQ(slot->second, spec)
          << "digest collision between distinct workloads at i=" << i << ": "
          << slot->second.name() << " vs " << spec.name();
      ++duplicates;
    }
  }
  EXPECT_GT(duplicates, 0u);

  // And the round trip holds on every distinct sampled spec, not just the
  // registry defaults.
  for (const auto& [digest, spec] : seen) {
    ASSERT_EQ(engine::parse_workload(spec.name()), spec) << spec.name();
    ASSERT_EQ(spec.digest(), digest) << spec.name();
  }
}

// --------------------------------------------------------- fault digests

/// A random fault spec assembled as a grammar string and pushed through
/// parse_fault — the same discipline as random_workload_spec: the fuzz
/// exercises the parser on every sample, and duplicates occur honestly.
fault::FaultSpec random_fault_spec(support::Rng& rng) {
  // Canonical probability spellings only (the grammar rejects non-canonical
  // numbers by design, which the garbage pass below covers).
  static const std::vector<std::string> kProbabilities = {
      "0", "0.05", "0.1", "0.125", "0.25", "0.3", "0.5", "0.75", "0.9", "1"};
  std::string name;
  switch (rng.below(5)) {
    case 0:
      name = "none";
      break;
    case 1:
      name = "drop:" + kProbabilities[rng.below(kProbabilities.size())];
      if (rng.bernoulli(0.4)) {
        name += "," + std::to_string(1 + rng.below(999));
      }
      break;
    case 2:
      name = "corrupt:" + kProbabilities[rng.below(kProbabilities.size())];
      break;
    case 3:
      name = "crash:" + std::to_string(rng.below(1'000'000));
      if (rng.bernoulli(0.4)) {
        name += "," + std::to_string(1 + rng.below(999'999));
      }
      break;
    default:
      name = "adversarial-wake:" + std::to_string(rng.below(1'000'000));
      break;
  }
  return fault::parse_fault(name);
}

TEST(FaultSpecFuzz, TenThousandRandomSpecsRoundTripAndNeverShareADigestFalsely) {
  // The fault half of sweep identity, fuzzed exactly like the workload
  // digest above: across 10k random specs, equal digests only ever come
  // from equal specs, and every distinct sampled spec round-trips through
  // its name.
  support::Rng rng(0xFA17F);
  std::unordered_map<std::uint64_t, fault::FaultSpec> seen;
  std::size_t duplicates = 0;
  for (int i = 0; i < 10'000; ++i) {
    const fault::FaultSpec spec = random_fault_spec(rng);
    const auto [slot, inserted] = seen.try_emplace(spec.digest(), spec);
    if (!inserted) {
      ASSERT_EQ(slot->second, spec)
          << "digest collision between distinct faults at i=" << i << ": "
          << slot->second.name() << " vs " << spec.name();
      ++duplicates;
    }
  }
  EXPECT_GT(duplicates, 0u);
  for (const auto& [digest, spec] : seen) {
    ASSERT_EQ(fault::parse_fault(spec.name()), spec) << spec.name();
    ASSERT_EQ(spec.digest(), digest) << spec.name();
  }
}

TEST(FaultSpecFuzz, GarbageSpecsEitherThrowOrRoundTrip) {
  // Total-function property of the parser: any byte string either raises a
  // ContractViolation or yields a spec whose canonical name reparses to the
  // same spec.  Nothing else may happen — no crashes, no lossy acceptance.
  support::Rng rng(0x6A26A6E);
  static const std::string kAlphabet = "abcdefghijkstvw-:,.0123456789 eE+_";
  std::size_t accepted = 0;
  for (int trial = 0; trial < 10'000; ++trial) {
    std::string text;
    const std::size_t length = rng.below(20);
    for (std::size_t i = 0; i < length; ++i) {
      text += kAlphabet[rng.below(kAlphabet.size())];
    }
    try {
      const fault::FaultSpec spec = fault::parse_fault(text);
      ASSERT_EQ(fault::parse_fault(spec.name()), spec) << "'" << text << "'";
      ++accepted;
    } catch (const support::ContractViolation&) {
      // Rejected outright — the expected fate of almost every sample.
    }
  }
  // Sanity: the alphabet is biased enough that some samples do parse
  // (e.g. bare "none" is unlikely, but "crash:3"-shaped strings occur).
  (void)accepted;
}

// ----------------------------------------------------- shard report parser

/// One small but representative shard report (mixed protocols, a cache
/// line, a multi-range cover) to mutate.
std::string reference_shard_report_text() {
  const engine::WorkloadSpec workload = engine::parse_workload("random:n=6,p=0.3,sigma=2");
  const std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical(),
                                                     core::ProtocolSpec::binary_search()};
  const engine::CountedSweep counted = workload.instantiate(11, protocols, {.count = 4});

  dist::SweepKey key;
  key.description = workload.name();
  key.digest = workload.digest();
  key.seed = 11;
  key.total_jobs = counted.count;
  for (const core::ProtocolSpec& protocol : protocols) {
    key.protocols.push_back(protocol.name());
  }

  engine::BatchRunner runner({.threads = 1, .seed = 11, .cache_capacity = 64});
  std::vector<dist::ShardReport> pieces;
  for (const dist::JobRange range : {dist::JobRange{0, 3}, dist::JobRange{5, 8}}) {
    engine::BatchReport report = runner.run_range(range.begin, range.end, counted.source);
    pieces.push_back(dist::make_shard_report(key, range, std::move(report)));
  }
  std::ostringstream out;
  dist::write_shard_report(dist::merge_shards(pieces), out);
  return out.str();
}

TEST(ShardReportFuzz, StructuralMutationsAreAlwaysRejected) {
  const std::string text = reference_shard_report_text();
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) {
      lines.push_back(line);
    }
  }
  const auto joined = [](const std::vector<std::string>& parts) {
    std::string all;
    for (const std::string& part : parts) {
      all += part;
      all += '\n';
    }
    return all;
  };
  const auto expect_rejected = [](const std::string& mutated, const std::string& what) {
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError) << what;
  };

  // Dropping, duplicating or swapping any line breaks the grammar, a
  // count, a cross-check — or, for mutations the grammar itself would
  // accept (the optional cache line removed, a protocol line doubled), the
  // whole-body digest on the `end` line.
  for (std::size_t drop = 0; drop < lines.size(); ++drop) {
    std::vector<std::string> mutated = lines;
    mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(drop));
    expect_rejected(joined(mutated), "dropped line " + std::to_string(drop));
  }
  for (std::size_t dup = 1; dup < lines.size(); ++dup) {
    std::vector<std::string> mutated = lines;
    mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(dup), lines[dup]);
    expect_rejected(joined(mutated), "duplicated line " + std::to_string(dup));
  }
  for (std::size_t at = 0; at + 1 < lines.size(); ++at) {
    std::vector<std::string> mutated = lines;
    std::swap(mutated[at], mutated[at + 1]);
    expect_rejected(joined(mutated), "swapped lines " + std::to_string(at));
  }
  // Trailing garbage after `end` is rejected.
  expect_rejected(text + "job 9 canonical elected 6 2 1 1 1 0 1 1 1 1 " +
                      std::string(16, '0') + " 0 0 0 0 0\n",
                  "appended job line");
  expect_rejected(text + "#\n", "appended comment");
}

TEST(ShardReportFuzz, EverySingleByteCorruptionIsRejected) {
  // The `end` line digests every byte above it, so no single-character
  // corruption anywhere in the file may parse — not even in fields the
  // grammar and the breakdown cross-check would both accept, like a
  // node-count digit or a configuration fingerprint.  Exhaustive over
  // every byte position (digit replacement) plus a randomized pass with
  // arbitrary printable replacements.
  const std::string text = reference_shard_report_text();
  for (std::size_t at = 0; at + 1 < text.size(); ++at) {  // final '\n' stays
    std::string mutated = text;
    mutated[at] = mutated[at] == '7' ? '8' : '7';
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError)
        << "corruption at byte " << at << " was accepted";
  }
  support::Rng rng(0xC055);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string mutated = text;
    const std::size_t at = static_cast<std::size_t>(rng.below(mutated.size() - 1));
    const char replacement = static_cast<char>(' ' + rng.below('~' - ' ' + 1));
    if (mutated[at] == replacement) {
      continue;
    }
    mutated[at] = replacement;
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError)
        << "random corruption at byte " << at << " to '" << replacement << "' was accepted";
  }
}

/// A fault-bearing shard report to mutate: same sweep as above, run under
/// drop:0.2, so the optional `fault` line is present and every job line
/// carries nonzero injected-event counters.
std::string faulted_shard_report_text() {
  const engine::WorkloadSpec workload = engine::parse_workload("random:n=6,p=0.3,sigma=2");
  const std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical(),
                                                     core::ProtocolSpec::binary_search()};
  const engine::CountedSweep counted = workload.instantiate(11, protocols, {.count = 4});

  dist::SweepKey key;
  key.description = workload.name();
  key.digest = workload.digest();
  key.seed = 11;
  key.total_jobs = counted.count;
  key.fault = "drop:0.2";
  for (const core::ProtocolSpec& protocol : protocols) {
    key.protocols.push_back(protocol.name());
  }

  engine::BatchRunner runner(
      {.threads = 1, .seed = 11, .fault = fault::FaultSpec::drop(0.2)});
  engine::BatchReport report = runner.run_range(0, counted.count, counted.source);
  const dist::ShardReport shard =
      dist::make_shard_report(key, {0, counted.count}, std::move(report));
  std::ostringstream out;
  dist::write_shard_report(shard, out);
  return out.str();
}

TEST(ShardReportFuzz, FaultedReportsRoundTripThroughTheWire) {
  const std::string text = faulted_shard_report_text();
  ASSERT_NE(text.find("\nfault drop:0.2\n"), std::string::npos);
  std::istringstream in(text);
  const dist::ShardReport parsed = dist::read_shard_report(in);
  EXPECT_EQ(parsed.key.fault, "drop:0.2");
  EXPECT_EQ(parsed.report.fault, fault::FaultSpec::drop(0.2));
  EXPECT_GT(parsed.report.total_stats.injected_drops, 0u);
}

TEST(ShardReportFuzz, FaultLineMutationsAreAlwaysRejected) {
  const std::string text = faulted_shard_report_text();
  const std::size_t line_start = text.find("\nfault ") + 1;
  ASSERT_NE(line_start, std::string::npos + 1);
  const std::size_t line_end = text.find('\n', line_start);
  const auto expect_rejected = [](const std::string& mutated, const std::string& what) {
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError) << what;
  };

  // Deleting the line is grammar-legal (the field is optional) but strips
  // the fault from the sweep identity — the whole-body digest rejects it.
  std::string deleted = text;
  deleted.erase(line_start, line_end - line_start + 1);
  expect_rejected(deleted, "deleted fault line");

  // Spelling mutations: non-canonical ("drop:0.20"), inactive ("none",
  // "drop:0"), unknown and malformed specs.  Each breaks the canonical-
  // spelling contract — and the digest, for defense in depth.
  for (const std::string& respelled :
       {"fault drop:0.20", "fault none", "fault drop:0", "fault bogus", "fault drop:",
        "fault drop:0.2 extra", "fault"}) {
    std::string mutated = text;
    mutated.replace(line_start, line_end - line_start, respelled);
    expect_rejected(mutated, "'" + respelled + "'");
  }

  // Every single-byte corruption of the line (spec characters and the
  // keyword alike) is rejected.
  for (std::size_t at = line_start; at < line_end; ++at) {
    std::string mutated = text;
    mutated[at] = mutated[at] == 'x' ? 'y' : 'x';
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError)
        << "fault-line corruption at byte " << at << " was accepted";
  }
}

TEST(ShardReportFuzz, FaultedReportsRejectEverySingleByteCorruption) {
  // The digest shields the fault-bearing format exactly as it shields the
  // unfaulted one — including the widened job/breakdown stat fields.
  const std::string text = faulted_shard_report_text();
  for (std::size_t at = 0; at + 1 < text.size(); ++at) {
    std::string mutated = text;
    mutated[at] = mutated[at] == '7' ? '8' : '7';
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError)
        << "corruption at byte " << at << " was accepted";
  }
}

TEST(ShardReportFuzz, SweepIdentityLineIsDigestProtected) {
  // The one header field merge identity hangs on — the sweep description —
  // is digest-protected: corrupting any of its characters (or the digest
  // itself) must throw, so a hand-edited workload line cannot sneak two
  // different sweeps past the merge verifier.
  const std::string text = reference_shard_report_text();
  const std::size_t line_start = text.find("\nsweep ") + 1;
  const std::size_t line_end = text.find('\n', line_start);
  for (std::size_t at = line_start + 6; at < line_end; ++at) {
    std::string mutated = text;
    mutated[at] = mutated[at] == 'x' ? 'y' : 'x';
    std::istringstream in(mutated);
    EXPECT_THROW((void)dist::read_shard_report(in), dist::ReportFormatError)
        << "sweep-line corruption at byte " << at << " was accepted";
  }
}

// --------------------------------------------------- serve stats protocol

/// A stats response with every field distinct and nonzero, so a parse that
/// transposes two counters cannot round-trip back to the original.
serve::Response reference_stats_response() {
  serve::Response response;
  response.kind = serve::Response::Kind::Stats;
  serve::ServerStats& s = response.stats;
  s.uptime_ms = 1201;
  s.queued = 2;
  s.active = 3;
  s.sessions = 4;
  s.accepted = 55;
  s.completed = 51;
  s.failed = 1;
  s.busy_rejections = 6;
  s.drain_rejections = 7;
  s.protocol_errors = 8;
  s.cache = {90, 41, 42};
  s.store = {13, 14, 15};
  s.queue_wait = {51, 127, 511, 2047};
  s.dispatch = {51, 1023, 8191, 16383};
  return response;
}

TEST(StatsProtoFuzz, ReferenceLineRoundTrips) {
  const serve::Response response = reference_stats_response();
  const std::string line = serve::format_response(response);
  EXPECT_EQ(line,
            "arl-serve 1 stats uptime-ms 1201 queued 2 active 3 sessions 4 "
            "accepted 55 completed 51 failed 1 busy 6 drained 7 proto-errors 8 "
            "cache 90 41 42 store 13 14 15 queue-wait-us 51 127 511 2047 "
            "dispatch-us 51 1023 8191 16383");
  const auto matched = serve::match_response(line);
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(*matched, response);

  // The request side is three exact tokens.
  serve::Request request;
  request.kind = serve::Request::Kind::Stats;
  EXPECT_EQ(serve::format_request(request), "arl-serve 1 stats");
  EXPECT_EQ(serve::parse_request("arl-serve 1 stats"), request);
}

TEST(StatsProtoFuzz, EveryTruncationIsRejected) {
  // Cutting the response after any token prefix must throw: the parser
  // demands all 41 tokens, so a connection dropped mid-line can never be
  // mistaken for a smaller-but-valid snapshot.
  const std::string line = serve::format_response(reference_stats_response());
  std::vector<std::string> tokens;
  {
    std::istringstream in(line);
    for (std::string token; in >> token;) {
      tokens.push_back(token);
    }
  }
  ASSERT_EQ(tokens.size(), 41u);
  for (std::size_t keep = 2; keep < tokens.size(); ++keep) {
    std::string truncated = tokens[0];
    for (std::size_t i = 1; i < keep; ++i) {
      truncated += ' ';
      truncated += tokens[i];
    }
    EXPECT_THROW((void)serve::match_response(truncated), serve::ProtoError)
        << "accepted after " << keep << " tokens: " << truncated;
  }
}

TEST(StatsProtoFuzz, VersionSkewIsRejected) {
  const std::string line = serve::format_response(reference_stats_response());
  for (const std::string version : {"0", "2", "999", "01", "one"}) {
    std::string skewed = line;
    skewed.replace(std::string("arl-serve ").size(), 1, version);
    EXPECT_THROW((void)serve::match_response(skewed), serve::ProtoError)
        << "accepted version " << version;
    EXPECT_THROW((void)serve::parse_request("arl-serve " + version + " stats"),
                 serve::ProtoError)
        << "accepted request version " << version;
  }
}

TEST(StatsProtoFuzz, GarbageCountersAreRejected) {
  // Replace each of the 26 numeric value positions in turn with tokens a
  // lenient strtoull-style reader might wave through: signs, floats,
  // hex, overflow, empty-adjacent doubled spaces.
  const std::string line = serve::format_response(reference_stats_response());
  std::vector<std::string> tokens;
  {
    std::istringstream in(line);
    for (std::string token; in >> token;) {
      tokens.push_back(token);
    }
  }
  const auto joined = [](const std::vector<std::string>& parts) {
    std::string all;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) {
        all += ' ';
      }
      all += parts[i];
    }
    return all;
  };
  const std::vector<std::string> garbage = {
      "x", "-1", "1.5", "+3", "18446744073709551616", "0x10", "12a", ""};
  for (std::size_t at = 3; at < tokens.size(); ++at) {
    const bool is_value = std::all_of(tokens[at].begin(), tokens[at].end(),
                                      [](char c) { return c >= '0' && c <= '9'; });
    if (!is_value) {
      continue;
    }
    for (const std::string& bad : garbage) {
      std::vector<std::string> mutated = tokens;
      mutated[at] = bad;
      EXPECT_THROW((void)serve::match_response(joined(mutated)), serve::ProtoError)
          << "accepted '" << bad << "' at token " << at;
    }
  }
}

TEST(StatsProtoFuzz, LabelCorruptionAndTrailingFieldsAreRejected) {
  const std::string line = serve::format_response(reference_stats_response());
  std::vector<std::string> tokens;
  {
    std::istringstream in(line);
    for (std::string token; in >> token;) {
      tokens.push_back(token);
    }
  }
  const auto joined = [](const std::vector<std::string>& parts) {
    std::string all;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) {
        all += ' ';
      }
      all += parts[i];
    }
    return all;
  };
  // Corrupt each label token (uppercase first letter — same length, wrong
  // spelling) and drop each label token.
  for (std::size_t at = 3; at < tokens.size(); ++at) {
    const bool is_value = std::all_of(tokens[at].begin(), tokens[at].end(),
                                      [](char c) { return c >= '0' && c <= '9'; });
    if (is_value) {
      continue;
    }
    std::vector<std::string> corrupted = tokens;
    corrupted[at][0] = static_cast<char>(corrupted[at][0] - 'a' + 'A');
    EXPECT_THROW((void)serve::match_response(joined(corrupted)), serve::ProtoError)
        << "accepted corrupted label at token " << at;
    std::vector<std::string> dropped = tokens;
    dropped.erase(dropped.begin() + static_cast<std::ptrdiff_t>(at));
    EXPECT_THROW((void)serve::match_response(joined(dropped)), serve::ProtoError)
        << "accepted dropped label at token " << at;
  }
  // Trailing fields on either direction.
  EXPECT_THROW((void)serve::match_response(line + " 0"), serve::ProtoError);
  EXPECT_THROW((void)serve::match_response(line + " uptime-ms 1"), serve::ProtoError);
  EXPECT_THROW((void)serve::parse_request("arl-serve 1 stats extra"), serve::ProtoError);
  EXPECT_THROW((void)serve::parse_request("arl-serve 1 stats "), serve::ProtoError);
}

TEST(StatsProtoFuzz, RandomSnapshotsRoundTrip) {
  // Property pass: arbitrary counter values (including the 0 and max
  // extremes the reference line avoids) survive the wire exactly.
  support::Rng rng(0x57A7);
  const auto value = [&rng]() -> std::uint64_t {
    switch (rng.below(4)) {
      case 0:
        return 0;
      case 1:
        return rng.below(100);
      case 2:
        return rng.next();
      default:
        return ~std::uint64_t{0};
    }
  };
  for (int trial = 0; trial < 2'000; ++trial) {
    serve::Response response;
    response.kind = serve::Response::Kind::Stats;
    serve::ServerStats& s = response.stats;
    s.uptime_ms = value();
    s.queued = value();
    s.active = value();
    s.sessions = value();
    s.accepted = value();
    s.completed = value();
    s.failed = value();
    s.busy_rejections = value();
    s.drain_rejections = value();
    s.protocol_errors = value();
    s.cache = {value(), value(), value()};
    s.store = {value(), value(), value()};
    s.queue_wait = {value(), value(), value(), value()};
    s.dispatch = {value(), value(), value(), value()};
    const auto matched = serve::match_response(serve::format_response(response));
    ASSERT_TRUE(matched.has_value()) << "trial " << trial;
    ASSERT_EQ(*matched, response) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006, 7007, 8008,
                                           9009, 10010));

}  // namespace
