/// \file test_workload.cpp
/// The workload registry's contract (engine/workload.hpp): names round-trip
/// through parse_workload for every registered spec and every grammar
/// variant, digests are canonical and collision-free across the registry,
/// and instantiate() produces deterministic job streams with the documented
/// cross-product order — for the paper families, the random sweeps and
/// every generator topology alike.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "config/families.hpp"
#include "config/fingerprint.hpp"
#include "config/mutations.hpp"
#include "engine/workload.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"

namespace {

using namespace arl;

// ------------------------------------------------------------ name round trip

TEST(WorkloadRegistry, EveryRegisteredSpecRoundTripsThroughParse) {
  ASSERT_FALSE(engine::registered_workloads().empty());
  for (const engine::WorkloadSpec& spec : engine::registered_workloads()) {
    EXPECT_EQ(engine::parse_workload(spec.name()), spec) << spec.name();
    // The name is canonical: re-parsing and re-printing is a fixed point.
    EXPECT_EQ(engine::parse_workload(spec.name()).name(), spec.name());
  }
}

TEST(WorkloadRegistry, VariantSpecsRoundTripThroughParse) {
  const char* variants[] = {
      "random:n=5,p=0.75,sigma=0",
      "random:n=1,p=1,sigma=0",        // one node is fine without a span...
      "random:n=1,p=1,sigma=3,exact=0",  // ...or with uniform (inexact) tags
      "grid:rows=1,cols=2,sigma=1",
      "single-hop:n=1,sigma=0",
      "random:n=5,p=0.125,sigma=2,exact=0",
      "random:n=9,p=1,sigma=4,model=nocd,fast=1",
      "exhaustive:n=3,tau=1",
      "exhaustive:n=2,tau=0,fast=1",
      "family-g",
      "family-h:model=nocd",
      "family-s:fast=1",
      "staggered:model=nocd,fast=1",
      "grid:rows=2,cols=5,sigma=1",
      "torus:rows=3,cols=4,sigma=2",
      "hypercube:d=3,sigma=2",
      "tree:n=17,sigma=2",
      "single-hop:n=6,sigma=5",
      "mutations:family-h",
      "mutations:grid:rows=2,cols=2,sigma=1",
      "mutations:random:n=5,p=0.5,sigma=2,model=nocd",
  };
  for (const char* text : variants) {
    const engine::WorkloadSpec spec = engine::parse_workload(text);
    EXPECT_EQ(engine::parse_workload(spec.name()), spec) << text;
  }
}

TEST(WorkloadRegistry, ParseNormalizesToCanonicalNames) {
  // Partial and reordered parameters parse, and name() prints the one
  // canonical spelling (full parameter list, fixed order).
  EXPECT_EQ(engine::parse_workload("random").name(), "random:n=16,p=0.3,sigma=3");
  EXPECT_EQ(engine::parse_workload("random:sigma=5").name(), "random:n=16,p=0.3,sigma=5");
  EXPECT_EQ(engine::parse_workload("random:sigma=5,n=4").name(), "random:n=4,p=0.3,sigma=5");
  EXPECT_EQ(engine::parse_workload("grid").name(), "grid:rows=8,cols=8,sigma=3");
  EXPECT_EQ(engine::parse_workload("tree").name(), "tree:n=64,sigma=3");
  EXPECT_EQ(engine::parse_workload("single-hop").name(), "single-hop:n=32,sigma=3");
  EXPECT_EQ(engine::parse_workload("hypercube:model=cd").name(), "hypercube:d=6,sigma=3");
  EXPECT_EQ(engine::parse_workload("mutations:staggered").name(), "mutations:staggered");
}

TEST(WorkloadRegistry, FactoriesMatchParsedSpellings) {
  EXPECT_EQ(engine::WorkloadSpec::random(8, 0.5, 2),
            engine::parse_workload("random:n=8,p=0.5,sigma=2"));
  EXPECT_EQ(engine::WorkloadSpec::exhaustive(3, 1),
            engine::parse_workload("exhaustive:n=3,tau=1"));
  EXPECT_EQ(engine::WorkloadSpec::grid(2, 3, 1),
            engine::parse_workload("grid:rows=2,cols=3,sigma=1"));
  EXPECT_EQ(engine::WorkloadSpec::mutations(engine::WorkloadSpec::family_h()),
            engine::parse_workload("mutations:family-h"));
}

TEST(WorkloadRegistry, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",
      "bogus",
      "random:",
      "random:n",
      "random:n=",
      "random:=4",
      "random:n=4,",
      "random:n=4,n=5",       // duplicate key
      "random:rows=4",        // key of another kind
      "random:n=0",           // below range
      "random:n=1",           // exact positive span needs 2 nodes to stretch
      "tree:n=1",
      "single-hop:n=1,sigma=3",
      "grid:rows=1,cols=1",
      "random:n=x",
      "random:p=2",           // out of [0, 1]
      "random:p=0.5.5",
      "random:exact=2",
      "random:model=maybe",
      "exhaustive:n=7",       // census blows up past n = 6
      "exhaustive:tau=9",
      "grid:rows=0",
      "grid:rows=1001",
      "torus:rows=2,cols=3",  // torus needs rows >= 3
      "hypercube:d=0",
      "hypercube:d=21",
      "mutations",            // no base
      "mutations:",
      "mutations:bogus",
      "mutations:mutations:family-h",  // no nested neighbourhoods
      "Random",               // registry keys are exact
      "random :n=4",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)engine::parse_workload(text), support::ContractViolation) << text;
  }
}

TEST(WorkloadRegistry, UnknownKindErrorListsTheRegistry) {
  try {
    (void)engine::parse_workload("bogus");
    FAIL() << "expected ContractViolation";
  } catch (const support::ContractViolation& error) {
    const std::string what = error.what();
    for (const engine::WorkloadSpec& spec : engine::registered_workloads()) {
      const std::string token = spec.name().substr(0, spec.name().find(':'));
      EXPECT_NE(what.find(token), std::string::npos) << "error should list " << token;
    }
  }
}

// ------------------------------------------------------------------- digests

TEST(WorkloadRegistry, RegisteredDigestsAreDistinctAndStable) {
  std::set<std::uint64_t> digests;
  for (const engine::WorkloadSpec& spec : engine::registered_workloads()) {
    EXPECT_TRUE(digests.insert(spec.digest()).second)
        << spec.name() << " shares a digest with another registered workload";
    // Digest is a pure function of the spec, not the object identity.
    EXPECT_EQ(engine::parse_workload(spec.name()).digest(), spec.digest());
  }
}

TEST(WorkloadRegistry, ExecutionIdentityChangesTheDigest) {
  // Channel model and classifier choice are workload identity: sweeps that
  // classify differently must never share a sweep digest (merge hangs on it).
  const engine::WorkloadSpec base = engine::parse_workload("random:n=8,p=0.3,sigma=2");
  const engine::WorkloadSpec nocd = engine::parse_workload("random:n=8,p=0.3,sigma=2,model=nocd");
  const engine::WorkloadSpec fast = engine::parse_workload("random:n=8,p=0.3,sigma=2,fast=1");
  EXPECT_NE(base.digest(), nocd.digest());
  EXPECT_NE(base.digest(), fast.digest());
  EXPECT_NE(nocd.digest(), fast.digest());
}

// --------------------------------------------------------------- bounded()

TEST(WorkloadRegistry, BoundedKindsAreExactlyTheSelfCountingOnes) {
  EXPECT_TRUE(engine::parse_workload("exhaustive:n=3,tau=1").bounded());
  EXPECT_TRUE(engine::parse_workload("mutations:exhaustive:n=2,tau=1").bounded());
  EXPECT_FALSE(engine::parse_workload("random").bounded());
  EXPECT_FALSE(engine::parse_workload("grid").bounded());
  EXPECT_FALSE(engine::parse_workload("mutations:family-h").bounded());
}

// ------------------------------------------------------------- instantiate

engine::CountedSweep instantiate(const std::string& text, std::uint64_t seed,
                                 std::vector<core::ProtocolSpec> protocols,
                                 std::size_t count) {
  return engine::parse_workload(text).instantiate(seed, std::move(protocols), {.count = count});
}

TEST(WorkloadInstantiate, CrossProductOrderIsProtocolsConsecutivePerConfiguration) {
  const std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical(),
                                                     core::ProtocolSpec::classify_only(),
                                                     core::ProtocolSpec::binary_search()};
  for (const char* text : {"random:n=6,p=0.4,sigma=2", "grid:rows=2,cols=3,sigma=1",
                           "staggered", "family-h"}) {
    const engine::CountedSweep sweep = instantiate(text, 7, protocols, 4);
    ASSERT_EQ(sweep.count, 4u * protocols.size()) << text;
    for (engine::JobId id = 0; id < sweep.count; ++id) {
      const engine::BatchJob job = sweep.source(id);
      EXPECT_EQ(job.protocol, protocols[static_cast<std::size_t>(id % protocols.size())])
          << text << " job " << id;
      // The P jobs of one configuration are consecutive and identical.
      if (id % protocols.size() != 0) {
        EXPECT_EQ(config::fingerprint(job.configuration),
                  config::fingerprint(sweep.source(id - 1).configuration))
            << text << " job " << id;
      }
    }
  }
}

TEST(WorkloadInstantiate, JobStreamIsAPureFunctionOfSpecAndSeed) {
  for (const char* text : {"random:n=8,p=0.3,sigma=3", "tree:n=9,sigma=2",
                           "torus:rows=3,cols=3,sigma=1", "hypercube:d=3,sigma=2",
                           "single-hop:n=5,sigma=2", "mutations:family-s"}) {
    const engine::CountedSweep first =
        instantiate(text, 11, {core::ProtocolSpec::canonical()}, 3);
    const engine::CountedSweep second =
        instantiate(text, 11, {core::ProtocolSpec::canonical()}, 3);
    ASSERT_EQ(first.count, second.count) << text;
    ASSERT_GT(first.count, 0u) << text;
    bool seed_matters = false;
    const engine::CountedSweep other =
        instantiate(text, 12, {core::ProtocolSpec::canonical()}, 3);
    for (engine::JobId id = 0; id < first.count; ++id) {
      EXPECT_EQ(config::fingerprint(first.source(id).configuration),
                config::fingerprint(second.source(id).configuration))
          << text << " job " << id;
      seed_matters = seed_matters || config::fingerprint(first.source(id).configuration) !=
                                         config::fingerprint(other.source(id).configuration);
    }
    // The seeded kinds must actually consume the seed (the materialized
    // families legitimately do not).
    if (std::string(text).rfind("mutations", 0) != 0) {
      EXPECT_TRUE(seed_matters) << text << " ignored its seed";
    }
  }
}

TEST(WorkloadInstantiate, TopologyWorkloadsBuildTheirDeclaredShapes) {
  const struct {
    const char* text;
    graph::NodeId nodes;
    std::size_t edges;
  } cases[] = {
      {"grid:rows=3,cols=4,sigma=2", 12, 17},      // 3*(4-1) + 4*(3-1)
      {"torus:rows=3,cols=4,sigma=2", 12, 24},     // 2 * rows * cols
      {"hypercube:d=3,sigma=2", 8, 12},            // d * 2^(d-1)
      {"single-hop:n=6,sigma=2", 6, 15},           // n(n-1)/2
      {"tree:n=9,sigma=2", 9, 8},                  // n - 1
  };
  for (const auto& expected : cases) {
    const engine::CountedSweep sweep =
        instantiate(expected.text, 5, {core::ProtocolSpec::canonical()}, 2);
    for (engine::JobId id = 0; id < sweep.count; ++id) {
      const config::Configuration configuration = sweep.source(id).configuration;
      EXPECT_EQ(configuration.size(), expected.nodes) << expected.text;
      EXPECT_EQ(configuration.graph().edge_count(), expected.edges) << expected.text;
      EXPECT_EQ(configuration.span(), 2u) << expected.text;
    }
  }
}

TEST(WorkloadInstantiate, ExhaustiveCountIsImpliedAndCrossesProtocols) {
  // n=3, tau=1: 4 connected labelled graphs on 3 nodes x 2^3 tag vectors.
  const engine::CountedSweep sweep =
      instantiate("exhaustive:n=3,tau=1", 0,
                  {core::ProtocolSpec::classify_only(), core::ProtocolSpec::canonical()}, 999);
  EXPECT_EQ(sweep.count, 4u * 8u * 2u);
  EXPECT_EQ(sweep.source(0).protocol, core::ProtocolSpec::classify_only());
  EXPECT_EQ(sweep.source(1).protocol, core::ProtocolSpec::canonical());
}

TEST(WorkloadInstantiate, MutationsEnumerateEveryTagNeighbourOfTheBase) {
  // Base family-h with count 2 -> H_1, H_2; the neighbourhood is exactly
  // all_tag_mutations of each, in base order.
  const engine::CountedSweep sweep =
      instantiate("mutations:family-h", 0, {core::ProtocolSpec::classify_only()}, 2);
  std::vector<config::Configuration> expected;
  for (const config::Tag m : {1u, 2u}) {
    for (config::Configuration& mutation :
         config::all_tag_mutations(config::family_h(m), config::family_h(m).span())) {
      expected.push_back(std::move(mutation));
    }
  }
  ASSERT_EQ(sweep.count, expected.size());
  for (engine::JobId id = 0; id < sweep.count; ++id) {
    EXPECT_EQ(sweep.source(id).configuration, expected[static_cast<std::size_t>(id)])
        << "mutation " << id;
  }
}

TEST(WorkloadInstantiate, ElectionOptionsFollowTheSpecIdentity) {
  const engine::CountedSweep plain =
      instantiate("grid:rows=2,cols=2,sigma=1", 1, {core::ProtocolSpec::canonical()}, 1);
  EXPECT_EQ(plain.source(0).options.channel_model, radio::ChannelModel::CollisionDetection);
  EXPECT_FALSE(plain.source(0).options.use_fast_classifier);

  const engine::CountedSweep tuned = instantiate("grid:rows=2,cols=2,sigma=1,model=nocd,fast=1",
                                                 1, {core::ProtocolSpec::canonical()}, 1);
  EXPECT_EQ(tuned.source(0).options.channel_model, radio::ChannelModel::NoCollisionDetection);
  EXPECT_TRUE(tuned.source(0).options.use_fast_classifier);

  // The mutations wrapper mirrors its base's execution identity.
  const engine::WorkloadSpec wrapped = engine::parse_workload("mutations:family-h:fast=1");
  EXPECT_TRUE(wrapped.election_options().use_fast_classifier);
}

TEST(WorkloadInstantiate, RejectsHandBuiltOutOfRangeSpecs) {
  engine::WorkloadSpec spec = engine::WorkloadSpec::grid(0, 4, 1);
  EXPECT_THROW((void)spec.instantiate(1, {core::ProtocolSpec::canonical()}, {.count = 1}),
               support::ContractViolation);
  engine::WorkloadSpec torus = engine::WorkloadSpec::torus(2, 3, 1);
  EXPECT_THROW((void)torus.instantiate(1, {core::ProtocolSpec::canonical()}, {.count = 1}),
               support::ContractViolation);
}

}  // namespace
