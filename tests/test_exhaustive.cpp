/// \file test_exhaustive.cpp
/// Experiment E1 (Theorem 3.17) as an exhaustive integration sweep: every
/// labelled connected graph up to n = 4 with every tag vector over {0,1,2}
/// goes through the full pipeline — paper Classifier, FastClassifier,
/// canonical-DRIP simulation — and all three must agree everywhere.  For
/// n = 3 the Lemma 3.9 history-partition referee also validates every phase.
/// Feasible-configuration counts are pinned as regression values.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "config/io.hpp"
#include "core/canonical_drip.hpp"
#include "core/election.hpp"
#include "core/fast_classifier.hpp"
#include "graph/enumeration.hpp"
#include "helpers.hpp"

namespace {

using namespace arl;

/// Applies `body` to every configuration of `n` nodes with tags over
/// {0..max_tag}; returns how many configurations were visited.
std::uint64_t for_each_configuration(
    graph::NodeId n, config::Tag max_tag,
    const std::function<void(const config::Configuration&)>& body) {
  std::uint64_t visited = 0;
  graph::for_each_connected_graph(n, [&](const graph::Graph& g) {
    std::vector<config::Tag> tags(n, 0);
    for (;;) {
      body(config::Configuration(g, tags));
      ++visited;
      // Odometer increment over {0..max_tag}^n.
      graph::NodeId position = 0;
      while (position < n && tags[position] == max_tag) {
        tags[position] = 0;
        ++position;
      }
      if (position == n) {
        break;
      }
      ++tags[position];
    }
  });
  return visited;
}

struct SweepCounts {
  std::uint64_t configurations = 0;
  std::uint64_t feasible = 0;
};

SweepCounts full_pipeline_sweep(graph::NodeId n, config::Tag max_tag) {
  SweepCounts counts;
  for_each_configuration(n, max_tag, [&](const config::Configuration& c) {
    ++counts.configurations;
    const core::ClassifierResult paper = core::Classifier{}.run(c);
    const core::ClassifierResult fast = core::FastClassifier{}.run(c);
    ASSERT_EQ(paper.verdict, fast.verdict);
    ASSERT_EQ(paper.iterations, fast.iterations);
    ASSERT_EQ(paper.leader, fast.leader);
    for (std::size_t j = 0; j < paper.records.size(); ++j) {
      ASSERT_EQ(paper.records[j].clazz, fast.records[j].clazz);
    }

    const core::ElectionReport report = core::elect(c);
    ASSERT_TRUE(report.valid) << config::to_text_string(c);
    ASSERT_EQ(report.feasible, paper.feasible());
    if (report.feasible) {
      ++counts.feasible;
      ASSERT_EQ(*report.leader, paper.leader);
    }
  });
  return counts;
}

TEST(Exhaustive, N1FullPipeline) {
  const SweepCounts counts = full_pipeline_sweep(1, 2);
  EXPECT_EQ(counts.configurations, 3u);  // 1 graph x 3 tag vectors
  EXPECT_EQ(counts.feasible, 3u);        // a lone node always elects itself
}

TEST(Exhaustive, N2FullPipeline) {
  const SweepCounts counts = full_pipeline_sweep(2, 2);
  EXPECT_EQ(counts.configurations, 9u);  // 1 graph x 9 tag vectors
  // Feasible iff the two tags differ: 6 of 9.
  EXPECT_EQ(counts.feasible, 6u);
}

TEST(Exhaustive, N3FullPipeline) {
  const SweepCounts counts = full_pipeline_sweep(3, 2);
  EXPECT_EQ(counts.configurations, 4u * 27u);
  EXPECT_EQ(counts.feasible, 96u);  // pinned: only the 12 all-equal-tag configs are infeasible
}

TEST(Exhaustive, N4FullPipeline) {
  const SweepCounts counts = full_pipeline_sweep(4, 2);
  EXPECT_EQ(counts.configurations, 38u * 81u);
  EXPECT_EQ(counts.feasible, 2784u);  // pinned regression value
}

TEST(Exhaustive, N3Lemma39RerefereesEveryPhase) {
  // Simulation-level referee: on every 3-node configuration, the history
  // partition after each phase equals the Classifier partition — tying the
  // combinatorial algorithm to the radio semantics, exhaustively.
  for_each_configuration(3, 2, [&](const config::Configuration& c) {
    const core::ClassifierResult classification = core::Classifier{}.run(c);
    const auto schedule = std::make_shared<const core::CanonicalSchedule>(
        core::build_schedule(c, classification));
    radio::SimulatorOptions options;
    options.history_window = 0;
    const radio::RunResult run = radio::simulate(c, core::CanonicalDrip(schedule), options);
    ASSERT_TRUE(run.all_terminated);
    std::uint64_t r_j = 0;
    for (std::uint32_t j = 1; j <= classification.iterations; ++j) {
      r_j += schedule->phase_length(j - 1);
      const auto by_history = testkit::history_partition(run, static_cast<std::size_t>(r_j));
      ASSERT_TRUE(testkit::same_partition(by_history, classification.classes_after(j)))
          << config::to_text_string(c) << " phase " << j;
    }
  });
}

TEST(Exhaustive, N5ClassifierEquivalenceBinaryTags) {
  // n = 5 with tags over {0,1}: classifier-only (23k runs), both
  // implementations bit-identical.
  std::uint64_t feasible = 0;
  std::uint64_t total = 0;
  for_each_configuration(5, 1, [&](const config::Configuration& c) {
    ++total;
    const core::ClassifierResult paper = core::Classifier{}.run(c);
    const core::ClassifierResult fast = core::FastClassifier{}.run(c);
    ASSERT_EQ(paper.verdict, fast.verdict);
    ASSERT_EQ(paper.iterations, fast.iterations);
    ASSERT_EQ(paper.leader, fast.leader);
    feasible += paper.feasible() ? 1 : 0;
  });
  EXPECT_EQ(total, 728u * 32u);
  EXPECT_EQ(feasible, 21520u);  // pinned regression value
}

}  // namespace
