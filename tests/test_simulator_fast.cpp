/// \file test_simulator_fast.cpp
/// Differential suite for the simulator's word-parallel fast path: the
/// bitset engine must produce RunResults bit-identical to the scalar
/// reference loop — same per-node outcomes including full histories, same
/// RunStats — across channel models, wake policies, history windows,
/// protocols (with and without listen_streak), scratch reuse, and the batch
/// engine's scalar/wavefront modes at several thread counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/randomized.hpp"
#include "config/configuration.hpp"
#include "config/families.hpp"
#include "config/mutations.hpp"
#include "core/canonical_drip.hpp"
#include "core/schedule.hpp"
#include "engine/batch_runner.hpp"
#include "engine/schedule_cache.hpp"
#include "engine/sweep.hpp"
#include "engine/workload.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "radio/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace arl;

/// Full bit-identity over two runs: everything RunResult exposes.
void expect_same_run(const radio::RunResult& scalar, const radio::RunResult& bitset,
                     const std::string& what) {
  ASSERT_EQ(scalar.nodes.size(), bitset.nodes.size()) << what;
  EXPECT_EQ(scalar.rounds_executed, bitset.rounds_executed) << what;
  EXPECT_EQ(scalar.all_terminated, bitset.all_terminated) << what;
  EXPECT_TRUE(scalar.stats == bitset.stats) << what;
  for (std::size_t v = 0; v < scalar.nodes.size(); ++v) {
    const radio::NodeOutcome& a = scalar.nodes[v];
    const radio::NodeOutcome& b = bitset.nodes[v];
    const std::string node_what = what + ", node " + std::to_string(v);
    EXPECT_EQ(a.wake_round, b.wake_round) << node_what;
    EXPECT_EQ(a.forced_wake, b.forced_wake) << node_what;
    EXPECT_EQ(a.terminated, b.terminated) << node_what;
    EXPECT_EQ(a.done_round, b.done_round) << node_what;
    EXPECT_EQ(a.elected, b.elected) << node_what;
    EXPECT_EQ(a.history_dropped, b.history_dropped) << node_what;
    ASSERT_EQ(a.history.size(), b.history.size()) << node_what;
    for (std::size_t t = 0; t < a.history.size(); ++t) {
      EXPECT_TRUE(a.history[t] == b.history[t]) << node_what << ", entry " << t;
    }
  }
}

/// The 8 option variants the suite crosses for every (configuration, drip):
/// {CD, NoCD} x {HearAll, SilentWake} x {unwindowed, windowed}.  The
/// windowed variant evicts aggressively but never below the drip's own
/// declared minimum — a smaller window would violate the program's history
/// contract, which is a caller bug, not an engine difference.
std::vector<radio::SimulatorOptions> option_variants(const radio::Drip& drip,
                                                     std::uint64_t coin_seed) {
  const std::size_t window = std::max<std::size_t>(3, drip.history_window().value_or(0));
  std::vector<radio::SimulatorOptions> variants;
  for (const radio::ChannelModel model :
       {radio::ChannelModel::CollisionDetection, radio::ChannelModel::NoCollisionDetection}) {
    for (const radio::WakePolicy policy :
         {radio::WakePolicy::HearAll, radio::WakePolicy::SilentWake}) {
      for (const bool windowed : {false, true}) {
        radio::SimulatorOptions options;
        options.channel_model = model;
        options.wake_policy = policy;
        // 0 retains everything, even for drips that declare a window.
        options.history_window = windowed ? window : 0;
        options.coin_seed = coin_seed;
        variants.push_back(options);
      }
    }
  }
  return variants;
}

std::string describe(const radio::SimulatorOptions& options) {
  std::string out =
      options.channel_model == radio::ChannelModel::CollisionDetection ? "cd" : "nocd";
  out += options.wake_policy == radio::WakePolicy::HearAll ? "/hearall" : "/silentwake";
  out += options.history_window == std::size_t{0} ? "/full" : "/windowed";
  return out;
}

/// Runs every variant through both engines (fresh scratches) and asserts
/// bit-identity.
void expect_differential(const config::Configuration& configuration, const radio::Drip& drip,
                         std::uint64_t coin_seed, const std::string& what) {
  for (radio::SimulatorOptions options : option_variants(drip, coin_seed)) {
    radio::SimulatorScratch scalar_scratch;
    radio::SimulatorScratch bitset_scratch;
    options.engine = radio::SimulatorEngine::Scalar;
    const radio::RunResult scalar = radio::simulate(configuration, drip, options, scalar_scratch);
    options.engine = radio::SimulatorEngine::Bitset;
    const radio::RunResult bitset = radio::simulate(configuration, drip, options, bitset_scratch);
    expect_same_run(scalar, bitset, what + " [" + describe(options) + "]");
  }
}

/// A compiled canonical drip for `configuration` (robust mismatch policy, so
/// windowed runs that starve the program of history terminate cleanly
/// instead of asserting).
std::unique_ptr<core::CanonicalDrip> canonical_for(const config::Configuration& configuration,
                                                   radio::ChannelModel model) {
  return std::make_unique<core::CanonicalDrip>(core::make_schedule(configuration, model),
                                               core::MismatchPolicy::Robust);
}

config::Configuration random_configuration(support::Rng& rng) {
  const auto n = static_cast<graph::NodeId>(2 + rng.next() % 9);  // 2..10
  const double p = 0.15 + 0.1 * static_cast<double>(rng.next() % 8);
  const auto sigma = static_cast<config::Tag>(rng.next() % 7);
  graph::Graph graph = graph::gnp_connected(n, p, rng);
  if (sigma == 0) {
    return config::Configuration(std::move(graph),
                                 std::vector<config::Tag>(n, config::Tag{0}));
  }
  return config::random_tags_with_span(std::move(graph), sigma, rng);
}

// ---------------------------------------------------------------- exhaustive

TEST(SimulatorFast, ExhaustiveSmallConfigurationsBeacon) {
  // Every connected 3-node configuration with tags in [0, 2], and every
  // connected 4-node configuration with tags in [0, 1]: the beacon drip
  // fires early, so these runs are dense in forced wakeups and collisions.
  for (const auto& [n, tau] : std::vector<std::pair<graph::NodeId, config::Tag>>{{3, 2}, {4, 1}}) {
    const std::vector<engine::BatchJob> jobs = engine::exhaustive_jobs(n, tau);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const testkit::BeaconDrip beacon(1 + i % 3, /*payload=*/7, /*lifetime=*/6);
      expect_differential(jobs[i].configuration, beacon, /*coin_seed=*/i,
                          "exhaustive n=" + std::to_string(n) + " #" + std::to_string(i));
    }
  }
}

TEST(SimulatorFast, ExhaustiveSmallConfigurationsCanonical) {
  // The canonical DRIP over the full 3-node census: the protocol whose
  // listen_streak() drives the fast path's bulk skipping.
  const std::vector<engine::BatchJob> jobs = engine::exhaustive_jobs(3, 2);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (const radio::ChannelModel model :
         {radio::ChannelModel::CollisionDetection, radio::ChannelModel::NoCollisionDetection}) {
      const auto drip = canonical_for(jobs[i].configuration, model);
      expect_differential(jobs[i].configuration, *drip, /*coin_seed=*/i,
                          "exhaustive canonical #" + std::to_string(i));
    }
  }
}

// -------------------------------------------------------------- random fuzz

TEST(SimulatorFast, RandomConfigurationsFuzz) {
  // 10000 random configurations (n in [2, 10], random density, span in
  // [0, 6] including the all-equal-tags symmetric case), rotating through
  // the protocol zoo: beacons (collisions + forced wakeups), silence
  // (termination discipline), the coin-flipping randomized baseline (the
  // coin-seed cache), and the canonical DRIP (listen_streak bulk skips).
  // Each runs under all 8 option variants on both engines.
  constexpr std::size_t kConfigs = 10000;
  support::Rng rng(20260808);
  for (std::size_t i = 0; i < kConfigs; ++i) {
    const config::Configuration configuration = random_configuration(rng);
    const std::string what = "fuzz #" + std::to_string(i);
    switch (i % 16) {
      case 0: {
        // Canonical DRIP every 16th config (schedule compilation is the
        // expensive part, and the exhaustive census above already covers it
        // densely on small n).
        const auto drip =
            canonical_for(configuration, radio::ChannelModel::CollisionDetection);
        expect_differential(configuration, *drip, i, what + " canonical");
        break;
      }
      case 1: {
        const testkit::SilentDrip silent(2 + i % 5);
        expect_differential(configuration, silent, i, what + " silent");
        break;
      }
      case 2:
      case 3: {
        const baselines::RandomizedElection randomized(/*max_slots=*/64);
        expect_differential(configuration, randomized, i, what + " randomized");
        break;
      }
      default: {
        const testkit::BeaconDrip beacon(1 + i % 4, /*payload=*/1 + i % 3,
                                         /*lifetime=*/5 + i % 7);
        expect_differential(configuration, beacon, i, what + " beacon");
        break;
      }
    }
  }
}

// ------------------------------------------------------- horizon + fallback

TEST(SimulatorFast, HorizonGuardParity) {
  // The immortal drip never terminates: both engines must abort at the
  // horizon with identical truncated results.
  const config::Configuration configuration = config::staggered_path(5);
  const testkit::ImmortalDrip immortal;
  for (radio::SimulatorOptions options : option_variants(immortal, /*coin_seed=*/3)) {
    options.max_rounds = 50;
    radio::SimulatorScratch scalar_scratch;
    radio::SimulatorScratch bitset_scratch;
    options.engine = radio::SimulatorEngine::Scalar;
    const radio::RunResult scalar =
        radio::simulate(configuration, immortal, options, scalar_scratch);
    options.engine = radio::SimulatorEngine::Bitset;
    const radio::RunResult bitset =
        radio::simulate(configuration, immortal, options, bitset_scratch);
    EXPECT_FALSE(scalar.all_terminated);
    expect_same_run(scalar, bitset, "horizon [" + describe(options) + "]");
  }
}

TEST(SimulatorFast, TraceForcesScalarFallback) {
  // A trace sink pins the run to the scalar loop even under Bitset/Auto; the
  // recorded transmissions must match a plain scalar run.
  const config::Configuration configuration = config::staggered_path(4);
  const testkit::BeaconDrip beacon(1, 9, 5);

  testkit::TransmissionLog scalar_log;
  radio::SimulatorOptions options;
  options.engine = radio::SimulatorEngine::Scalar;
  options.trace = &scalar_log;
  const radio::RunResult scalar = radio::simulate(configuration, beacon, options);

  testkit::TransmissionLog bitset_log;
  options.engine = radio::SimulatorEngine::Bitset;
  options.trace = &bitset_log;
  const radio::RunResult bitset = radio::simulate(configuration, beacon, options);

  expect_same_run(scalar, bitset, "trace fallback");
  EXPECT_EQ(scalar_log.entries(), bitset_log.entries());
}

// ------------------------------------------------------------ scratch reuse

TEST(SimulatorFast, ScratchReuseStaysBitIdentical) {
  // One scratch driven through an interleaved sequence of configurations,
  // sizes, drips and seeds — every run must equal the same run on a fresh
  // scratch.  This is the engine-worker usage pattern (one scratch, many
  // jobs) plus the repeated-run pattern (same config twice in a row).
  support::Rng rng(99);
  std::vector<config::Configuration> configurations;
  for (int i = 0; i < 6; ++i) {
    configurations.push_back(random_configuration(rng));
  }
  radio::SimulatorScratch reused;
  for (const radio::SimulatorEngine engine :
       {radio::SimulatorEngine::Scalar, radio::SimulatorEngine::Bitset}) {
    int step = 0;
    for (const std::size_t index : {0u, 1u, 0u, 2u, 3u, 3u, 4u, 5u, 0u}) {
      const config::Configuration& configuration = configurations[index];
      const testkit::BeaconDrip beacon(1 + step % 3, 5, 6);
      radio::SimulatorOptions options;
      options.engine = engine;
      options.coin_seed = static_cast<std::uint64_t>(step);
      const radio::RunResult with_reuse = radio::simulate(configuration, beacon, options, reused);
      radio::SimulatorScratch fresh;
      const radio::RunResult with_fresh = radio::simulate(configuration, beacon, options, fresh);
      expect_same_run(with_fresh, with_reuse,
                      "scratch reuse step " + std::to_string(step) +
                          (engine == radio::SimulatorEngine::Scalar ? " scalar" : " bitset"));
      ++step;
    }
  }
}

// ------------------------------------------------------- keep_histories off

TEST(SimulatorFast, DroppedHistoriesPreserveEverythingElse) {
  // keep_histories = false empties the returned histories but must keep
  // history_length() and every other field identical, on both engines.
  support::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const config::Configuration configuration = random_configuration(rng);
    const testkit::BeaconDrip beacon(1 + i % 3, 2, 5 + i % 4);
    for (const radio::SimulatorEngine engine :
         {radio::SimulatorEngine::Scalar, radio::SimulatorEngine::Bitset}) {
      radio::SimulatorOptions options;
      options.engine = engine;
      const radio::RunResult kept = radio::simulate(configuration, beacon, options);
      options.keep_histories = false;
      const radio::RunResult dropped = radio::simulate(configuration, beacon, options);
      ASSERT_EQ(kept.nodes.size(), dropped.nodes.size());
      EXPECT_EQ(kept.rounds_executed, dropped.rounds_executed);
      EXPECT_EQ(kept.all_terminated, dropped.all_terminated);
      EXPECT_TRUE(kept.stats == dropped.stats);
      for (std::size_t v = 0; v < kept.nodes.size(); ++v) {
        EXPECT_TRUE(dropped.nodes[v].history.empty());
        EXPECT_EQ(kept.nodes[v].history_length(), dropped.nodes[v].history_length());
        EXPECT_EQ(kept.nodes[v].wake_round, dropped.nodes[v].wake_round);
        EXPECT_EQ(kept.nodes[v].forced_wake, dropped.nodes[v].forced_wake);
        EXPECT_EQ(kept.nodes[v].terminated, dropped.nodes[v].terminated);
        EXPECT_EQ(kept.nodes[v].done_round, dropped.nodes[v].done_round);
        EXPECT_EQ(kept.nodes[v].elected, dropped.nodes[v].elected);
      }
    }
  }
}

// ------------------------------------------------------------- batch engine

TEST(SimulatorFast, EngineModesProduceSameResultsAcrossThreadCounts) {
  // The engine layer: a mixed-protocol sweep through the scalar and
  // wavefront modes at 1, 2 and 8 worker threads (with and without the
  // schedule cache) must agree on every outcome and aggregate.
  const engine::WorkloadSpec workload = engine::parse_workload("random:n=8,p=0.3,sigma=3");
  const engine::CountedSweep sweep = workload.instantiate(
      /*seed=*/17,
      {core::ProtocolSpec::canonical(), core::ProtocolSpec::randomized()},
      {.count = 48});

  std::optional<engine::BatchReport> reference;
  for (const engine::EngineMode mode :
       {engine::EngineMode::Scalar, engine::EngineMode::Wavefront, engine::EngineMode::Auto}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const std::size_t cache : {std::size_t{0}, engine::ScheduleCache::kDefaultCapacity}) {
        engine::BatchRunner runner(
            {.threads = threads, .seed = 17, .cache_capacity = cache, .engine = mode});
        const engine::BatchReport report = runner.run(sweep.count, sweep.source);
        if (!reference) {
          reference = report;
          continue;
        }
        EXPECT_TRUE(engine::same_results(*reference, report))
            << "mode " << static_cast<int>(mode) << ", threads " << threads << ", cache "
            << cache;
      }
    }
  }
}

TEST(SimulatorFast, MutationSweepEngineParityAtN64) {
  // The E5 benchmark shape in miniature: single-tag mutations of an n=64
  // configuration with a large tag span, where the wavefront mode's bulk
  // skipping does almost all the work.  Scalar and wavefront reports must
  // carry identical results.
  support::Rng rng(4242);
  const config::Configuration base =
      config::random_tags_with_span(graph::gnp_connected(64, 0.1, rng), 256, rng);
  const std::vector<config::Configuration> neighbourhood =
      config::all_tag_mutations(base, base.span());
  std::vector<engine::BatchJob> jobs;
  for (std::size_t i = 0; i < neighbourhood.size() && jobs.size() < 12; i += 997) {
    jobs.push_back({neighbourhood[i], core::ProtocolSpec::canonical(), {}});
  }
  ASSERT_FALSE(jobs.empty());

  std::optional<engine::BatchReport> reference;
  for (const engine::EngineMode mode :
       {engine::EngineMode::Scalar, engine::EngineMode::Wavefront}) {
    engine::BatchRunner runner({.threads = 2,
                                .seed = 5,
                                .cache_capacity = engine::ScheduleCache::kDefaultCapacity,
                                .engine = mode});
    const engine::BatchReport report = runner.run(jobs);
    if (!reference) {
      reference = report;
    } else {
      EXPECT_TRUE(engine::same_results(*reference, report));
    }
  }
}

}  // namespace
