/// \file test_lowerbounds.cpp
/// The §4 negative results as executable experiments: Ω(n) on G_m
/// (Prop 4.1), Ω(σ) on H_m (Prop 4.3 / Lemma 4.2), no universal algorithm
/// (Prop 4.4), no distributed feasibility decision (Prop 4.5).

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/classifier.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "lowerbounds/comparator.hpp"
#include "lowerbounds/symmetry.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/simulator.hpp"

namespace {

using namespace arl;

radio::RunResult run_canonical_full(const config::Configuration& c) {
  const auto schedule = core::make_schedule(c);
  const core::CanonicalDrip drip(schedule);
  radio::SimulatorOptions options;
  options.history_window = 0;  // symmetry measurements need full histories
  return radio::simulate(c, drip, options);
}

// ------------------------------------------------------------ symmetry tools

TEST(Symmetry, DivergenceDetectsFirstDifferingEntry) {
  radio::NodeOutcome u;
  radio::NodeOutcome v;
  u.history = {radio::HistoryEntry::silence(), radio::HistoryEntry::silence(),
               radio::HistoryEntry::message(1)};
  v.history = {radio::HistoryEntry::silence(), radio::HistoryEntry::silence(),
               radio::HistoryEntry::collision()};
  EXPECT_EQ(lowerbounds::first_history_divergence(u, v), 2u);
  v.history[2] = radio::HistoryEntry::message(1);
  EXPECT_EQ(lowerbounds::first_history_divergence(u, v), std::nullopt);
}

// ------------------------------------------------------- Prop 4.1: Ω(n) on G_m

TEST(Prop41, MirrorNodesStaySymmetricForever) {
  // a_i and c_i (and b_i / b_{2m+2-i}) are mirror images; their histories
  // never diverge under the canonical DRIP, so only the centre can lead.
  const config::Tag m = 4;
  const radio::RunResult run = run_canonical_full(config::family_g(m));
  const graph::NodeId n = 4 * m + 1;
  for (graph::NodeId i = 0; i < n / 2; ++i) {
    const graph::NodeId mirror = n - 1 - i;
    EXPECT_EQ(lowerbounds::first_history_divergence(run.nodes[i], run.nodes[mirror]),
              std::nullopt)
        << "nodes " << i << " and " << mirror;
  }
}

TEST(Prop41, CentreUniquenessTakesLinearTime) {
  // The proof shows b_m, b_{m+1}, b_{m+2} share histories through local
  // round m-2, so the centre cannot be distinguishable earlier.  Measure the
  // round at which the centre's history becomes unique: it must grow
  // (at least) linearly in m.
  config::Round previous = 0;
  for (const config::Tag m : {2u, 3u, 4u, 5u, 6u}) {
    const radio::RunResult run = run_canonical_full(config::family_g(m));
    const auto unique_at = lowerbounds::uniqueness_round(run, config::family_g_center(m));
    ASSERT_TRUE(unique_at.has_value()) << "m=" << m;
    EXPECT_GE(*unique_at, m - 1) << "m=" << m;  // Ω(n) with n = 4m+1
    EXPECT_GT(*unique_at, previous);            // strictly growing in m
    previous = *unique_at;
  }
}

TEST(Prop41, NeighboursOfCentreShareHistoriesThroughRoundM) {
  // The mechanism of the proof: b_m, b_{m+1}, b_{m+2} have equal histories
  // in all local rounds t < m-1.
  const config::Tag m = 5;
  const radio::RunResult run = run_canonical_full(config::family_g(m));
  const graph::NodeId centre = config::family_g_center(m);
  for (const graph::NodeId other : {centre - 1, centre + 1}) {
    const auto divergence =
        lowerbounds::first_history_divergence(run.nodes[centre], run.nodes[other]);
    ASSERT_TRUE(divergence.has_value());
    EXPECT_GE(*divergence, m - 1);
  }
}

// ------------------------------------------------- Prop 4.3: Ω(σ) on H_m

TEST(Prop43, ElectionTimeGrowsWithSpan) {
  // Lemma 4.2: every leader election algorithm on H_m needs at least m
  // (global) rounds.  Measured on the canonical DRIP:
  //  - the run's global completion exceeds m;
  //  - the leader's history becomes unique only at global round m+2 (node a
  //    wakes at m and first hears b two rounds later);
  //  - the symmetric pair b/c separates only at local round 2m+2 (when a's
  //    transmission reaches b) — the Ω(m) information bottleneck.
  for (const config::Tag m : {1u, 3u, 6u, 10u}) {
    const config::Configuration c = config::family_h(m);
    const radio::RunResult full = run_canonical_full(c);
    ASSERT_TRUE(full.all_terminated);
    EXPECT_GE(full.rounds_executed, m);

    const auto unique_at = lowerbounds::uniqueness_round(full, 0);  // node a leads
    ASSERT_TRUE(unique_at.has_value());
    EXPECT_EQ(c.tag(0) + *unique_at, m + 2) << "m=" << m;  // global uniqueness round

    const auto bc = lowerbounds::first_history_divergence(full.nodes[1], full.nodes[2]);
    ASSERT_TRUE(bc.has_value());
    EXPECT_GE(*bc, 2 * m + 2) << "m=" << m;
  }
}

// ---------------------------------------------- Prop 4.4: no universal algorithm

TEST(Prop44, BeepCandidateWorksSomewhere) {
  // The candidate is not a strawman: it solves leader election on a two-node
  // path with far-apart wakeup tags.
  const config::Configuration c(graph::path(2), {0, 9});
  const lowerbounds::BeepCandidate candidate(2, 12);
  const radio::RunResult run = radio::simulate(c, candidate);
  ASSERT_TRUE(run.all_terminated);
  EXPECT_EQ(run.leaders().size(), 1u);
}

TEST(Prop44, EveryBeepCandidateBreaksOnFamilyH) {
  // Proposition 4.4's prediction: a candidate whose tag-0 nodes first
  // transmit in global round t fails on H_{t+1} (and, for this family, on
  // every member — the two tag-0 nodes are woken together and stay
  // symmetric).  wait=w ⇒ first transmission at global w+1.
  for (const config::Round wait : {0u, 1u, 2u, 4u, 7u}) {
    const lowerbounds::BeepCandidate candidate(wait, wait + 8);
    const lowerbounds::UniversalProbe probe = lowerbounds::probe_universal(candidate, wait + 4);
    EXPECT_EQ(probe.first_tx_round, wait + 1) << "wait=" << wait;
    ASSERT_TRUE(probe.breaking_m.has_value()) << "wait=" << wait;
    EXPECT_LE(*probe.breaking_m, static_cast<config::Tag>(wait + 2));
    EXPECT_EQ(probe.failure_mode, "2 leaders");
  }
}

TEST(Prop44, SymmetryIsTheFailureMechanism) {
  // On the breaking configuration, b/c and a/d end with identical histories
  // — exactly the indistinguishability the proof constructs.
  const config::Round wait = 3;
  const lowerbounds::BeepCandidate candidate(wait, wait + 8);
  const config::Configuration h = config::family_h(wait + 2);  // m = t+1, t = wait+1
  radio::SimulatorOptions options;
  options.history_window = 0;
  const radio::RunResult run = radio::simulate(h, candidate, options);
  ASSERT_TRUE(run.all_terminated);
  EXPECT_EQ(lowerbounds::first_history_divergence(run.nodes[1], run.nodes[2]), std::nullopt);
  EXPECT_EQ(lowerbounds::first_history_divergence(run.nodes[0], run.nodes[3]), std::nullopt);
}

TEST(Prop44, CanonicalScheduleReusedUniversallyAlsoBreaks) {
  // The canonical DRIP compiled for H_2 is a *dedicated* algorithm; reusing
  // it as if it were universal must fail on some other H_m.
  const auto schedule = core::make_schedule(config::family_h(2));
  const core::CanonicalDrip candidate(schedule, core::MismatchPolicy::Robust);
  const lowerbounds::UniversalProbe probe = lowerbounds::probe_universal(candidate, 6);
  ASSERT_TRUE(probe.breaking_m.has_value());
  EXPECT_NE(*probe.breaking_m, 2u);  // it does work on its own configuration
}

// ------------------------------------- Prop 4.5: no distributed decision

TEST(Prop45, TranscriptsOnHAndSAreIdentical) {
  // For a candidate whose tag-0 nodes first transmit in global round t, the
  // executions on H_{t+1} (feasible) and S_{t+1} (infeasible) are
  // indistinguishable at every node — no protocol output can decide
  // feasibility.
  for (const config::Round wait : {0u, 2u, 5u}) {
    const lowerbounds::BeepCandidate candidate(wait, wait + 9);
    const config::Round t = wait + 1;
    const config::Configuration h = config::family_h(t + 1);
    const config::Configuration s = config::family_s(t + 1);

    // Ground truth differs...
    EXPECT_TRUE(core::Classifier{}.run(h).feasible());
    EXPECT_FALSE(core::Classifier{}.run(s).feasible());

    // ...but no node can tell the runs apart.
    const lowerbounds::ComparisonResult comparison =
        lowerbounds::compare_executions(h, s, candidate);
    EXPECT_TRUE(comparison.identical) << "wait=" << wait << " diverged at node "
                                      << comparison.divergent_node.value_or(99) << " ("
                                      << comparison.difference << ")";
  }
}

TEST(Prop45, ComparatorDetectsRealDifferences) {
  // Sanity: the comparator is not trivially returning "identical" — runs on
  // genuinely different configurations do diverge.
  const lowerbounds::BeepCandidate candidate(1, 9);
  const lowerbounds::ComparisonResult comparison =
      lowerbounds::compare_executions(config::family_h(1), config::family_h(5), candidate);
  EXPECT_FALSE(comparison.identical);
  EXPECT_TRUE(comparison.divergent_node.has_value());
}

TEST(Prop45, RequiresEqualSizes) {
  const lowerbounds::BeepCandidate candidate(1, 9);
  const config::Configuration small(graph::path(2), {0, 1});
  EXPECT_THROW((void)lowerbounds::compare_executions(small, config::family_h(2), candidate),
               support::ContractViolation);
}

}  // namespace
