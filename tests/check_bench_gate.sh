#!/usr/bin/env bash
# Self-test for tools/bench_gate: the gating policy (speedup tolerance,
# informational suffixes, exact-match fields, missing/new keys) and the exit
# code contract, driven through real snapshot files.
set -u

GATE="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

write() {  # write FILE then lines on stdin
  cat > "$TMP/$1"
}

write committed.json <<'EOF'
{
  "bench": "E5",
  "candidates": 32,
  "identical_outcomes": true,
  "wavefront_speedup": 6.0,
  "scalar_cold_wall_ms": 100.0,
  "wavefront_steady_jobs_per_s": 800.0
}
EOF

# 1. Identical snapshots pass.
cp "$TMP/committed.json" "$TMP/fresh.json"
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" > /dev/null \
  || fail "identical snapshots should pass"

# 2. Speedup within tolerance passes; below tolerance fails with exit 1.
write fresh.json <<'EOF'
{
  "bench": "E5",
  "candidates": 32,
  "identical_outcomes": true,
  "wavefront_speedup": 3.5,
  "scalar_cold_wall_ms": 220.0,
  "wavefront_steady_jobs_per_s": 500.0
}
EOF
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" --tolerance=0.5 > /dev/null \
  || fail "speedup 3.5 vs 6.0 should pass at tolerance 0.5"
out="$("$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" --tolerance=0.1)"
[ $? -eq 1 ] || fail "speedup 3.5 vs 6.0 should fail at tolerance 0.1"
echo "$out" | grep -q "REGRESSED" || fail "regression verdict should be printed"

# 3. Informational fields (_ms / _per_s) never gate, however far they move.
write fresh.json <<'EOF'
{
  "bench": "E5",
  "candidates": 32,
  "identical_outcomes": true,
  "wavefront_speedup": 6.0,
  "scalar_cold_wall_ms": 9999.0,
  "wavefront_steady_jobs_per_s": 1.0
}
EOF
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" > /dev/null \
  || fail "informational fields must not gate"

# 4. Exact-match fields fail on any drift.
write fresh.json <<'EOF'
{
  "bench": "E5",
  "candidates": 33,
  "identical_outcomes": true,
  "wavefront_speedup": 6.0,
  "scalar_cold_wall_ms": 100.0,
  "wavefront_steady_jobs_per_s": 800.0
}
EOF
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" > /dev/null
[ $? -eq 1 ] || fail "candidates 33 vs 32 should fail exact match"

# 5. A bool flip fails exact match (identical_outcomes is the correctness bit).
write fresh.json <<'EOF'
{
  "bench": "E5",
  "candidates": 32,
  "identical_outcomes": false,
  "wavefront_speedup": 6.0,
  "scalar_cold_wall_ms": 100.0,
  "wavefront_steady_jobs_per_s": 800.0
}
EOF
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" > /dev/null
[ $? -eq 1 ] || fail "identical_outcomes=false should fail the gate"

# 6. Missing and extra keys both fail.
write fresh.json <<'EOF'
{
  "bench": "E5",
  "candidates": 32,
  "identical_outcomes": true,
  "wavefront_speedup": 6.0,
  "scalar_cold_wall_ms": 100.0
}
EOF
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" > /dev/null
[ $? -eq 1 ] || fail "a dropped key should fail the gate"
write fresh.json <<'EOF'
{
  "bench": "E5",
  "candidates": 32,
  "identical_outcomes": true,
  "wavefront_speedup": 6.0,
  "scalar_cold_wall_ms": 100.0,
  "wavefront_steady_jobs_per_s": 800.0,
  "surprise": 1
}
EOF
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/fresh.json" > /dev/null
[ $? -eq 1 ] || fail "an extra key should fail the gate"

# 7. Usage and parse errors exit 2.
"$GATE" > /dev/null 2>&1
[ $? -eq 2 ] || fail "missing arguments should exit 2"
"$GATE" --committed="$TMP/absent.json" --fresh="$TMP/committed.json" > /dev/null 2>&1
[ $? -eq 2 ] || fail "unreadable file should exit 2"
echo 'not json' > "$TMP/bad.json"
"$GATE" --committed="$TMP/bad.json" --fresh="$TMP/committed.json" > /dev/null 2>&1
[ $? -eq 2 ] || fail "malformed snapshot should exit 2"
"$GATE" --committed="$TMP/committed.json" --fresh="$TMP/committed.json" --tolerance=1.5 > /dev/null 2>&1
[ $? -eq 2 ] || fail "out-of-range tolerance should exit 2"

echo "bench_gate selftest: all checks passed"
