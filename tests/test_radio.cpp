/// \file test_radio.cpp
/// Simulator semantics tests: channel resolution, wakeup rules, termination,
/// histories, windowing, statistics, tracing — the radio model of §1.1/§2.

#include <gtest/gtest.h>

#include "config/configuration.hpp"
#include "config/families.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "radio/simulator.hpp"
#include "support/assert.hpp"

namespace {

using namespace arl;
using arl::support::ContractViolation;
using arl::testkit::BeaconDrip;
using arl::testkit::ImmortalDrip;
using arl::testkit::SilentDrip;
using arl::testkit::TransmissionLog;

// --------------------------------------------------------- channel semantics

TEST(Simulator, CleanMessageIsHeard) {
  // Star: hub 0 and two leaves, everyone awake at 0.  Hub beacons in local
  // round 2; leaves listen and must hear it.
  const config::Configuration c(graph::star(3), {0, 0, 0});
  // Hub transmits at round 2; leaves are silent listeners.
  class HubOnly final : public radio::Drip {
   public:
    std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv& env) const override {
      const bool hub = env.label.has_value() && *env.label == 1;
      if (hub) {
        return BeaconDrip(2, 77, 5).instantiate(env);
      }
      return SilentDrip(5).instantiate(env);
    }
    std::string name() const override { return "hub-only"; }
  };
  radio::SimulatorOptions options;
  options.labels = {1, 0, 0};
  const radio::RunResult run = radio::simulate(c, HubOnly{}, options);

  ASSERT_TRUE(run.all_terminated);
  // Leaves' local round 2 entry (H[2]) is the hub's message.
  for (graph::NodeId leaf : {1u, 2u}) {
    EXPECT_TRUE(run.nodes[leaf].history[2].is_message());
    EXPECT_EQ(run.nodes[leaf].history[2].payload(), 77u);
  }
  // The transmitter hears nothing in its own transmission round.
  EXPECT_TRUE(run.nodes[0].history[2].is_silence());
  EXPECT_EQ(run.stats.transmissions, 1u);
  EXPECT_EQ(run.stats.clean_receptions, 2u);
}

TEST(Simulator, TwoTransmittersMakeNoise) {
  // Path 1-0-2: both leaves transmit in the same round; the centre hears (∗).
  const config::Configuration c(graph::star(3), {0, 0, 0});
  class LeavesBeacon final : public radio::Drip {
   public:
    std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv& env) const override {
      const bool leaf = env.label.has_value() && *env.label == 1;
      if (leaf) {
        return BeaconDrip(2, 9, 5).instantiate(env);
      }
      return SilentDrip(5).instantiate(env);
    }
    std::string name() const override { return "leaves-beacon"; }
  };
  radio::SimulatorOptions options;
  options.labels = {0, 1, 1};
  const radio::RunResult run = radio::simulate(c, LeavesBeacon{}, options);

  EXPECT_TRUE(run.nodes[0].history[2].is_collision());
  EXPECT_EQ(run.stats.collisions_heard, 1u);
  EXPECT_EQ(run.stats.clean_receptions, 0u);
  // The two transmitters do not hear each other (they only border the hub).
  EXPECT_TRUE(run.nodes[1].history[2].is_silence());
  EXPECT_TRUE(run.nodes[2].history[2].is_silence());
}

TEST(Simulator, SimultaneousTransmittersNeverHearEachOther) {
  // Two adjacent nodes transmit in the same round: both record (∅) — the
  // model's "a transmitting node does not hear anything".
  const config::Configuration c(graph::path(2), {0, 0});
  const radio::RunResult run = radio::simulate(c, BeaconDrip(1, 5, 4));
  EXPECT_TRUE(run.nodes[0].history[1].is_silence());
  EXPECT_TRUE(run.nodes[1].history[1].is_silence());
  EXPECT_EQ(run.stats.clean_receptions, 0u);
}

// --------------------------------------------------------------- wakeup rules

TEST(Simulator, SpontaneousWakeupAtTag) {
  const config::Configuration c(graph::path(2), {0, 4});
  const radio::RunResult run = radio::simulate(c, SilentDrip(3));
  EXPECT_EQ(run.nodes[0].wake_round, 0u);
  EXPECT_EQ(run.nodes[1].wake_round, 4u);
  EXPECT_FALSE(run.nodes[0].forced_wake);
  EXPECT_FALSE(run.nodes[1].forced_wake);
  EXPECT_TRUE(run.nodes[1].history[0].is_silence());
}

TEST(Simulator, CleanMessageForcesWakeup) {
  // Node 0 (tag 0) beacons in its local round 2 == global round 2; node 1
  // (tag 10) is woken early with H[0] = (M).
  const config::Configuration c(graph::path(2), {0, 10});
  const radio::RunResult run = radio::simulate(c, BeaconDrip(2, 5, 6));
  EXPECT_EQ(run.nodes[1].wake_round, 2u);
  EXPECT_TRUE(run.nodes[1].forced_wake);
  ASSERT_FALSE(run.nodes[1].history.empty());
  EXPECT_TRUE(run.nodes[1].history[0].is_message());
  EXPECT_EQ(run.nodes[1].history[0].payload(), 5u);
  EXPECT_EQ(run.stats.forced_wakeups, 1u);
}

TEST(Simulator, NoiseDoesNotWakeASleeper) {
  // Path 0-1-2 with ends awake (tag 0) and centre asleep until 10.  Both
  // ends transmit in global round 2: the centre experiences a collision,
  // which is NOT a message, so it keeps sleeping until its tag.
  const config::Configuration c(graph::path(3), {0, 10, 0});
  const radio::RunResult run = radio::simulate(c, BeaconDrip(2, 5, 12));
  EXPECT_EQ(run.nodes[1].wake_round, 10u);
  EXPECT_FALSE(run.nodes[1].forced_wake);
  EXPECT_EQ(run.stats.forced_wakeups, 0u);
}

TEST(Simulator, MessageAtExactTagRoundCountsAsForced) {
  // The paper defines forced wakeup for r <= t_v; receiving in round
  // r == t_v records H[0] = (M).
  const config::Configuration c(graph::path(2), {0, 3});
  const radio::RunResult run = radio::simulate(c, BeaconDrip(3, 8, 6));
  EXPECT_EQ(run.nodes[1].wake_round, 3u);
  EXPECT_TRUE(run.nodes[1].forced_wake);
  EXPECT_TRUE(run.nodes[1].history[0].is_message());
}

TEST(Simulator, WakeRoundHearingPolicy) {
  // Collision exactly at a node's tag round: HearAll records (∗),
  // SilentWake records (∅).  Star hub asleep until 2; both leaves beacon in
  // global round 2.
  const config::Configuration c(graph::star(3), {2, 0, 0});
  for (const auto policy : {radio::WakePolicy::HearAll, radio::WakePolicy::SilentWake}) {
    radio::SimulatorOptions options;
    options.wake_policy = policy;
    const radio::RunResult run = radio::simulate(c, BeaconDrip(2, 5, 8), options);
    EXPECT_EQ(run.nodes[0].wake_round, 2u);
    EXPECT_FALSE(run.nodes[0].forced_wake);
    if (policy == radio::WakePolicy::HearAll) {
      EXPECT_TRUE(run.nodes[0].history[0].is_collision());
    } else {
      EXPECT_TRUE(run.nodes[0].history[0].is_silence());
    }
  }
}

TEST(Simulator, NodeNeverActsInItsWakeRound) {
  // BeaconDrip fires in local round 1, which is one global round after the
  // tag — a node cannot transmit in the round it wakes.
  const config::Configuration c(graph::path(2), {0, 0});
  TransmissionLog log;
  radio::SimulatorOptions options;
  options.trace = &log;
  (void)radio::simulate(c, BeaconDrip(1, 5, 3), options);
  ASSERT_FALSE(log.entries().empty());
  EXPECT_EQ(log.first_round(), 1u);  // tag 0 + local round 1
}

// ------------------------------------------------------ termination behaviour

TEST(Simulator, TerminationIsRecordedWithHistoryEntry) {
  const config::Configuration c(graph::path(2), {0, 0});
  const radio::RunResult run = radio::simulate(c, SilentDrip(4));
  for (const auto& node : run.nodes) {
    EXPECT_TRUE(node.terminated);
    EXPECT_EQ(node.done_round, 5u);  // first i with terminate = lifetime + 1
    // H[0..done] recorded: done+1 entries.
    EXPECT_EQ(node.history.size(), 6u);
  }
  EXPECT_TRUE(run.all_terminated);
}

TEST(Simulator, HorizonGuardStopsNonTerminatingProtocols) {
  const config::Configuration c(graph::path(2), {0, 0});
  radio::SimulatorOptions options;
  options.max_rounds = 50;
  const radio::RunResult run = radio::simulate(c, ImmortalDrip{}, options);
  EXPECT_FALSE(run.all_terminated);
  EXPECT_EQ(run.rounds_executed, 50u);
  EXPECT_FALSE(run.nodes[0].terminated);
}

TEST(Simulator, RunEndsWhenAllNodesTerminate) {
  const config::Configuration c(graph::path(3), {0, 2, 5});
  const radio::RunResult run = radio::simulate(c, SilentDrip(3));
  EXPECT_TRUE(run.all_terminated);
  // Last waker (tag 5) terminates at local 4 = global 9; the loop runs
  // through that round.
  EXPECT_EQ(run.rounds_executed, 10u);
}

// --------------------------------------------------------- history windowing

TEST(Simulator, WindowedHistoryKeepsSuffixOnly) {
  const config::Configuration c(graph::path(2), {0, 0});
  radio::SimulatorOptions options;
  options.history_window = 3;
  const radio::RunResult run = radio::simulate(c, SilentDrip(20), options);
  for (const auto& node : run.nodes) {
    EXPECT_EQ(node.history_length(), 22u);  // total recorded is unchanged
    EXPECT_LE(node.history.size(), 2u * 3u);  // suffix retention
    EXPECT_EQ(node.history_dropped + node.history.size(), 22u);
  }
}

TEST(Simulator, WindowingDoesNotChangeBehaviour) {
  const config::Configuration c = config::family_h(3);
  const radio::RunResult full = radio::simulate(c, testkit::BeaconDrip(2, 5, 9));
  radio::SimulatorOptions options;
  options.history_window = 2;
  const radio::RunResult windowed = radio::simulate(c, testkit::BeaconDrip(2, 5, 9), options);
  ASSERT_EQ(full.nodes.size(), windowed.nodes.size());
  for (std::size_t v = 0; v < full.nodes.size(); ++v) {
    EXPECT_EQ(full.nodes[v].wake_round, windowed.nodes[v].wake_round);
    EXPECT_EQ(full.nodes[v].done_round, windowed.nodes[v].done_round);
    EXPECT_EQ(full.nodes[v].history_length(), windowed.nodes[v].history_length());
  }
  EXPECT_EQ(full.stats.transmissions, windowed.stats.transmissions);
}

TEST(HistoryView, OutOfWindowAccessThrows) {
  radio::History kept{radio::HistoryEntry::silence(), radio::HistoryEntry::collision()};
  const radio::HistoryView view(kept, 5);  // entries 5 and 6 retained
  EXPECT_EQ(view.length(), 7u);
  EXPECT_EQ(view.first_kept(), 5u);
  EXPECT_NO_THROW((void)view.entry(5));
  EXPECT_NO_THROW((void)view.entry(6));
  EXPECT_THROW((void)view.entry(4), ContractViolation);
  EXPECT_THROW((void)view.entry(7), ContractViolation);
  EXPECT_TRUE(view.last().is_collision());
}

// ----------------------------------------------------------- labels and env

TEST(Simulator, LabelSizeMismatchIsRejected) {
  const config::Configuration c(graph::path(3), {0, 0, 0});
  const SilentDrip drip(1);
  radio::SimulatorOptions options;
  options.labels = {1, 2};  // three nodes, two labels
  EXPECT_THROW((void)radio::simulate(c, drip, options), ContractViolation);
}

TEST(Simulator, CoinSeedsDifferAcrossNodesAndRepeatAcrossRuns) {
  // A drip that transmits its coin seed (mod small prime) as a payload lets
  // the test observe the seeds through histories.
  class SeedEcho final : public radio::Drip {
   public:
    std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv& env) const override {
      class Program final : public radio::NodeProgram {
       public:
        explicit Program(std::uint64_t seed) : seed_(seed) {}
        radio::Action decide(config::Round i, const radio::HistoryView&) override {
          if (i == 1) {
            return radio::Action::transmit(seed_);
          }
          return radio::Action::terminate();
        }

       private:
        std::uint64_t seed_;
      };
      return std::make_unique<Program>(env.coin_seed);
    }
    std::string name() const override { return "seed-echo"; }
  };

  // Star with staggered leaves so each transmission is clean at the hub.
  const config::Configuration c(graph::star(3), {0, 0, 4});
  radio::SimulatorOptions options;
  options.coin_seed = 99;
  const radio::RunResult first = radio::simulate(c, SeedEcho{}, options);
  const radio::RunResult second = radio::simulate(c, SeedEcho{}, options);
  const auto payload_of = [](const radio::RunResult& run, graph::NodeId v) {
    for (const auto& entry : run.nodes[v].history) {
      if (entry.is_message()) {
        return entry.payload();
      }
    }
    return radio::Message{0};
  };
  // Leaf 2 transmits alone at global 5; the hub (long gone)... keep it
  // simple: node 1's seed reaches node 0 cleanly at round 1? Node 1 and 2
  // both... node 2 sleeps until 4, so round 1 has only node 1 transmitting
  // among awake nodes — wait, node 0 also transmits at round 1.  Check that
  // node 2 (asleep at round 1) was force-woken by a collision-free signal:
  // nodes 0 and 1 transmit simultaneously and node 2 neighbours only node 0,
  // so node 2 hears node 0's seed cleanly.
  EXPECT_EQ(payload_of(first, 2), payload_of(second, 2));  // reproducible
  EXPECT_NE(payload_of(first, 2), 0u);
}

// ----------------------------------------------------------------- tracing

TEST(Simulator, TraceSinkSeesWakesActionsReceptions) {
  class CountingSink final : public radio::TraceSink {
   public:
    int wakes = 0;
    int actions = 0;
    int rounds = 0;
    void on_round_begin(config::Round) override { ++rounds; }
    void on_wake(graph::NodeId, config::Round, bool, radio::HistoryEntry) override { ++wakes; }
    void on_action(graph::NodeId, config::Round, config::Round, const radio::Action&) override {
      ++actions;
    }
  };
  const config::Configuration c(graph::path(2), {0, 3});
  CountingSink sink;
  radio::SimulatorOptions options;
  options.trace = &sink;
  const radio::RunResult run = radio::simulate(c, SilentDrip(2), options);
  EXPECT_TRUE(run.all_terminated);
  EXPECT_EQ(sink.wakes, 2);
  EXPECT_GT(sink.actions, 0);
  EXPECT_GT(sink.rounds, 0);
}

// ----------------------------------------------------------------- leaders

TEST(RunResult, LeadersCollectsElectedNodes) {
  // A drip that elects iff its label is 7.
  class ElectSeven final : public radio::Drip {
   public:
    std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv& env) const override {
      class Program final : public radio::NodeProgram {
       public:
        explicit Program(bool win) : win_(win) {}
        radio::Action decide(config::Round, const radio::HistoryView&) override {
          return radio::Action::terminate();
        }
        bool elected() const override { return win_; }

       private:
        bool win_;
      };
      return std::make_unique<Program>(env.label == 7u);
    }
    std::string name() const override { return "elect-seven"; }
  };
  const config::Configuration c(graph::path(3), {0, 0, 0});
  radio::SimulatorOptions options;
  options.labels = {3, 7, 1};
  const radio::RunResult run = radio::simulate(c, ElectSeven{}, options);
  EXPECT_EQ(run.leaders(), (std::vector<graph::NodeId>{1}));
}

}  // namespace
