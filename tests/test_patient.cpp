/// \file test_patient.cpp
/// The patience transformation (Lemma 3.12): wrapped protocols transmit
/// nothing in global rounds 0..σ, every node wakes spontaneously (Claim 1),
/// and the inner protocol's behaviour — including the decision — is exactly
/// preserved on the shifted history (Claim 2).

#include <gtest/gtest.h>

#include "config/families.hpp"
#include "core/canonical_drip.hpp"
#include "core/patient.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "lowerbounds/universal.hpp"
#include "radio/simulator.hpp"

namespace {

using namespace arl;
using arl::testkit::TransmissionLog;

TEST(PatientWrapper, WrappedProtocolIsPatient) {
  // BeepCandidate(wait=0) transmits in its very first local round — about as
  // impatient as a protocol gets.  Wrapped for σ, it must stay silent
  // through global rounds 0..σ.
  const config::Configuration c = config::staggered_path(5);  // σ = 4
  const auto inner = std::make_shared<lowerbounds::BeepCandidate>(0, 8);
  const core::PatientWrapper wrapped(inner, c.span());

  TransmissionLog log;
  radio::SimulatorOptions options;
  options.trace = &log;
  const radio::RunResult run = radio::simulate(c, wrapped, options);
  ASSERT_TRUE(run.all_terminated);
  ASSERT_TRUE(log.first_round().has_value());
  EXPECT_GT(*log.first_round(), c.span());
  for (graph::NodeId v = 0; v < c.size(); ++v) {
    EXPECT_FALSE(run.nodes[v].forced_wake);  // Claim 1
    EXPECT_EQ(run.nodes[v].wake_round, c.tag(v));
  }
}

TEST(PatientWrapper, PreservesElectionOutcome) {
  // A two-node path with far-apart tags: the bare BeepCandidate elects the
  // early riser.  The wrapped protocol must elect the same node.
  const config::Configuration c(graph::path(2), {0, 9});
  const auto inner = std::make_shared<lowerbounds::BeepCandidate>(2, 10);

  const radio::RunResult bare = radio::simulate(c, *inner);
  ASSERT_TRUE(bare.all_terminated);
  ASSERT_EQ(bare.leaders().size(), 1u);

  const core::PatientWrapper wrapped(inner, c.span());
  const radio::RunResult patient = radio::simulate(c, wrapped);
  ASSERT_TRUE(patient.all_terminated);
  EXPECT_EQ(patient.leaders(), bare.leaders());
}

TEST(PatientWrapper, InnerHistoryIsTheSuffixOfTheOuter) {
  // Claim 2's mechanism, observed through termination rounds: the wrapped
  // node terminates exactly s_w rounds after the bare one would have, where
  // s_w = min(σ, rcv_w).
  const config::Configuration c(graph::path(2), {0, 9});
  const auto inner = std::make_shared<lowerbounds::BeepCandidate>(2, 10);
  const radio::RunResult bare = radio::simulate(c, *inner);
  const core::PatientWrapper wrapped(inner, c.span());
  const radio::RunResult patient = radio::simulate(c, wrapped);

  // Node 0 (tag 0, never hears anything before its timeout): s_0 = σ = 9.
  EXPECT_EQ(patient.nodes[0].done_round, bare.nodes[0].done_round + 9);
  // Node 1: in the bare run it is woken by node 0's transmission (global
  // round 3 < tag 9); in the patient run it wakes at 9 and receives the
  // (delayed) transmission at global 12, i.e. local round 3, so s_1 = 3.
  EXPECT_TRUE(bare.nodes[1].forced_wake);
  EXPECT_FALSE(patient.nodes[1].forced_wake);
  EXPECT_EQ(patient.nodes[1].done_round, bare.nodes[1].done_round + 3);
}

TEST(PatientWrapper, WrappingTheCanonicalDripChangesNothingObservable) {
  // The canonical DRIP is already patient; the wrapper adds a σ-round
  // listening prefix but must preserve the elected leader.
  const config::Configuration c = config::family_h(3);
  const auto schedule = core::make_schedule(c);
  const auto inner = std::make_shared<core::CanonicalDrip>(schedule);
  const radio::RunResult bare = radio::simulate(c, *inner);

  const core::PatientWrapper wrapped(inner, c.span());
  const radio::RunResult patient = radio::simulate(c, wrapped);
  ASSERT_TRUE(patient.all_terminated);
  EXPECT_EQ(patient.leaders(), bare.leaders());
  // Every node defers by exactly σ (no messages arrive during the window,
  // because the inner protocol is itself patient).
  for (graph::NodeId v = 0; v < c.size(); ++v) {
    EXPECT_EQ(patient.nodes[v].done_round, bare.nodes[v].done_round + c.span());
  }
}

TEST(PatientWrapper, ForcedWakeupSimulationDeliversTheMessage) {
  // The inner program's H[0] must be the message that would have woken it.
  // EchoProbe records its H[0] kind by transmitting 1 (silence) or the
  // received payload, one round after start; the test reads it off the
  // neighbour's history.
  class EchoProbe final : public radio::Drip {
   public:
    std::unique_ptr<radio::NodeProgram> instantiate(const radio::NodeEnv&) const override {
      class Program final : public radio::NodeProgram {
       public:
        radio::Action decide(config::Round i, const radio::HistoryView& h) override {
          if (i == 1) {
            return radio::Action::transmit(h.entry(0).is_message() ? h.entry(0).payload() : 1);
          }
          if (i <= 4) {
            return radio::Action::listen();  // stay up long enough to hear echoes
          }
          return radio::Action::terminate();
        }
      };
      return std::make_unique<Program>();
    }
    std::string name() const override { return "echo-probe"; }
  };

  // Bare on {0, 9}: node 0 transmits payload 1 at global 1, forcing node 1
  // awake with H[0] = (m1); node 1 then echoes payload 1.
  const config::Configuration c(graph::path(2), {0, 9});
  const auto inner = std::make_shared<EchoProbe>();
  const core::PatientWrapper wrapped(inner, c.span());
  radio::SimulatorOptions options;
  options.history_window = 0;
  const radio::RunResult run = radio::simulate(c, wrapped, options);
  ASSERT_TRUE(run.all_terminated);

  // In the patient run: node 0 waits σ=9 rounds, transmits 1 at local 10
  // (global 10).  Node 1 (awake since 9) receives it at local 1 < σ, so its
  // inner program starts with H[0] = (m1) and echoes payload 1 at local 2.
  bool node0_heard_echo = false;
  for (const auto& entry : run.nodes[0].history) {
    if (entry.is_message()) {
      EXPECT_EQ(entry.payload(), 1u);
      node0_heard_echo = true;
    }
  }
  EXPECT_TRUE(node0_heard_echo);
}

}  // namespace
