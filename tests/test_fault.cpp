/// \file test_fault.cpp
/// The fault subsystem's contract (fault/fault.hpp): every spec round-trips
/// through its registry name and digests distinctly; malformed specs are
/// rejected, never guessed at; inert parameterizations run the exact
/// unfaulted code path (drop:0 is bit-identical to none); and faulted
/// batches stay deterministic across thread counts, shard shapes and
/// engine modes — the same invariances the unfaulted engine guarantees.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "config/families.hpp"
#include "core/election.hpp"
#include "core/protocol.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "helpers.hpp"
#include "radio/simulator.hpp"
#include "support/assert.hpp"

namespace {

using namespace arl;

// ------------------------------------------------------------ spec identity

/// Representative specs across every kind, default and non-default
/// parameters alike — the set the identity suites quantify over.
std::vector<fault::FaultSpec> representative_specs() {
  return {
      fault::FaultSpec::none(),
      fault::FaultSpec::drop(0.1),
      fault::FaultSpec::drop(0.25, 7),
      fault::FaultSpec::drop(1.0),
      fault::FaultSpec::corrupt(0.05),
      fault::FaultSpec::corrupt(0.5),
      fault::FaultSpec::crash(1),
      fault::FaultSpec::crash(3, 128),
      fault::FaultSpec::adversarial_wake(8),
      fault::FaultSpec::adversarial_wake(1),
  };
}

TEST(FaultSpec, RegisteredFaultsRoundTripThroughTheirNames) {
  for (const fault::FaultSpec& spec : fault::registered_faults()) {
    EXPECT_EQ(fault::parse_fault(spec.name()), spec) << spec.name();
  }
}

TEST(FaultSpec, RepresentativeSpecsRoundTripThroughTheirNames) {
  for (const fault::FaultSpec& spec : representative_specs()) {
    EXPECT_EQ(fault::parse_fault(spec.name()), spec) << spec.name();
  }
}

TEST(FaultSpec, OptionalParametersAreOmittedAtTheirDefaults) {
  EXPECT_EQ(fault::FaultSpec::none().name(), "none");
  EXPECT_EQ(fault::FaultSpec::drop(0.1).name(), "drop:0.1");
  EXPECT_EQ(fault::FaultSpec::drop(0.1, 7).name(), "drop:0.1,7");
  EXPECT_EQ(fault::FaultSpec::crash(3).name(), "crash:3");
  EXPECT_EQ(fault::FaultSpec::crash(3, fault::FaultSpec::kDefaultCrashWindow).name(), "crash:3");
  EXPECT_EQ(fault::FaultSpec::crash(3, 128).name(), "crash:3,128");
  EXPECT_EQ(fault::FaultSpec::adversarial_wake(16).name(), "adversarial-wake:16");
}

TEST(FaultSpec, DigestsAreDistinctAndPureFunctionsOfTheName) {
  const std::vector<fault::FaultSpec> specs = representative_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].digest(), fault::parse_fault(specs[i].name()).digest());
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].digest(), specs[j].digest())
          << specs[i].name() << " vs " << specs[j].name();
    }
  }
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const std::vector<std::string> malformed = {
      "",
      "bogus",
      "bogus:1",
      "drop",
      "drop:",
      "drop:2",
      "drop:-0.1",
      "drop:abc",
      "drop:0.1,",
      "drop:0.1,x",
      "drop:0.1,1,2",
      "corrupt",
      "corrupt:",
      "corrupt:1.5",
      "crash",
      "crash:",
      "crash:x",
      "crash:1,0",
      "crash:1,2,3",
      "adversarial-wake",
      "adversarial-wake:",
      "adversarial-wake:1.5",
      "adversarial-wake:-1",
      "none:1",
      "none:",
  };
  for (const std::string& text : malformed) {
    EXPECT_THROW((void)fault::parse_fault(text), support::ContractViolation) << "'" << text << "'";
  }
}

TEST(FaultSpec, FactoriesEnforceTheSameBoundsAsTheGrammar) {
  EXPECT_THROW((void)fault::FaultSpec::drop(1.5), support::ContractViolation);
  EXPECT_THROW((void)fault::FaultSpec::drop(-0.5), support::ContractViolation);
  EXPECT_THROW((void)fault::FaultSpec::corrupt(2.0), support::ContractViolation);
  EXPECT_THROW((void)fault::FaultSpec::crash(1, 0), support::ContractViolation);
}

TEST(FaultSpec, InertParameterizationsAreInactive) {
  EXPECT_FALSE(fault::FaultSpec::none().active());
  EXPECT_FALSE(fault::FaultSpec::drop(0.0).active());
  EXPECT_FALSE(fault::FaultSpec::corrupt(0.0).active());
  EXPECT_FALSE(fault::FaultSpec::crash(0).active());
  EXPECT_FALSE(fault::FaultSpec::adversarial_wake(0).active());

  EXPECT_TRUE(fault::FaultSpec::drop(0.1).active());
  EXPECT_TRUE(fault::FaultSpec::corrupt(0.05).active());
  EXPECT_TRUE(fault::FaultSpec::crash(1).active());
  EXPECT_TRUE(fault::FaultSpec::adversarial_wake(1).active());
}

TEST(FaultSpec, SeedStreamsArePureAndJobDisjoint) {
  constexpr std::uint64_t kBatchSeed = 0xDEADBEEF;
  EXPECT_EQ(fault::fault_stream_seed(kBatchSeed), fault::fault_stream_seed(kBatchSeed));
  EXPECT_NE(fault::fault_stream_seed(kBatchSeed), kBatchSeed);

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t job = 0; job < 64; ++job) {
    const std::uint64_t seed = fault::job_fault_seed(kBatchSeed, job);
    EXPECT_EQ(seed, fault::job_fault_seed(kBatchSeed, job));
    seeds.push_back(seed);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "per-job fault seeds must be pairwise distinct";
}

// ------------------------------------------------------------- the runtime

TEST(FaultContext, ChannelDiceArePureFunctionsOfTheCoordinates) {
  fault::FaultContext context;
  context.reset({fault::FaultSpec::drop(0.5), 99}, 8);

  // Record the dice forward, then replay them backward: order of evaluation
  // (and repeated evaluation) can never change a roll.
  std::vector<bool> forward;
  for (std::uint64_t round = 0; round < 32; ++round) {
    for (std::uint32_t node = 0; node < 8; ++node) {
      forward.push_back(context.drop_message(round, node));
    }
  }
  std::vector<bool> backward(forward.size());
  for (std::uint64_t round = 32; round-- > 0;) {
    for (std::uint32_t node = 8; node-- > 0;) {
      backward[round * 8 + node] = context.drop_message(round, node);
    }
  }
  EXPECT_EQ(forward, backward);

  // A drop context never corrupts, and vice versa: the streams are disjoint.
  for (std::uint64_t round = 0; round < 8; ++round) {
    for (std::uint32_t node = 0; node < 8; ++node) {
      EXPECT_FALSE(context.corrupt_message(round, node));
    }
  }
}

TEST(FaultContext, CrashScheduleIsDeterministicAndBounded) {
  constexpr std::size_t kNodes = 16;
  const fault::FaultPlan plan = {fault::FaultSpec::crash(3, 32), 1234};

  fault::FaultContext a;
  a.reset(plan, kNodes);
  std::size_t crashed = 0;
  for (std::uint32_t v = 0; v < kNodes; ++v) {
    if (a.crash_round(v) != fault::FaultContext::kNeverCrashes) {
      ++crashed;
      EXPECT_LT(a.crash_round(v), 32u);
    }
  }
  EXPECT_EQ(crashed, 3u);

  // Re-resetting (and a second context) reproduces the schedule exactly.
  fault::FaultContext b;
  b.reset(plan, kNodes);
  for (std::uint32_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(a.crash_round(v), b.crash_round(v));
  }

  // More crashes than nodes saturates at n, never overflows.
  fault::FaultContext saturated;
  saturated.reset({fault::FaultSpec::crash(100), 1234}, 4);
  std::size_t all = 0;
  for (std::uint32_t v = 0; v < 4; ++v) {
    all += saturated.crash_round(v) != fault::FaultContext::kNeverCrashes ? 1 : 0;
  }
  EXPECT_EQ(all, 4u);
}

TEST(FaultContext, WakeDelaysAreDeterministicAndBoundedByStagger) {
  fault::FaultContext context;
  context.reset({fault::FaultSpec::adversarial_wake(5), 7}, 8);
  EXPECT_EQ(context.max_wake_delay(), 5u);
  for (std::uint32_t v = 0; v < 8; ++v) {
    const std::uint64_t delay = context.wake_delay(v);
    EXPECT_LE(delay, 5u);
    EXPECT_EQ(delay, context.wake_delay(v));
  }
}

TEST(FaultContext, InactivePlansInjectNothing) {
  fault::FaultContext context;
  context.reset({fault::FaultSpec::drop(0.0), 42}, 8);
  EXPECT_FALSE(context.active());
  EXPECT_FALSE(context.drop_message(0, 0));
  EXPECT_EQ(context.crash_round(0), fault::FaultContext::kNeverCrashes);
  EXPECT_EQ(context.wake_delay(0), 0u);
  EXPECT_EQ(context.max_wake_delay(), 0u);
}

// ----------------------------------------------------- elections under fault

TEST(FaultElection, EnergyAccountingSumsToTheRunTotals) {
  const config::Configuration h3 = config::family_h(3);
  const core::ElectionReport report = core::elect(h3);
  ASSERT_TRUE(report.simulated);
  EXPECT_LE(report.stats.max_node_transmissions, report.stats.transmissions);
  EXPECT_LE(report.stats.max_node_awake_rounds, report.stats.node_rounds);
  EXPECT_GT(report.stats.max_node_awake_rounds, 0u);

  // The per-node counters of a direct simulator run sum (and max) to the
  // RunStats aggregates exactly.
  const testkit::BeaconDrip drip(2, 1, 6);
  radio::Simulator simulator(h3, drip);
  const radio::RunResult result = simulator.run();
  std::uint64_t transmissions = 0, awake = 0, max_tx = 0, max_awake = 0;
  for (const radio::NodeOutcome& node : result.nodes) {
    transmissions += node.transmissions;
    awake += node.awake_rounds;
    max_tx = std::max(max_tx, node.transmissions);
    max_awake = std::max(max_awake, node.awake_rounds);
  }
  EXPECT_EQ(transmissions, result.stats.transmissions);
  EXPECT_EQ(awake, result.stats.node_rounds);
  EXPECT_EQ(max_tx, result.stats.max_node_transmissions);
  EXPECT_EQ(max_awake, result.stats.max_node_awake_rounds);
}

TEST(FaultElection, CrashFaultIsDetectedAndCounted) {
  core::ElectionOptions options;
  options.simulator.fault = {fault::FaultSpec::crash(1, 1), 42};
  const core::ElectionReport report = core::elect(config::family_h(3), options);
  ASSERT_TRUE(report.simulated);
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.disposition, core::Disposition::DetectedFault);
  EXPECT_EQ(report.stats.injected_crashes, 1u);
}

TEST(FaultElection, CertainDropIsDetectedAndCounted) {
  core::ElectionOptions options;
  options.simulator.fault = {fault::FaultSpec::drop(1.0), 42};
  const core::ElectionReport report = core::elect(config::family_h(3), options);
  ASSERT_TRUE(report.simulated);
  // Every reception erased: either the run misverifies (detected) or no
  // message was ever heard — but any heard message must have been dropped.
  if (!report.valid) {
    EXPECT_EQ(report.disposition, core::Disposition::DetectedFault);
    EXPECT_GT(report.stats.injected_drops, 0u);
  }
  EXPECT_EQ(report.stats.clean_receptions, 0u);
}

TEST(FaultElection, FaultedRunsReplayBitIdentically) {
  core::ElectionOptions options;
  options.simulator.fault = {fault::FaultSpec::corrupt(0.3), 7};
  const core::ElectionReport a = core::elect(config::family_h(3), options);
  const core::ElectionReport b = core::elect(config::family_h(3), options);
  EXPECT_EQ(a.disposition, b.disposition);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.stats, b.stats);
}

// -------------------------------------------------------- batches under fault

constexpr std::uint64_t kSeed = 77;
constexpr engine::JobId kConfigurations = 6;

engine::CountedSweep registry_sweep() {
  return engine::parse_workload("random:n=8,p=0.3,sigma=3")
      .instantiate(kSeed, core::registered_protocols(), {.count = kConfigurations});
}

engine::BatchReport run_faulted(const fault::FaultSpec& fault, unsigned threads,
                                engine::EngineMode engine = engine::EngineMode::Auto) {
  const engine::CountedSweep sweep = registry_sweep();
  engine::BatchRunner runner(
      {.threads = threads, .seed = kSeed, .engine = engine, .fault = fault});
  return runner.run(sweep.count, sweep.source);
}

TEST(FaultBatch, DropZeroIsBitIdenticalToNone) {
  const engine::BatchReport none = run_faulted(fault::FaultSpec::none(), 2);
  const engine::BatchReport zero = run_faulted(fault::FaultSpec::drop(0.0), 2);
  // The fault field spells what was asked for ("drop:0" vs "none"), but every
  // result — job outcomes, breakdowns, aggregates — is bit-identical because
  // an inactive spec runs the exact unfaulted code path.
  EXPECT_EQ(none.jobs, zero.jobs);
  EXPECT_EQ(none.by_protocol, zero.by_protocol);
  EXPECT_EQ(none.total_stats, zero.total_stats);
  EXPECT_EQ(none.valid_count, zero.valid_count);
  EXPECT_EQ(none.total_stats.injected_drops, 0u);
}

TEST(FaultBatch, FaultedBatchesAreThreadCountInvariant) {
  for (const fault::FaultSpec& spec :
       {fault::FaultSpec::crash(2), fault::FaultSpec::drop(0.1)}) {
    const engine::BatchReport one = run_faulted(spec, 1);
    const engine::BatchReport two = run_faulted(spec, 2);
    const engine::BatchReport eight = run_faulted(spec, 8);
    EXPECT_TRUE(engine::same_results(one, two)) << spec.name();
    EXPECT_TRUE(engine::same_results(one, eight)) << spec.name();
  }
}

TEST(FaultBatch, FaultedBatchesAreShardInvariant) {
  const engine::CountedSweep sweep = registry_sweep();
  const fault::FaultSpec spec = fault::FaultSpec::drop(0.1);

  engine::BatchRunner whole({.threads = 2, .seed = kSeed, .fault = spec});
  const engine::BatchReport full = whole.run(sweep.count, sweep.source);

  // Two separate runners over halves of the id range, as worker processes
  // would: per-job fault seeds are pure functions of (batch seed, job id),
  // so the concatenated outcomes match the whole-batch run exactly.
  std::vector<engine::JobOutcome> stitched;
  for (const auto& [begin, end] :
       std::vector<std::pair<engine::JobId, engine::JobId>>{{0, 2}, {2, sweep.count}}) {
    engine::BatchRunner part({.threads = 2, .seed = kSeed, .fault = spec});
    engine::BatchReport report = part.run_range(begin, end, sweep.source);
    stitched.insert(stitched.end(), report.jobs.begin(), report.jobs.end());
  }
  EXPECT_EQ(full.jobs, stitched);
}

TEST(FaultBatch, ActiveFaultsFallBackToTheScalarEngine) {
  // An active fault forces the reference loop no matter which engine was
  // requested, so all three modes must agree bit-for-bit.
  const fault::FaultSpec spec = fault::FaultSpec::corrupt(0.2);
  const engine::BatchReport automatic = run_faulted(spec, 2, engine::EngineMode::Auto);
  const engine::BatchReport scalar = run_faulted(spec, 2, engine::EngineMode::Scalar);
  const engine::BatchReport wavefront = run_faulted(spec, 2, engine::EngineMode::Wavefront);
  EXPECT_TRUE(engine::same_results(automatic, scalar));
  EXPECT_TRUE(engine::same_results(automatic, wavefront));
  EXPECT_GT(automatic.total_stats.injected_corruptions, 0u);
}

TEST(FaultBatch, OverrideFaultWinsOverBatchOptions) {
  const engine::CountedSweep sweep = registry_sweep();
  engine::BatchRunner runner({.threads = 2, .seed = kSeed});
  engine::RunOverrides overrides;
  overrides.fault = fault::FaultSpec::crash(2);
  const engine::BatchReport overridden =
      runner.run_range(0, sweep.count, sweep.source, overrides);
  EXPECT_EQ(overridden.fault, fault::FaultSpec::crash(2));

  const engine::BatchReport direct = run_faulted(fault::FaultSpec::crash(2), 2);
  EXPECT_TRUE(engine::same_results(overridden, direct));
}

TEST(FaultBatch, BreakdownsAttributeDetectedFaults) {
  const engine::BatchReport report = run_faulted(fault::FaultSpec::crash(2), 2);
  std::uint64_t detected = 0;
  for (const engine::ProtocolBreakdown& row : report.by_protocol) {
    detected += row.detected_fault;
  }
  std::uint64_t expected = 0;
  for (const engine::JobOutcome& job : report.jobs) {
    expected += job.disposition == core::Disposition::DetectedFault ? 1 : 0;
  }
  EXPECT_EQ(detected, expected);
  EXPECT_GT(report.total_stats.injected_crashes, 0u);
}

}  // namespace
