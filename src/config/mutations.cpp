#include "config/mutations.hpp"

#include "graph/algorithms.hpp"
#include "support/assert.hpp"

namespace arl::config {

Configuration with_tag(const Configuration& configuration, graph::NodeId v, Tag tag) {
  ARL_EXPECTS(v < configuration.size(), "node out of range");
  std::vector<Tag> tags = configuration.tags();
  tags[v] = tag;
  return Configuration(configuration.graph(), std::move(tags));
}

std::optional<Configuration> with_random_extra_edge(const Configuration& configuration,
                                                    support::Rng& rng) {
  const graph::Graph& g = configuration.graph();
  const graph::NodeId n = g.node_count();
  std::vector<graph::Edge> missing;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v)) {
        missing.emplace_back(u, v);
      }
    }
  }
  if (missing.empty()) {
    return std::nullopt;
  }
  auto edges = g.edges();
  edges.push_back(rng.pick(missing));
  return Configuration(graph::Graph::from_edges(n, edges), configuration.tags());
}

std::optional<Configuration> with_random_edge_removed(const Configuration& configuration,
                                                      support::Rng& rng) {
  const graph::Graph& g = configuration.graph();
  const auto edges = g.edges();
  std::vector<std::size_t> removable;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    std::vector<graph::Edge> remaining;
    remaining.reserve(edges.size() - 1);
    for (std::size_t other = 0; other < edges.size(); ++other) {
      if (other != e) {
        remaining.push_back(edges[other]);
      }
    }
    if (graph::is_connected(graph::Graph::from_edges(g.node_count(), remaining))) {
      removable.push_back(e);
    }
  }
  if (removable.empty()) {
    return std::nullopt;
  }
  const std::size_t victim = rng.pick(removable);
  std::vector<graph::Edge> remaining;
  remaining.reserve(edges.size() - 1);
  for (std::size_t other = 0; other < edges.size(); ++other) {
    if (other != victim) {
      remaining.push_back(edges[other]);
    }
  }
  return Configuration(graph::Graph::from_edges(g.node_count(), remaining),
                       configuration.tags());
}

std::vector<Configuration> all_tag_mutations(const Configuration& configuration, Tag max_tag) {
  std::vector<Configuration> mutations;
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    for (Tag tag = 0; tag <= max_tag; ++tag) {
      if (tag != configuration.tag(v)) {
        mutations.push_back(with_tag(configuration, v, tag));
      }
    }
  }
  return mutations;
}

}  // namespace arl::config
