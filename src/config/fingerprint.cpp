#include "config/fingerprint.hpp"

#include "support/hash.hpp"

namespace arl::config {

Fingerprint fingerprint(const Configuration& configuration) {
  // Domain-separated from every other Hash64 user so configuration keys can
  // never alias schedule keys in a shared artifact store.
  support::Hash64 hash(0xC0F1C0F1ULL);
  const graph::Graph& graph = configuration.graph();
  const graph::NodeId n = graph.node_count();
  hash.absorb(n);
  for (const Tag tag : configuration.tags()) {
    hash.absorb(tag);
  }
  // Neighbour lists are sorted, so this walks the edge set {u < v} in one
  // deterministic order without materializing graph.edges().
  for (graph::NodeId u = 0; u < n; ++u) {
    for (const graph::NodeId v : graph.neighbors(u)) {
      if (u < v) {
        hash.absorb((static_cast<std::uint64_t>(u) << 32) | v);
      }
    }
  }
  return hash.digest();
}

}  // namespace arl::config
