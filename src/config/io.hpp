#pragma once

/// \file io.hpp
/// Plain-text serialization and Graphviz export for configurations.
///
/// The text format is line oriented:
///
///     nodes <n>
///     tags <t_0> <t_1> ... <t_{n-1}>
///     edges <m>
///     <u> <v>           (m lines, one undirected edge each)
///
/// Lines starting with '#' and blank lines are ignored.

#include <iosfwd>
#include <string>

#include "config/configuration.hpp"

namespace arl::config {

/// Writes the text representation.
void to_text(const Configuration& configuration, std::ostream& out);

/// Renders the text representation into a string.
[[nodiscard]] std::string to_text_string(const Configuration& configuration);

/// Parses the text representation; throws ContractViolation on malformed
/// input (wrong counts, out-of-range endpoints, disconnected graph, ...).
[[nodiscard]] Configuration from_text(std::istream& in);

/// Parses from a string.
[[nodiscard]] Configuration from_text_string(const std::string& text);

/// Writes a Graphviz DOT rendering; node labels show "id:tag".
void to_dot(const Configuration& configuration, std::ostream& out);

}  // namespace arl::config
