#pragma once

/// \file mutations.hpp
/// Local perturbations of configurations, used to study how fragile
/// feasibility is: a deployment planner wants to know whether a one-second
/// slip in a single device's power-up time (or one extra radio link) can
/// flip a network from electable to non-electable.

#include <optional>

#include "config/configuration.hpp"
#include "support/rng.hpp"

namespace arl::config {

/// Returns the configuration with node `v`'s tag replaced by `tag`.
[[nodiscard]] Configuration with_tag(const Configuration& configuration, graph::NodeId v,
                                     Tag tag);

/// Returns the configuration with one uniformly random non-edge added, or
/// nullopt when the graph is complete.
[[nodiscard]] std::optional<Configuration> with_random_extra_edge(
    const Configuration& configuration, support::Rng& rng);

/// Returns the configuration with one uniformly random *removable* edge
/// deleted (an edge whose removal keeps the graph connected), or nullopt
/// when every edge is a bridge.
[[nodiscard]] std::optional<Configuration> with_random_edge_removed(
    const Configuration& configuration, support::Rng& rng);

/// All single-node tag perturbations within {0..max_tag}: for each node and
/// each alternative tag, one mutated configuration.
[[nodiscard]] std::vector<Configuration> all_tag_mutations(const Configuration& configuration,
                                                           Tag max_tag);

}  // namespace arl::config
