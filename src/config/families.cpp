#include "config/families.hpp"

#include <numeric>

#include "graph/generators.hpp"
#include "support/assert.hpp"

namespace arl::config {

Configuration family_g(Tag m) {
  ARL_EXPECTS(m >= 2, "G_m is defined for m >= 2");
  const graph::NodeId n = 4 * m + 1;
  std::vector<Tag> tags(n, 0);
  // Layout (left to right): a_1..a_m | b_1..b_{2m+1} | c_m..c_1.
  for (graph::NodeId i = m; i < 3 * m + 1; ++i) {
    tags[i] = 1;
  }
  return Configuration(graph::path(n), std::move(tags));
}

graph::NodeId family_g_center(Tag m) {
  ARL_EXPECTS(m >= 2, "G_m is defined for m >= 2");
  // b_{m+1} sits m + (m+1) - 1 = 2m positions from the left end.
  return 2 * m;
}

Configuration family_h(Tag m) {
  ARL_EXPECTS(m >= 1, "H_m is defined for m >= 1");
  return Configuration(graph::path(4), {m, 0, 0, m + 1});
}

Configuration family_s(Tag m) {
  ARL_EXPECTS(m >= 1, "S_m is defined for m >= 1");
  return Configuration(graph::path(4), {m, 0, 0, m});
}

Configuration single_hop(const std::vector<Tag>& tags) {
  ARL_EXPECTS(!tags.empty(), "single-hop network needs at least one node");
  return Configuration(graph::complete(static_cast<graph::NodeId>(tags.size())), tags);
}

Configuration staggered_path(graph::NodeId n) {
  ARL_EXPECTS(n >= 1, "path needs at least one node");
  std::vector<Tag> tags(n);
  std::iota(tags.begin(), tags.end(), Tag{0});
  return Configuration(graph::path(n), std::move(tags));
}

Configuration random_tags(graph::Graph graph, Tag max_tag, support::Rng& rng) {
  std::vector<Tag> tags(graph.node_count());
  for (auto& tag : tags) {
    tag = static_cast<Tag>(rng.below(static_cast<std::uint64_t>(max_tag) + 1));
  }
  return Configuration(std::move(graph), std::move(tags)).normalized();
}

Configuration random_tags_with_span(graph::Graph graph, Tag span, support::Rng& rng) {
  const graph::NodeId n = graph.node_count();
  ARL_EXPECTS(span == 0 || n >= 2, "a positive span needs at least two nodes");
  std::vector<Tag> tags(n);
  for (auto& tag : tags) {
    tag = static_cast<Tag>(rng.below(static_cast<std::uint64_t>(span) + 1));
  }
  // Pin tags 0 and `span` on two distinct random nodes so the span is exact.
  const auto lo = static_cast<graph::NodeId>(rng.below(n));
  tags[lo] = 0;
  if (span > 0) {
    auto hi = static_cast<graph::NodeId>(rng.below(n));
    while (hi == lo) {
      hi = static_cast<graph::NodeId>(rng.below(n));
    }
    tags[hi] = span;
  }
  return Configuration(std::move(graph), std::move(tags));
}

}  // namespace arl::config
