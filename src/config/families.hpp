#pragma once

/// \file families.hpp
/// The configuration families from the paper's §4 negative results, plus a
/// few parameterized families used by tests and benchmarks.
///
/// Node layouts follow the paper exactly (nodes listed left to right on a
/// path, ids assigned in that order) so traces can be read against the text.

#include "config/configuration.hpp"
#include "support/rng.hpp"

namespace arl::config {

/// Proposition 4.1 family G_m (m >= 2): a path of n = 4m+1 nodes
///   a_1..a_m  b_1..b_{2m+1}  c_m..c_1
/// where a_i, c_i have tag 0 and b_i have tag 1.  Feasible with span 1, yet
/// every dedicated leader election algorithm needs Ω(n) rounds; the unique
/// leader found by Classifier is the central node b_{m+1}.
[[nodiscard]] Configuration family_g(Tag m);

/// Index of the central node b_{m+1} inside family_g(m).
[[nodiscard]] graph::NodeId family_g_center(Tag m);

/// Lemma 4.2 family H_m (m >= 1): path a-b-c-d with tags
///   t_a = m, t_b = t_c = 0, t_d = m+1.
/// Feasible (all four nodes separate after one Classifier iteration), and
/// every leader election algorithm needs at least m rounds (span σ = m+1).
[[nodiscard]] Configuration family_h(Tag m);

/// Proposition 4.5 family S_m (m >= 1): path a-b-c-d with tags
///   t_a = t_d = m, t_b = t_c = 0.
/// NOT feasible: the partition stabilizes at two 2-node classes.
[[nodiscard]] Configuration family_s(Tag m);

/// Single-hop network: complete graph on n nodes with the given tags
/// (tags.size() == n).
[[nodiscard]] Configuration single_hop(const std::vector<Tag>& tags);

/// A path of n nodes with strictly staggered tags 0, 1, ..., n-1 — maximally
/// asymmetric wakeup; feasible for every n >= 1.
[[nodiscard]] Configuration staggered_path(graph::NodeId n);

/// Random configuration: the given graph with i.i.d. uniform tags from
/// [0, max_tag].  The result is normalized (smallest tag 0).
[[nodiscard]] Configuration random_tags(graph::Graph graph, Tag max_tag, support::Rng& rng);

/// Random configuration whose span is exactly `span`: like random_tags but
/// re-rolls two distinguished nodes to hold tags 0 and `span`.
[[nodiscard]] Configuration random_tags_with_span(graph::Graph graph, Tag span,
                                                  support::Rng& rng);

}  // namespace arl::config
