#pragma once

/// \file configuration.hpp
/// A *configuration* (paper §2.1): an undirected connected graph whose node v
/// carries a non-negative wakeup tag t_v.  Node v wakes spontaneously in
/// global round t_v unless a received message wakes it earlier.
///
/// The paper normalizes the smallest tag to 0 WLOG (nodes cannot observe the
/// global clock), so `span() == max tag` after `normalized()`.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arl::config {

/// Wakeup tag (global round of spontaneous wakeup).
using Tag = std::uint32_t;

/// Global/local round number.  Rounds are 0-based like the paper's.
using Round = std::uint32_t;

/// Radio network configuration: topology plus per-node wakeup tags.
class Configuration {
 public:
  /// Builds a configuration; `tags.size()` must equal the node count and the
  /// graph must be connected and non-empty.
  Configuration(graph::Graph graph, std::vector<Tag> tags);

  /// The underlying topology.
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }

  /// Wakeup tag of node v.
  [[nodiscard]] Tag tag(graph::NodeId v) const;

  /// All tags, indexed by node.
  [[nodiscard]] const std::vector<Tag>& tags() const { return tags_; }

  /// Number of nodes (the paper's n).
  [[nodiscard]] graph::NodeId size() const { return graph_.node_count(); }

  /// Span σ = max tag - min tag (paper §2.1).
  [[nodiscard]] Tag span() const;

  /// Smallest tag (0 after normalization).
  [[nodiscard]] Tag min_tag() const;

  /// Same configuration with tags shifted so the smallest is 0.
  [[nodiscard]] Configuration normalized() const;

  /// True when the smallest tag is already 0.
  [[nodiscard]] bool is_normalized() const { return min_tag() == 0; }

  friend bool operator==(const Configuration& a, const Configuration& b) = default;

 private:
  graph::Graph graph_;
  std::vector<Tag> tags_;
};

}  // namespace arl::config
