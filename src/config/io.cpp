#include "config/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"
#include "support/parse.hpp"

namespace arl::config {

namespace {

/// Reads the next content line (skips blanks and '#' comments).
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace

void to_text(const Configuration& configuration, std::ostream& out) {
  const auto& graph = configuration.graph();
  out << "nodes " << graph.node_count() << '\n';
  out << "tags";
  for (const Tag tag : configuration.tags()) {
    out << ' ' << tag;
  }
  out << '\n';
  const auto edges = graph.edges();
  out << "edges " << edges.size() << '\n';
  for (const auto& [u, v] : edges) {
    out << u << ' ' << v << '\n';
  }
}

std::string to_text_string(const Configuration& configuration) {
  std::ostringstream out;
  to_text(configuration, out);
  return out.str();
}

Configuration from_text(std::istream& in) {
  std::string line;
  std::string keyword;

  ARL_EXPECTS(next_content_line(in, line), "missing 'nodes' line");
  std::istringstream nodes_line(line);
  std::uint64_t n = 0;
  nodes_line >> keyword >> n;
  ARL_EXPECTS(!nodes_line.fail() && keyword == "nodes", "malformed 'nodes' line");
  ARL_EXPECTS(n >= 1 && n <= 0xFFFFFFFFULL, "node count out of range");

  ARL_EXPECTS(next_content_line(in, line), "missing 'tags' line");
  std::vector<Tag> tags;
  {
    support::TokenCursor cursor(line);
    std::string_view token;
    ARL_EXPECTS(cursor.next(token) && token == "tags", "malformed 'tags' line");
    std::vector<Tag> parsed;
    parsed.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Tag tag = 0;
      ARL_EXPECTS(cursor.next_number(tag), "too few tags");
      parsed.push_back(tag);
    }
    tags = std::move(parsed);
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'edges' line");
  std::istringstream edges_line(line);
  std::uint64_t m = 0;
  edges_line >> keyword >> m;
  ARL_EXPECTS(!edges_line.fail() && keyword == "edges", "malformed 'edges' line");

  std::vector<graph::Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    ARL_EXPECTS(next_content_line(in, line), "too few edge lines");
    support::TokenCursor cursor(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    ARL_EXPECTS(cursor.next_number(u) && cursor.next_number(v), "malformed edge line");
    ARL_EXPECTS(u < n && v < n, "edge endpoint out of range");
    edges.emplace_back(static_cast<graph::NodeId>(u), static_cast<graph::NodeId>(v));
  }

  return Configuration(graph::Graph::from_edges(static_cast<graph::NodeId>(n), edges),
                       std::move(tags));
}

Configuration from_text_string(const std::string& text) {
  std::istringstream in(text);
  return from_text(in);
}

void to_dot(const Configuration& configuration, std::ostream& out) {
  out << "graph configuration {\n";
  out << "  node [shape=circle];\n";
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    out << "  n" << v << " [label=\"" << v << ":" << configuration.tag(v) << "\"];\n";
  }
  for (const auto& [u, v] : configuration.graph().edges()) {
    out << "  n" << u << " -- n" << v << ";\n";
  }
  out << "}\n";
}

}  // namespace arl::config
