#pragma once

/// \file fingerprint.hpp
/// Canonical content fingerprint of a configuration.
///
/// The engine's schedule cache — and, next, the sharded-sweep artifact layer
/// that serializes compiled schedules across processes — keys per-
/// configuration knowledge by this digest: a stable 64-bit function of the
/// exact topology and tag vector.  Equal configurations always collide;
/// distinct ones collide with probability ~2^-64 (and callers that cannot
/// tolerate even that verify the configuration on every key match, as the
/// schedule cache does).
///
/// The digest is over the *exact* configuration, not its normalized form:
/// a global tag shift changes observable outcomes (global rounds move with
/// the clock origin), so shifted configurations must not share cache entries.

#include <cstdint>

#include "config/configuration.hpp"

namespace arl::config {

/// Stable 64-bit content digest of a configuration.
using Fingerprint = std::uint64_t;

/// Digest of (node count, tag vector, sorted edge list).  Deterministic
/// across runs, platforms and thread counts; equal configurations (operator==)
/// have equal fingerprints.
[[nodiscard]] Fingerprint fingerprint(const Configuration& configuration);

}  // namespace arl::config
