#include "config/configuration.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/assert.hpp"

namespace arl::config {

Configuration::Configuration(graph::Graph graph, std::vector<Tag> tags)
    : graph_(std::move(graph)), tags_(std::move(tags)) {
  ARL_EXPECTS(graph_.node_count() >= 1, "a configuration needs at least one node");
  ARL_EXPECTS(tags_.size() == graph_.node_count(), "one tag per node required");
  ARL_EXPECTS(graph::is_connected(graph_), "radio networks are connected graphs");
}

Tag Configuration::tag(graph::NodeId v) const {
  ARL_EXPECTS(v < size(), "node out of range");
  return tags_[v];
}

Tag Configuration::span() const {
  const auto [lo, hi] = std::minmax_element(tags_.begin(), tags_.end());
  return *hi - *lo;
}

Tag Configuration::min_tag() const {
  return *std::min_element(tags_.begin(), tags_.end());
}

Configuration Configuration::normalized() const {
  const Tag lo = min_tag();
  if (lo == 0) {
    return *this;
  }
  std::vector<Tag> shifted(tags_.size());
  std::transform(tags_.begin(), tags_.end(), shifted.begin(),
                 [lo](Tag t) { return t - lo; });
  return Configuration(graph_, std::move(shifted));
}

}  // namespace arl::config
