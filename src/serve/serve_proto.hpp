#pragma once

/// \file serve_proto.hpp
/// Versioned line protocol of the sweep service (`arl serve`).
///
/// One request per line, one response framing per request.  Every protocol
/// line — in either direction — starts with `arl-serve <version>`, so the
/// raw `arl-shard-report 1` lines a sweep response streams between its
/// `begin` and `done` markers are unambiguous: no report record ever begins
/// with the serve tag.  Clients therefore recover exactly the bytes
/// `dist::write_shard_report` produced, and can hand them to `arl merge`
/// unchanged.
///
/// Requests (client to server):
///
///   arl-serve 1 ping
///   arl-serve 1 stats
///   arl-serve 1 sweep workload=<name> protocols=<p1,p2,...> seed=<u64>
///       [fault=<spec>] [count=<u64>] [shard=<i/K>] [engine=<scalar|wavefront>]
///       [threads=<u64>] [cache=off] [store=off]
///
/// Fields appear in exactly that order, each at most once.  `workload`, the
/// protocol names and `fault` must be the *canonical* registry spellings
/// (identity is re-parsed through `engine::parse_workload` /
/// `core::parse_protocol` / `fault::parse_fault` and the round trip
/// compared, never trusted as opaque strings — the same rule the
/// shard-report parser enforces).  `count` is required exactly when the
/// workload does not imply its own job count (`WorkloadSpec::bounded()`);
/// the optional knobs have canonical-absence defaults (`fault` absent means
/// none, `engine` absent means auto, `cache=off` is the only spelling that
/// disables the shared cache, `store=off` the only one that skips the
/// server's artifact store).
///
/// Responses (server to client):
///
///   arl-serve 1 pong <hits> <misses> <entries>          (cumulative cache)
///   arl-serve 1 error <message>                          (rest of line)
///   arl-serve 1 busy <queue-limit>                       (backpressure)
///   arl-serve 1 ack <id>                                 (queued)
///   arl-serve 1 begin <id>                               (executing)
///   ... raw arl-shard-report lines ...
///   arl-serve 1 done <id> cache <req-hits> <req-misses> <req-builds>
///       <cum-hits> <cum-misses> <cum-entries>
///   arl-serve 1 stats uptime-ms <u64> queued <u64> active <u64>
///       sessions <u64> accepted <u64> completed <u64> failed <u64>
///       busy <u64> drained <u64> proto-errors <u64>
///       cache <hits> <misses> <entries> store <hits> <misses> <saves>
///       queue-wait-us <count> <p50> <p90> <p99>
///       dispatch-us <count> <p50> <p90> <p99>
///
/// The stats response is one line: live gauges (queue depth, in-flight
/// requests, open sessions), cumulative lifecycle counters, cumulative
/// cache/store counters, and the two serve-side latency histograms
/// summarized as integer microseconds (count + p50/p90/p99 — see
/// obs::HistogramSnapshot::percentile for the deterministic extraction).
///
/// The parser is strict in the report_io tradition: unknown versions,
/// reordered or duplicated fields, non-canonical spellings, out-of-range
/// numbers and trailing garbage all throw `ProtoError` — a malformed request
/// costs the client an `error` line, never the server its process.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol.hpp"
#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"
#include "engine/workload.hpp"
#include "fault/fault.hpp"

namespace arl::serve {

/// Thrown on any malformed, non-canonical or out-of-range protocol line.
class ProtoError : public std::runtime_error {
 public:
  explicit ProtoError(const std::string& what) : std::runtime_error(what) {}
};

/// The current (and only) serve protocol version; readers reject every
/// version they were not built for, like the shard-report format.
inline constexpr std::uint32_t kServeProtocolVersion = 1;

/// Per-line byte bound for *request* lines.  Requests carry one workload
/// name, a protocol list and a few numbers — 4 KiB is far above any
/// legitimate request while bounding a peer that streams garbage.
inline constexpr std::size_t kMaxRequestLineBytes = 4096;

/// Ceiling on `count` (configurations per request): large enough for any
/// sweep the engine can actually execute, small enough that count * P job
/// ids never approach overflow.
inline constexpr std::uint64_t kMaxRequestCount = 1'000'000'000;

/// Ceiling on the per-request worker cap.
inline constexpr std::uint64_t kMaxRequestThreads = 256;

/// One sweep to execute: the workload axis, the protocol axis, the seed and
/// the run-shaping knobs.  Mirrors what `arl sweep` resolves from its flags,
/// so a submission and a local sweep describe runs identically.
struct SweepRequest {
  engine::WorkloadSpec workload;
  std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical()};
  std::uint64_t seed = 1;

  /// Fault plan applied to every job; the inactive default is spelled by
  /// absence on the wire (`fault=` carries only active canonical names).
  fault::FaultSpec fault = {};

  /// Configurations to draw; present exactly when !workload.bounded().
  std::optional<std::uint64_t> count;

  /// Run only this shard of the sweep's job range (absent: the whole range).
  std::optional<dist::ShardSpec> shard;

  /// Simulation path; Auto (the canonical absence) lets the engine choose.
  engine::EngineMode engine = engine::EngineMode::Auto;

  /// Worker cap for this request, in [1, kMaxRequestThreads] (absent: the
  /// server's full pool).  Shapes throughput only, never outcomes.
  std::optional<std::uint64_t> threads;

  /// False when the request opts out of the server's shared schedule cache.
  bool use_cache = true;

  /// False when the request opts out of the server's on-disk artifact store
  /// (it still uses the in-memory tier; `store=off` only skips the disk).
  /// Meaningful only on servers started with a store directory.
  bool use_store = true;

  friend bool operator==(const SweepRequest& a, const SweepRequest& b) = default;
};

/// A parsed request line.
struct Request {
  enum class Kind : std::uint8_t { Ping, Sweep, Stats };

  Kind kind = Kind::Ping;
  SweepRequest sweep;  ///< meaningful only when kind == Sweep

  friend bool operator==(const Request& a, const Request& b) = default;
};

/// Cumulative counters of the server's shared cache (pong / done lines).
struct CacheTotals {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;

  friend bool operator==(const CacheTotals& a, const CacheTotals& b) = default;
};

/// What one request took from / added to the shared cache (done lines) —
/// the `ScheduleCacheStats::since` delta, on the wire.
struct RequestCacheUse {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t schedule_builds = 0;

  friend bool operator==(const RequestCacheUse& a, const RequestCacheUse& b) = default;
};

/// Cumulative counters of the server's artifact store (stats lines); all
/// zero on servers running without one.
struct StoreTotals {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t saves = 0;

  friend bool operator==(const StoreTotals& a, const StoreTotals& b) = default;
};

/// One latency histogram summarized for the wire: sample count plus the
/// deterministic bucket-bound percentiles, as integer microseconds (exact
/// round trip — no floats on the wire, like every other arl format).
struct LatencySummary {
  std::uint64_t count = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;

  friend bool operator==(const LatencySummary& a, const LatencySummary& b) = default;
};

/// Everything a stats response reports about a running server.  Plain
/// values only (the server layer assembles it from its counters and the
/// obs registry; this header stays below server.hpp).
struct ServerStats {
  std::uint64_t uptime_ms = 0;          ///< since the listener bound
  std::uint64_t queued = 0;             ///< requests waiting (live gauge)
  std::uint64_t active = 0;             ///< requests executing (live gauge)
  std::uint64_t sessions = 0;           ///< open client sessions (live gauge)
  std::uint64_t accepted = 0;           ///< requests admitted to the queue
  std::uint64_t completed = 0;          ///< requests that finished cleanly
  std::uint64_t failed = 0;             ///< requests that errored in execution
  std::uint64_t busy_rejections = 0;    ///< requests bounced by backpressure
  std::uint64_t drain_rejections = 0;   ///< requests bounced during drain
  std::uint64_t protocol_errors = 0;    ///< malformed lines answered with error
  CacheTotals cache;                    ///< cumulative shared-cache counters
  StoreTotals store;                    ///< cumulative artifact-store counters
  LatencySummary queue_wait;            ///< obs::Phase::ServeQueueWait
  LatencySummary dispatch;              ///< obs::Phase::ServeDispatch

  friend bool operator==(const ServerStats& a, const ServerStats& b) = default;
};

/// A parsed response line.
struct Response {
  enum class Kind : std::uint8_t { Pong, Error, Busy, Ack, Begin, Done, Stats };

  Kind kind = Kind::Pong;
  std::string message;            ///< Error: human-readable reason (nonempty)
  std::uint64_t queue_limit = 0;  ///< Busy: the queue bound that was hit
  std::uint64_t id = 0;           ///< Ack / Begin / Done: server-side request id
  RequestCacheUse request_cache;  ///< Done: this request's cache delta
  CacheTotals totals;             ///< Done / Pong: cumulative cache counters
  ServerStats stats;              ///< Stats: the full server snapshot

  friend bool operator==(const Response& a, const Response& b) = default;
};

/// Serializes a request in its canonical spelling (no trailing newline).
/// `parse_request(format_request(r)) == r` for every valid request.
[[nodiscard]] std::string format_request(const Request& request);

/// Parses one request line, enforcing the full grammar: canonical workload
/// and protocol spellings, field order, count-presence rule, numeric ranges.
/// Throws ProtoError on any violation.
[[nodiscard]] Request parse_request(std::string_view line);

/// Serializes a response line (no trailing newline).
[[nodiscard]] std::string format_response(const Response& response);

/// Classifies one line of a response stream: a parsed Response for
/// `arl-serve`-tagged lines, nullopt for anything else (a report body line).
/// Throws ProtoError when a serve-tagged line is malformed.
[[nodiscard]] std::optional<Response> match_response(std::string_view line);

/// The one human-readable rendering of a ServerStats snapshot, used by both
/// the daemon's own stderr reporting (startup/drain) and `arl stats` — the
/// two can never disagree on a counter because they print the same struct
/// through the same code.  Every line starts with `prefix` ("arl serve: "
/// for the daemon, "" for the CLI).
void print_stats(std::ostream& out, std::string_view prefix, const ServerStats& stats);

}  // namespace arl::serve
