#include "serve/serve_proto.hpp"

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/parse.hpp"

namespace arl::serve {

namespace {

/// Splits on single spaces, rejecting empty fields (leading, trailing or
/// doubled separators) — the same discipline as the shard-report tokenizer,
/// so the two wire formats fail identically on sloppy framing.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    const std::size_t end = space == std::string_view::npos ? line.size() : space;
    if (end == start) {
      throw ProtoError("empty field (doubled, leading or trailing space)");
    }
    tokens.push_back(line.substr(start, end - start));
    if (space == std::string_view::npos) {
      break;
    }
    start = space + 1;
  }
  if (line.empty()) {
    throw ProtoError("empty line");
  }
  return tokens;
}

std::uint64_t parse_u64(std::string_view token, std::string_view what,
                        std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  const std::optional<std::uint64_t> value = support::parse_decimal_u64(token, max);
  if (!value) {
    throw ProtoError(std::string(what) + " must be a decimal integer within its field range " +
                     "(got '" + std::string(token) + "')");
  }
  return *value;
}

/// The serve tag every protocol line leads with ("arl-serve 1").
void check_tag(const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 3 || tokens[0] != "arl-serve") {
    throw ProtoError("not an arl-serve protocol line");
  }
  const std::uint64_t version = parse_u64(tokens[1], "protocol version");
  // Canonical spelling only: "01" numerically equals 1 but is not a line
  // this build ever wrote, so it is rejected like any other version skew.
  if (version != kServeProtocolVersion ||
      tokens[1] != std::to_string(kServeProtocolVersion)) {
    throw ProtoError("unsupported serve protocol version " + std::string(tokens[1]) +
                     " (this build speaks version " + std::to_string(kServeProtocolVersion) + ")");
  }
}

std::string tag() { return "arl-serve " + std::to_string(kServeProtocolVersion) + " "; }

/// Pulls the value of the `key=` field the cursor must name next; returns
/// nullopt (without advancing) when the next token names a different key —
/// how the fixed field order admits optional fields.
std::optional<std::string_view> take_field(const std::vector<std::string_view>& tokens,
                                           std::size_t& cursor, std::string_view key) {
  if (cursor >= tokens.size()) {
    return std::nullopt;
  }
  const std::string_view token = tokens[cursor];
  const std::string prefix = std::string(key) + "=";
  if (token.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  cursor += 1;
  const std::string_view value = token.substr(prefix.size());
  if (value.empty()) {
    throw ProtoError("field '" + std::string(key) + "' has an empty value");
  }
  return value;
}

std::string_view require_field(const std::vector<std::string_view>& tokens, std::size_t& cursor,
                               std::string_view key) {
  const std::optional<std::string_view> value = take_field(tokens, cursor, key);
  if (!value) {
    throw ProtoError("expected field '" + std::string(key) + "='" +
                     (cursor < tokens.size() ? " before '" + std::string(tokens[cursor]) + "'"
                                             : " (line ends early)"));
  }
  return *value;
}

std::string engine_token(engine::EngineMode mode) {
  switch (mode) {
    case engine::EngineMode::Scalar:
      return "scalar";
    case engine::EngineMode::Wavefront:
      return "wavefront";
    case engine::EngineMode::Auto:
      break;
  }
  ARL_ASSERT(false, "EngineMode::Auto is spelled by absence, never formatted");
  return {};
}

SweepRequest parse_sweep_fields(const std::vector<std::string_view>& tokens, std::size_t cursor) {
  SweepRequest sweep;

  const std::string_view workload = require_field(tokens, cursor, "workload");
  try {
    sweep.workload = engine::parse_workload(workload);
  } catch (const support::ContractViolation& violation) {
    throw ProtoError("bad workload: " + std::string(violation.what()));
  }
  if (sweep.workload.name() != workload) {
    throw ProtoError("workload must use its canonical spelling '" + sweep.workload.name() +
                     "' (got '" + std::string(workload) + "')");
  }

  const std::string_view protocols = require_field(tokens, cursor, "protocols");
  sweep.protocols.clear();
  std::size_t start = 0;
  while (start <= protocols.size()) {
    const std::size_t comma = protocols.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? protocols.size() : comma;
    const std::string_view token = protocols.substr(start, end - start);
    if (token.empty()) {
      throw ProtoError("protocol list has an empty entry");
    }
    core::ProtocolSpec spec;
    try {
      spec = core::parse_protocol(token);
    } catch (const support::ContractViolation& violation) {
      throw ProtoError("bad protocol: " + std::string(violation.what()));
    }
    if (spec.name() != token) {
      throw ProtoError("protocol must use its canonical spelling '" + spec.name() + "' (got '" +
                       std::string(token) + "')");
    }
    sweep.protocols.push_back(spec);
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }

  sweep.seed = parse_u64(require_field(tokens, cursor, "seed"), "seed");

  if (const auto fault = take_field(tokens, cursor, "fault")) {
    try {
      sweep.fault = fault::parse_fault(*fault);
    } catch (const support::ContractViolation& violation) {
      throw ProtoError("bad fault: " + std::string(violation.what()));
    }
    if (sweep.fault.name() != *fault) {
      throw ProtoError("fault must use its canonical spelling '" + sweep.fault.name() +
                       "' (got '" + std::string(*fault) + "')");
    }
    if (!sweep.fault.active()) {
      // The inactive plan is spelled by absence; one canonical line per request.
      throw ProtoError("fault 'none' is spelled by omitting the field");
    }
  }

  if (const auto count = take_field(tokens, cursor, "count")) {
    sweep.count = parse_u64(*count, "count", kMaxRequestCount);
    if (*sweep.count == 0) {
      throw ProtoError("count must be >= 1");
    }
  }
  if (sweep.workload.bounded() && sweep.count) {
    throw ProtoError("workload '" + sweep.workload.name() +
                     "' implies its own job count; 'count=' is not allowed");
  }
  if (!sweep.workload.bounded() && !sweep.count) {
    throw ProtoError("workload '" + sweep.workload.name() + "' requires a 'count=' field");
  }

  if (const auto shard = take_field(tokens, cursor, "shard")) {
    try {
      sweep.shard = dist::parse_shard(*shard);
    } catch (const support::ContractViolation& violation) {
      throw ProtoError("bad shard: " + std::string(violation.what()));
    }
  }

  if (const auto mode = take_field(tokens, cursor, "engine")) {
    if (*mode == "scalar") {
      sweep.engine = engine::EngineMode::Scalar;
    } else if (*mode == "wavefront") {
      sweep.engine = engine::EngineMode::Wavefront;
    } else {
      // "auto" is spelled by absence; one canonical spelling per request.
      throw ProtoError("engine must be 'scalar' or 'wavefront' (got '" + std::string(*mode) +
                       "'; omit the field for auto)");
    }
  }

  if (const auto threads = take_field(tokens, cursor, "threads")) {
    sweep.threads = parse_u64(*threads, "threads", kMaxRequestThreads);
    if (*sweep.threads == 0) {
      throw ProtoError("threads must be >= 1");
    }
  }

  if (const auto cache = take_field(tokens, cursor, "cache")) {
    if (*cache != "off") {
      throw ProtoError("cache must be 'off' (got '" + std::string(*cache) +
                       "'; omit the field to use the shared cache)");
    }
    sweep.use_cache = false;
  }

  if (const auto store = take_field(tokens, cursor, "store")) {
    if (*store != "off") {
      throw ProtoError("store must be 'off' (got '" + std::string(*store) +
                       "'; the store directory is the server's, omit the field to use it)");
    }
    sweep.use_store = false;
  }

  if (cursor < tokens.size()) {
    throw ProtoError("unexpected field '" + std::string(tokens[cursor]) +
                     "' (fields must appear in canonical order)");
  }
  return sweep;
}

/// Stats lines interleave bare labels with values; the cursor must be
/// sitting on exactly `label`.
void require_label(const std::vector<std::string_view>& tokens, std::size_t& cursor,
                   std::string_view label) {
  if (cursor >= tokens.size()) {
    throw ProtoError("stats response ends before its '" + std::string(label) + "' section");
  }
  if (tokens[cursor] != label) {
    throw ProtoError("stats response expected '" + std::string(label) + "', got '" +
                     std::string(tokens[cursor]) + "'");
  }
  cursor += 1;
}

std::uint64_t labeled_u64(const std::vector<std::string_view>& tokens, std::size_t& cursor,
                          std::string_view label) {
  require_label(tokens, cursor, label);
  if (cursor >= tokens.size()) {
    throw ProtoError("stats response ends before the '" + std::string(label) + "' value");
  }
  return parse_u64(tokens[cursor++], label);
}

std::uint64_t positional_u64(const std::vector<std::string_view>& tokens, std::size_t& cursor,
                             std::string_view what) {
  if (cursor >= tokens.size()) {
    throw ProtoError("stats response ends before its " + std::string(what));
  }
  return parse_u64(tokens[cursor++], what);
}

LatencySummary parse_latency(const std::vector<std::string_view>& tokens, std::size_t& cursor,
                             std::string_view label) {
  require_label(tokens, cursor, label);
  LatencySummary summary;
  summary.count = positional_u64(tokens, cursor, "latency count");
  summary.p50_us = positional_u64(tokens, cursor, "latency p50");
  summary.p90_us = positional_u64(tokens, cursor, "latency p90");
  summary.p99_us = positional_u64(tokens, cursor, "latency p99");
  return summary;
}

std::string format_latency(std::string_view label, const LatencySummary& summary) {
  return std::string(label) + " " + std::to_string(summary.count) + " " +
         std::to_string(summary.p50_us) + " " + std::to_string(summary.p90_us) + " " +
         std::to_string(summary.p99_us);
}

}  // namespace

std::string format_request(const Request& request) {
  if (request.kind == Request::Kind::Ping) {
    return tag() + "ping";
  }
  if (request.kind == Request::Kind::Stats) {
    return tag() + "stats";
  }
  const SweepRequest& sweep = request.sweep;
  ARL_EXPECTS(!sweep.protocols.empty(), "a sweep request needs at least one protocol");
  ARL_EXPECTS(sweep.workload.bounded() != sweep.count.has_value(),
              "count must be present exactly for unbounded workloads");
  std::string line = tag() + "sweep workload=" + sweep.workload.name() + " protocols=";
  for (std::size_t i = 0; i < sweep.protocols.size(); ++i) {
    if (i > 0) {
      line += ',';
    }
    line += sweep.protocols[i].name();
  }
  line += " seed=" + std::to_string(sweep.seed);
  if (sweep.fault.active()) {
    line += " fault=" + sweep.fault.name();
  }
  if (sweep.count) {
    line += " count=" + std::to_string(*sweep.count);
  }
  if (sweep.shard) {
    line += " shard=" + sweep.shard->name();
  }
  if (sweep.engine != engine::EngineMode::Auto) {
    line += " engine=" + engine_token(sweep.engine);
  }
  if (sweep.threads) {
    line += " threads=" + std::to_string(*sweep.threads);
  }
  if (!sweep.use_cache) {
    line += " cache=off";
  }
  if (!sweep.use_store) {
    line += " store=off";
  }
  return line;
}

Request parse_request(std::string_view line) {
  if (line.size() > kMaxRequestLineBytes) {
    throw ProtoError("request line exceeds the " + std::to_string(kMaxRequestLineBytes) +
                     "-byte bound");
  }
  const std::vector<std::string_view> tokens = tokenize(line);
  check_tag(tokens);
  Request request;
  if (tokens[2] == "ping") {
    if (tokens.size() != 3) {
      throw ProtoError("ping takes no fields");
    }
    request.kind = Request::Kind::Ping;
    return request;
  }
  if (tokens[2] == "stats") {
    if (tokens.size() != 3) {
      throw ProtoError("stats takes no fields");
    }
    request.kind = Request::Kind::Stats;
    return request;
  }
  if (tokens[2] == "sweep") {
    request.kind = Request::Kind::Sweep;
    request.sweep = parse_sweep_fields(tokens, 3);
    return request;
  }
  throw ProtoError("unknown request '" + std::string(tokens[2]) +
                   "' (expected ping, stats or sweep)");
}

std::string format_response(const Response& response) {
  switch (response.kind) {
    case Response::Kind::Pong:
      return tag() + "pong " + std::to_string(response.totals.hits) + " " +
             std::to_string(response.totals.misses) + " " +
             std::to_string(response.totals.entries);
    case Response::Kind::Error:
      ARL_EXPECTS(!response.message.empty(), "an error response needs a message");
      return tag() + "error " + response.message;
    case Response::Kind::Busy:
      return tag() + "busy " + std::to_string(response.queue_limit);
    case Response::Kind::Ack:
      return tag() + "ack " + std::to_string(response.id);
    case Response::Kind::Begin:
      return tag() + "begin " + std::to_string(response.id);
    case Response::Kind::Done:
      return tag() + "done " + std::to_string(response.id) + " cache " +
             std::to_string(response.request_cache.hits) + " " +
             std::to_string(response.request_cache.misses) + " " +
             std::to_string(response.request_cache.schedule_builds) + " " +
             std::to_string(response.totals.hits) + " " +
             std::to_string(response.totals.misses) + " " +
             std::to_string(response.totals.entries);
    case Response::Kind::Stats: {
      const ServerStats& s = response.stats;
      return tag() + "stats uptime-ms " + std::to_string(s.uptime_ms) + " queued " +
             std::to_string(s.queued) + " active " + std::to_string(s.active) + " sessions " +
             std::to_string(s.sessions) + " accepted " + std::to_string(s.accepted) +
             " completed " + std::to_string(s.completed) + " failed " +
             std::to_string(s.failed) + " busy " + std::to_string(s.busy_rejections) +
             " drained " + std::to_string(s.drain_rejections) + " proto-errors " +
             std::to_string(s.protocol_errors) + " cache " + std::to_string(s.cache.hits) + " " +
             std::to_string(s.cache.misses) + " " + std::to_string(s.cache.entries) + " store " +
             std::to_string(s.store.hits) + " " + std::to_string(s.store.misses) + " " +
             std::to_string(s.store.saves) + " " +
             format_latency("queue-wait-us", s.queue_wait) + " " +
             format_latency("dispatch-us", s.dispatch);
    }
  }
  ARL_ASSERT(false, "unreachable response kind");
  return {};
}

std::optional<Response> match_response(std::string_view line) {
  // A report body line: the serve tag never leads anything but protocol
  // lines, and no shard-report record starts with it.
  if (line.substr(0, 10) != "arl-serve ") {
    return std::nullopt;
  }

  Response response;
  // The error message is free text (the rest of the line), so it is carved
  // off before the space-tokenizer sees it.
  const std::string error_prefix = tag() + "error ";
  if (line.substr(0, error_prefix.size()) == error_prefix) {
    response.kind = Response::Kind::Error;
    response.message = std::string(line.substr(error_prefix.size()));
    if (response.message.empty()) {
      throw ProtoError("error response without a message");
    }
    return response;
  }

  const std::vector<std::string_view> tokens = tokenize(line);
  check_tag(tokens);
  const std::string_view kind = tokens[2];
  const auto expect_size = [&](std::size_t want) {
    if (tokens.size() != want) {
      throw ProtoError("response '" + std::string(kind) + "' has " +
                       std::to_string(tokens.size() - 3) + " fields, expected " +
                       std::to_string(want - 3));
    }
  };
  if (kind == "pong") {
    expect_size(6);
    response.kind = Response::Kind::Pong;
    response.totals = {parse_u64(tokens[3], "pong hits"), parse_u64(tokens[4], "pong misses"),
                       parse_u64(tokens[5], "pong entries")};
    return response;
  }
  if (kind == "busy") {
    expect_size(4);
    response.kind = Response::Kind::Busy;
    response.queue_limit = parse_u64(tokens[3], "busy queue limit");
    return response;
  }
  if (kind == "ack" || kind == "begin") {
    expect_size(4);
    response.kind = kind == "ack" ? Response::Kind::Ack : Response::Kind::Begin;
    response.id = parse_u64(tokens[3], "request id");
    return response;
  }
  if (kind == "done") {
    expect_size(11);
    if (tokens[4] != "cache") {
      throw ProtoError("done response must carry a 'cache' section");
    }
    response.kind = Response::Kind::Done;
    response.id = parse_u64(tokens[3], "request id");
    response.request_cache = {parse_u64(tokens[5], "request cache hits"),
                              parse_u64(tokens[6], "request cache misses"),
                              parse_u64(tokens[7], "request cache builds")};
    response.totals = {parse_u64(tokens[8], "cumulative hits"),
                       parse_u64(tokens[9], "cumulative misses"),
                       parse_u64(tokens[10], "cumulative entries")};
    return response;
  }
  if (kind == "stats") {
    response.kind = Response::Kind::Stats;
    ServerStats& s = response.stats;
    std::size_t cursor = 3;
    s.uptime_ms = labeled_u64(tokens, cursor, "uptime-ms");
    s.queued = labeled_u64(tokens, cursor, "queued");
    s.active = labeled_u64(tokens, cursor, "active");
    s.sessions = labeled_u64(tokens, cursor, "sessions");
    s.accepted = labeled_u64(tokens, cursor, "accepted");
    s.completed = labeled_u64(tokens, cursor, "completed");
    s.failed = labeled_u64(tokens, cursor, "failed");
    s.busy_rejections = labeled_u64(tokens, cursor, "busy");
    s.drain_rejections = labeled_u64(tokens, cursor, "drained");
    s.protocol_errors = labeled_u64(tokens, cursor, "proto-errors");
    require_label(tokens, cursor, "cache");
    s.cache.hits = positional_u64(tokens, cursor, "cache hits");
    s.cache.misses = positional_u64(tokens, cursor, "cache misses");
    s.cache.entries = positional_u64(tokens, cursor, "cache entries");
    require_label(tokens, cursor, "store");
    s.store.hits = positional_u64(tokens, cursor, "store hits");
    s.store.misses = positional_u64(tokens, cursor, "store misses");
    s.store.saves = positional_u64(tokens, cursor, "store saves");
    s.queue_wait = parse_latency(tokens, cursor, "queue-wait-us");
    s.dispatch = parse_latency(tokens, cursor, "dispatch-us");
    if (cursor != tokens.size()) {
      throw ProtoError("stats response has trailing fields after '" +
                       std::string(tokens[cursor - 1]) + "'");
    }
    return response;
  }
  throw ProtoError("unknown response '" + std::string(kind) + "'");
}

void print_stats(std::ostream& out, std::string_view prefix, const ServerStats& stats) {
  out << prefix << "uptime " << stats.uptime_ms << " ms; queue " << stats.queued
      << " waiting, " << stats.active << " executing, " << stats.sessions << " sessions open\n";
  out << prefix << "requests: " << stats.accepted << " accepted, " << stats.completed
      << " completed, " << stats.failed << " failed, " << stats.busy_rejections << " busy, "
      << stats.drain_rejections << " rejected draining, " << stats.protocol_errors
      << " protocol errors\n";
  out << prefix << "cache: " << stats.cache.hits << " hits, " << stats.cache.misses
      << " misses, " << stats.cache.entries << " entries\n";
  out << prefix << "store " << stats.store.hits << " loads, " << stats.store.misses
      << " misses, " << stats.store.saves << " saves\n";
  out << prefix << "queue wait us: " << stats.queue_wait.count << " sampled, p50 "
      << stats.queue_wait.p50_us << ", p90 " << stats.queue_wait.p90_us << ", p99 "
      << stats.queue_wait.p99_us << "\n";
  out << prefix << "dispatch us: " << stats.dispatch.count << " sampled, p50 "
      << stats.dispatch.p50_us << ", p90 " << stats.dispatch.p90_us << ", p99 "
      << stats.dispatch.p99_us << "\n";
}

}  // namespace arl::serve
