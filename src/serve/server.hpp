#pragma once

/// \file server.hpp
/// The sweep service: a Unix-domain-socket daemon that executes sweep
/// requests through ONE shared `engine::BatchRunner` and streams shard
/// reports back.
///
/// Architecture (one process, three thread roles):
///
///  - The *accept loop* (`run()`) polls the listening socket and a stop
///    pipe; each accepted connection gets a session thread.
///  - A *session thread* per client frames request lines
///    (`support::LineFramer`), parses them (`serve_proto.hpp`), enqueues
///    sweep jobs and is the sole writer of its socket — responses for one
///    request stream back in order with no interleaving to referee.
///  - The single *dispatcher thread* pops jobs off a bounded queue and runs
///    them one at a time on the shared `BatchRunner` (its pool parallelizes
///    *within* a request; requests never compete for workers).  One
///    process-wide `engine::ScheduleCache` spans requests, so a client
///    re-submitting a workload hits schedules a previous request compiled —
///    and because the dispatcher serializes batches, snapshot deltas
///    (`ScheduleCacheStats::since`) attribute hits/misses to requests
///    exactly.
///
/// Backpressure: when `queue_limit` jobs are already waiting, new sweep
/// requests get a `busy` line immediately instead of queueing without bound.
///
/// Drain: `request_stop()` (async-signal-safe: one byte down a pipe) stops
/// the accept loop, unlinks the socket, shuts down the read side of every
/// session (no new requests), lets the dispatcher finish every job already
/// acknowledged — their reports still stream back — then joins everything.
/// `run()` returns only when the drain is complete.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "engine/schedule_cache.hpp"
#include "serve/serve_proto.hpp"
#include "store/artifact_store.hpp"

/// Unix-domain sockets gate the whole subsystem, like fork gates the CLI's
/// --workers mode; on other platforms construction throws.
#if defined(__unix__) || defined(__APPLE__)
#define ARL_SERVE_HAS_UNIX_SOCKETS 1
#else
#define ARL_SERVE_HAS_UNIX_SOCKETS 0
#endif

namespace arl::serve {

/// Thrown when the service cannot start (bad options, socket errors) or is
/// unsupported on this platform.
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& what) : std::runtime_error(what) {}
};

/// Configuration of a SweepServer.
struct ServerOptions {
  /// Filesystem path of the Unix-domain socket.  A *live* socket (one a
  /// connect() reaches) is refused; a stale one — left behind by a crashed
  /// daemon, detectable because connecting yields ECONNREFUSED — is
  /// unlinked and the path rebound.  A path occupied by a non-socket is
  /// always refused, and never unlinked.
  std::string socket_path;

  /// BatchRunner worker threads; 0 means hardware concurrency.
  unsigned threads = 0;

  /// Capacity of the process-wide schedule cache shared across requests;
  /// 0 disables caching entirely (requests run uncached).
  std::size_t cache_capacity = engine::ScheduleCache::kDefaultCapacity;

  /// Directory of an on-disk artifact store behind the shared cache (see
  /// store/tiered_cache.hpp); empty runs memory-only.  With a store, the
  /// daemon's warm cache survives restarts: compiles persist as they
  /// happen, and a fresh process preloads them on first touch.  Requires
  /// cache_capacity > 0.
  std::string store_directory = {};

  /// Sweep jobs allowed to *wait* (beyond the one executing); further
  /// submissions are answered with `busy`.  Must be >= 1.
  std::size_t queue_limit = 8;

  /// Per-send bound on a client that stops reading its response stream;
  /// a timed-out send drops that session, never the server.
  unsigned send_timeout_seconds = 60;
};

/// Monotonic counters plus gauges of a running server — the deterministic
/// observables the tests assert on (queued/active make backpressure and
/// drain states checkable without races).
struct ServerCounters {
  std::uint64_t accepted = 0;         ///< sweep requests acknowledged (queued)
  std::uint64_t completed = 0;        ///< sweep requests whose report streamed
  std::uint64_t failed = 0;           ///< sweep requests whose execution threw
  std::uint64_t busy_rejections = 0;  ///< submissions refused by the queue bound
  std::uint64_t drain_rejections = 0; ///< submissions refused while draining
  std::uint64_t protocol_errors = 0;  ///< malformed request lines answered with error
  std::uint64_t queued = 0;           ///< gauge: jobs waiting now
  std::uint64_t active = 0;           ///< gauge: 0 or 1 job executing now
  std::uint64_t sessions = 0;         ///< gauge: live client connections

  friend bool operator==(const ServerCounters& a, const ServerCounters& b) = default;
};

/// The sweep service.  Construction binds and listens (so a client may
/// connect the moment the constructor returns, even before run()); run()
/// serves until a stop is requested and returns fully drained.
class SweepServer {
 public:
  /// Binds `options.socket_path` and listens.  Throws ServeError on invalid
  /// options, an already-existing path, any socket failure, or when the
  /// platform has no Unix-domain sockets.
  explicit SweepServer(ServerOptions options);
  ~SweepServer();

  SweepServer(const SweepServer&) = delete;
  SweepServer& operator=(const SweepServer&) = delete;

  /// Serves until request_stop(), then drains (finishes every acknowledged
  /// job, streams its response, joins all threads) and returns.  Call at
  /// most once.
  void run();

  /// Requests a graceful stop.  Async-signal-safe (writes one byte to an
  /// internal pipe); callable from any thread or a signal handler.
  void request_stop();

  /// The write end of the stop pipe, for signal handlers that outlive this
  /// object's methods (write one byte == request_stop()).
  [[nodiscard]] int stop_fd() const;

  /// Snapshot of the counters.
  [[nodiscard]] ServerCounters counters() const;

  /// Cumulative counters of the shared schedule cache's memory tier (all
  /// zero when caching is disabled).
  [[nodiscard]] engine::ScheduleCacheStats cache_stats() const;

  /// Cumulative counters of the artifact store tier (all zero when the
  /// server runs without a store directory).
  [[nodiscard]] store::ArtifactStoreStats store_stats() const;

  /// The full observable state of the server — what a `stats` request
  /// returns on the wire and what the daemon's own startup/drain reporting
  /// prints (through serve::print_stats, so the two can never disagree):
  /// uptime, live gauges, lifecycle counters, cache/store totals, and the
  /// queue-wait / dispatch latency histograms summarized in microseconds.
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] const ServerOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace arl::serve
