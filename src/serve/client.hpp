#pragma once

/// \file client.hpp
/// Client side of the sweep service: one blocking connection that speaks
/// the serve_proto.hpp line protocol and recovers response streams.
///
/// A `submit()` walks the full response framing — ack, begin, the raw
/// `arl-shard-report 1` body, done — and returns the body bytes exactly as
/// the server's `dist::write_shard_report` produced them, so callers can
/// parse them (`dist::read_shard_report`), print them as a sweep table, or
/// write them to a file that `arl merge` consumes unchanged.  `busy` and
/// `error` outcomes are returned, not thrown: they are protocol results a
/// caller handles (retry, report); only *transport* failures — connect
/// errors, mid-response EOF, frame violations — throw `ClientError`.

#include <stdexcept>
#include <string>

#include "serve/serve_proto.hpp"
#include "support/line_io.hpp"

namespace arl::serve {

/// Thrown on transport failures: connection refused, the server closing
/// mid-response, or a response that violates the protocol.
class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

/// Outcome of one submission.
struct SubmitResult {
  /// The terminal response line: Done on success, Busy or Error otherwise.
  Response outcome;

  /// The raw shard-report bytes (newline-terminated lines), nonempty
  /// exactly when outcome.kind == Done.
  std::string report;

  [[nodiscard]] bool ok() const { return outcome.kind == Response::Kind::Done; }
};

/// One connection to a sweep service.  Blocking, single-threaded; reusable
/// for any number of requests in sequence.
class Client {
 public:
  /// Connects to the server's socket.  `timeout_seconds` > 0 bounds every
  /// send and receive (SO_SNDTIMEO / SO_RCVTIMEO), so a wedged server — one
  /// that accepted the connection but never answers — costs a ClientError
  /// after that long instead of blocking forever; 0 (the default, matching
  /// the historic behaviour) waits indefinitely.  Throws ClientError on
  /// connect failure (or when the platform has no Unix-domain sockets).
  explicit Client(const std::string& socket_path, unsigned timeout_seconds = 0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips a ping; returns the Pong (cumulative cache counters).
  [[nodiscard]] Response ping();

  /// Round-trips a stats request; returns the server's live ServerStats
  /// snapshot (uptime, queue gauges, cache/store totals, latency summaries).
  /// Throws ClientError when the server answers with an error.
  [[nodiscard]] ServerStats stats();

  /// Submits one sweep and consumes its full response stream.
  [[nodiscard]] SubmitResult submit(const SweepRequest& request);

 private:
  void send_all(std::string_view bytes);
  [[nodiscard]] std::string next_line();
  [[nodiscard]] Response next_protocol_line();

  int fd_ = -1;
  unsigned timeout_seconds_ = 0;  ///< 0: wait forever (no SO_RCVTIMEO/SO_SNDTIMEO set)
  support::LineFramer framer_;
};

}  // namespace arl::serve
