#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <list>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "dist/report_io.hpp"
#include "engine/batch_runner.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_proto.hpp"
#include "store/tiered_cache.hpp"
#include "support/line_io.hpp"

#if ARL_SERVE_HAS_UNIX_SOCKETS
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace arl::serve {

#if ARL_SERVE_HAS_UNIX_SOCKETS

namespace {

/// What the dispatcher hands back for one executed job.
struct JobResult {
  std::string report;             ///< serialized shard report ("" on failure)
  RequestCacheUse request_cache;  ///< this request's shared-cache delta
  CacheTotals totals;             ///< cumulative shared-cache counters after
  std::string error;              ///< nonempty exactly when execution failed
};

/// One acknowledged sweep request, shared between the session that owns the
/// socket and the dispatcher that executes it.  The promises sequence the
/// response stream: `started` releases the `begin` line, `finished` the
/// report (or error) — the session remains the only writer throughout.
struct PendingJob {
  std::uint64_t id = 0;
  SweepRequest request;
  /// When the job entered the queue; the dispatcher turns this into the
  /// ServeQueueWait sample the moment it pops the job.
  std::chrono::steady_clock::time_point enqueued{};
  std::promise<void> started;
  std::future<void> started_future = started.get_future();
  std::promise<JobResult> finished;
  std::future<JobResult> finished_future = finished.get_future();
};

/// Elapsed nanoseconds between two steady_clock stamps.
std::uint64_t elapsed_nanos(std::chrono::steady_clock::time_point from,
                            std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

/// Summarizes a nanosecond histogram as the wire's microsecond integers.
LatencySummary summarize_us(const obs::HistogramSnapshot& snap) {
  LatencySummary summary;
  summary.count = snap.count();
  summary.p50_us = snap.percentile(0.50) / 1000;
  summary.p90_us = snap.percentile(0.90) / 1000;
  summary.p99_us = snap.percentile(0.99) / 1000;
  return summary;
}

/// Writes all of `bytes`, tolerating short sends and EINTR.  False when the
/// peer is gone or SO_SNDTIMEO expired — the caller abandons the session.
bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t sent = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

bool send_line(int fd, const std::string& line) { return send_all(fd, line + "\n"); }

Response error_response(std::string message) {
  Response response;
  response.kind = Response::Kind::Error;
  response.message = std::move(message);
  return response;
}

}  // namespace

struct SweepServer::Impl {
  ServerOptions options;
  engine::BatchRunner runner;
  // Exactly one of these is set when caching is on: `tiered` (memory LRU
  // over the artifact store) when a store directory was given, else
  // `plain_cache`; both null when cache_capacity == 0.
  std::unique_ptr<engine::ScheduleCache> plain_cache;
  std::unique_ptr<store::TieredScheduleCache> tiered;

  /// The memory tier, whichever shape the cache has (null when uncached).
  [[nodiscard]] engine::ScheduleCache* memory_cache() const {
    return tiered ? &tiered->memory() : plain_cache.get();
  }

  int listen_fd = -1;
  int stop_rd = -1;
  int stop_wr = -1;
  bool ran = false;

  /// When the listener bound (construction), for the uptime gauge.
  const std::chrono::steady_clock::time_point start_time = std::chrono::steady_clock::now();

  // Serve-side latency histograms, owned per server so stats from two
  // in-process servers (the test fixtures run several) never mix.  Samples
  // are mirrored into the process-wide obs registry under the matching
  // phases, keeping the one-registry-instruments-everything story true.
  obs::LatencyHistogram queue_wait_hist;
  obs::LatencyHistogram dispatch_hist;

  // Job queue and counters, guarded by one mutex (the counters change on
  // the same events the queue does).
  mutable std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<PendingJob>> queue;
  bool draining = false;
  bool dispatcher_stop = false;
  std::uint64_t next_id = 1;
  ServerCounters counters;

  // Session bookkeeping.  std::list: nodes are stable, so session threads
  // may hold pointers to their own entry while the accept loop reaps others.
  struct Session {
    std::thread thread;
    int fd = -1;
    bool open = true;                ///< guarded by sessions_mutex (drain shuts open fds down)
    std::atomic<bool> finished{false};
  };
  std::mutex sessions_mutex;
  std::list<Session> sessions;

  /// Decides whether the already-occupied socket path is a *stale* socket —
  /// the leftover of a crashed daemon — and unlinks it if so.  Returns true
  /// exactly when the path was removed and a rebind is worth one retry.
  /// Probe before unlink: a path that is not a socket is never touched, and
  /// a socket some process still serves (the probe connect() succeeds)
  /// belongs to that process.  Only ECONNREFUSED — a socket inode nobody
  /// listens on — marks the path dead.
  [[nodiscard]] bool reclaim_stale_socket() const {
    struct ::stat info {};
    if (::lstat(options.socket_path.c_str(), &info) != 0 || !S_ISSOCK(info.st_mode)) {
      return false;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (probe < 0) {
      return false;
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, options.socket_path.c_str(), options.socket_path.size() + 1);
    const int rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
    const bool stale = rc != 0 && errno == ECONNREFUSED;
    ::close(probe);
    if (!stale) {
      return false;
    }
    return ::unlink(options.socket_path.c_str()) == 0;
  }

  [[nodiscard]] static engine::BatchOptions runner_options(const ServerOptions& opts) {
    engine::BatchOptions batch;
    batch.threads = opts.threads;
    return batch;
  }

  explicit Impl(ServerOptions opts)
      : options(std::move(opts)), runner(runner_options(options)) {
    if (options.socket_path.empty()) {
      throw ServeError("serve: socket path must not be empty");
    }
    if (options.queue_limit == 0) {
      throw ServeError("serve: queue limit must be >= 1");
    }
    sockaddr_un address{};
    if (options.socket_path.size() >= sizeof(address.sun_path)) {
      throw ServeError("serve: socket path exceeds the " +
                       std::to_string(sizeof(address.sun_path) - 1) + "-byte sockaddr_un bound");
    }
    if (!options.store_directory.empty() && options.cache_capacity == 0) {
      throw ServeError("serve: the artifact store needs the cache enabled (cache_capacity >= 1)");
    }
    if (!options.store_directory.empty()) {
      tiered = std::make_unique<store::TieredScheduleCache>(options.store_directory,
                                                            options.cache_capacity);
    } else if (options.cache_capacity > 0) {
      plain_cache = std::make_unique<engine::ScheduleCache>(options.cache_capacity);
    }

    listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) {
      throw ServeError(std::string("serve: socket() failed: ") + std::strerror(errno));
    }
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, options.socket_path.c_str(), options.socket_path.size() + 1);
    int rc = ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
    int saved = errno;
    if (rc != 0 && saved == EADDRINUSE && reclaim_stale_socket()) {
      // A crashed daemon left a dead socket (the probe connect() got
      // ECONNREFUSED); it has been unlinked — rebind once.
      rc = ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
      saved = errno;
    }
    if (rc != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      if (saved == EADDRINUSE) {
        throw ServeError("serve: socket path '" + options.socket_path +
                         "' is in use (a live server, or a non-socket file this server "
                         "refuses to remove)");
      }
      throw ServeError("serve: bind('" + options.socket_path +
                       "') failed: " + std::strerror(saved));
    }
    // The socket carries submissions from this user only; don't inherit a
    // permissive umask.  chmod-by-path, not fchmod: POSIX leaves fchmod on
    // a socket fd unspecified, while the bound path is a normal inode.
    if (::chmod(options.socket_path.c_str(), S_IRUSR | S_IWUSR) != 0) {
      const int saved = errno;
      cleanup_listener();
      throw ServeError(std::string("serve: chmod(0600) on the socket failed: ") +
                       std::strerror(saved));
    }
    if (::listen(listen_fd, 64) != 0) {
      const int saved = errno;
      cleanup_listener();
      throw ServeError(std::string("serve: listen() failed: ") + std::strerror(saved));
    }
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
      const int saved = errno;
      cleanup_listener();
      throw ServeError(std::string("serve: pipe() failed: ") + std::strerror(saved));
    }
    stop_rd = pipe_fds[0];
    stop_wr = pipe_fds[1];
    ::fcntl(stop_rd, F_SETFD, FD_CLOEXEC);
    ::fcntl(stop_wr, F_SETFD, FD_CLOEXEC);
  }

  ~Impl() {
    cleanup_listener();
    if (stop_rd >= 0) {
      ::close(stop_rd);
    }
    if (stop_wr >= 0) {
      ::close(stop_wr);
    }
  }

  void cleanup_listener() {
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
      ::unlink(options.socket_path.c_str());
    }
  }

  CacheTotals totals_snapshot() const {
    const engine::ScheduleCache* memory = memory_cache();
    if (memory == nullptr) {
      return {};
    }
    const engine::ScheduleCacheStats stats = memory->stats();
    return {stats.hits, stats.misses, stats.entries};
  }

  /// The full ServerStats snapshot a `stats` request answers with (also what
  /// the daemon's startup/drain reporting renders via print_stats).
  ServerStats stats_snapshot() const {
    ServerStats stats;
    stats.uptime_ms =
        elapsed_nanos(start_time, std::chrono::steady_clock::now()) / 1'000'000;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stats.queued = counters.queued;
      stats.active = counters.active;
      stats.sessions = counters.sessions;
      stats.accepted = counters.accepted;
      stats.completed = counters.completed;
      stats.failed = counters.failed;
      stats.busy_rejections = counters.busy_rejections;
      stats.drain_rejections = counters.drain_rejections;
      stats.protocol_errors = counters.protocol_errors;
    }
    stats.cache = totals_snapshot();
    if (tiered) {
      const store::ArtifactStoreStats store = tiered->artifacts().stats();
      stats.store = {store.hits, store.misses, store.saves};
    }
    stats.queue_wait = summarize_us(queue_wait_hist.snapshot());
    stats.dispatch = summarize_us(dispatch_hist.snapshot());
    return stats;
  }

  /// Executes one sweep request on the shared runner.  Never throws: any
  /// failure (out-of-range workload parameters and the like) becomes the
  /// request's error line.
  JobResult execute(const SweepRequest& request) {
    JobResult result;
    try {
      engine::InstantiateOptions instantiate;
      if (request.count) {
        instantiate.count = static_cast<std::size_t>(*request.count);
      }
      const engine::CountedSweep sweep =
          request.workload.instantiate(request.seed, request.protocols, instantiate);
      dist::JobRange range{0, sweep.count};
      if (request.shard) {
        range = dist::shard_range(sweep.count, *request.shard);
      }

      engine::RunOverrides overrides;
      overrides.seed = request.seed;
      overrides.fault = request.fault;
      if (request.engine != engine::EngineMode::Auto) {
        overrides.engine = request.engine;
      }
      if (request.threads) {
        overrides.max_threads = static_cast<std::size_t>(*request.threads);
      }
      engine::ScheduleCache* const memory = memory_cache();
      const bool shared = memory != nullptr && request.use_cache;
      if (shared) {
        // store=off keeps the warm memory tier but skips the disk: the
        // request then sees exactly a memory-only server.
        overrides.shared_cache =
            (tiered && request.use_store)
                ? static_cast<core::ScheduleCacheHandle*>(tiered.get())
                : static_cast<core::ScheduleCacheHandle*>(memory);
      }

      // The dispatcher serializes requests, so nothing else touches the
      // shared cache between these snapshots: the delta is exact.  The
      // memory tier fronts both shapes, so its counters attribute tiered
      // requests too (a disk hit promotes into the memory tier).
      engine::ScheduleCacheStats before;
      if (shared) {
        before = memory->stats();
      }
      engine::BatchReport report = runner.run_range(range.begin, range.end, sweep.source,
                                                    overrides);
      if (shared) {
        const engine::ScheduleCacheStats delta = memory->stats().since(before);
        report.cache = delta;
        result.request_cache = {delta.hits, delta.misses, delta.schedule_builds};
      }

      dist::SweepKey key;
      key.description = request.workload.name();
      key.digest = request.workload.digest();
      key.seed = request.seed;
      key.total_jobs = sweep.count;
      key.fault = request.fault.name();
      key.protocols.reserve(request.protocols.size());
      for (const core::ProtocolSpec& protocol : request.protocols) {
        key.protocols.push_back(protocol.name());
      }
      std::ostringstream out;
      dist::write_shard_report(dist::make_shard_report(std::move(key), range, std::move(report)),
                               out);
      result.report = out.str();
    } catch (const std::exception& failure) {
      result.report.clear();
      result.error = failure.what();
    }
    result.totals = totals_snapshot();
    return result;
  }

  void dispatch_loop() {
    for (;;) {
      std::shared_ptr<PendingJob> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [this] { return dispatcher_stop || !queue.empty(); });
        if (queue.empty()) {
          return;  // dispatcher_stop and nothing left: fully drained
        }
        job = queue.front();
        queue.pop_front();
        counters.queued = queue.size();
        counters.active = 1;
      }
      const auto picked_up = std::chrono::steady_clock::now();
      const std::uint64_t wait_nanos = elapsed_nanos(job->enqueued, picked_up);
      queue_wait_hist.record(wait_nanos);
      obs::Registry::global().record(obs::Phase::ServeQueueWait, wait_nanos);
      job->started.set_value();
      JobResult result = execute(job->request);
      const std::uint64_t dispatch_nanos =
          elapsed_nanos(picked_up, std::chrono::steady_clock::now());
      dispatch_hist.record(dispatch_nanos);
      obs::Registry::global().record(obs::Phase::ServeDispatch, dispatch_nanos);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        counters.active = 0;
        if (result.error.empty()) {
          counters.completed += 1;
        } else {
          counters.failed += 1;
        }
      }
      job->finished.set_value(std::move(result));
    }
  }

  /// Handles one framed request line.  Returns false when the session's
  /// socket failed (the session then closes); a *protocol* failure returns
  /// true after answering with an error line.
  bool handle_line(int fd, const std::string& line) {
    Request request;
    try {
      request = parse_request(line);
    } catch (const ProtoError& violation) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        counters.protocol_errors += 1;
      }
      return send_line(fd, format_response(error_response(violation.what())));
    }

    if (request.kind == Request::Kind::Ping) {
      Response pong;
      pong.kind = Response::Kind::Pong;
      pong.totals = totals_snapshot();
      return send_line(fd, format_response(pong));
    }

    if (request.kind == Request::Kind::Stats) {
      Response stats;
      stats.kind = Response::Kind::Stats;
      stats.stats = stats_snapshot();
      return send_line(fd, format_response(stats));
    }

    std::shared_ptr<PendingJob> job;
    Response refusal;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (draining) {
        counters.drain_rejections += 1;
        refusal = error_response("server is draining; submit again after it restarts");
      } else if (queue.size() >= options.queue_limit) {
        counters.busy_rejections += 1;
        refusal.kind = Response::Kind::Busy;
        refusal.queue_limit = options.queue_limit;
      } else {
        job = std::make_shared<PendingJob>();
        job->id = next_id;
        next_id += 1;
        job->request = request.sweep;
        job->enqueued = std::chrono::steady_clock::now();
        queue.push_back(job);
        counters.accepted += 1;
        counters.queued = queue.size();
      }
    }
    if (!job) {
      return send_line(fd, format_response(refusal));
    }
    work_cv.notify_one();

    Response ack;
    ack.kind = Response::Kind::Ack;
    ack.id = job->id;
    // A send failure past this point abandons the session but never the
    // job: it already holds a queue slot and the dispatcher will run it
    // (fulfilling promises nobody reads is harmless).
    if (!send_line(fd, format_response(ack))) {
      return false;
    }

    job->started_future.wait();
    Response begin;
    begin.kind = Response::Kind::Begin;
    begin.id = job->id;
    if (!send_line(fd, format_response(begin))) {
      return false;
    }

    const JobResult result = job->finished_future.get();
    if (!result.error.empty()) {
      return send_line(fd, format_response(error_response(result.error)));
    }
    if (!send_all(fd, result.report)) {
      return false;
    }
    Response done;
    done.kind = Response::Kind::Done;
    done.id = job->id;
    done.request_cache = result.request_cache;
    done.totals = result.totals;
    return send_line(fd, format_response(done));
  }

  void session_loop(Session* session) {
    const int fd = session->fd;
    support::LineFramer framer(kMaxRequestLineBytes);
    char buffer[4096];
    bool alive = true;
    try {
      while (alive) {
        while (alive) {
          const std::optional<std::string> line = framer.pop();
          if (!line) {
            break;
          }
          alive = handle_line(fd, *line);
        }
        if (!alive) {
          break;
        }
        const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        if (got == 0) {
          break;  // orderly close (or drain's SHUT_RD)
        }
        if (got < 0) {
          if (errno == EINTR) {
            continue;
          }
          break;
        }
        framer.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
      }
    } catch (const support::LineTooLong& violation) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        counters.protocol_errors += 1;
      }
      send_line(fd, format_response(error_response(violation.what())));
    }
    {
      // Mark closed under the lock so drain never shuts down a dead fd.
      const std::lock_guard<std::mutex> lock(sessions_mutex);
      session->open = false;
    }
    ::close(fd);
    {
      const std::lock_guard<std::mutex> lock(mutex);
      counters.sessions -= 1;
    }
    session->finished.store(true);
  }

  void spawn_session(int fd) {
    const timeval timeout{static_cast<time_t>(options.send_timeout_seconds), 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    Session* session = nullptr;
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex);
      sessions.emplace_back();
      session = &sessions.back();
      session->fd = fd;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex);
      counters.sessions += 1;
    }
    session->thread = std::thread([this, session] { session_loop(session); });
  }

  void reap_finished_sessions() {
    const std::lock_guard<std::mutex> lock(sessions_mutex);
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (it->finished.load()) {
        it->thread.join();
        it = sessions.erase(it);
      } else {
        ++it;
      }
    }
  }

  void run() {
    std::thread dispatcher([this] { dispatch_loop(); });
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_rd, POLLIN, 0}};
      const int ready = ::poll(fds, 2, 200);
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      reap_finished_sessions();
      if ((fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        break;  // stop requested
      }
      if ((fds[0].revents & POLLIN) != 0) {
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client >= 0) {
          spawn_session(client);
        }
      }
    }

    // Drain: no new connections or submissions, but everything acknowledged
    // completes and streams back before run() returns.
    {
      const std::lock_guard<std::mutex> lock(mutex);
      draining = true;
    }
    cleanup_listener();
    {
      // Wake sessions blocked in recv(); their write side stays open so
      // in-flight responses still reach the client.
      const std::lock_guard<std::mutex> lock(sessions_mutex);
      for (Session& session : sessions) {
        if (session.open) {
          ::shutdown(session.fd, SHUT_RD);
        }
      }
    }
    // The accept loop is gone, so nothing appends to `sessions`; joining
    // without the lock is safe (session threads touch only their own node).
    for (Session& session : sessions) {
      if (session.thread.joinable()) {
        session.thread.join();
      }
    }
    sessions.clear();
    {
      const std::lock_guard<std::mutex> lock(mutex);
      dispatcher_stop = true;
      counters.sessions = 0;
    }
    work_cv.notify_all();
    dispatcher.join();
  }
};

SweepServer::SweepServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SweepServer::~SweepServer() = default;

void SweepServer::run() {
  if (impl_->ran) {
    throw ServeError("serve: run() may be called at most once");
  }
  impl_->ran = true;
  impl_->run();
}

void SweepServer::request_stop() {
  const char byte = 's';
  // Async-signal-safe: one write, no locks, no allocation.
  [[maybe_unused]] const ssize_t rc = ::write(impl_->stop_wr, &byte, 1);
}

int SweepServer::stop_fd() const { return impl_->stop_wr; }

ServerCounters SweepServer::counters() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->counters;
}

engine::ScheduleCacheStats SweepServer::cache_stats() const {
  const engine::ScheduleCache* memory = impl_->memory_cache();
  if (memory == nullptr) {
    return {};
  }
  return memory->stats();
}

store::ArtifactStoreStats SweepServer::store_stats() const {
  if (!impl_->tiered) {
    return {};
  }
  return impl_->tiered->artifacts().stats();
}

ServerStats SweepServer::stats() const { return impl_->stats_snapshot(); }

const ServerOptions& SweepServer::options() const { return impl_->options; }

#else  // !ARL_SERVE_HAS_UNIX_SOCKETS

struct SweepServer::Impl {};

namespace {
[[noreturn]] void unsupported() {
  throw ServeError("the sweep service requires unix domain sockets, unavailable on this platform");
}
}  // namespace

SweepServer::SweepServer(ServerOptions) { unsupported(); }
SweepServer::~SweepServer() = default;
void SweepServer::run() { unsupported(); }
void SweepServer::request_stop() { unsupported(); }
int SweepServer::stop_fd() const { unsupported(); }
ServerCounters SweepServer::counters() const { unsupported(); }
engine::ScheduleCacheStats SweepServer::cache_stats() const { unsupported(); }
store::ArtifactStoreStats SweepServer::store_stats() const { unsupported(); }
ServerStats SweepServer::stats() const { unsupported(); }
const ServerOptions& SweepServer::options() const { unsupported(); }

#endif  // ARL_SERVE_HAS_UNIX_SOCKETS

}  // namespace arl::serve
