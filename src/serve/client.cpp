#include "serve/client.hpp"

#include <cstring>
#include <string_view>
#include <utility>

#include "serve/server.hpp"  // ARL_SERVE_HAS_UNIX_SOCKETS

#if ARL_SERVE_HAS_UNIX_SOCKETS
#include <cerrno>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace arl::serve {

#if ARL_SERVE_HAS_UNIX_SOCKETS

Client::Client(const std::string& socket_path, unsigned timeout_seconds) {
  sockaddr_un address{};
  if (socket_path.empty() || socket_path.size() >= sizeof(address.sun_path)) {
    throw ClientError("submit: bad socket path '" + socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw ClientError(std::string("submit: socket() failed: ") + std::strerror(errno));
  }
  if (timeout_seconds > 0) {
    // Bound both directions: a wedged server neither reads requests nor
    // writes responses.  recv()/send() then fail with EAGAIN/EWOULDBLOCK,
    // which the I/O loops turn into a timeout ClientError.
    const timeval timeout{static_cast<time_t>(timeout_seconds), 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    timeout_seconds_ = timeout_seconds;
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw ClientError("submit: cannot connect to '" + socket_path +
                      "': " + std::strerror(saved) + " (is the server running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Client::send_all(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t sent = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw ClientError("submit: server did not accept the request within " +
                          std::to_string(timeout_seconds_) + "s (wedged server?)");
      }
      throw ClientError(std::string("submit: send failed: ") + std::strerror(errno));
    }
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
}

std::string Client::next_line() {
  for (;;) {
    if (std::optional<std::string> line = framer_.pop()) {
      return std::move(*line);
    }
    char buffer[4096];
    const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (got == 0) {
      throw ClientError("submit: server closed the connection mid-response");
    }
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw ClientError("submit: no response from the server within " +
                          std::to_string(timeout_seconds_) + "s (wedged server?)");
      }
      throw ClientError(std::string("submit: recv failed: ") + std::strerror(errno));
    }
    framer_.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
  }
}

Response Client::next_protocol_line() {
  const std::string line = next_line();
  std::optional<Response> response;
  try {
    response = match_response(line);
  } catch (const ProtoError& violation) {
    throw ClientError(std::string("submit: malformed response: ") + violation.what());
  }
  if (!response) {
    throw ClientError("submit: expected a protocol line, got '" + line + "'");
  }
  return *response;
}

Response Client::ping() {
  Request request;
  request.kind = Request::Kind::Ping;
  send_all(format_request(request) + "\n");
  const Response response = next_protocol_line();
  if (response.kind == Response::Kind::Error) {
    throw ClientError("submit: ping answered with error: " + response.message);
  }
  if (response.kind != Response::Kind::Pong) {
    throw ClientError("submit: ping answered with an unexpected response");
  }
  return response;
}

ServerStats Client::stats() {
  Request request;
  request.kind = Request::Kind::Stats;
  send_all(format_request(request) + "\n");
  const Response response = next_protocol_line();
  if (response.kind == Response::Kind::Error) {
    throw ClientError("submit: stats answered with error: " + response.message);
  }
  if (response.kind != Response::Kind::Stats) {
    throw ClientError("submit: stats answered with an unexpected response");
  }
  return response.stats;
}

SubmitResult Client::submit(const SweepRequest& sweep) {
  Request request;
  request.kind = Request::Kind::Sweep;
  request.sweep = sweep;
  send_all(format_request(request) + "\n");

  const Response first = next_protocol_line();
  if (first.kind == Response::Kind::Busy || first.kind == Response::Kind::Error) {
    return {first, {}};
  }
  if (first.kind != Response::Kind::Ack) {
    throw ClientError("submit: expected ack, busy or error as the first response");
  }

  SubmitResult result;
  bool begun = false;
  for (;;) {
    const std::string line = next_line();
    std::optional<Response> response;
    try {
      response = match_response(line);
    } catch (const ProtoError& violation) {
      throw ClientError(std::string("submit: malformed response: ") + violation.what());
    }
    if (!response) {
      // A raw shard-report line: protocol lines may not interleave a body.
      if (!begun) {
        throw ClientError("submit: report body before the begin line");
      }
      result.report += line;
      result.report += '\n';
      continue;
    }
    switch (response->kind) {
      case Response::Kind::Begin:
        if (begun || response->id != first.id) {
          throw ClientError("submit: unexpected begin line");
        }
        begun = true;
        break;
      case Response::Kind::Done:
        if (!begun || response->id != first.id || result.report.empty()) {
          throw ClientError("submit: done line without a complete report body");
        }
        result.outcome = *response;
        return result;
      case Response::Kind::Error:
        result.outcome = *response;
        result.report.clear();
        return result;
      case Response::Kind::Pong:
      case Response::Kind::Busy:
      case Response::Kind::Ack:
      case Response::Kind::Stats:
        throw ClientError("submit: unexpected response inside a sweep stream");
    }
  }
}

#else  // !ARL_SERVE_HAS_UNIX_SOCKETS

Client::Client(const std::string&, unsigned) {
  throw ClientError("the sweep service requires unix domain sockets, unavailable here");
}
Client::~Client() = default;
void Client::send_all(std::string_view) {}
std::string Client::next_line() { return {}; }
Response Client::next_protocol_line() { return {}; }
Response Client::ping() { return {}; }
ServerStats Client::stats() { return {}; }
SubmitResult Client::submit(const SweepRequest&) { return {}; }

#endif  // ARL_SERVE_HAS_UNIX_SOCKETS

}  // namespace arl::serve
