#pragma once

/// \file stopwatch.hpp
/// Wall-clock stopwatch for experiment timing (steady clock).

#include <chrono>

namespace arl::support {

/// Measures elapsed wall time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last restart().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace arl::support
