#include "support/assert.hpp"

#include <sstream>

namespace arl::support::detail {

void contract_fail(const char* kind, const char* expr, const char* file, int line,
                   const std::string& message) {
  std::ostringstream out;
  out << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw ContractViolation(out.str());
}

}  // namespace arl::support::detail
