#pragma once

/// \file hash.hpp
/// Streaming 64-bit digest for keyed artifacts.
///
/// The schedule cache and the distributed-sweep artifact layer key compiled
/// knowledge (configurations, canonical schedules) by a stable 64-bit
/// fingerprint.  This hasher is the one mixing function behind those keys:
/// every absorbed word is avalanched with the SplitMix64 finalizer and
/// chained into the state, so the digest is order-sensitive and a single-bit
/// change in any word flips about half of the output bits.  It is a content
/// digest, not a cryptographic hash — collision resistance is statistical
/// (~2^-64 per pair), which the cache backstops by verifying the stored
/// configuration on every hit.

#include <cstdint>
#include <string_view>

namespace arl::support {

/// Order-sensitive streaming 64-bit hasher (SplitMix64 finalizer chain).
class Hash64 {
 public:
  /// Starts a stream; distinct seeds give independent digest families, so
  /// callers can domain-separate their key spaces.
  explicit constexpr Hash64(std::uint64_t seed = 0) : state_(avalanche(seed ^ kDomain)) {}

  /// Mixes one word into the stream.
  constexpr Hash64& absorb(std::uint64_t word) {
    state_ = avalanche(state_ ^ avalanche(word ^ kDomain));
    return *this;
  }

  /// Digest of everything absorbed so far (the stream may continue after).
  [[nodiscard]] constexpr std::uint64_t digest() const { return avalanche(state_); }

 private:
  // Fixed offset keeping absorb(0) from being a no-op on a zero state.
  static constexpr std::uint64_t kDomain = 0x9E3779B97F4A7C15ULL;

  /// SplitMix64 finalizer: full avalanche in three xor-shift-multiply steps.
  [[nodiscard]] static constexpr std::uint64_t avalanche(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t state_;
};

/// Digest of a byte string: length first, then every byte — the keyed-text
/// convention shared by workload digests (engine/workload.hpp) and the
/// shard-report wire format (dist/report_io.cpp).  Distinct seeds separate
/// the key domains.
[[nodiscard]] constexpr std::uint64_t hash_text(std::string_view text, std::uint64_t seed) {
  Hash64 hash(seed);
  hash.absorb(text.size());
  for (const char c : text) {
    hash.absorb(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return hash.digest();
}

/// Bulk digest of a byte string: length first, then eight bytes per
/// absorbed word (little-endian packing, zero-padded tail; the absorbed
/// length disambiguates the padding).  ~8x fewer avalanche rounds than
/// hash_text on long texts — used for the artifact store's body digest,
/// whose entries run to tens of kilobytes.  NOT interchangeable with
/// hash_text: the two digest families disagree on every input by design.
[[nodiscard]] constexpr std::uint64_t hash_text_bulk(std::string_view text, std::uint64_t seed) {
  Hash64 hash(seed);
  hash.absorb(text.size());
  std::size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(text[i + b])) << (8 * b);
    }
    hash.absorb(word);
  }
  if (i < text.size()) {
    std::uint64_t word = 0;
    for (int b = 0; i < text.size(); ++i, ++b) {
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(text[i])) << (8 * b);
    }
    hash.absorb(word);
  }
  return hash.digest();
}

}  // namespace arl::support
