#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace arl::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ARL_EXPECTS(!headers_.empty(), "a table needs at least one column");
}

Table& Table::add_row(std::vector<Cell> row) {
  ARL_EXPECTS(row.size() == headers_.size(), "row width must match header count");
  rows_.push_back(std::move(row));
  return *this;
}

Table& Table::set_precision(int digits) {
  ARL_EXPECTS(digits >= 1 && digits <= 17, "precision out of range");
  precision_ = digits;
  return *this;
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&cell)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision_, *d);
    return buf;
  }
  return std::get<std::string>(cell);
}

void Table::print_markdown(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rendered) {
    print_row(row);
  }
}

void Table::print_csv(std::ostream& out) const {
  auto quote = [](const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) {
      return text;
    }
    std::string quoted = "\"";
    for (const char ch : text) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << quote(format_cell(row[c]));
    }
    out << '\n';
  }
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  print_markdown(out);
  return out.str();
}

}  // namespace arl::support
