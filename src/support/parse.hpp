#pragma once

/// \file parse.hpp
/// Strict numeric grammar shared by the text surfaces that must agree on
/// one canonical spelling of a number: workload names (engine/workload.cpp,
/// whose `p=` values travel inside shard-report descriptions) and the
/// shard-report wire format itself (dist/report_io.cpp).  One predicate, so
/// the two parsers can never drift apart on what a number looks like.

#include <string_view>

namespace arl::support {

/// True when `text` is a canonical non-negative number:
/// digits[.digits][e[+-]digits].  Deliberately narrower than std::stod's
/// grammar — no signs, inf/nan, hexfloats or surrounding whitespace — so a
/// writer that prints this form round-trips and nothing else parses.
[[nodiscard]] constexpr bool is_canonical_number(std::string_view text) {
  std::size_t i = 0;
  const auto digits = [&]() {
    const std::size_t start = i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
    }
    return i > start;
  };
  if (!digits()) {
    return false;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    if (!digits()) {
      return false;
    }
  }
  if (i < text.size() && text[i] == 'e') {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
      ++i;
    }
    if (!digits()) {
      return false;
    }
  }
  return i == text.size();
}

}  // namespace arl::support
