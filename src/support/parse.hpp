#pragma once

/// \file parse.hpp
/// Strict numeric grammar shared by the text surfaces that must agree on
/// one canonical spelling of a number: workload names (engine/workload.cpp,
/// whose `p=` values travel inside shard-report descriptions), the
/// shard-report wire format (dist/report_io.cpp) and the sweep-service
/// request protocol (serve/serve_proto.cpp).  One predicate and one integer
/// parser, so the parsers can never drift apart on what a number looks like.
///
/// `TokenCursor` serves the artifact text formats (config::to_text,
/// classification_to_text, schedule_to_text), whose hot lines carry
/// thousands of numeric tokens — an adjacency list, a per-node class
/// vector, a label history per node.  One istringstream extraction per
/// token costs a locale-aware stream setup per line and a virtual sentry
/// per number; that made *parsing* a stored artifact about as expensive as
/// re-deriving it.  The cursor scans a line in place with std::from_chars:
/// no allocation, no locale, no stream state.

#include <charconv>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <system_error>

namespace arl::support {

/// True when `text` is a canonical non-negative number:
/// digits[.digits][e[+-]digits].  Deliberately narrower than std::stod's
/// grammar — no signs, inf/nan, hexfloats or surrounding whitespace — so a
/// writer that prints this form round-trips and nothing else parses.
[[nodiscard]] constexpr bool is_canonical_number(std::string_view text) {
  std::size_t i = 0;
  const auto digits = [&]() {
    const std::size_t start = i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
    }
    return i > start;
  };
  if (!digits()) {
    return false;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    if (!digits()) {
      return false;
    }
  }
  if (i < text.size() && text[i] == 'e') {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
      ++i;
    }
    if (!digits()) {
      return false;
    }
  }
  return i == text.size();
}

/// Parses a strict canonical decimal u64: nonempty, digits only (no signs,
/// whitespace or leading-zero alternatives rejected by length alone), at
/// most 20 characters, and within [0, max].  Returns nullopt on any
/// violation so callers translate into their own error types.
[[nodiscard]] constexpr std::optional<std::uint64_t> parse_decimal_u64(
    std::string_view text, std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  if (text.empty() || text.size() > 20) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  if (value > max) {
    return std::nullopt;
  }
  return value;
}

/// Splits one line into whitespace-separated tokens, in place.  The cursor
/// only borrows the text — callers keep the backing string alive for as
/// long as returned tokens are used.
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view text)
      : pos_(text.data()), end_(text.data() + text.size()) {}

  /// Advances to the next token; false at end of line.
  bool next(std::string_view& token) {
    while (pos_ != end_ && is_space(*pos_)) {
      ++pos_;
    }
    if (pos_ == end_) {
      return false;
    }
    const char* start = pos_;
    while (pos_ != end_ && !is_space(*pos_)) {
      ++pos_;
    }
    token = std::string_view(start, static_cast<std::size_t>(pos_ - start));
    return true;
  }

  /// Parses the next token as an integer of type T; false when the line is
  /// exhausted or the token has any non-numeric byte (no partial parses).
  template <typename T>
  bool next_number(T& value) {
    std::string_view token;
    if (!next(token)) {
      return false;
    }
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    return ec == std::errc{} && ptr == token.data() + token.size();
  }

 private:
  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

  const char* pos_;
  const char* end_;
};

}  // namespace arl::support
