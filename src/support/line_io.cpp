#include "support/line_io.hpp"

#include <istream>

#include "support/assert.hpp"

namespace arl::support {

void LineFramer::feed(std::string_view bytes) {
  ARL_EXPECTS(!finished_, "LineFramer::feed after finish()");
  if (poisoned_) {
    throw LineTooLong(max_line_bytes_);
  }
  while (!bytes.empty()) {
    const std::size_t newline = bytes.find('\n');
    if (newline == std::string_view::npos) {
      if (partial_.size() + bytes.size() > max_line_bytes_) {
        poisoned_ = true;
        throw LineTooLong(max_line_bytes_);
      }
      partial_.append(bytes);
      return;
    }
    if (partial_.size() + newline > max_line_bytes_) {
      poisoned_ = true;
      throw LineTooLong(max_line_bytes_);
    }
    partial_.append(bytes.substr(0, newline));
    lines_.push_back(std::move(partial_));
    partial_.clear();
    bytes.remove_prefix(newline + 1);
  }
}

std::optional<std::string> LineFramer::pop() {
  if (lines_.empty()) {
    return std::nullopt;
  }
  std::string line = std::move(lines_.front());
  lines_.pop_front();
  return line;
}

void LineFramer::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (!partial_.empty()) {
    lines_.push_back(std::move(partial_));
    partial_.clear();
  }
}

std::vector<std::string> read_lines(std::istream& in, std::size_t max_line_bytes) {
  LineFramer framer(max_line_bytes);
  std::vector<std::string> lines;
  char buffer[4096];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    framer.feed(std::string_view(buffer, static_cast<std::size_t>(in.gcount())));
    for (std::optional<std::string> line = framer.pop(); line; line = framer.pop()) {
      lines.push_back(std::move(*line));
    }
  }
  framer.finish();
  for (std::optional<std::string> line = framer.pop(); line; line = framer.pop()) {
    lines.push_back(std::move(*line));
  }
  return lines;
}

}  // namespace arl::support
