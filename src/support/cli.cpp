#include "support/cli.hpp"

#include <cstdlib>

#include "support/assert.hpp"

namespace arl::support {

Args::Args(int argc, const char* const* argv) {
  ARL_EXPECTS(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_.emplace_back(arg.substr(2), "");
      } else {
        flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> Args::find(const std::string& name) const {
  for (const auto& [flag, value] : flags_) {
    if (flag == name) {
      return value;
    }
  }
  return std::nullopt;
}

bool Args::has(const std::string& name) const { return find(name).has_value(); }

std::string Args::get_string(const std::string& name, const std::string& fallback) const {
  const auto value = find(name);
  return value ? *value : fallback;
}

std::vector<std::string> Args::get_strings(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [flag, value] : flags_) {
    if (flag == name) {
      values.push_back(value);
    }
  }
  return values;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = find(name);
  if (!value) {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  ARL_EXPECTS(end != value->c_str() && *end == '\0', "malformed integer for --" + name);
  return parsed;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto value = find(name);
  if (!value) {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  ARL_EXPECTS(end != value->c_str() && *end == '\0', "malformed double for --" + name);
  return parsed;
}

}  // namespace arl::support
