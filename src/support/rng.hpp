#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for experiments.
///
/// All randomness in the repository flows through this type so that every
/// test, example and benchmark is reproducible from a single seed.  The
/// generator is xoshiro256** seeded via SplitMix64; `split()` derives
/// statistically independent child streams, which is how parallel sweeps stay
/// deterministic regardless of thread scheduling.

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace arl::support {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the stream; two Rng with the same seed produce identical output.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double real();

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Derives an independent child stream; children with distinct ids are
  /// independent of each other and of the parent's future output.
  Rng split(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    ARL_EXPECTS(!items.empty(), "pick from empty vector");
    return items[static_cast<std::size_t>(below(items.size()))];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace arl::support
