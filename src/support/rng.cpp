#include "support/rng.hpp"

namespace arl::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// SplitMix64 step, used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // xoshiro must not start in the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  ARL_EXPECTS(bound > 0, "below(0) is undefined");
  // Debiased modulo (rejection sampling on the tail).
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t value = next();
    if (value >= threshold) {
      return value % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  ARL_EXPECTS(lo <= hi, "range(lo, hi) requires lo <= hi");
  const std::uint64_t width = static_cast<std::uint64_t>(hi - lo) + 1;
  if (width == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(width));
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return real() < p;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through SplitMix64 to derive a
  // decorrelated child seed.  The parent is not advanced.
  std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t child_seed = splitmix64(sm) ^ splitmix64(sm);
  return Rng(child_seed);
}

}  // namespace arl::support
