#include "support/thread_pool.hpp"

#include <algorithm>

namespace arl::support {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned count = threads;
  if (count == 0) {
    count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min<std::size_t>(total, pool.size() * 4);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const std::size_t lo = begin + chunk * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) {
      break;
    }
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) {
        body(i);
      }
    }));
  }
  for (auto& future : futures) {
    future.get();  // propagates the first exception, if any
  }
}

}  // namespace arl::support
