#pragma once

/// \file table.hpp
/// Small result-table builder used by benchmarks and examples to print the
/// paper-style rows (markdown) and machine-readable output (CSV).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace arl::support {

/// One table cell: integer, floating point or text.
using Cell = std::variant<std::int64_t, double, std::string>;

/// Column-oriented table with aligned markdown rendering.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  Table& add_row(std::vector<Cell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Number of columns.
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Sets the number of significant digits used for double cells (default 4).
  Table& set_precision(int digits);

  /// Renders as a GitHub-flavoured markdown table.
  void print_markdown(std::ostream& out) const;

  /// Renders as CSV (RFC-4180 quoting for text cells).
  void print_csv(std::ostream& out) const;

  /// Renders markdown to a string (convenience for tests).
  [[nodiscard]] std::string to_markdown() const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace arl::support
