#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for the example and benchmark binaries.
///
/// Accepts `--name=value` and bare `--name` flags; everything else is kept as
/// a positional argument.  Typed getters fall back to a default when the flag
/// is absent and throw ContractViolation on malformed values, so misuse fails
/// loudly instead of silently running the wrong experiment.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace arl::support {

/// Parsed command line.
class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True when `--name` or `--name=value` was given.
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of `--name=value`, or `fallback` when absent.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;

  /// Every value of a repeatable `--name=value` flag, in command-line order
  /// (empty when the flag was never given).
  [[nodiscard]] std::vector<std::string> get_strings(const std::string& name) const;

  /// Integer value of `--name=value`, or `fallback` when absent.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double value of `--name=value`, or `fallback` when absent.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> find(const std::string& name) const;

  std::string program_;
  std::vector<std::pair<std::string, std::string>> flags_;  // name -> raw value ("" for bare)
  std::vector<std::string> positional_;
};

}  // namespace arl::support
