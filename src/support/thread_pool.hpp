#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool for running independent simulations in parallel.
///
/// The radio simulator itself is strictly sequential (synchronous rounds have
/// an inherent order); parallelism in this repository lives *across*
/// simulations — parameter sweeps, exhaustive enumeration, benchmark repeats.
/// `parallel_for` partitions an index range over the pool and preserves
/// determinism because each index does independent work on its own state.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace arl::support {

/// Fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Schedules `task` and returns a future for its result.
  template <typename F>
  auto submit(F task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::move(task));
    std::future<Result> future = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged]() { (*packaged)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Runs body(i) for every i in [begin, end) across the pool and waits for all
/// of them.  Exceptions from bodies are rethrown (first one wins).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace arl::support
