#pragma once

/// \file assert.hpp
/// Contract-checking macros in the style of the C++ Core Guidelines (I.6/I.8).
///
/// Violations throw arl::support::ContractViolation instead of aborting so
/// that the test suite can assert on misuse, and so that experiment harnesses
/// that deliberately drive components out of contract (e.g. running a
/// canonical protocol on the wrong configuration) can observe the failure.

#include <stdexcept>
#include <string>

namespace arl::support {

/// Thrown when an ARL_EXPECTS / ARL_ENSURES / ARL_ASSERT condition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& message);
}  // namespace detail

}  // namespace arl::support

/// Precondition check: the caller must establish `cond`.
#define ARL_EXPECTS(cond, msg)                                                          \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      ::arl::support::detail::contract_fail("precondition", #cond, __FILE__, __LINE__, \
                                            (msg));                                    \
    }                                                                                   \
  } while (false)

/// Postcondition check: the callee promises `cond` on exit.
#define ARL_ENSURES(cond, msg)                                                           \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::arl::support::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__, \
                                            (msg));                                     \
    }                                                                                    \
  } while (false)

/// Internal invariant check.
#define ARL_ASSERT(cond, msg)                                                        \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      ::arl::support::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                            (msg));                                 \
    }                                                                                \
  } while (false)
