#pragma once

/// \file line_io.hpp
/// Bounded line framing shared by every line-oriented text surface.
///
/// Two consumers read line protocols today: the shard-report parser
/// (dist/report_io.cpp) reads whole files through an istream, and the sweep
/// service (serve/) frames requests and responses out of socket reads that
/// arrive in arbitrary chunks.  Both need the same three guarantees —
/// a hard per-line byte bound (a peer that never sends '\n' must not grow an
/// unbounded buffer), explicit EOF handling (a trailing line without its
/// newline is still a line, matching std::getline), and exactly-once
/// delivery of each framed line — so the framing lives here once instead of
/// as two ad-hoc readers that would drift apart.
///
/// `LineFramer` is the incremental core: feed() raw bytes as they arrive,
/// pop() complete lines as they frame.  `read_lines` is the whole-stream
/// convenience the file parsers use.

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace arl::support {

/// Thrown when a single line exceeds the framer's byte bound — a protocol
/// violation (or an attack), never a condition to grow past.
class LineTooLong : public std::runtime_error {
 public:
  explicit LineTooLong(std::size_t limit)
      : std::runtime_error("line exceeds the " + std::to_string(limit) + "-byte bound") {}
};

/// Incremental splitter of a byte stream into '\n'-terminated lines.
///
/// Bytes go in via feed() in whatever chunks the transport delivers;
/// complete lines (without their '\n') come out of pop() in order.  finish()
/// marks end of input, at which point a nonempty partial tail becomes one
/// final line — the std::getline convention, so a file whose last line lacks
/// a newline parses identically through either path.
class LineFramer {
 public:
  /// Default per-line bound.  Shard-report lines are tens of bytes; a 1 MiB
  /// ceiling is far above any legitimate line while still bounding a peer
  /// that streams garbage without newlines.
  static constexpr std::size_t kDefaultMaxLine = 1 << 20;

  explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLine)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends a chunk of raw bytes, framing any lines it completes.  Throws
  /// LineTooLong as soon as an unterminated line crosses the bound (the
  /// framer is then poisoned: further calls keep throwing).
  void feed(std::string_view bytes);

  /// The next framed line, or nullopt when none is complete yet.
  [[nodiscard]] std::optional<std::string> pop();

  /// Marks end of input: a nonempty partial tail becomes the final line.
  /// Feeding after finish() is a contract violation.
  void finish();

  /// True once finish() was called and every framed line was popped.
  [[nodiscard]] bool drained() const { return finished_ && lines_.empty(); }

  /// Bytes of the current unterminated tail (0 right after a newline).
  [[nodiscard]] std::size_t partial_bytes() const { return partial_.size(); }

  /// The per-line byte bound this framer enforces.
  [[nodiscard]] std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::size_t max_line_bytes_;
  std::string partial_;
  std::deque<std::string> lines_;
  bool finished_ = false;
  bool poisoned_ = false;
};

/// Reads every line of `in` (final line with or without its newline, like
/// std::getline) under the per-line bound.  Throws LineTooLong when any line
/// crosses it.
[[nodiscard]] std::vector<std::string> read_lines(
    std::istream& in, std::size_t max_line_bytes = LineFramer::kDefaultMaxLine);

}  // namespace arl::support
