#include "obs/trace.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace arl::obs {
namespace {

/// Minimal JSON string escape.  The strings traced today are registry
/// tokens (no quotes or control bytes), but the writer must not be the
/// component that breaks when a protocol name ever grows one.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c);
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex16(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

}  // namespace

JsonLinesTraceSink::JsonLinesTraceSink(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
}

void JsonLinesTraceSink::emit(const TraceEvent& event) {
  // Compose the whole line off-lock, then append under the mutex so lines
  // from concurrent workers never interleave.
  std::ostringstream line;
  line << "{\"job\":" << event.job_id << ",\"protocol\":\"" << escape(event.protocol)
       << "\",\"config\":\"" << hex16(event.config_fingerprint) << "\",\"nodes\":" << event.nodes
       << ",\"span\":" << event.span << ",\"disposition\":\"" << escape(event.disposition)
       << "\",\"feasible\":" << (event.feasible ? "true" : "false")
       << ",\"simulated\":" << (event.simulated ? "true" : "false")
       << ",\"valid\":" << (event.valid ? "true" : "false")
       << ",\"local_rounds\":" << event.local_rounds << ",\"injected\":" << event.injected;
  for (const Phase phase : all_phases()) {
    line << ",\"" << phase_name(phase) << "_ns\":" << event.frame[phase];
  }
  line << "}";

  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line.str() << '\n';
}

void JsonLinesTraceSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

}  // namespace arl::obs
