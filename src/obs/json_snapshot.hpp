#pragma once

/// \file json_snapshot.hpp
/// A flat JSON object accumulated key by key and written as one file.
///
/// This is the snapshot format `tools/bench_gate` consumes — every value is
/// a number, a bool or a string, keys keep insertion order so snapshots
/// diff cleanly, and gating policy is keyed off the name (see bench_gate).
/// It started life inside `bench/bench_common.hpp`; it lives here because
/// `arl sweep --metrics-out=FILE` writes the same shape from the CLI, where
/// the benchmark scaffolding is not available.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace arl::obs {

/// Accumulates `"key": value` entries and writes them as one JSON object.
class JsonSnapshot {
 public:
  void add(std::string key, double value) {
    std::ostringstream out;
    out << value;
    entries_.emplace_back(std::move(key), out.str());
  }
  void add(std::string key, std::uint64_t value) {
    entries_.emplace_back(std::move(key), std::to_string(value));
  }
  void add(std::string key, bool value) {
    entries_.emplace_back(std::move(key), value ? "true" : "false");
  }
  void add(std::string key, const std::string& value) {
    entries_.emplace_back(std::move(key), "\"" + value + "\"");
  }

  /// Writes the object to `path`.  Returns false (and warns on stderr)
  /// when the file cannot be written — a missing snapshot reads as "no
  /// data" downstream, which must never happen silently.
  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    out << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << "  \"" << entries_[i].first << "\": " << entries_[i].second
          << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    out.flush();
    if (!out) {
      std::cerr << "warning: could not write " << path << "\n";
      return false;
    }
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace arl::obs
