#include "obs/metrics.hpp"

#include <cmath>

namespace arl::obs {
namespace {

thread_local JobFrame* t_active_frame = nullptr;

}  // namespace

std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::Classify:
      return "classify";
    case Phase::ScheduleCompile:
      return "schedule-compile";
    case Phase::Simulate:
      return "simulate";
    case Phase::FaultInject:
      return "fault-inject";
    case Phase::CacheLookup:
      return "cache-lookup";
    case Phase::CachePromote:
      return "cache-promote";
    case Phase::StoreLoad:
      return "store-load";
    case Phase::StoreSave:
      return "store-save";
    case Phase::ServeQueueWait:
      return "serve-queue-wait";
    case Phase::ServeDispatch:
      return "serve-dispatch";
  }
  return "unknown";
}

const std::array<Phase, kPhaseCount>& all_phases() {
  static const std::array<Phase, kPhaseCount> phases = {
      Phase::Classify,    Phase::ScheduleCompile, Phase::Simulate,
      Phase::FaultInject, Phase::CacheLookup,     Phase::CachePromote,
      Phase::StoreLoad,   Phase::StoreSave,       Phase::ServeQueueWait,
      Phase::ServeDispatch,
  };
  return phases;
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t n = 0;
  for (const std::uint64_t bucket : buckets) {
    n += bucket;
  }
  return n;
}

double HistogramSnapshot::mean() const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(total) / static_cast<double>(n);
}

std::uint64_t HistogramSnapshot::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  // Rank of the requested quantile in [1, n]; ceil keeps p100 == max bucket
  // and p~0 the first sample.
  auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return bucket_upper_bound(i);
    }
  }
  return bucket_upper_bound(kHistogramBuckets - 1);
}

std::uint64_t HistogramSnapshot::max_bound() const {
  for (std::size_t i = kHistogramBuckets; i-- > 0;) {
    if (buckets[i] != 0) {
      return bucket_upper_bound(i);
    }
  }
  return 0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  total += other.total;
}

HistogramSnapshot HistogramSnapshot::since(const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    delta.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  delta.total = total - earlier.total;
  return delta;
}

bool MetricsSnapshot::empty() const {
  for (const HistogramSnapshot& histogram : phases) {
    if (histogram.count() != 0) {
      return false;
    }
  }
  return true;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phases[i].merge(other.phases[i]);
  }
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    delta.phases[i] = phases[i].since(earlier.phases[i]);
  }
  return delta;
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.total = total_.load(std::memory_order_relaxed);
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    snap.phases[i] = histograms_[i].snapshot();
  }
  return snap;
}

ScopedJobFrame::ScopedJobFrame(JobFrame& frame) : previous_(t_active_frame) {
  t_active_frame = &frame;
}

ScopedJobFrame::~ScopedJobFrame() { t_active_frame = previous_; }

JobFrame* ScopedJobFrame::active() { return t_active_frame; }

}  // namespace arl::obs
