#pragma once

/// \file metrics.hpp
/// Process-wide metrics: named phase spans recorded into fixed log-bucketed
/// latency histograms.
///
/// Every stage of the election pipeline — classification, schedule
/// compilation, simulation, the cache and store tiers, the serve queue —
/// opens a `PhaseTimer` span; the elapsed nanoseconds land in one
/// `LatencyHistogram` per phase inside a `Registry`.  The design constraints
/// mirror the rest of the repository:
///
///  - **Allocation-free hot path.** A histogram is a fixed array of atomic
///    bucket counters indexed by `std::bit_width` of the sample, so
///    record() is two relaxed fetch_adds and no branches that depend on the
///    data distribution.
///  - **Deterministic bucket boundaries.** Bucket 0 holds exactly {0};
///    bucket i >= 1 holds [2^(i-1), 2^i - 1].  Percentiles are reported as
///    the inclusive upper bound of the bucket containing the requested
///    rank — integers that are a pure function of the recorded multiset, so
///    snapshots of the same samples compare bit-identically however the
///    recording was threaded or sharded.
///  - **Associative merge.** `HistogramSnapshot`/`MetricsSnapshot` add and
///    subtract bucket-wise, exactly like `dist::merge_shards` over job
///    outcomes: merging K shard snapshots of a partition of the samples
///    equals the snapshot of the concatenated samples, and `since()` deltas
///    attribute growth to one batch the way `ScheduleCacheStats::since`
///    does.  (The price: no atomic max — a maximum is not delta-subtractable
///    — so `max_bound()` derives from the highest non-empty bucket.)
///  - **Provably cheap when off.** `Registry::set_enabled(false)` makes
///    every PhaseTimer skip its clock reads entirely (checked once at
///    construction), so the metrics-off arm of the E8 overhead bench
///    measures an honest zero, not a disabled write behind two clock calls.
///
/// `Registry::global()` is the process-wide instance the instrumented call
/// sites use; plain instances exist so tests can exercise merge/delta
/// algebra in isolation.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace arl::obs {

/// The named phase spans instrumented across the stack.  Order is the
/// presentation order of every table and snapshot.
enum class Phase : std::uint8_t {
  Classify,        ///< core: Classifier / FastClassifier runs
  ScheduleCompile, ///< core: build_schedule
  Simulate,        ///< radio: one protocol execution on the simulator
  FaultInject,     ///< radio: fault-plan precomputation (crash schedule, stagger)
  CacheLookup,     ///< schedule-cache lookups (memory tier)
  CachePromote,    ///< tiered cache: disk hit promoted into memory
  StoreLoad,       ///< artifact store: load + verify one entry file
  StoreSave,       ///< artifact store: compose + persist one entry file
  ServeQueueWait,  ///< serve: ack-to-begin wait in the dispatcher queue
  ServeDispatch,   ///< serve: one request's execution on the shared runner
};

inline constexpr std::size_t kPhaseCount = 10;

/// The canonical lowercase identifier of a phase ("classify",
/// "schedule-compile", ...): table rows, JSON keys and trace fields all
/// spell phases this way.
[[nodiscard]] std::string_view phase_name(Phase phase);

/// All phases in presentation order, for iteration.
[[nodiscard]] const std::array<Phase, kPhaseCount>& all_phases();

/// Buckets 0..64: bucket 0 holds {0}, bucket i holds [2^(i-1), 2^i - 1],
/// covering every uint64 nanosecond value (~584 years at the top).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Inclusive upper bound of a bucket — the value percentiles report.
[[nodiscard]] constexpr std::uint64_t bucket_upper_bound(std::size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  if (bucket >= 64) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << bucket) - 1;
}

/// Immutable copy of one histogram: plain counters with the merge/delta
/// algebra and the percentile extraction.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t total = 0;  ///< sum of every recorded sample (exact)

  /// Samples recorded.
  [[nodiscard]] std::uint64_t count() const;

  /// Mean sample value (0 when empty).
  [[nodiscard]] double mean() const;

  /// Upper bound of the bucket holding rank ceil(q * count) in [1, count];
  /// 0 when the histogram is empty.  q must be in (0, 1].
  [[nodiscard]] std::uint64_t percentile(double q) const;

  /// Upper bound of the highest non-empty bucket (0 when empty) — the
  /// delta-mergeable stand-in for an exact maximum.
  [[nodiscard]] std::uint64_t max_bound() const;

  /// Bucket-wise sum: merge(a, b) of disjoint sample sets equals the
  /// snapshot of their concatenation (associative and commutative).
  void merge(const HistogramSnapshot& other);

  /// Bucket-wise growth since an earlier snapshot of the same histogram.
  [[nodiscard]] HistogramSnapshot since(const HistogramSnapshot& earlier) const;

  friend bool operator==(const HistogramSnapshot& a, const HistogramSnapshot& b) = default;
};

/// Immutable copy of a whole registry: one histogram per phase, same
/// algebra lifted pointwise.
struct MetricsSnapshot {
  std::array<HistogramSnapshot, kPhaseCount> phases{};

  [[nodiscard]] const HistogramSnapshot& operator[](Phase phase) const {
    return phases[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] HistogramSnapshot& operator[](Phase phase) {
    return phases[static_cast<std::size_t>(phase)];
  }

  /// True when no phase recorded anything.
  [[nodiscard]] bool empty() const;

  void merge(const MetricsSnapshot& other);
  [[nodiscard]] MetricsSnapshot since(const MetricsSnapshot& earlier) const;

  friend bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) = default;
};

/// One log-bucketed latency histogram, concurrently recordable.  The atomic
/// counters are independent, so a snapshot taken while writers run is some
/// linearizable interleaving — exact totals are only promised once the
/// writers are quiesced (how every caller uses it: batches snapshot after
/// their workers joined, the serve dispatcher is single-threaded).
class LatencyHistogram {
 public:
  /// Records one sample.  Lock-free: two relaxed fetch_adds.
  void record(std::uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> total_{0};
};

/// A set of phase histograms plus the enabled switch.  `global()` is the
/// process-wide registry every instrumented call site records into.
class Registry {
 public:
  /// The process-wide registry.
  [[nodiscard]] static Registry& global();

  /// Records `nanos` into the phase's histogram (even when disabled — the
  /// switch gates the *timers*, which own the expensive clock reads).
  void record(Phase phase, std::uint64_t nanos) {
    histograms_[static_cast<std::size_t>(phase)].record(nanos);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Gates PhaseTimer clock reads; flipping it never loses already-recorded
  /// samples.  Enabled by default.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  std::array<LatencyHistogram, kPhaseCount> histograms_{};
  std::atomic<bool> enabled_{true};
};

/// Per-job phase durations, summed across the spans one job opened — the
/// payload of a trace event.  A worker installs a frame around each job
/// (see ScopedJobFrame); every PhaseTimer on that thread then adds its span
/// to the frame as well as to the registry.
struct JobFrame {
  std::array<std::uint64_t, kPhaseCount> nanos{};

  [[nodiscard]] std::uint64_t operator[](Phase phase) const {
    return nanos[static_cast<std::size_t>(phase)];
  }
};

/// Installs `frame` as this thread's active job frame for the current
/// scope.  Frames do not nest (jobs do not run jobs); the previous pointer
/// is restored on exit so scratch reuse across jobs stays clean.
class ScopedJobFrame {
 public:
  explicit ScopedJobFrame(JobFrame& frame);
  ~ScopedJobFrame();

  ScopedJobFrame(const ScopedJobFrame&) = delete;
  ScopedJobFrame& operator=(const ScopedJobFrame&) = delete;

  /// The calling thread's active frame, or null outside any job.
  [[nodiscard]] static JobFrame* active();

 private:
  JobFrame* previous_ = nullptr;
};

/// RAII phase span: construction stamps the start, destruction records the
/// elapsed nanoseconds into the registry (and the thread's active JobFrame,
/// if any).  When the registry is disabled at construction the timer is
/// inert — no clock is ever read.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase, Registry& registry = Registry::global())
      : registry_(registry.enabled() ? &registry : nullptr), phase_(phase) {
    if (registry_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~PhaseTimer() {
    if (registry_ == nullptr) {
      return;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    registry_->record(phase_, nanos);
    if (JobFrame* frame = ScopedJobFrame::active()) {
      frame->nanos[static_cast<std::size_t>(phase_)] += nanos;
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Registry* registry_;  ///< null when the span is inert (metrics disabled)
  Phase phase_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace arl::obs
