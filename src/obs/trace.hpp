#pragma once

/// \file trace.hpp
/// Optional per-job event trace: one JSON object per line, one line per
/// job, for offline analysis (`arl sweep --trace=FILE`).
///
/// A trace line records what the job was (id, protocol, configuration
/// fingerprint, size), how it ended (disposition, validity), and where its
/// time went (the per-phase nanoseconds its `JobFrame` accumulated).  The
/// sink is deliberately dumb — a mutex and an append — because tracing is
/// opt-in and correctness of results never depends on it.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

namespace arl::obs {

/// Everything one trace line says about one job.  Plain values only, so
/// obs/ stays below engine/ in the layering.
struct TraceEvent {
  std::uint64_t job_id = 0;
  std::string protocol;             ///< registry name of the protocol that ran
  std::uint64_t config_fingerprint = 0;
  std::uint64_t nodes = 0;
  std::uint64_t span = 0;
  std::string disposition;          ///< "elected", "no leader", ...
  bool feasible = false;
  bool simulated = false;
  bool valid = false;
  std::uint64_t local_rounds = 0;
  std::uint64_t injected = 0;       ///< fault events injected into this job
  JobFrame frame;                   ///< per-phase nanoseconds of this job
};

/// Where trace events go.  Implementations must be safe to call from many
/// worker threads at once.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Appends one JSON object per event to a file.  Phases with zero recorded
/// time are still emitted, so every line has the same keys and downstream
/// tooling never needs per-line schema discovery.
class JsonLinesTraceSink final : public TraceSink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error when it cannot.
  explicit JsonLinesTraceSink(const std::string& path);

  void emit(const TraceEvent& event) override;

  /// Flushes buffered lines to disk.
  void flush();

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace arl::obs
