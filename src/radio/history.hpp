#pragma once

/// \file history.hpp
/// Node histories and the windowed view handed to protocols.
///
/// Formally a DRIP is a function of the full history H_v[0..i-1].  Storing
/// full histories for every node is quadratic in rounds x nodes; long
/// benchmark runs instead retain a sliding suffix window (protocols declare
/// how far back they look via Drip::history_window()).  HistoryView exposes
/// the total length plus the retained suffix, and traps any out-of-window
/// access as a contract violation, so windowing can never silently change
/// protocol behaviour.

#include <cstddef>
#include <string>
#include <vector>

#include "radio/message.hpp"

namespace arl::radio {

/// A node's full (or suffix-retained) history, oldest entry first.
using History = std::vector<HistoryEntry>;

/// Read-only view over a possibly-windowed history.
class HistoryView {
 public:
  /// Views `kept`, which holds entries [dropped, dropped + kept.size()).
  HistoryView(const History& kept, std::size_t dropped) : kept_(&kept), dropped_(dropped) {}

  /// Total number of entries ever recorded (H[0..length-1]).
  [[nodiscard]] std::size_t length() const { return dropped_ + kept_->size(); }

  /// Index of the oldest retained entry (0 when nothing was dropped).
  [[nodiscard]] std::size_t first_kept() const { return dropped_; }

  /// Entry H[t]; requires first_kept() <= t < length().
  [[nodiscard]] const HistoryEntry& entry(std::size_t t) const {
    ARL_EXPECTS(t >= dropped_, "history entry no longer retained (window too small)");
    ARL_EXPECTS(t < length(), "history entry not recorded yet");
    return (*kept_)[t - dropped_];
  }

  /// Most recent entry; requires length() > 0.
  [[nodiscard]] const HistoryEntry& last() const {
    ARL_EXPECTS(!kept_->empty(), "empty history has no last entry");
    return kept_->back();
  }

  /// True when no entry has been recorded.
  [[nodiscard]] bool empty() const { return length() == 0; }

 private:
  const History* kept_;
  std::size_t dropped_;
};

/// Renders a history as space-separated compact entries ("- m1 * -").
[[nodiscard]] std::string format_history(const History& history);

}  // namespace arl::radio
