#pragma once

/// \file simulator.hpp
/// Discrete synchronous-round simulator for anonymous radio networks with
/// collision detection (the model of paper §1.1/§2).
///
/// Semantics implemented, per global round r:
///  1. Every sleeping node whose wakeup tag equals r wakes spontaneously.
///  2. Every node that woke in an earlier round and has not terminated runs
///     its program: local round i = r - wake_round, action = D(H[0..i-1]).
///     (A node never acts in its wake round — local round 0 — matching the
///     model: "the local clock has value 0 in the wakeup round and the node
///     starts executing in local round 1".)
///  3. Channel resolution at each node: 0 transmitting neighbours → silence,
///     exactly 1 → that message, >= 2 → noise (∗).  Transmitters hear (∅).
///  4. Sleeping nodes (round < tag): a clean message forces a wakeup with
///     H[0] = (M); noise does NOT wake them (a forced wakeup requires
///     *receiving a message*, §2.1).  Nodes that woke spontaneously in this
///     round record H[0] from the channel per the wake policy below.
///
/// Wake-round hearing policy: the paper specifies H[0] = (M) for forced
/// wakeups and (∅) for spontaneous ones, but leaves open what a node waking
/// at its tag hears if the channel is non-silent in exactly that round.
/// `WakePolicy::HearAll` (default) records the channel state (∅/M/∗);
/// `WakePolicy::SilentWake` records (∅) unless a clean message arrived.
/// Patient protocols — everything the paper's positive results execute —
/// never transmit while any node sleeps, so the policy is unobservable for
/// them (asserted by tests).

#include <cstdint>
#include <optional>
#include <vector>

#include "config/configuration.hpp"
#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "radio/bitset.hpp"
#include "radio/history.hpp"
#include "radio/program.hpp"
#include "radio/trace.hpp"

namespace arl::radio {

/// What a node waking at its tag records when the channel is non-silent.
enum class WakePolicy : std::uint8_t {
  HearAll,     ///< record the channel state: (∅), (M) or (∗)
  SilentWake,  ///< record (∅) unless a clean message arrived
};

/// Which inner loop run() executes.  Both produce bit-identical results
/// (same RunResult including RunStats and histories); the bitset path is the
/// word-parallel fast path, the scalar path is the reference loop and the
/// only one that emits trace callbacks.
enum class SimulatorEngine : std::uint8_t {
  Auto,    ///< bitset unless a trace sink is attached
  Scalar,  ///< the reference per-node loop
  Bitset,  ///< word-parallel fast path (falls back to scalar under a trace)
};

/// Run-control knobs.
struct SimulatorOptions {
  /// Horizon guard: the run aborts (all_terminated = false) after this many
  /// global rounds, protecting against non-terminating protocols.
  config::Round max_rounds = 1'000'000;

  /// History retention override.  Unset: the protocol's
  /// Drip::history_window() decides.  Set to 0: retain everything (useful
  /// when a test wants full histories from a windowed protocol).  Set to W:
  /// retain a suffix of >= W entries.
  std::optional<std::size_t> history_window = {};

  /// Master seed from which per-node private-coin seeds derive.
  std::uint64_t coin_seed = 0;

  /// Per-node labels for non-anonymous baseline protocols; empty (the
  /// default) leaves NodeEnv::label unset.  When non-empty, size must equal
  /// the node count.
  std::vector<std::uint64_t> labels = {};

  /// Wake-round hearing policy (see file comment).
  WakePolicy wake_policy = WakePolicy::HearAll;

  /// Channel feedback strength; the paper's model has collision detection.
  /// Under NoCollisionDetection every (∗) becomes (∅) at the listeners.
  ChannelModel channel_model = ChannelModel::CollisionDetection;

  /// Inner-loop selection (see SimulatorEngine).
  SimulatorEngine engine = SimulatorEngine::Auto;

  /// Fault plan (spec + per-job seed; see fault/fault.hpp).  The default
  /// `none` plan is inactive and leaves every code path — including the
  /// bitset fast-path dispatch — exactly as without the field.  An active
  /// plan forces the scalar reference loop, like a trace sink does: the
  /// fast path's bulk round skipping cannot host per-round channel dice.
  fault::FaultPlan fault = {};

  /// When false, RunResult omits the per-node history vectors (the entries
  /// are still recorded internally, so NodeOutcome::history_length() and
  /// everything else stays identical).  Batch sweeps that only consume
  /// outcomes set this to skip the final history copy-out.
  bool keep_histories = true;

  /// Optional execution observer (not owned).
  TraceSink* trace = nullptr;
};

/// Per-node results of a run.
struct NodeOutcome {
  config::Round wake_round = 0;      ///< global round the node woke in
  bool forced_wake = false;          ///< woken by a message (vs. spontaneously)
  bool terminated = false;           ///< program reached terminate
  config::Round done_round = 0;      ///< paper's done_v: local round of termination
  bool elected = false;              ///< decision function output
  bool crashed = false;              ///< halted by an injected crash fault
  History history;                   ///< retained entries (suffix if windowed)
  std::size_t history_dropped = 0;   ///< entries evicted by the window

  // Per-node energy/communication accounting (Kowalski–Mosteiro style):
  // local rounds executed (decide() calls — the wake round is not counted)
  // and rounds spent transmitting.  Summed over all nodes these equal
  // RunStats::node_rounds and RunStats::transmissions.
  std::uint64_t awake_rounds = 0;    ///< decide() calls this node executed
  std::uint64_t transmissions = 0;   ///< rounds this node spent transmitting

  /// Total entries ever recorded (dropped + retained).
  [[nodiscard]] std::size_t history_length() const { return history_dropped + history.size(); }
};

/// Aggregate channel statistics.
struct RunStats {
  std::uint64_t transmissions = 0;      ///< node-rounds spent transmitting
  std::uint64_t clean_receptions = 0;   ///< messages heard by awake listeners
  std::uint64_t collisions_heard = 0;   ///< noise heard by awake listeners
  std::uint64_t forced_wakeups = 0;     ///< sleepers woken by a message
  std::uint64_t node_rounds = 0;        ///< total awake node-rounds simulated

  // Per-node energy maxima (the busiest node's budget — node_rounds and
  // transmissions above are the totals).
  std::uint64_t max_node_transmissions = 0;  ///< max NodeOutcome::transmissions
  std::uint64_t max_node_awake_rounds = 0;   ///< max NodeOutcome::awake_rounds

  // Injected-fault event counts (all zero for an inactive FaultPlan).
  std::uint64_t injected_drops = 0;        ///< messages erased to silence
  std::uint64_t injected_corruptions = 0;  ///< messages garbled to noise
  std::uint64_t injected_crashes = 0;      ///< nodes crash-stopped
  std::uint64_t delayed_wakeups = 0;       ///< spontaneous wakeups staggered

  friend bool operator==(const RunStats& a, const RunStats& b) = default;
};

/// Result of one simulation.
struct RunResult {
  std::vector<NodeOutcome> nodes;
  config::Round rounds_executed = 0;  ///< number of global rounds simulated
  bool all_terminated = false;        ///< false iff the horizon guard fired
  RunStats stats;

  /// Nodes whose decision function returned true.
  [[nodiscard]] std::vector<graph::NodeId> leaders() const;
};

/// Reusable per-run working memory.  A sweep that executes many simulations
/// on one thread (e.g. an engine worker) hands the same scratch to every
/// run() and amortizes the per-run allocations; contents are overwritten
/// each run and never leak information between runs (asserted by the
/// differential tests).  Besides the scalar path's channel buffers, the
/// scratch owns the fast path's program/history arena (SoA node state and
/// history buffers reused across jobs), a per-seed coin-seed cache, and the
/// adjacency bitmap cached across same-topology runs.
class SimulatorScratch {
 public:
  SimulatorScratch() = default;

 private:
  friend class Simulator;
  // Scalar path: epoch-stamped channel-resolution buffers.
  std::vector<config::Round> stamp_;
  std::vector<std::uint32_t> transmitter_count_;
  std::vector<Message> pending_message_;
  std::vector<graph::NodeId> transmitters_;
  // Fast path: per-node coin seeds, cached per master seed (split() output
  // only depends on (seed, node id), so extending for a larger n is sound).
  std::uint64_t seeds_from_ = 0;
  bool seeds_valid_ = false;
  std::vector<std::uint64_t> coin_seeds_;
  // Fast path: program/history arena — SoA node state replacing the scalar
  // loop's vector-of-NodeState, with history buffers whose capacity
  // survives across runs.
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<History> histories_;
  std::vector<std::size_t> dropped_;
  std::vector<config::Round> wake_round_;
  std::vector<Message> outgoing_;
  std::vector<std::uint8_t> forced_;
  std::vector<std::uint8_t> woke_now_;
  // Fast path: round bitsets and worklists.
  AdjacencyBitmap adjacency_;
  std::vector<std::uint64_t> awake_bits_;
  std::vector<std::uint64_t> terminated_bits_;
  std::vector<std::uint64_t> transmit_bits_;
  std::vector<std::uint64_t> heard_bits_;
  std::vector<graph::NodeId> awake_list_;
  std::vector<graph::NodeId> woke_list_;
  std::vector<std::pair<config::Round, graph::NodeId>> wake_events_;
  // Fault path: per-run fault state and effective (staggered) wakeup tags.
  fault::FaultContext fault_;
  std::vector<config::Round> effective_tag_;
};

/// Executes one protocol on one configuration.
class Simulator {
 public:
  /// Captures references; `configuration` and `drip` must outlive run().
  Simulator(const config::Configuration& configuration, const Drip& drip,
            SimulatorOptions options = {});

  // Temporaries would dangle before run(); use the simulate() free function
  // for one-shot calls with temporaries.
  Simulator(config::Configuration&&, const Drip&, SimulatorOptions = {}) = delete;
  Simulator(const config::Configuration&, Drip&&, SimulatorOptions = {}) = delete;
  Simulator(config::Configuration&&, Drip&&, SimulatorOptions = {}) = delete;

  /// Runs to global termination (all programs terminated) or the horizon.
  [[nodiscard]] RunResult run() const;

  /// Same as run(), reusing `scratch`'s buffers instead of allocating.
  [[nodiscard]] RunResult run(SimulatorScratch& scratch) const;

 private:
  [[nodiscard]] RunResult run_scalar(SimulatorScratch& scratch) const;
  [[nodiscard]] RunResult run_bitset(SimulatorScratch& scratch) const;

  const config::Configuration& configuration_;
  const Drip& drip_;
  SimulatorOptions options_;
};

/// Convenience wrapper: construct and run.
[[nodiscard]] RunResult simulate(const config::Configuration& configuration, const Drip& drip,
                                 SimulatorOptions options = {});

/// Convenience wrapper with buffer reuse (see SimulatorScratch).
[[nodiscard]] RunResult simulate(const config::Configuration& configuration, const Drip& drip,
                                 SimulatorOptions options, SimulatorScratch& scratch);

}  // namespace arl::radio
