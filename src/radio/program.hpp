#pragma once

/// \file program.hpp
/// The protocol interface: DRIPs and per-node programs (paper §2.2–2.3).
///
/// A DRIP is formally one function D shared by all (anonymous) nodes that
/// maps a history prefix to an action.  Here a `Drip` is a factory producing
/// one `NodeProgram` per node; programs may keep incremental state, which is
/// observationally equivalent as long as the state is a function of the
/// history — `decide` is invoked exactly once per local round, in order, with
/// the history prefix the formal model prescribes.  Anonymity is structural:
/// a program never sees a node id.  Labels (for the non-anonymous baseline
/// protocols from the related-work landscape) and private coin seeds (for
/// randomized baselines) arrive through `NodeEnv`; faithful paper protocols
/// ignore both.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "config/configuration.hpp"
#include "radio/history.hpp"

namespace arl::radio {

/// What a node does in one local round.
struct Action {
  /// The three permitted behaviours.
  enum class Kind : std::uint8_t { Listen, Transmit, Terminate };

  Kind kind = Kind::Listen;
  Message message = 0;  ///< payload when kind == Transmit

  [[nodiscard]] static Action listen() { return {Kind::Listen, 0}; }
  [[nodiscard]] static Action transmit(Message payload) { return {Kind::Transmit, payload}; }
  [[nodiscard]] static Action terminate() { return {Kind::Terminate, 0}; }

  [[nodiscard]] bool is_listen() const { return kind == Kind::Listen; }
  [[nodiscard]] bool is_transmit() const { return kind == Kind::Transmit; }
  [[nodiscard]] bool is_terminate() const { return kind == Kind::Terminate; }

  friend bool operator==(const Action& a, const Action& b) = default;
};

/// Per-node execution environment.  Anonymous deterministic protocols must
/// ignore it entirely; it exists for the labeled / randomized baselines.
struct NodeEnv {
  std::uint64_t coin_seed = 0;                ///< seed for private coins
  std::optional<std::uint64_t> label = {};    ///< distinct id, if the model grants one
};

/// The state machine run by one node.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Action for local round `local_round` (>= 1), given the history
  /// H[0..local_round-1].  Called at most once per round, in increasing round
  /// order; rounds covered by a positive listen_streak() may be skipped
  /// (the program is then treated as having listened through silence).
  virtual Action decide(config::Round local_round, const HistoryView& history) = 0;

  /// Fast-path hint: a lower bound on how many consecutive local rounds,
  /// starting at `local_round`, this program is guaranteed to Listen —
  /// provided every one of those rounds observes silence.  When ALL awake
  /// programs report a positive streak, the simulator proves the common
  /// prefix globally silent, records it in bulk, and skips the decide()
  /// calls.  A program returning k > 0 promises that (a) decide(local_round
  /// + j) would return Listen for every j < k under all-silent observations,
  /// and (b) its state after the next decide() call is the same whether or
  /// not those k calls happened.  The default (0) opts out and keeps the
  /// call-every-round contract of decide().
  [[nodiscard]] virtual config::Round listen_streak(config::Round local_round,
                                                    const HistoryView& history) {
    (void)local_round;
    (void)history;
    return 0;
  }

  /// Decision function f applied to the node's own history after
  /// termination: true iff this node declares itself leader.
  [[nodiscard]] virtual bool elected() const { return false; }
};

/// A distributed radio interaction protocol: the shared algorithm installed
/// at every node.
class Drip {
 public:
  virtual ~Drip() = default;

  /// Creates the program for one node.
  [[nodiscard]] virtual std::unique_ptr<NodeProgram> instantiate(const NodeEnv& env) const = 0;

  /// Human-readable protocol name (for traces and reports).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of most recent history entries the programs inspect, or nullopt
  /// when they need the full history.  The simulator uses this to bound
  /// memory on long runs.
  [[nodiscard]] virtual std::optional<std::size_t> history_window() const { return std::nullopt; }
};

}  // namespace arl::radio
