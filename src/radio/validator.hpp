#pragma once

/// \file validator.hpp
/// Independent execution validation: re-derives the radio model's semantics
/// from a recorded action log and checks a run against it.
///
/// The simulator computes receptions while it runs; the validator recomputes
/// them after the fact from first principles (the §1.1/§2 rules) and cross-
/// checks every history entry, wake round and action cadence.  It serves
/// three audiences: the test suite (differential validation of the engine),
/// failure injection (malformed protocols get caught with a precise error),
/// and users developing custom protocols who want the model enforced.

#include <optional>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "graph/graph.hpp"
#include "radio/simulator.hpp"
#include "radio/trace.hpp"

namespace arl::radio {

/// Trace sink that captures everything needed for validation.
class ExecutionRecorder final : public TraceSink {
 public:
  /// One recorded action.
  struct ActionEvent {
    config::Round global_round = 0;
    config::Round local_round = 0;
    Action action;
  };

  /// Everything recorded about one node.
  struct NodeRecord {
    std::optional<config::Round> wake_round;
    bool forced = false;
    HistoryEntry wake_entry;
    std::vector<ActionEvent> actions;
  };

  void on_wake(graph::NodeId v, config::Round global_round, bool forced,
               HistoryEntry h0) override;
  void on_action(graph::NodeId v, config::Round global_round, config::Round local_round,
                 const Action& action) override;

  /// Recorded data, indexed by node (grows on demand).
  [[nodiscard]] const std::vector<NodeRecord>& nodes() const { return nodes_; }

 private:
  NodeRecord& record_for(graph::NodeId v);

  std::vector<NodeRecord> nodes_;
};

/// Validation outcome; `ok` with `checks` performed, or the first error.
struct ValidationReport {
  bool ok = true;
  std::string error;          ///< human-readable description of the first violation
  std::uint64_t checks = 0;   ///< number of individual model checks performed
};

/// Re-derives the model semantics from `recorder`'s log and checks `result`.
/// Requires full histories (run with history_window = 0 or an unwindowed
/// protocol).  `model` and `policy` must match the simulated options.
[[nodiscard]] ValidationReport validate_execution(
    const config::Configuration& configuration, const ExecutionRecorder& recorder,
    const RunResult& result, ChannelModel model = ChannelModel::CollisionDetection,
    WakePolicy policy = WakePolicy::HearAll);

}  // namespace arl::radio
