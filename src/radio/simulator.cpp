#include "radio/simulator.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace arl::radio {

namespace {

/// Runtime state of one node.
struct NodeState {
  enum class Phase : std::uint8_t { Asleep, Awake, Terminated };

  Phase phase = Phase::Asleep;
  config::Round wake_round = 0;
  bool forced = false;
  bool woke_this_round = false;
  bool transmitting = false;
  Message outgoing = 0;
  std::unique_ptr<NodeProgram> program;
  History history;
  std::size_t dropped = 0;
};

/// Appends an entry, evicting the oldest entries in chunks when a window is
/// set (amortized O(1) per append).
void push_entry(NodeState& node, HistoryEntry entry, std::optional<std::size_t> window) {
  node.history.push_back(entry);
  if (window && node.history.size() > 2 * *window) {
    const std::size_t evict = node.history.size() - *window;
    node.history.erase(node.history.begin(),
                       node.history.begin() + static_cast<std::ptrdiff_t>(evict));
    node.dropped += evict;
  }
}

}  // namespace

std::vector<graph::NodeId> RunResult::leaders() const {
  std::vector<graph::NodeId> out;
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    if (nodes[v].elected) {
      out.push_back(static_cast<graph::NodeId>(v));
    }
  }
  return out;
}

Simulator::Simulator(const config::Configuration& configuration, const Drip& drip,
                     SimulatorOptions options)
    : configuration_(configuration), drip_(drip), options_(options) {
  ARL_EXPECTS(options_.max_rounds > 0, "horizon must be positive");
}

RunResult Simulator::run() const {
  SimulatorScratch scratch;
  return run(scratch);
}

RunResult Simulator::run(SimulatorScratch& scratch) const {
  const graph::Graph& graph = configuration_.graph();
  const graph::NodeId n = graph.node_count();
  std::optional<std::size_t> window =
      options_.history_window ? options_.history_window : drip_.history_window();
  if (window && *window == 0) {
    window = std::nullopt;  // 0 = explicit "retain everything" override
  }
  TraceSink* trace = options_.trace;

  ARL_EXPECTS(options_.labels.empty() || options_.labels.size() == n,
              "labels must be absent or cover every node");
  support::Rng seeder(options_.coin_seed);
  std::vector<NodeState> nodes(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeEnv env;
    env.coin_seed = seeder.split(v).next();
    if (!options_.labels.empty()) {
      env.label = options_.labels[v];
    }
    nodes[v].program = drip_.instantiate(env);
    ARL_ENSURES(nodes[v].program != nullptr, "drip must produce a program");
  }

  RunResult result;
  result.nodes.resize(n);

  // Per-round channel resolution uses epoch-stamped counters so no clearing
  // pass is needed between rounds.
  std::vector<config::Round>& stamp = scratch.stamp_;
  std::vector<std::uint32_t>& transmitter_count = scratch.transmitter_count_;
  std::vector<Message>& pending_message = scratch.pending_message_;
  std::vector<graph::NodeId>& transmitters = scratch.transmitters_;
  stamp.assign(n, static_cast<config::Round>(-1));
  transmitter_count.assign(n, 0);
  pending_message.assign(n, 0);
  transmitters.clear();

  std::uint32_t live = n;  // nodes not yet terminated

  config::Round round = 0;
  for (; round < options_.max_rounds && live > 0; ++round) {
    if (trace != nullptr) {
      trace->on_round_begin(round);
    }

    // 1. Spontaneous wakeups: tag == round.
    for (graph::NodeId v = 0; v < n; ++v) {
      NodeState& node = nodes[v];
      node.woke_this_round = false;
      node.transmitting = false;
      if (node.phase == NodeState::Phase::Asleep && configuration_.tag(v) == round) {
        node.phase = NodeState::Phase::Awake;
        node.wake_round = round;
        node.forced = false;
        node.woke_this_round = true;
      }
    }

    // 2. Actions of nodes awake since an earlier round.
    transmitters.clear();
    for (graph::NodeId v = 0; v < n; ++v) {
      NodeState& node = nodes[v];
      if (node.phase != NodeState::Phase::Awake || node.woke_this_round) {
        continue;
      }
      const config::Round local = round - node.wake_round;
      const HistoryView view(node.history, node.dropped);
      ARL_ASSERT(view.length() == local, "history length must equal the local round");
      const Action action = node.program->decide(local, view);
      ++result.stats.node_rounds;
      if (trace != nullptr) {
        trace->on_action(v, round, local, action);
      }
      switch (action.kind) {
        case Action::Kind::Listen:
          break;
        case Action::Kind::Transmit:
          node.transmitting = true;
          node.outgoing = action.message;
          transmitters.push_back(v);
          ++result.stats.transmissions;
          break;
        case Action::Kind::Terminate:
          node.phase = NodeState::Phase::Terminated;
          // H[done_v] is recorded as (∅): a terminating node no longer
          // interacts with the channel (same convention as a transmitter),
          // and the paper's decision function consumes H[0..done_v].
          push_entry(node, HistoryEntry::silence(), window);
          result.nodes[v].terminated = true;
          result.nodes[v].done_round = local;
          --live;
          break;
      }
    }

    // 3. Channel resolution: stamp the neighbourhoods of all transmitters.
    for (const graph::NodeId t : transmitters) {
      for (const graph::NodeId w : graph.neighbors(t)) {
        if (stamp[w] != round) {
          stamp[w] = round;
          transmitter_count[w] = 0;
        }
        ++transmitter_count[w];
        pending_message[w] = nodes[t].outgoing;
      }
    }
    auto channel_at = [&](graph::NodeId v) -> HistoryEntry {
      if (stamp[v] != round || transmitter_count[v] == 0) {
        return HistoryEntry::silence();
      }
      if (transmitter_count[v] == 1) {
        return HistoryEntry::message(pending_message[v]);
      }
      // Without collision detection, noise is indistinguishable from silence.
      return options_.channel_model == ChannelModel::CollisionDetection
                 ? HistoryEntry::collision()
                 : HistoryEntry::silence();
    };

    // 4. Record histories and process wakeups.
    for (graph::NodeId v = 0; v < n; ++v) {
      NodeState& node = nodes[v];
      switch (node.phase) {
        case NodeState::Phase::Terminated:
          break;
        case NodeState::Phase::Awake: {
          HistoryEntry entry = HistoryEntry::silence();
          if (node.woke_this_round) {
            // H[0] of a spontaneous wakeup, subject to the wake policy.
            const HistoryEntry channel = channel_at(v);
            if (channel.is_message()) {
              // Tag round coincides with a clean reception: the paper counts
              // r <= t_v receptions as forced wakeups.
              node.forced = true;
              entry = channel;
              ++result.stats.forced_wakeups;
            } else if (options_.wake_policy == WakePolicy::HearAll) {
              entry = channel;
            }
            result.nodes[v].wake_round = node.wake_round;
            result.nodes[v].forced_wake = node.forced;
            if (trace != nullptr) {
              trace->on_wake(v, round, node.forced, entry);
            }
          } else if (node.transmitting) {
            entry = HistoryEntry::silence();  // a transmitter hears nothing
          } else {
            entry = channel_at(v);
            if (entry.is_message()) {
              ++result.stats.clean_receptions;
            } else if (entry.is_collision()) {
              ++result.stats.collisions_heard;
            }
          }
          push_entry(node, entry, window);
          if (trace != nullptr && !node.woke_this_round) {
            trace->on_reception(v, round, entry);
          }
          break;
        }
        case NodeState::Phase::Asleep: {
          const HistoryEntry channel = channel_at(v);
          if (channel.is_message()) {
            // Forced wakeup: a clean message wakes a sleeper; noise does not.
            node.phase = NodeState::Phase::Awake;
            node.wake_round = round;
            node.forced = true;
            node.woke_this_round = true;
            push_entry(node, channel, window);
            result.nodes[v].wake_round = round;
            result.nodes[v].forced_wake = true;
            ++result.stats.forced_wakeups;
            if (trace != nullptr) {
              trace->on_wake(v, round, true, channel);
            }
          }
          break;
        }
      }
    }

    if (trace != nullptr) {
      trace->on_round_end(round);
    }
  }

  result.rounds_executed = round;
  result.all_terminated = (live == 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeState& node = nodes[v];
    result.nodes[v].history = std::move(node.history);
    result.nodes[v].history_dropped = node.dropped;
    result.nodes[v].elected = node.program->elected();
    if (node.phase == NodeState::Phase::Awake || node.phase == NodeState::Phase::Terminated) {
      result.nodes[v].wake_round = node.wake_round;
      result.nodes[v].forced_wake = node.forced;
    }
  }
  return result;
}

RunResult simulate(const config::Configuration& configuration, const Drip& drip,
                   SimulatorOptions options) {
  Simulator simulator(configuration, drip, std::move(options));
  return simulator.run();
}

RunResult simulate(const config::Configuration& configuration, const Drip& drip,
                   SimulatorOptions options, SimulatorScratch& scratch) {
  Simulator simulator(configuration, drip, std::move(options));
  return simulator.run(scratch);
}

}  // namespace arl::radio
