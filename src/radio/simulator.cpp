#include "radio/simulator.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace arl::radio {

namespace {

/// Runtime state of one node.
struct NodeState {
  enum class Phase : std::uint8_t { Asleep, Awake, Terminated };

  Phase phase = Phase::Asleep;
  config::Round wake_round = 0;
  bool forced = false;
  bool woke_this_round = false;
  bool transmitting = false;
  Message outgoing = 0;
  std::unique_ptr<NodeProgram> program;
  History history;
  std::size_t dropped = 0;
};

/// Appends an entry, evicting the oldest entries in chunks when a window is
/// set (amortized O(1) per append).
void push_entry(NodeState& node, HistoryEntry entry, std::optional<std::size_t> window) {
  node.history.push_back(entry);
  if (window && node.history.size() > 2 * *window) {
    const std::size_t evict = node.history.size() - *window;
    node.history.erase(node.history.begin(),
                       node.history.begin() + static_cast<std::ptrdiff_t>(evict));
    node.dropped += evict;
  }
}

/// Folds the per-node energy counters into the aggregate maxima.
void finish_energy_stats(RunResult& result) {
  for (const NodeOutcome& node : result.nodes) {
    result.stats.max_node_transmissions =
        std::max(result.stats.max_node_transmissions, node.transmissions);
    result.stats.max_node_awake_rounds =
        std::max(result.stats.max_node_awake_rounds, node.awake_rounds);
  }
}

}  // namespace

std::vector<graph::NodeId> RunResult::leaders() const {
  std::vector<graph::NodeId> out;
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    if (nodes[v].elected) {
      out.push_back(static_cast<graph::NodeId>(v));
    }
  }
  return out;
}

Simulator::Simulator(const config::Configuration& configuration, const Drip& drip,
                     SimulatorOptions options)
    : configuration_(configuration), drip_(drip), options_(options) {
  ARL_EXPECTS(options_.max_rounds > 0, "horizon must be positive");
}

RunResult Simulator::run() const {
  SimulatorScratch scratch;
  return run(scratch);
}

RunResult Simulator::run(SimulatorScratch& scratch) const {
  // Tracing and fault injection are scalar-path features: the fast path
  // reorders per-node work within a round (unobservable in the results, but
  // not in a per-action trace) and bulk-skips provably silent rounds (which
  // per-round channel dice would falsify), so either forces the reference
  // loop.  An inactive FaultPlan — `none` or an inert parameterization like
  // drop:0 — does not, keeping faultless runs bit-identical and fast.
  const bool bitset_ok = options_.trace == nullptr && !options_.fault.active();
  switch (options_.engine) {
    case SimulatorEngine::Scalar:
      return run_scalar(scratch);
    case SimulatorEngine::Bitset:
    case SimulatorEngine::Auto:
      return bitset_ok ? run_bitset(scratch) : run_scalar(scratch);
  }
  return run_scalar(scratch);  // unreachable
}

RunResult Simulator::run_scalar(SimulatorScratch& scratch) const {
  const graph::Graph& graph = configuration_.graph();
  const graph::NodeId n = graph.node_count();
  std::optional<std::size_t> window =
      options_.history_window ? options_.history_window : drip_.history_window();
  if (window && *window == 0) {
    window = std::nullopt;  // 0 = explicit "retain everything" override
  }
  TraceSink* trace = options_.trace;

  ARL_EXPECTS(options_.labels.empty() || options_.labels.size() == n,
              "labels must be absent or cover every node");
  support::Rng seeder(options_.coin_seed);
  std::vector<NodeState> nodes(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeEnv env;
    env.coin_seed = seeder.split(v).next();
    if (!options_.labels.empty()) {
      env.label = options_.labels[v];
    }
    nodes[v].program = drip_.instantiate(env);
    ARL_ENSURES(nodes[v].program != nullptr, "drip must produce a program");
  }

  // Fault state: the crash schedule and staggered wakeup tags are
  // precomputed here (the obs fault-inject phase); the per-round channel
  // dice are pure functions of (seed, round, node) rolled inline.
  fault::FaultContext& fault = scratch.fault_;
  if (options_.fault.active()) {
    const obs::PhaseTimer span(obs::Phase::FaultInject);
    fault.reset(options_.fault, n);
    scratch.effective_tag_.clear();
    if (fault.max_wake_delay() > 0) {
      scratch.effective_tag_.resize(n);
      for (graph::NodeId v = 0; v < n; ++v) {
        const std::uint64_t staggered =
            static_cast<std::uint64_t>(configuration_.tag(v)) + fault.wake_delay(v);
        scratch.effective_tag_[v] = static_cast<config::Round>(
            std::min<std::uint64_t>(staggered, std::numeric_limits<config::Round>::max()));
      }
    }
  } else {
    fault.reset(options_.fault, n);
  }
  const bool fault_on = fault.active();
  const bool staggered_wake = fault_on && fault.max_wake_delay() > 0;
  auto wake_tag = [&](graph::NodeId v) -> config::Round {
    return staggered_wake ? scratch.effective_tag_[v] : configuration_.tag(v);
  };

  RunResult result;
  result.nodes.resize(n);

  // Per-round channel resolution uses epoch-stamped counters so no clearing
  // pass is needed between rounds.
  std::vector<config::Round>& stamp = scratch.stamp_;
  std::vector<std::uint32_t>& transmitter_count = scratch.transmitter_count_;
  std::vector<Message>& pending_message = scratch.pending_message_;
  std::vector<graph::NodeId>& transmitters = scratch.transmitters_;
  stamp.assign(n, static_cast<config::Round>(-1));
  transmitter_count.assign(n, 0);
  pending_message.assign(n, 0);
  transmitters.clear();

  std::uint32_t live = n;  // nodes not yet terminated

  config::Round round = 0;
  for (; round < options_.max_rounds && live > 0; ++round) {
    if (trace != nullptr) {
      trace->on_round_begin(round);
    }

    // 0. Injected crash-stops: a crashed node halts before acting this
    //    round and never terminates properly (NodeOutcome::terminated stays
    //    false, so a crashed run can only verify as a detected fault).
    if (fault_on) {
      for (graph::NodeId v = 0; v < n; ++v) {
        if (nodes[v].phase != NodeState::Phase::Terminated && fault.crash_round(v) == round) {
          nodes[v].phase = NodeState::Phase::Terminated;
          result.nodes[v].crashed = true;
          ++result.stats.injected_crashes;
          --live;
        }
      }
    }

    // 1. Spontaneous wakeups: (possibly staggered) tag == round.
    for (graph::NodeId v = 0; v < n; ++v) {
      NodeState& node = nodes[v];
      node.woke_this_round = false;
      node.transmitting = false;
      if (node.phase == NodeState::Phase::Asleep && wake_tag(v) == round) {
        node.phase = NodeState::Phase::Awake;
        node.wake_round = round;
        node.forced = false;
        node.woke_this_round = true;
        if (staggered_wake && scratch.effective_tag_[v] != configuration_.tag(v)) {
          ++result.stats.delayed_wakeups;
        }
      }
    }

    // 2. Actions of nodes awake since an earlier round.
    transmitters.clear();
    for (graph::NodeId v = 0; v < n; ++v) {
      NodeState& node = nodes[v];
      if (node.phase != NodeState::Phase::Awake || node.woke_this_round) {
        continue;
      }
      const config::Round local = round - node.wake_round;
      const HistoryView view(node.history, node.dropped);
      ARL_ASSERT(view.length() == local, "history length must equal the local round");
      const Action action = node.program->decide(local, view);
      ++result.stats.node_rounds;
      ++result.nodes[v].awake_rounds;
      if (trace != nullptr) {
        trace->on_action(v, round, local, action);
      }
      switch (action.kind) {
        case Action::Kind::Listen:
          break;
        case Action::Kind::Transmit:
          node.transmitting = true;
          node.outgoing = action.message;
          transmitters.push_back(v);
          ++result.stats.transmissions;
          ++result.nodes[v].transmissions;
          break;
        case Action::Kind::Terminate:
          node.phase = NodeState::Phase::Terminated;
          // H[done_v] is recorded as (∅): a terminating node no longer
          // interacts with the channel (same convention as a transmitter),
          // and the paper's decision function consumes H[0..done_v].
          push_entry(node, HistoryEntry::silence(), window);
          result.nodes[v].terminated = true;
          result.nodes[v].done_round = local;
          --live;
          break;
      }
    }

    // 3. Channel resolution: stamp the neighbourhoods of all transmitters.
    for (const graph::NodeId t : transmitters) {
      for (const graph::NodeId w : graph.neighbors(t)) {
        if (stamp[w] != round) {
          stamp[w] = round;
          transmitter_count[w] = 0;
        }
        ++transmitter_count[w];
        pending_message[w] = nodes[t].outgoing;
      }
    }
    auto channel_at = [&](graph::NodeId v) -> HistoryEntry {
      if (stamp[v] != round || transmitter_count[v] == 0) {
        return HistoryEntry::silence();
      }
      if (transmitter_count[v] == 1) {
        return HistoryEntry::message(pending_message[v]);
      }
      // Without collision detection, noise is indistinguishable from silence.
      return options_.channel_model == ChannelModel::CollisionDetection
                 ? HistoryEntry::collision()
                 : HistoryEntry::silence();
    };
    // Channel faults apply per listener on top of the resolved channel: a
    // clean message may be erased to silence (drop) or garbled to noise
    // (corrupt) by this listener's die.  Called at most once per node per
    // round, so the injected-event counters are exact.
    auto perceived_at = [&](graph::NodeId v) -> HistoryEntry {
      const HistoryEntry entry = channel_at(v);
      if (fault_on && entry.is_message()) {
        if (fault.drop_message(round, v)) {
          ++result.stats.injected_drops;
          return HistoryEntry::silence();
        }
        if (fault.corrupt_message(round, v)) {
          ++result.stats.injected_corruptions;
          // A garbled message sounds like a collision — which, without
          // collision detection, is indistinguishable from silence.
          return options_.channel_model == ChannelModel::CollisionDetection
                     ? HistoryEntry::collision()
                     : HistoryEntry::silence();
        }
      }
      return entry;
    };

    // 4. Record histories and process wakeups.
    for (graph::NodeId v = 0; v < n; ++v) {
      NodeState& node = nodes[v];
      switch (node.phase) {
        case NodeState::Phase::Terminated:
          break;
        case NodeState::Phase::Awake: {
          HistoryEntry entry = HistoryEntry::silence();
          if (node.woke_this_round) {
            // H[0] of a spontaneous wakeup, subject to the wake policy.
            const HistoryEntry channel = perceived_at(v);
            if (channel.is_message()) {
              // Tag round coincides with a clean reception: the paper counts
              // r <= t_v receptions as forced wakeups.
              node.forced = true;
              entry = channel;
              ++result.stats.forced_wakeups;
            } else if (options_.wake_policy == WakePolicy::HearAll) {
              entry = channel;
            }
            result.nodes[v].wake_round = node.wake_round;
            result.nodes[v].forced_wake = node.forced;
            if (trace != nullptr) {
              trace->on_wake(v, round, node.forced, entry);
            }
          } else if (node.transmitting) {
            entry = HistoryEntry::silence();  // a transmitter hears nothing
          } else {
            entry = perceived_at(v);
            if (entry.is_message()) {
              ++result.stats.clean_receptions;
            } else if (entry.is_collision()) {
              ++result.stats.collisions_heard;
            }
          }
          push_entry(node, entry, window);
          if (trace != nullptr && !node.woke_this_round) {
            trace->on_reception(v, round, entry);
          }
          break;
        }
        case NodeState::Phase::Asleep: {
          const HistoryEntry channel = perceived_at(v);
          if (channel.is_message()) {
            // Forced wakeup: a clean message wakes a sleeper; noise does not.
            node.phase = NodeState::Phase::Awake;
            node.wake_round = round;
            node.forced = true;
            node.woke_this_round = true;
            push_entry(node, channel, window);
            result.nodes[v].wake_round = round;
            result.nodes[v].forced_wake = true;
            ++result.stats.forced_wakeups;
            if (trace != nullptr) {
              trace->on_wake(v, round, true, channel);
            }
          }
          break;
        }
      }
    }

    if (trace != nullptr) {
      trace->on_round_end(round);
    }
  }

  result.rounds_executed = round;
  result.all_terminated = (live == 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeState& node = nodes[v];
    if (options_.keep_histories) {
      result.nodes[v].history = std::move(node.history);
      result.nodes[v].history_dropped = node.dropped;
    } else {
      result.nodes[v].history_dropped = node.dropped + node.history.size();
    }
    result.nodes[v].elected = node.program->elected();
    if (node.phase == NodeState::Phase::Awake || node.phase == NodeState::Phase::Terminated) {
      result.nodes[v].wake_round = node.wake_round;
      result.nodes[v].forced_wake = node.forced;
    }
  }
  finish_energy_stats(result);
  return result;
}

RunResult Simulator::run_bitset(SimulatorScratch& s) const {
  const graph::Graph& graph = configuration_.graph();
  const graph::NodeId n = graph.node_count();
  std::optional<std::size_t> window =
      options_.history_window ? options_.history_window : drip_.history_window();
  if (window && *window == 0) {
    window = std::nullopt;  // 0 = explicit "retain everything" override
  }

  ARL_EXPECTS(options_.labels.empty() || options_.labels.size() == n,
              "labels must be absent or cover every node");

  // Per-node coin seeds, cached per master seed.  split(v) depends only on
  // (seed, v), so a cache built for a smaller n extends in place.
  if (!s.seeds_valid_ || s.seeds_from_ != options_.coin_seed) {
    s.coin_seeds_.clear();
    s.seeds_from_ = options_.coin_seed;
    s.seeds_valid_ = true;
  }
  if (s.coin_seeds_.size() < n) {
    const support::Rng seeder(options_.coin_seed);
    const std::size_t known = s.coin_seeds_.size();
    s.coin_seeds_.resize(n);
    for (std::size_t v = known; v < n; ++v) {
      s.coin_seeds_[v] = seeder.split(v).next();
    }
  }

  // Adjacency bitmap, cached across same-topology runs.
  if (!s.adjacency_.matches(graph)) {
    s.adjacency_.build(graph);
  }
  const std::size_t words = s.adjacency_.words_per_row();

  // Program/history arena: the slot vectors and history capacities persist
  // across runs; programs themselves are stateful and re-instantiated.
  s.programs_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeEnv env;
    env.coin_seed = s.coin_seeds_[v];
    if (!options_.labels.empty()) {
      env.label = options_.labels[v];
    }
    s.programs_[v] = drip_.instantiate(env);
    ARL_ENSURES(s.programs_[v] != nullptr, "drip must produce a program");
  }
  if (s.histories_.size() < n) {
    s.histories_.resize(n);
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    s.histories_[v].clear();
  }
  s.dropped_.assign(n, 0);
  s.wake_round_.assign(n, 0);
  s.outgoing_.assign(n, 0);
  s.forced_.assign(n, 0);
  s.woke_now_.assign(n, 0);
  s.awake_bits_.assign(words, 0);
  s.terminated_bits_.assign(words, 0);
  s.transmit_bits_.assign(words, 0);
  s.heard_bits_.assign(words, 0);
  s.awake_list_.clear();
  s.woke_list_.clear();
  s.transmitters_.clear();

  s.wake_events_.clear();
  s.wake_events_.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    s.wake_events_.emplace_back(configuration_.tag(v), v);
  }
  std::sort(s.wake_events_.begin(), s.wake_events_.end());

  RunResult result;
  result.nodes.resize(n);

  auto push_history = [&](graph::NodeId v, HistoryEntry entry) {
    History& h = s.histories_[v];
    h.push_back(entry);
    if (window && h.size() > 2 * *window) {
      const std::size_t evict = h.size() - *window;
      h.erase(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(evict));
      s.dropped_[v] += evict;
    }
  };

  // What node v hears this round: popcount of its row against the
  // transmitter bitset, early-exiting at two (two transmitters sound the
  // same as twenty).
  const bool cd = options_.channel_model == ChannelModel::CollisionDetection;
  auto channel_at = [&](graph::NodeId v) -> HistoryEntry {
    const std::uint64_t* row = s.adjacency_.row(v);
    std::uint32_t count = 0;
    graph::NodeId single = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t hit = row[w] & s.transmit_bits_[w];
      if (hit == 0) {
        continue;
      }
      count += static_cast<std::uint32_t>(std::popcount(hit));
      if (count > 1) {
        // Without collision detection, noise is indistinguishable from
        // silence.
        return cd ? HistoryEntry::collision() : HistoryEntry::silence();
      }
      single = static_cast<graph::NodeId>(w * 64 + static_cast<std::size_t>(std::countr_zero(hit)));
    }
    if (count == 0) {
      return HistoryEntry::silence();
    }
    return HistoryEntry::message(s.outgoing_[single]);
  };

  std::uint32_t live = n;
  std::size_t next_wake = 0;
  const config::Round horizon = options_.max_rounds;
  config::Round round = 0;

  while (round < horizon && live > 0) {
    // 1. Spontaneous wakeups: tag == round.  (A node force-woken — or even
    //    terminated — before its tag keeps its earlier state.)
    s.woke_list_.clear();
    while (next_wake < s.wake_events_.size() && s.wake_events_[next_wake].first == round) {
      const graph::NodeId v = s.wake_events_[next_wake].second;
      ++next_wake;
      if (!bitset_test(s.awake_bits_, v) && !bitset_test(s.terminated_bits_, v)) {
        bitset_set(s.awake_bits_, v);
        s.wake_round_[v] = round;
        s.forced_[v] = 0;
        s.woke_now_[v] = 1;
        s.awake_list_.push_back(v);
        s.woke_list_.push_back(v);
      }
    }

    if (s.awake_list_.empty()) {
      // All live nodes are still asleep: nothing observable happens before
      // the next wakeup tag.
      ARL_ASSERT(next_wake < s.wake_events_.size(), "live sleepers must have pending tags");
      round = std::min(horizon, s.wake_events_[next_wake].first);
      continue;
    }

    // 2. Bulk-skip provably silent rounds.  If every awake node promises via
    //    listen_streak() to Listen for the next k rounds (given silence) and
    //    no wakeup tag falls inside them, those rounds have no transmitter —
    //    hence no message, no forced wakeup, and silence at every listener —
    //    so they can be recorded wholesale without calling decide().
    if (s.woke_list_.empty()) {
      config::Round limit = horizon - round;
      if (next_wake < s.wake_events_.size()) {
        limit = std::min(limit, s.wake_events_[next_wake].first - round);
      }
      config::Round streak = limit;
      for (const graph::NodeId v : s.awake_list_) {
        const config::Round local = round - s.wake_round_[v];
        const HistoryView view(s.histories_[v], s.dropped_[v]);
        streak = std::min(streak, s.programs_[v]->listen_streak(local, view));
        if (streak == 0) {
          break;
        }
      }
      if (streak > 0) {
        for (const graph::NodeId v : s.awake_list_) {
          // Bulk-append `streak` silences in O(window) instead of O(streak):
          // the final (contents, dropped) pair is exactly what `streak`
          // individual push_history calls would leave — eviction fires at
          // size 2W+1 cutting back to W, so the size after the run is s0 +
          // streak if no eviction fires, else W plus the pushes left over
          // after the last eviction.  No observation happens mid-run (these
          // rounds execute no decide() and no channel), so only the final
          // state matters.
          History& h = s.histories_[v];
          const std::size_t s0 = h.size();
          std::size_t total = s0 + streak;
          if (window && total > 2 * *window) {
            const std::size_t wsize = *window;
            const std::size_t to_first_evict = 2 * wsize + 1 - s0;
            total = wsize + (streak - to_first_evict) % (wsize + 1);
            const std::size_t evicted = s0 + streak - total;
            s.dropped_[v] += evicted;
            const std::size_t keep_old = s0 > evicted ? s0 - evicted : 0;
            h.erase(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(s0 - keep_old));
          }
          h.insert(h.end(), total - h.size(), HistoryEntry::silence());
          result.nodes[v].awake_rounds += streak;
        }
        result.stats.node_rounds += static_cast<std::uint64_t>(s.awake_list_.size()) * streak;
        round += streak;
        continue;
      }
    }

    // 3. Actions of nodes awake since an earlier round.
    std::fill(s.transmit_bits_.begin(), s.transmit_bits_.end(), 0);
    s.transmitters_.clear();
    bool any_terminated = false;
    for (const graph::NodeId v : s.awake_list_) {
      if (s.woke_now_[v] != 0) {
        continue;
      }
      const config::Round local = round - s.wake_round_[v];
      const HistoryView view(s.histories_[v], s.dropped_[v]);
      ARL_ASSERT(view.length() == local, "history length must equal the local round");
      const Action action = s.programs_[v]->decide(local, view);
      ++result.stats.node_rounds;
      ++result.nodes[v].awake_rounds;
      switch (action.kind) {
        case Action::Kind::Listen:
          break;
        case Action::Kind::Transmit:
          bitset_set(s.transmit_bits_, v);
          s.outgoing_[v] = action.message;
          s.transmitters_.push_back(v);
          ++result.stats.transmissions;
          ++result.nodes[v].transmissions;
          break;
        case Action::Kind::Terminate:
          // H[done_v] is recorded as (∅), as in the scalar loop.
          bitset_clear(s.awake_bits_, v);
          bitset_set(s.terminated_bits_, v);
          push_history(v, HistoryEntry::silence());
          result.nodes[v].terminated = true;
          result.nodes[v].done_round = local;
          --live;
          any_terminated = true;
          break;
      }
    }

    // 4. Channel resolution and history recording.
    if (s.transmitters_.empty()) {
      // Globally silent round: every awake node records (∅) under either
      // wake policy, and no sleeper can be force-woken.
      for (const graph::NodeId v : s.awake_list_) {
        if (bitset_test(s.terminated_bits_, v)) {
          continue;
        }
        if (s.woke_now_[v] != 0) {
          result.nodes[v].wake_round = s.wake_round_[v];
          result.nodes[v].forced_wake = false;
        }
        push_history(v, HistoryEntry::silence());
      }
    } else {
      for (const graph::NodeId v : s.awake_list_) {
        if (bitset_test(s.terminated_bits_, v)) {
          continue;
        }
        HistoryEntry entry = HistoryEntry::silence();
        if (s.woke_now_[v] != 0) {
          // H[0] of a spontaneous wakeup, subject to the wake policy.
          const HistoryEntry channel = channel_at(v);
          if (channel.is_message()) {
            s.forced_[v] = 1;
            entry = channel;
            ++result.stats.forced_wakeups;
          } else if (options_.wake_policy == WakePolicy::HearAll) {
            entry = channel;
          }
          result.nodes[v].wake_round = s.wake_round_[v];
          result.nodes[v].forced_wake = s.forced_[v] != 0;
        } else if (bitset_test(s.transmit_bits_, v)) {
          entry = HistoryEntry::silence();  // a transmitter hears nothing
        } else {
          entry = channel_at(v);
          if (entry.is_message()) {
            ++result.stats.clean_receptions;
          } else if (entry.is_collision()) {
            ++result.stats.collisions_heard;
          }
        }
        push_history(v, entry);
      }

      // Forced wakeups: sleepers inside some transmitter's neighbourhood
      // that received a clean message (noise does not wake, §2.1).
      std::fill(s.heard_bits_.begin(), s.heard_bits_.end(), 0);
      for (const graph::NodeId t : s.transmitters_) {
        const std::uint64_t* row = s.adjacency_.row(t);
        for (std::size_t w = 0; w < words; ++w) {
          s.heard_bits_[w] |= row[w];
        }
      }
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t sleepers = s.heard_bits_[w] & ~s.awake_bits_[w] & ~s.terminated_bits_[w];
        while (sleepers != 0) {
          const graph::NodeId v =
              static_cast<graph::NodeId>(w * 64 + static_cast<std::size_t>(std::countr_zero(sleepers)));
          sleepers &= sleepers - 1;
          const HistoryEntry channel = channel_at(v);
          if (!channel.is_message()) {
            continue;
          }
          bitset_set(s.awake_bits_, v);
          s.wake_round_[v] = round;
          s.forced_[v] = 1;
          s.woke_now_[v] = 1;
          s.awake_list_.push_back(v);
          s.woke_list_.push_back(v);
          push_history(v, channel);
          result.nodes[v].wake_round = round;
          result.nodes[v].forced_wake = true;
          ++result.stats.forced_wakeups;
        }
      }
    }

    // 5. End of round: clear the woke flags and drop terminated nodes.
    for (const graph::NodeId v : s.woke_list_) {
      s.woke_now_[v] = 0;
    }
    if (any_terminated) {
      std::erase_if(s.awake_list_,
                    [&](graph::NodeId v) { return bitset_test(s.terminated_bits_, v); });
    }
    ++round;
  }

  result.rounds_executed = round;
  result.all_terminated = (live == 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (options_.keep_histories) {
      result.nodes[v].history = std::move(s.histories_[v]);
      s.histories_[v].clear();
      result.nodes[v].history_dropped = s.dropped_[v];
    } else {
      result.nodes[v].history_dropped = s.dropped_[v] + s.histories_[v].size();
    }
    result.nodes[v].elected = s.programs_[v]->elected();
    if (bitset_test(s.awake_bits_, v) || bitset_test(s.terminated_bits_, v)) {
      result.nodes[v].wake_round = s.wake_round_[v];
      result.nodes[v].forced_wake = s.forced_[v] != 0;
    }
  }
  finish_energy_stats(result);
  return result;
}

RunResult simulate(const config::Configuration& configuration, const Drip& drip,
                   SimulatorOptions options) {
  Simulator simulator(configuration, drip, std::move(options));
  return simulator.run();
}

RunResult simulate(const config::Configuration& configuration, const Drip& drip,
                   SimulatorOptions options, SimulatorScratch& scratch) {
  Simulator simulator(configuration, drip, std::move(options));
  return simulator.run(scratch);
}

}  // namespace arl::radio
