#include "radio/history.hpp"

namespace arl::radio {

std::string format_history(const History& history) {
  std::string out;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += history[i].to_string();
  }
  return out;
}

}  // namespace arl::radio
