#pragma once

/// \file trace.hpp
/// Execution tracing hooks for the simulator.  Sinks receive every wakeup,
/// action and reception; the stream printer renders a compact per-round log
/// used by the trace example and by debugging sessions.

#include <iosfwd>

#include "config/configuration.hpp"
#include "graph/graph.hpp"
#include "radio/message.hpp"
#include "radio/program.hpp"

namespace arl::radio {

/// Observer interface; all callbacks default to no-ops.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A global round is starting.
  virtual void on_round_begin(config::Round /*global_round*/) {}

  /// Node `v` woke up in `global_round` (forced by a message or spontaneous).
  virtual void on_wake(graph::NodeId /*v*/, config::Round /*global_round*/, bool /*forced*/,
                       HistoryEntry /*h0*/) {}

  /// Node `v` performed `action` in its local round `local_round`.
  virtual void on_action(graph::NodeId /*v*/, config::Round /*global_round*/,
                         config::Round /*local_round*/, const Action& /*action*/) {}

  /// Node `v` recorded history entry `entry` for this round.
  virtual void on_reception(graph::NodeId /*v*/, config::Round /*global_round*/,
                            HistoryEntry /*entry*/) {}

  /// The global round finished.
  virtual void on_round_end(config::Round /*global_round*/) {}
};

/// Prints one line per event to a stream.
class StreamTrace final : public TraceSink {
 public:
  /// `verbose` additionally prints listen actions and silence receptions.
  explicit StreamTrace(std::ostream& out, bool verbose = false) : out_(out), verbose_(verbose) {}

  void on_round_begin(config::Round global_round) override;
  void on_wake(graph::NodeId v, config::Round global_round, bool forced,
               HistoryEntry h0) override;
  void on_action(graph::NodeId v, config::Round global_round, config::Round local_round,
                 const Action& action) override;
  void on_reception(graph::NodeId v, config::Round global_round, HistoryEntry entry) override;

 private:
  std::ostream& out_;
  bool verbose_;
};

}  // namespace arl::radio
