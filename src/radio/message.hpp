#pragma once

/// \file message.hpp
/// Messages and per-round history entries (paper §2.2).
///
/// A listening node hears, in each round, exactly one of: silence (∅), a
/// message M (exactly one neighbour transmitted), or noise (∗, collision of
/// two or more transmitters).  A transmitting node hears nothing, recorded as
/// (∅).  Messages are 64-bit integers; the model allows arbitrary strings but
/// any finite alphabet embeds into integers, and the canonical protocol only
/// ever transmits '1'.

#include <compare>
#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace arl::radio {

/// Message payload transmitted over the radio channel.
using Message = std::uint64_t;

/// Channel feedback strength.  The paper assumes collision detection
/// (listeners distinguish silence, one transmitter, many transmitters);
/// the weaker no-CD variant — where noise is indistinguishable from silence,
/// as in classic no-CD radio networks and plain beeping models — is provided
/// as an extension for the feasibility-under-weaker-feedback experiments.
enum class ChannelModel : std::uint8_t {
  CollisionDetection,    ///< the paper's model: (∅) / (M) / (∗)
  NoCollisionDetection,  ///< collisions read as silence: (∅) / (M)
};

/// One entry of a node's history: what the node heard in one local round.
class HistoryEntry {
 public:
  /// The three observable channel states.
  enum class Kind : std::uint8_t {
    Silence,    ///< (∅) — transmitted, or listened and heard nothing
    Message,    ///< (M) — listened and exactly one neighbour transmitted
    Collision,  ///< (∗) — listened and two or more neighbours transmitted
  };

  /// Silence entry (∅).
  [[nodiscard]] static constexpr HistoryEntry silence() { return HistoryEntry(Kind::Silence, 0); }

  /// Message entry (M).
  [[nodiscard]] static constexpr HistoryEntry message(Message payload) {
    return HistoryEntry(Kind::Message, payload);
  }

  /// Collision entry (∗).
  [[nodiscard]] static constexpr HistoryEntry collision() {
    return HistoryEntry(Kind::Collision, 0);
  }

  /// Default-constructs silence.
  constexpr HistoryEntry() : HistoryEntry(Kind::Silence, 0) {}

  [[nodiscard]] constexpr Kind kind() const { return kind_; }
  [[nodiscard]] constexpr bool is_silence() const { return kind_ == Kind::Silence; }
  [[nodiscard]] constexpr bool is_message() const { return kind_ == Kind::Message; }
  [[nodiscard]] constexpr bool is_collision() const { return kind_ == Kind::Collision; }

  /// Payload of a message entry; requires is_message().
  [[nodiscard]] Message payload() const {
    ARL_EXPECTS(is_message(), "only message entries carry a payload");
    return payload_;
  }

  friend constexpr bool operator==(HistoryEntry a, HistoryEntry b) = default;

  /// Arbitrary-but-consistent total order (kind, then payload); lets history
  /// vectors key ordered containers.
  friend constexpr auto operator<=>(HistoryEntry a, HistoryEntry b) = default;

  /// Compact rendering: "-", "m<payload>", "*".
  [[nodiscard]] std::string to_string() const {
    switch (kind_) {
      case Kind::Silence:
        return "-";
      case Kind::Message: {
        std::string out = "m";
        out += std::to_string(payload_);
        return out;
      }
      case Kind::Collision:
        return "*";
    }
    return "?";
  }

 private:
  constexpr HistoryEntry(Kind kind, Message payload) : kind_(kind), payload_(payload) {}

  Kind kind_;
  Message payload_;
};

}  // namespace arl::radio
