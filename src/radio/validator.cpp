#include "radio/validator.hpp"

#include <map>
#include <sstream>

#include "support/assert.hpp"

namespace arl::radio {

ExecutionRecorder::NodeRecord& ExecutionRecorder::record_for(graph::NodeId v) {
  if (v >= nodes_.size()) {
    nodes_.resize(v + 1);
  }
  return nodes_[v];
}

void ExecutionRecorder::on_wake(graph::NodeId v, config::Round global_round, bool forced,
                                HistoryEntry h0) {
  NodeRecord& record = record_for(v);
  record.wake_round = global_round;
  record.forced = forced;
  record.wake_entry = h0;
}

void ExecutionRecorder::on_action(graph::NodeId v, config::Round global_round,
                                  config::Round local_round, const Action& action) {
  record_for(v).actions.push_back(ActionEvent{global_round, local_round, action});
}

namespace {

/// Transmissions per global round: (node, payload) pairs.
using TransmissionMap = std::map<config::Round, std::vector<std::pair<graph::NodeId, Message>>>;

TransmissionMap build_transmissions(const ExecutionRecorder& recorder) {
  TransmissionMap map;
  for (graph::NodeId v = 0; v < recorder.nodes().size(); ++v) {
    for (const auto& event : recorder.nodes()[v].actions) {
      if (event.action.is_transmit()) {
        map[event.global_round].emplace_back(v, event.action.message);
      }
    }
  }
  return map;
}

/// What a listener at `v` hears in `round`, per the model.
HistoryEntry channel_at(const config::Configuration& configuration,
                        const TransmissionMap& transmissions, graph::NodeId v,
                        config::Round round, ChannelModel model) {
  const auto it = transmissions.find(round);
  if (it == transmissions.end()) {
    return HistoryEntry::silence();
  }
  std::uint32_t count = 0;
  Message payload = 0;
  for (const auto& [w, message] : it->second) {
    if (configuration.graph().has_edge(v, w)) {
      ++count;
      payload = message;
    }
  }
  if (count == 0) {
    return HistoryEntry::silence();
  }
  if (count == 1) {
    return HistoryEntry::message(payload);
  }
  return model == ChannelModel::CollisionDetection ? HistoryEntry::collision()
                                                   : HistoryEntry::silence();
}

}  // namespace

ValidationReport validate_execution(const config::Configuration& configuration,
                                    const ExecutionRecorder& recorder, const RunResult& result,
                                    ChannelModel model, WakePolicy policy) {
  ValidationReport report;
  auto fail = [&report](graph::NodeId v, const std::string& what) {
    report.ok = false;
    std::ostringstream out;
    out << "node " << v << ": " << what;
    report.error = out.str();
  };

  const TransmissionMap transmissions = build_transmissions(recorder);
  const graph::NodeId n = configuration.size();
  ARL_EXPECTS(result.nodes.size() == n, "run result does not match the configuration");

  for (graph::NodeId v = 0; v < n && report.ok; ++v) {
    const NodeOutcome& outcome = result.nodes[v];
    if (outcome.history_dropped != 0) {
      fail(v, "validation requires full histories (disable windowing)");
      break;
    }
    const ExecutionRecorder::NodeRecord empty{};
    const auto& record = v < recorder.nodes().size() ? recorder.nodes()[v] : empty;
    if (!record.wake_round.has_value()) {
      continue;  // never woke within the horizon; nothing to check
    }
    const config::Round wake = *record.wake_round;

    // Wake legality.
    ++report.checks;
    if (wake != outcome.wake_round || record.forced != outcome.forced_wake) {
      fail(v, "wake round/kind disagrees between trace and outcome");
      break;
    }
    if (record.forced) {
      ++report.checks;
      if (wake > configuration.tag(v)) {
        fail(v, "forced wakeup after the spontaneous tag");
        break;
      }
      if (!channel_at(configuration, transmissions, v, wake, model).is_message()) {
        fail(v, "forced wakeup without a clean message");
        break;
      }
    } else {
      ++report.checks;
      if (wake != configuration.tag(v)) {
        fail(v, "spontaneous wakeup not at the tag");
        break;
      }
    }
    // No earlier clean message may have been missed.
    for (const auto& [round, events] : transmissions) {
      if (round >= wake) {
        break;
      }
      ++report.checks;
      if (channel_at(configuration, transmissions, v, round, model).is_message()) {
        fail(v, "slept through a clean message at round " + std::to_string(round));
        break;
      }
    }
    if (!report.ok) {
      break;
    }

    // Action cadence: local rounds 1, 2, 3, ... at global wake+local; nothing
    // after a terminate.
    config::Round expected_local = 1;
    bool terminated = false;
    for (const auto& event : record.actions) {
      ++report.checks;
      if (terminated) {
        fail(v, "action after termination");
        break;
      }
      if (event.local_round != expected_local || event.global_round != wake + event.local_round) {
        fail(v, "action cadence broken at local round " + std::to_string(event.local_round));
        break;
      }
      ++expected_local;
      terminated = event.action.is_terminate();
    }
    if (!report.ok) {
      break;
    }
    ++report.checks;
    if (terminated != outcome.terminated) {
      fail(v, "termination flag disagrees with the action log");
      break;
    }

    // History re-derivation.
    const History& history = outcome.history;
    if (history.empty()) {
      fail(v, "woken node has an empty history");
      break;
    }
    // H[0]: the wake entry.
    HistoryEntry expected0 = HistoryEntry::silence();
    const HistoryEntry channel0 = channel_at(configuration, transmissions, v, wake, model);
    if (channel0.is_message()) {
      expected0 = channel0;
    } else if (policy == WakePolicy::HearAll) {
      expected0 = channel0;
    }
    ++report.checks;
    if (history[0] != expected0) {
      fail(v, "H[0] mismatch: expected " + expected0.to_string() + ", recorded " +
                  history[0].to_string());
      break;
    }
    // H[i] for each acted round.
    for (const auto& event : record.actions) {
      const std::size_t i = event.local_round;
      if (i >= history.size()) {
        if (!event.action.is_terminate()) {
          fail(v, "history shorter than the action log");
        }
        break;
      }
      HistoryEntry expected = HistoryEntry::silence();
      if (event.action.is_listen()) {
        expected = channel_at(configuration, transmissions, v, event.global_round, model);
      }
      ++report.checks;
      if (history[i] != expected) {
        fail(v, "H[" + std::to_string(i) + "] mismatch: expected " + expected.to_string() +
                    ", recorded " + history[i].to_string());
        break;
      }
    }
  }
  return report;
}

}  // namespace arl::radio
