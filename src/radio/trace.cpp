#include "radio/trace.hpp"

#include <ostream>

namespace arl::radio {

void StreamTrace::on_round_begin(config::Round global_round) {
  out_ << "== global round " << global_round << " ==\n";
}

void StreamTrace::on_wake(graph::NodeId v, config::Round global_round, bool forced,
                          HistoryEntry h0) {
  out_ << "  r" << global_round << " node " << v << " wakes ("
       << (forced ? "forced" : "spontaneous") << "), H[0]=" << h0.to_string() << '\n';
}

void StreamTrace::on_action(graph::NodeId v, config::Round global_round,
                            config::Round local_round, const Action& action) {
  switch (action.kind) {
    case Action::Kind::Listen:
      if (verbose_) {
        out_ << "  r" << global_round << " node " << v << " (local " << local_round
             << ") listens\n";
      }
      break;
    case Action::Kind::Transmit:
      out_ << "  r" << global_round << " node " << v << " (local " << local_round
           << ") transmits m" << action.message << '\n';
      break;
    case Action::Kind::Terminate:
      out_ << "  r" << global_round << " node " << v << " (local " << local_round
           << ") terminates\n";
      break;
  }
}

void StreamTrace::on_reception(graph::NodeId v, config::Round global_round, HistoryEntry entry) {
  if (entry.is_silence() && !verbose_) {
    return;
  }
  out_ << "  r" << global_round << " node " << v << " hears " << entry.to_string() << '\n';
}

}  // namespace arl::radio
