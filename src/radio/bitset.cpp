#include "radio/bitset.hpp"

namespace arl::radio {

void AdjacencyBitmap::build(const graph::Graph& graph) {
  node_count_ = graph.node_count();
  words_ = bitset_words(node_count_);
  rows_.assign(static_cast<std::size_t>(node_count_) * words_, 0);
  for (graph::NodeId v = 0; v < node_count_; ++v) {
    std::uint64_t* row = rows_.data() + static_cast<std::size_t>(v) * words_;
    for (const graph::NodeId w : graph.neighbors(v)) {
      row[w >> 6] |= std::uint64_t{1} << (w & 63);
    }
  }
  source_ = graph;
  built_ = true;
}

bool AdjacencyBitmap::matches(const graph::Graph& graph) const {
  return built_ && source_ == graph;
}

}  // namespace arl::radio
