#pragma once

/// \file bitset.hpp
/// Word-parallel adjacency and node-set primitives for the simulator's
/// bitset fast path.
///
/// The model makes channel resolution a pure neighbourhood-counting problem:
/// what a listener hears depends only on |N(v) ∩ T| for the round's
/// transmitter set T.  Lifting the CSR adjacency into per-node 64-bit
/// neighbour bitmaps turns that count into AND/popcount over a handful of
/// words, and turns "who heard the transmitters" into an OR of rows — both
/// word-parallel and branch-free.  The bitmap is built once per topology and
/// cached (keyed by graph equality) so same-topology batches pay for it once.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arl::radio {

/// Number of 64-bit words covering an n-bit node set.
[[nodiscard]] constexpr std::size_t bitset_words(std::size_t n) { return (n + 63) / 64; }

/// Sets bit `v`.
inline void bitset_set(std::vector<std::uint64_t>& bits, std::size_t v) {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}

/// Clears bit `v`.
inline void bitset_clear(std::vector<std::uint64_t>& bits, std::size_t v) {
  bits[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
}

/// Tests bit `v`.
[[nodiscard]] inline bool bitset_test(const std::vector<std::uint64_t>& bits, std::size_t v) {
  return ((bits[v >> 6] >> (v & 63)) & 1) != 0;
}

/// Per-node neighbour bitmaps: row v holds bit w iff {v, w} is an edge.
class AdjacencyBitmap {
 public:
  AdjacencyBitmap() = default;

  /// Rebuilds the rows for `graph` and remembers the graph as the cache key
  /// (O(n·words + m)).
  void build(const graph::Graph& graph);

  /// True when the rows were built from a graph equal to `graph`; lets a
  /// scratch reuse the build across same-topology runs.
  [[nodiscard]] bool matches(const graph::Graph& graph) const;

  [[nodiscard]] graph::NodeId node_count() const { return node_count_; }
  [[nodiscard]] std::size_t words_per_row() const { return words_; }

  /// Row of node `v`: words_per_row() words.
  [[nodiscard]] const std::uint64_t* row(graph::NodeId v) const {
    return rows_.data() + static_cast<std::size_t>(v) * words_;
  }

 private:
  graph::NodeId node_count_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> rows_;
  graph::Graph source_;  // cache key for matches()
  bool built_ = false;
};

}  // namespace arl::radio
