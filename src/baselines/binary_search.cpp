#include "baselines/binary_search.hpp"

#include "support/assert.hpp"

namespace arl::baselines {

namespace {

class BinarySearchProgram final : public radio::NodeProgram {
 public:
  BinarySearchProgram(std::uint64_t label, unsigned label_bits)
      : label_(label), label_bits_(label_bits) {}

  radio::Action decide(config::Round local_round, const radio::HistoryView& history) override {
    if (done_) {
      return radio::Action::terminate();
    }
    // Resolve the previous test round: an active 1-bit holder withdraws when
    // the channel was busy (an active 0-bit label exists below it).
    if (listening_test_ && !history.entry(local_round - 1).is_silence()) {
      active_ = false;
    }
    listening_test_ = false;

    if (local_round > label_bits_) {
      done_ = true;
      return radio::Action::terminate();
    }
    const unsigned bit_index = label_bits_ - local_round;  // MSB first
    const bool bit = ((label_ >> bit_index) & 1ULL) != 0;
    if (active_ && !bit) {
      return radio::Action::transmit(1);
    }
    if (active_ && bit) {
      listening_test_ = true;
    }
    return radio::Action::listen();
  }

  [[nodiscard]] bool elected() const override { return active_; }

 private:
  std::uint64_t label_;
  unsigned label_bits_;
  bool active_ = true;
  bool listening_test_ = false;
  bool done_ = false;
};

}  // namespace

BinarySearchElection::BinarySearchElection(unsigned label_bits) : label_bits_(label_bits) {
  ARL_EXPECTS(label_bits >= 1 && label_bits <= 63, "label width out of range");
}

std::unique_ptr<radio::NodeProgram> BinarySearchElection::instantiate(
    const radio::NodeEnv& env) const {
  ARL_EXPECTS(env.label.has_value(), "binary-search election requires labels");
  ARL_EXPECTS(*env.label < (std::uint64_t{1} << label_bits_), "label exceeds the universe");
  return std::make_unique<BinarySearchProgram>(*env.label, label_bits_);
}

std::string BinarySearchElection::name() const {
  return "binary-search(L=" + std::to_string(label_bits_) + ")";
}

}  // namespace arl::baselines
