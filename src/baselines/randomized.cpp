#include "baselines/randomized.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace arl::baselines {

namespace {

constexpr radio::Message kProbe = 1;
constexpr radio::Message kEcho = 2;

class RandomizedProgram final : public radio::NodeProgram {
 public:
  RandomizedProgram(std::uint64_t coin_seed, std::uint32_t max_slots)
      : coins_(coin_seed), max_slots_(max_slots) {}

  radio::Action decide(config::Round local_round, const radio::HistoryView& history) override {
    if (done_) {
      return radio::Action::terminate();
    }
    const radio::HistoryEntry prev = history.entry(local_round - 1);
    const bool r1 = ((local_round - 1) % 2) == 0;

    if (r1) {
      // Resolve the previous slot first.
      if (slot_ > 0) {
        if (transmitted_ && !prev.is_silence()) {
          // prev is the R2 echo: we transmitted alone — we are the leader.
          winner_ = true;
          done_ = true;
          return radio::Action::terminate();
        }
        if (observed_success_) {
          done_ = true;  // someone else won in the previous slot
          return radio::Action::terminate();
        }
      }
      if (slot_ >= max_slots_) {
        done_ = true;  // guard: declare failure rather than run forever
        return radio::Action::terminate();
      }
      const unsigned k = slot_ % 32;
      ++slot_;
      const double p = 1.0 / static_cast<double>(std::uint64_t{1} << (k + 1));
      transmitted_ = coins_.bernoulli(p);
      observed_success_ = false;
      if (transmitted_) {
        return radio::Action::transmit(kProbe);
      }
      return radio::Action::listen();
    }

    // R2: echo a clean probe; remember that this slot succeeded.  A payload
    // other than the probe can only arrive out of model (multi-hop or
    // staggered wakeups desync the slots); ignoring it keeps such runs a
    // detectable failure instead of a crash — the in-model behaviour is
    // unchanged, since R1 transmitters only ever send kProbe.
    if (!transmitted_ && prev.is_message() && prev.payload() == kProbe) {
      observed_success_ = true;
      return radio::Action::transmit(kEcho);
    }
    return radio::Action::listen();
  }

  [[nodiscard]] bool elected() const override { return winner_; }

 private:
  support::Rng coins_;
  std::uint32_t max_slots_;
  std::uint32_t slot_ = 0;
  bool transmitted_ = false;
  bool observed_success_ = false;
  bool winner_ = false;
  bool done_ = false;
};

}  // namespace

RandomizedElection::RandomizedElection(std::uint32_t max_slots) : max_slots_(max_slots) {
  ARL_EXPECTS(max_slots >= 1, "need at least one slot");
}

std::unique_ptr<radio::NodeProgram> RandomizedElection::instantiate(
    const radio::NodeEnv& env) const {
  return std::make_unique<RandomizedProgram>(env.coin_seed, max_slots_);
}

std::string RandomizedElection::name() const { return "randomized-decay"; }

}  // namespace arl::baselines
