#include "baselines/tree_split.hpp"

#include <vector>

#include "support/assert.hpp"

namespace arl::baselines {

namespace {

constexpr radio::Message kProbe = 1;
constexpr radio::Message kSuccessEcho = 2;
constexpr radio::Message kCollisionEcho = 3;

/// A label-prefix group: labels whose top `length` bits equal `bits`.
struct PrefixGroup {
  unsigned length = 0;
  std::uint64_t bits = 0;
};

class TreeSplitProgram final : public radio::NodeProgram {
 public:
  TreeSplitProgram(std::uint64_t label, unsigned label_bits)
      : label_(label), label_bits_(label_bits) {
    stack_.push_back(PrefixGroup{0, 0});  // root group: every label
  }

  radio::Action decide(config::Round local_round, const radio::HistoryView& history) override {
    if (done_) {
      return radio::Action::terminate();
    }
    const radio::HistoryEntry prev = history.entry(local_round - 1);

    // Resolve the previous slot at the first round of the next one; on
    // success (or an unsplittable collision) every node terminates here, in
    // the same local round.
    if (resolve_pending_) {
      resolve_pending_ = false;
      switch (resolve()) {
        case Outcome::Success:
          done_ = true;
          return radio::Action::terminate();
        case Outcome::Collision: {
          const PrefixGroup group = stack_.back();
          stack_.pop_back();
          if (group.length == label_bits_) {
            // Duplicate labels: a fully refined prefix cannot split.  Fail
            // consistently at every node (exercised by failure-injection
            // tests).
            done_ = true;
            return radio::Action::terminate();
          }
          stack_.push_back(PrefixGroup{group.length + 1, (group.bits << 1) | 1});
          stack_.push_back(PrefixGroup{group.length + 1, (group.bits << 1)});
          break;
        }
        case Outcome::Empty:
          stack_.pop_back();
          if (stack_.empty()) {
            done_ = true;  // defensive: cannot happen with >= 1 labeled node
            return radio::Action::terminate();
          }
          break;
      }
    }

    switch ((local_round - 1) % 3) {
      case 0: {  // R1: the top-of-stack group transmits
        transmitted_r1_ = member_of_top();
        heard_r1_ = radio::HistoryEntry::silence();
        if (transmitted_r1_) {
          return radio::Action::transmit(kProbe);
        }
        return radio::Action::listen();
      }
      case 1: {  // R2: success echo from clean listeners
        if (!transmitted_r1_) {
          heard_r1_ = prev;  // the R1 observation
          if (heard_r1_.is_message()) {
            return radio::Action::transmit(kSuccessEcho);
          }
        }
        return radio::Action::listen();
      }
      default: {  // R3: collision echo from noise listeners
        heard_r2_ = prev;  // the R2 observation (used by R1 transmitters)
        resolve_pending_ = true;
        if (!transmitted_r1_ && heard_r1_.is_collision()) {
          return radio::Action::transmit(kCollisionEcho);
        }
        return radio::Action::listen();
      }
    }
  }

  [[nodiscard]] bool elected() const override { return winner_; }

 private:
  enum class Outcome : std::uint8_t { Empty, Success, Collision };

  [[nodiscard]] bool member_of_top() const {
    ARL_ASSERT(!stack_.empty(), "stack must not underflow");
    const PrefixGroup& group = stack_.back();
    if (group.length == 0) {
      return true;
    }
    return (label_ >> (label_bits_ - group.length)) == group.bits;
  }

  [[nodiscard]] Outcome resolve() {
    if (transmitted_r1_) {
      // Echo inference: a non-silent R2 means someone heard us cleanly — we
      // transmitted alone and win.  Otherwise it was a collision (either a
      // noisy R3 follows, or every node transmitted and all echoes are
      // silent, which with n >= 2 is still a collision).
      if (!heard_r2_.is_silence()) {
        winner_ = true;
        return Outcome::Success;
      }
      return Outcome::Collision;
    }
    if (heard_r1_.is_message()) {
      return Outcome::Success;
    }
    if (heard_r1_.is_collision()) {
      return Outcome::Collision;
    }
    return Outcome::Empty;  // a listener heard a truly silent R1
  }

  std::uint64_t label_;
  unsigned label_bits_;
  std::vector<PrefixGroup> stack_;
  bool transmitted_r1_ = false;
  radio::HistoryEntry heard_r1_;
  radio::HistoryEntry heard_r2_;
  bool resolve_pending_ = false;
  bool winner_ = false;
  bool done_ = false;
};

}  // namespace

TreeSplitElection::TreeSplitElection(unsigned label_bits) : label_bits_(label_bits) {
  ARL_EXPECTS(label_bits >= 1 && label_bits <= 63, "label width out of range");
}

std::unique_ptr<radio::NodeProgram> TreeSplitElection::instantiate(
    const radio::NodeEnv& env) const {
  ARL_EXPECTS(env.label.has_value(), "tree-splitting election requires labels");
  ARL_EXPECTS(*env.label < (std::uint64_t{1} << label_bits_), "label exceeds the universe");
  return std::make_unique<TreeSplitProgram>(*env.label, label_bits_);
}

std::string TreeSplitElection::name() const {
  return "tree-split(L=" + std::to_string(label_bits_) + ")";
}

}  // namespace arl::baselines
