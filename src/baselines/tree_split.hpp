#pragma once

/// \file tree_split.hpp
/// Capetanakis/Hayes/Tsybakov–Mikhailov-style tree-splitting election on a
/// single-hop network with collision detection (references [8, 28, 38] of
/// the paper).
///
/// All nodes walk an identical DFS over label-prefix groups, driven by
/// channel feedback they can all reconstruct.  One slot = three rounds:
///   R1: members of the top-of-stack prefix group transmit '1';
///   R2: nodes that heard a clean '1' in R1 transmit the success echo '2';
///   R3: nodes that heard noise in R1 transmit the collision echo '3'.
/// A listener learns the R1 outcome directly; an R1 transmitter infers it
/// from the echoes (non-silent R2 → it transmitted alone and wins; non-silent
/// R3 → collision; both silent → everyone transmitted, also a collision).
/// On collision the group splits by the next label bit (0-half explored
/// first); on silence the group is discarded; on success all nodes terminate
/// at the end of the slot and the lone transmitter is the leader (the
/// minimum label, since the DFS prefers 0-prefixes).
///
/// Assumptions: single-hop, simultaneous wakeup, n >= 2, distinct labels in
/// [0, 2^L).  A collision on a fully-refined prefix (possible only with
/// duplicate labels) makes every node terminate un-elected — a detectable
/// failure exercised by the failure-injection tests.

#include <memory>

#include "radio/program.hpp"

namespace arl::baselines {

/// Tree-splitting election protocol.
class TreeSplitElection final : public radio::Drip {
 public:
  /// `label_bits` = L, width of the label universe; 1 <= L <= 63.
  explicit TreeSplitElection(unsigned label_bits);

  [[nodiscard]] std::unique_ptr<radio::NodeProgram> instantiate(
      const radio::NodeEnv& env) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<std::size_t> history_window() const override { return 8; }

 private:
  unsigned label_bits_;
};

}  // namespace arl::baselines
