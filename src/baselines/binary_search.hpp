#pragma once

/// \file binary_search.hpp
/// Deterministic labeled leader election on a single-hop network with
/// collision detection: bit-by-bit label filtering (the folklore algorithm
/// behind the O(log n) bounds of [8, 28, 38] cited in the paper's related
/// work).  It elects the minimum label in exactly L rounds.
///
/// Model assumptions (documented, asserted where possible): single-hop
/// topology (every node hears every other), simultaneous wakeup (all tags
/// equal), distinct labels in [0, 2^L).  Contrast with the paper's setting:
/// with labels available, election takes O(L) = O(log n) rounds; the
/// anonymous deterministic setting needs Θ(n²σ)-scale time and is outright
/// impossible without wakeup asymmetry.
///
/// Round i = 1..L handles bit position L-i (MSB first) among still-active
/// nodes: actives whose bit is 0 transmit; actives whose bit is 1 listen and
/// withdraw if the channel is non-silent (some active label has a 0 there —
/// the minimum cannot have a 1).  After L rounds exactly one node — the
/// minimum label — remains active; everyone terminates in round L+1.

#include <memory>

#include "radio/program.hpp"

namespace arl::baselines {

/// Bit-filter election protocol.
class BinarySearchElection final : public radio::Drip {
 public:
  /// `label_bits` = L, the width of the label universe [0, 2^L); 1 <= L <= 63.
  explicit BinarySearchElection(unsigned label_bits);

  [[nodiscard]] std::unique_ptr<radio::NodeProgram> instantiate(
      const radio::NodeEnv& env) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<std::size_t> history_window() const override { return 4; }

  /// Rounds until termination (L + 1) — the protocol's fixed running time.
  [[nodiscard]] config::Round rounds() const { return label_bits_ + 1; }

 private:
  unsigned label_bits_;
};

}  // namespace arl::baselines
