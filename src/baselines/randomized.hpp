#pragma once

/// \file randomized.hpp
/// Randomized anonymous leader election on a single-hop network with
/// collision detection (the [39]-style landscape of the paper's related
/// work, in its simplest decay form).
///
/// Why it is here: the paper proves deterministic anonymous election is
/// IMPOSSIBLE when all nodes wake together (identical histories forever).
/// Private coins break exactly that symmetry — this protocol elects a leader
/// with high probability on the very configurations the paper proves
/// hopeless, which is the sharpest contrast the related-work landscape
/// offers.
///
/// One slot = two rounds:
///   R1: every contender transmits '1' with probability 2^-(k+1), where k
///       cycles 0, 1, ..., 31 over slots (a decay sweep that crosses the
///       ~1/n sweet spot once per cycle regardless of n);
///   R2: nodes that heard a clean '1' echo '2'; the R1 transmitter that
///       hears a non-silent R2 knows it transmitted alone and wins.
/// Everyone terminates at the end of the successful slot (listeners saw the
/// clean '1' directly).  A guard bound on slots forces termination even in
/// the (exponentially unlikely) case no slot ever succeeds: the protocol
/// then fails with zero leaders, which the harnesses detect.

#include <memory>

#include "radio/program.hpp"

namespace arl::baselines {

/// Decay-style randomized election.
class RandomizedElection final : public radio::Drip {
 public:
  /// `max_slots` bounds the run; defaults generously (failure probability is
  /// astronomically small for any n >= 2).
  explicit RandomizedElection(std::uint32_t max_slots = 2048);

  [[nodiscard]] std::unique_ptr<radio::NodeProgram> instantiate(
      const radio::NodeEnv& env) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<std::size_t> history_window() const override { return 4; }

 private:
  std::uint32_t max_slots_;
};

}  // namespace arl::baselines
