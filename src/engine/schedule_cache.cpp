#include "engine/schedule_cache.hpp"

#include <algorithm>
#include <utility>

#include "config/fingerprint.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace arl::engine {

namespace {

/// The full cache key: configuration fingerprint mixed with the compile
/// options (the classification depends on both the channel model and the
/// classifier implementation, so the same configuration under different
/// options must occupy different entries).
std::uint64_t slot_key(const config::Configuration& configuration, radio::ChannelModel model,
                       bool fast_classifier) {
  return support::Hash64(config::fingerprint(configuration))
      .absorb(static_cast<std::uint64_t>(model))
      .absorb(fast_classifier ? 1 : 0)
      .digest();
}

std::size_t round_down_pow2(std::size_t value) {
  std::size_t pow2 = 1;
  while (pow2 * 2 <= value) {
    pow2 <<= 1;
  }
  return pow2;
}

}  // namespace

double ScheduleCacheStats::hit_rate() const {
  const std::uint64_t lookups = hits + misses;
  if (lookups == 0) {
    return 0.0;
  }
  return static_cast<double>(hits) / static_cast<double>(lookups);
}

ScheduleCacheStats ScheduleCacheStats::since(const ScheduleCacheStats& earlier) const {
  ARL_EXPECTS(hits >= earlier.hits && misses >= earlier.misses &&
                  evictions >= earlier.evictions && schedule_builds >= earlier.schedule_builds,
              "ScheduleCacheStats::since needs an earlier snapshot of the same cache");
  ScheduleCacheStats delta;
  delta.hits = hits - earlier.hits;
  delta.misses = misses - earlier.misses;
  delta.evictions = evictions - earlier.evictions;
  delta.schedule_builds = schedule_builds - earlier.schedule_builds;
  delta.entries = entries;
  return delta;
}

ScheduleCache::ScheduleCache(std::size_t capacity, std::size_t shards) {
  ARL_EXPECTS(capacity >= 1, "ScheduleCache capacity must be >= 1");
  if (shards == 0) {
    shards = 8;
  }
  // Rounding the shard count *down* to a power of two and the per-shard
  // slice down as well keeps the total bound at or under the requested
  // capacity (never over it).
  const std::size_t shard_count = round_down_pow2(std::min(shards, capacity));
  shard_capacity_ = capacity / shard_count;
  shards_ = std::vector<Shard>(shard_count);
}

ScheduleCache::Shard& ScheduleCache::shard_for(std::uint64_t key) {
  // The low bits select the index bucket inside a shard; use high bits for
  // the shard so the two selections stay independent.
  return shards_[(key >> 48) & (shards_.size() - 1)];
}

std::shared_ptr<const core::CompiledConfiguration> ScheduleCache::lookup(
    const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier) {
  const std::uint64_t key = slot_key(configuration, model, fast_classifier);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto found = shard.index.find(key);
  // A digest match must also be an exact match — model, classifier choice
  // and the configuration itself — or it is a collision and reads as a miss.
  if (found == shard.index.end() || found->second->model != model ||
      found->second->fast_classifier != fast_classifier ||
      found->second->configuration != configuration) {
    shard.misses += 1;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
  shard.hits += 1;
  return found->second->compiled;
}

std::shared_ptr<const core::CompiledConfiguration> ScheduleCache::store(
    const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier,
    core::CompiledConfiguration compiled) {
  const std::uint64_t key = slot_key(configuration, model, fast_classifier);
  auto entry = std::make_shared<const core::CompiledConfiguration>(std::move(compiled));
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto found = shard.index.find(key);
  if (found != shard.index.end()) {
    // Replacement: an upgrade adding the schedule, a racing worker's
    // duplicate compile, or (astronomically rarely) a digest collision.
    Slot& slot = *found->second;
    const bool same_key = slot.model == model && slot.fast_classifier == fast_classifier &&
                          slot.configuration == configuration;
    if (same_key && entry->schedule == nullptr && slot.compiled->schedule != nullptr) {
      // A racing classify-only compile must not downgrade an entry that
      // already holds the schedule: keep the more complete artifacts.
      shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
      return slot.compiled;
    }
    if (entry->schedule != nullptr && (!same_key || slot.compiled->schedule == nullptr)) {
      shard.schedule_builds += 1;
    }
    if (!same_key) {
      // Collision replacement: rewrite the verification fields along with
      // the artifacts, so a later lookup verifies against the configuration
      // they were compiled from, not a stale one.  (Upgrades and duplicate
      // compiles match the stored fields already — no copy needed.)
      slot.configuration = configuration;
      slot.model = model;
      slot.fast_classifier = fast_classifier;
    }
    slot.compiled = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    return slot.compiled;
  }
  if (entry->schedule != nullptr) {
    shard.schedule_builds += 1;
  }
  shard.lru.push_front(Slot{key, configuration, model, fast_classifier, std::move(entry)});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    shard.evictions += 1;
  }
  return shard.lru.front().compiled;
}

ScheduleCacheStats ScheduleCache::stats() const {
  ScheduleCacheStats total;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.schedule_builds += shard.schedule_builds;
    total.entries += shard.lru.size();
  }
  return total;
}

void ScheduleCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.lru.clear();
  }
}

std::size_t ScheduleCache::capacity() const { return shard_capacity_ * shards_.size(); }

}  // namespace arl::engine
