#pragma once

/// \file sweep.hpp
/// Ready-made job sources for the sweeps every consumer runs: seeded random
/// G(n,p) families and exhaustive enumerations of small configurations,
/// optionally crossed with a list of protocol specs for head-to-head
/// comparisons.  Shared by the CLI `sweep` command, the examples, the
/// benchmarks and the engine tests so they all measure exactly the same
/// workloads.

#include <cstdint>
#include <vector>

#include "engine/job.hpp"

namespace arl::engine {

/// Parameters of a seeded random-configuration sweep.
struct RandomSweep {
  graph::NodeId nodes = 16;      ///< nodes per configuration
  double edge_probability = 0.3; ///< G(n,p) density (connectivity is enforced)
  config::Tag span = 3;          ///< tag span σ
  bool exact_span = true;        ///< span exactly σ (else tags uniform in [0, σ])
  std::uint64_t seed = 1;        ///< configuration stream seed (independent of coin seeds)

  /// Protocols to run; more than one makes the sweep a cross product where
  /// consecutive job ids share a configuration (head-to-head comparison).
  std::vector<core::ProtocolSpec> protocols = {core::ProtocolSpec::canonical()};

  core::ElectionOptions options = {};
};

/// Lazy source of the sweep's (configuration × protocol) jobs: job i runs
/// configuration i / P under protocols[i % P] where P = protocols.size(), so
/// the P jobs of one configuration are consecutive and any prefix of the
/// stream is reproducible on any thread count (configuration i / P is a pure
/// function of (sweep.seed, i / P)).  A batch of C configurations therefore
/// has C * P jobs.
[[nodiscard]] JobSource random_jobs(RandomSweep sweep);

/// The configuration-stream seed the CLI sweep derives from the batch master
/// seed: a dedicated Rng split, keeping the configuration stream independent
/// of the per-job coin-seed stream (job_coin_seed uses
/// Rng(batch_seed).split(job id); this uses a reserved stream id far outside
/// any job-id range).  Exposed so scripts can reproduce a CLI sweep's
/// configurations from its --seed alone.
[[nodiscard]] std::uint64_t sweep_configuration_seed(std::uint64_t batch_seed);

/// A counted lazy sweep: `count` jobs produced on demand by `source`.
struct CountedSweep {
  JobId count = 0;
  JobSource source;
};

/// Crosses an existing sweep with a protocol list: job i * P + k runs base
/// configuration i under protocols[k].  The base sweep's own protocol
/// assignment is overwritten.
[[nodiscard]] CountedSweep cross_protocols(CountedSweep base,
                                           std::vector<core::ProtocolSpec> protocols);

/// Materialized cross product: every configuration under every protocol,
/// protocols consecutive per configuration (same order as cross_protocols).
[[nodiscard]] std::vector<BatchJob> cross_jobs(std::vector<config::Configuration> configurations,
                                               const std::vector<core::ProtocolSpec>& protocols,
                                               const core::ElectionOptions& options = {});

/// Every connected configuration with exactly `n` nodes and tags drawn from
/// [0, max_tag], enumerated lazily in deterministic order (per graph, the
/// tag odometer with node 0 as the fastest digit).  Only the graphs are
/// materialized — their count is exponentially smaller than the
/// configuration count, so a census that sweeps millions of configurations
/// holds one configuration per worker in memory.
[[nodiscard]] CountedSweep exhaustive_sweep(graph::NodeId n, config::Tag max_tag,
                                            core::ProtocolSpec protocol = {},
                                            core::ElectionOptions options = {});

/// Materialized form of exhaustive_sweep (convenient for small n).
[[nodiscard]] std::vector<BatchJob> exhaustive_jobs(graph::NodeId n, config::Tag max_tag,
                                                    core::ProtocolSpec protocol = {},
                                                    core::ElectionOptions options = {});

/// Staggered paths of n = first, first+1, ..., first+count-1 nodes.
[[nodiscard]] std::vector<BatchJob> staggered_jobs(graph::NodeId first, std::size_t count,
                                                   core::ProtocolSpec protocol = {},
                                                   core::ElectionOptions options = {});

}  // namespace arl::engine
