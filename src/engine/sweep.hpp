#pragma once

/// \file sweep.hpp
/// Ready-made job sources for the sweeps every consumer runs: seeded random
/// G(n,p) families and exhaustive enumerations of small configurations.
/// Shared by the CLI `sweep` command, the examples, the benchmarks and the
/// engine tests so they all measure exactly the same workloads.

#include <cstdint>
#include <vector>

#include "engine/job.hpp"

namespace arl::engine {

/// Parameters of a seeded random-configuration sweep.
struct RandomSweep {
  graph::NodeId nodes = 16;      ///< nodes per configuration
  double edge_probability = 0.3; ///< G(n,p) density (connectivity is enforced)
  config::Tag span = 3;          ///< tag span σ
  bool exact_span = true;        ///< span exactly σ (else tags uniform in [0, σ])
  std::uint64_t seed = 1;        ///< configuration stream seed (independent of coin seeds)
  Protocol protocol = Protocol::Canonical;
  core::ElectionOptions options = {};
};

/// Lazy source of the sweep's configurations: job i is a pure function of
/// (sweep.seed, i), so any prefix of the stream is reproducible on any
/// thread count.
[[nodiscard]] JobSource random_jobs(RandomSweep sweep);

/// A counted lazy sweep: `count` jobs produced on demand by `source`.
struct CountedSweep {
  JobId count = 0;
  JobSource source;
};

/// Every connected configuration with exactly `n` nodes and tags drawn from
/// [0, max_tag], enumerated lazily in deterministic order (per graph, the
/// tag odometer with node 0 as the fastest digit).  Only the graphs are
/// materialized — their count is exponentially smaller than the
/// configuration count, so a census that sweeps millions of configurations
/// holds one configuration per worker in memory.
[[nodiscard]] CountedSweep exhaustive_sweep(graph::NodeId n, config::Tag max_tag,
                                            Protocol protocol = Protocol::Canonical,
                                            core::ElectionOptions options = {});

/// Materialized form of exhaustive_sweep (convenient for small n).
[[nodiscard]] std::vector<BatchJob> exhaustive_jobs(graph::NodeId n, config::Tag max_tag,
                                                    Protocol protocol = Protocol::Canonical,
                                                    core::ElectionOptions options = {});

/// Staggered paths of n = first, first+1, ..., first+count-1 nodes.
[[nodiscard]] std::vector<BatchJob> staggered_jobs(graph::NodeId first, std::size_t count,
                                                   Protocol protocol = Protocol::Canonical,
                                                   core::ElectionOptions options = {});

}  // namespace arl::engine
