#pragma once

/// \file workload.hpp
/// The workload axis as a first-class API, mirroring the protocol axis
/// (core/protocol.hpp): a value-typed `WorkloadSpec` naming which stream of
/// configurations a sweep runs, a string-keyed registry (`parse_workload` /
/// `registered_workloads`) and one instantiation — `instantiate` — that
/// turns any spec into the engine's `CountedSweep`.
///
/// Why this exists: sweep identity used to live as ad-hoc flag-formatting
/// code inside the CLI, so only its four hard-coded families could be
/// sharded, merged or cached by identity, and the graph generators' grids,
/// tori, hypercubes and random trees were unreachable from any sweep.  With
/// the workload behind one spec, every scenario — the paper's §4 families,
/// random G(n,p), exhaustive censuses, every generator topology, mutation
/// neighbourhoods — automatically gains sharding, merging, caching and
/// head-to-head protocol cross products, and "add a scenario" is a registry
/// entry, not new CLI plumbing.
///
/// Identity contract: `parse_workload(w.name()) == w` for every spec, and
/// `w.digest()` is a canonical 64-bit digest of the spec (equal to
/// `dist::sweep_digest(w.name())`, so it feeds `dist::SweepKey` directly).
/// Two sweeps whose workloads differ in *any* identity-bearing field — a
/// topology parameter, the tag span, the channel model, the classifier
/// choice — have different names and digests, and therefore never merge.
///
/// Determinism contract: `instantiate(seed, ...)` produces a job stream that
/// is a pure function of (spec, seed, protocols): configuration i is derived
/// from `sweep_configuration_seed(seed)` split at i (independent of the
/// per-job coin streams), so any shard of the sweep reproduces exactly the
/// jobs an unsharded run executes for those ids (tests/test_dist.cpp).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol.hpp"
#include "engine/sweep.hpp"
#include "radio/message.hpp"

namespace arl::engine {

/// Run-sizing knobs of WorkloadSpec::instantiate(): everything that scales
/// a run without changing workload identity (identity lives in the spec;
/// the count is carried by dist::SweepKey::total_jobs).
struct InstantiateOptions {
  std::size_t count = 100;  ///< configurations for the unbounded kinds
};

/// Which configuration stream a spec names.
enum class WorkloadKind : std::uint8_t {
  Random,      ///< seeded connected G(n,p) with random span-σ tags
  Exhaustive,  ///< every connected n-node configuration, tags in [0, τ]
  FamilyG,     ///< the paper's §4 family G_m, m = 2, 3, ...
  FamilyH,     ///< the paper's §4 family H_m, m = 1, 2, ...
  FamilyS,     ///< the paper's §4 infeasible family S_m, m = 1, 2, ...
  Staggered,   ///< staggered paths n = 2, 3, ... (maximal wakeup asymmetry)
  Grid,        ///< rows×cols mesh with random span-σ tags
  Torus,       ///< rows×cols wrap-around mesh with random span-σ tags
  Hypercube,   ///< d-dimensional hypercube with random span-σ tags
  Tree,        ///< uniformly random n-node tree with random span-σ tags
  SingleHop,   ///< complete graph (single-hop network) with random span-σ tags
  Mutations,   ///< every single-tag mutation of each base configuration
};

/// A workload plus its parameters — a value type, cheap to copy, compared
/// member-wise (the Mutations base is compared by value, not by pointer).
/// Construct via the factories or `parse_workload`; the defaults make
/// `WorkloadSpec{}` the 16-node random workload.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::Random;

  // Topology / tag parameters.  Only the fields the kind's grammar names
  // are meaningful; the factories and parse_workload leave the others at
  // these member defaults, which keeps member-wise equality consistent.
  std::uint32_t nodes = 16;       ///< n (random, exhaustive, tree, single-hop)
  std::uint32_t rows = 8;         ///< grid/torus rows
  std::uint32_t cols = 8;         ///< grid/torus cols
  std::uint32_t dimension = 6;    ///< hypercube d
  std::uint32_t span = 3;         ///< tag span σ of the random-tag kinds
  std::uint32_t max_tag = 2;      ///< τ (exhaustive tag ceiling)
  double edge_probability = 0.3;  ///< p (random)
  bool exact = true;              ///< span exactly σ (else tags uniform in [0, σ])

  // Execution identity shared by every kind: two sweeps that classify under
  // different channel feedback or classifier implementations are different
  // workloads and must not share a sweep digest.
  radio::ChannelModel model = radio::ChannelModel::CollisionDetection;
  bool fast = false;  ///< use the hashed FastClassifier

  /// Mutations base workload; non-null exactly when kind == Mutations (the
  /// wrapper mirrors the base's model/fast so election options agree).
  std::shared_ptr<const WorkloadSpec> base;

  [[nodiscard]] static WorkloadSpec random(std::uint32_t n = 16, double p = 0.3,
                                           std::uint32_t sigma = 3);
  [[nodiscard]] static WorkloadSpec exhaustive(std::uint32_t n = 4, std::uint32_t tau = 2);
  [[nodiscard]] static WorkloadSpec family_g();
  [[nodiscard]] static WorkloadSpec family_h();
  [[nodiscard]] static WorkloadSpec family_s();
  [[nodiscard]] static WorkloadSpec staggered();
  [[nodiscard]] static WorkloadSpec grid(std::uint32_t rows = 8, std::uint32_t cols = 8,
                                         std::uint32_t sigma = 3);
  [[nodiscard]] static WorkloadSpec torus(std::uint32_t rows = 8, std::uint32_t cols = 8,
                                          std::uint32_t sigma = 3);
  [[nodiscard]] static WorkloadSpec hypercube(std::uint32_t d = 6, std::uint32_t sigma = 3);
  [[nodiscard]] static WorkloadSpec tree(std::uint32_t n = 64, std::uint32_t sigma = 3);
  [[nodiscard]] static WorkloadSpec single_hop(std::uint32_t n = 32, std::uint32_t sigma = 3);
  [[nodiscard]] static WorkloadSpec mutations(WorkloadSpec base);

  /// Registry key, round-trippable through parse_workload: the kind token
  /// followed by its parameters in canonical order ("random:n=16,p=0.3,
  /// sigma=3", "grid:rows=8,cols=8,sigma=3", "exhaustive:n=4,tau=2", bare
  /// "family-g"/"staggered", "mutations:" + base name), with ",model=nocd",
  /// ",fast=1" and ",exact=0" appended only when they differ from the
  /// defaults.  Names never contain spaces, so they travel verbatim on the
  /// shard-report wire (dist/report_io.hpp).
  [[nodiscard]] std::string name() const;

  /// One-line human description (what the configuration stream contains).
  [[nodiscard]] std::string describe() const;

  /// Canonical 64-bit digest of the spec — a pure function of name(), equal
  /// to dist::sweep_digest(name()), so it feeds dist::SweepKey directly and
  /// shard reports can verify workload identity by re-parsing the name.
  [[nodiscard]] std::uint64_t digest() const;

  /// True when the workload implies its own configuration count (exhaustive
  /// enumerations, mutation neighbourhoods of self-counting bases);
  /// instantiate ignores InstantiateOptions::count for these kinds.
  [[nodiscard]] bool bounded() const;

  /// The election options the workload's jobs run under (channel model and
  /// classifier choice; Mutations delegates to its base).
  [[nodiscard]] core::ElectionOptions election_options() const;

  /// Turns the spec into the engine's job stream: `count` configurations
  /// (or the implied count for bounded kinds) crossed with `protocols` —
  /// job i runs configuration i / P under protocols[i % P], so the P jobs
  /// of one configuration are consecutive (head-to-head comparison order,
  /// same as cross_protocols).  `seed` is the batch master seed; the
  /// configuration stream derives from it via sweep_configuration_seed, so
  /// one --seed reproduces configurations and coins alike.  Throws
  /// support::ContractViolation on out-of-range parameters.
  [[nodiscard]] CountedSweep instantiate(std::uint64_t seed,
                                         std::vector<core::ProtocolSpec> protocols,
                                         const InstantiateOptions& options = {}) const;

  friend bool operator==(const WorkloadSpec& a, const WorkloadSpec& b);
};

/// The registered workloads, one spec per kind with default parameters, in
/// registry order.  `parse_workload(w.name()) == w` for every entry
/// (asserted by tests/test_workload.cpp).
[[nodiscard]] const std::vector<WorkloadSpec>& registered_workloads();

/// Comma-separated registry keys with parameter placeholders — the list CLI
/// error messages and `arl workloads` show.
[[nodiscard]] std::string workload_names();

/// Parses a registry key with optional ",key=value" parameters (any order,
/// no duplicates; omitted keys take the kind's defaults).  Throws
/// support::ContractViolation naming the registered workloads on an unknown
/// kind, and a one-line reason on a malformed or out-of-range parameter.
[[nodiscard]] WorkloadSpec parse_workload(std::string_view text);

}  // namespace arl::engine
