#pragma once

/// \file batch_runner.hpp
/// The batch election engine: runs many election jobs across the thread
/// pool and aggregates the outcomes.
///
/// This is the one "run many configurations" loop in the repository — the
/// CLI sweep command, the examples and the benchmarks all submit their work
/// here instead of hand-rolling parallel loops.  Each worker owns one
/// `core::ElectionScratch` and reuses its simulator buffers across every job
/// it executes; job results land in a slot indexed by job id, so the
/// assembled `BatchReport` is independent of scheduling (and, by the seeding
/// contract in job.hpp, of the thread count).

#include <cstdint>
#include <optional>
#include <vector>

#include "config/fingerprint.hpp"
#include "engine/job.hpp"
#include "engine/schedule_cache.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radio/simulator.hpp"
#include "store/artifact_store.hpp"
#include "support/thread_pool.hpp"

namespace arl::engine {

/// Which simulation path a batch drives its jobs through.  Outcomes are
/// bit-identical across modes (asserted by tests/test_simulator_fast.cpp);
/// the modes differ only in throughput.
enum class EngineMode : std::uint8_t {
  Auto,       ///< currently resolves to Wavefront
  Scalar,     ///< the reference per-node simulator loop
  Wavefront,  ///< bitset fast path + histories skipped in the results; the
              ///< per-worker scratch carries adjacency bitmaps and compiled
              ///< schedules across same-topology jobs
};

/// Engine-level knobs (per BatchRunner, not per job).
struct BatchOptions {
  /// Worker threads; 0 means hardware concurrency.
  unsigned threads = 0;

  /// Batch master seed; per-job coin seeds derive from it (job_coin_seed).
  std::uint64_t seed = 0;

  /// Retain the full ElectionReport of every job in BatchReport::reports.
  /// Off by default: condensed outcomes are enough for sweeps, and full
  /// reports keep schedules and per-iteration records alive.
  bool keep_reports = false;

  /// Capacity (entries) of the schedule/classification cache shared by all
  /// workers of a batch; 0 (the default) runs uncached.  Jobs that share a
  /// configuration — mutation sweeps, cross_protocols head-to-heads —
  /// classify once instead of once per job; outcomes are bit-identical
  /// either way (tests/test_schedule_cache.cpp).
  std::size_t cache_capacity = 0;

  /// Directory of a persistent on-disk artifact store (store/); empty (the
  /// default) runs without one.  When set, the per-batch cache becomes a
  /// two-tier store::TieredScheduleCache — memory tier sized by
  /// `cache_capacity` (or the cache default when 0) — so classifications
  /// and schedules survive the process and preload the next cold batch.
  /// Outcomes are bit-identical with the store on, off, or pre-populated.
  std::string store_directory = {};

  /// Simulation path; overrides any per-job simulator engine selection
  /// (jobs carrying a trace sink still fall back to the scalar loop).
  EngineMode engine = EngineMode::Auto;

  /// Fault injected into every job of the batch (`arl sweep --fault=SPEC`).
  /// Per-job dice seeds derive from the batch master seed through the
  /// reserved fault stream (fault::job_fault_seed) — a pure function of
  /// (seed, job id), so faulted sweeps stay thread-count- and
  /// shard-invariant exactly like coin seeding.  The default `none` leaves
  /// every job byte-identical to a batch without the field.
  fault::FaultSpec fault = {};

  /// Optional per-job event trace (`arl sweep --trace=FILE`): every executed
  /// job emits one obs::TraceEvent — ids, fingerprints, disposition, and the
  /// per-phase durations its obs::JobFrame accumulated.  Not owned; must
  /// outlive every run.  Null (the default) traces nothing.  Purely
  /// observational: outcomes are bit-identical trace-on/off.
  obs::TraceSink* job_trace = nullptr;
};

/// Condensed outcome of one job (always recorded).
struct JobOutcome {
  JobId id = 0;
  core::ProtocolSpec protocol = {};        ///< the protocol that ran (protocol.name() to print)
  config::Fingerprint config_fingerprint = 0;  ///< config::fingerprint of the job's configuration
  core::Disposition disposition = core::Disposition::NotSimulated;
  graph::NodeId nodes = 0;                 ///< configuration size n
  config::Tag span = 0;                    ///< configuration span σ
  bool feasible = false;                   ///< Classifier verdict (canonical/classify only)
  bool simulated = false;                  ///< a protocol was executed on the simulator
  bool valid = false;                      ///< run_protocol() verification flag
  std::optional<graph::NodeId> leader = {};
  std::uint32_t classifier_iterations = 0;
  std::uint64_t classifier_steps = 0;
  std::uint64_t local_rounds = 0;
  config::Round global_rounds = 0;
  radio::RunStats stats;

  friend bool operator==(const JobOutcome& a, const JobOutcome& b) = default;
};

/// Per-protocol aggregate of a batch — one row of a head-to-head comparison.
struct ProtocolBreakdown {
  core::ProtocolSpec protocol = {};        ///< the spec this row aggregates
  std::uint64_t jobs = 0;
  std::uint64_t feasible = 0;              ///< feasible verdicts (canonical/classify)
  std::uint64_t valid = 0;                 ///< verification passed
  std::uint64_t elected = 0;               ///< Disposition::Elected
  std::uint64_t no_leader = 0;             ///< Disposition::NoLeader
  std::uint64_t failed = 0;                ///< Disposition::Failed
  std::uint64_t detected_fault = 0;        ///< Disposition::DetectedFault
  std::uint64_t total_local_rounds = 0;
  std::uint64_t max_local_rounds = 0;
  radio::RunStats stats;

  /// Mean election time across this protocol's jobs.
  [[nodiscard]] double average_local_rounds() const;

  friend bool operator==(const ProtocolBreakdown& a, const ProtocolBreakdown& b) = default;
};

/// Aggregated result of one batch.
struct BatchReport {
  /// Per-job outcomes in job-id order.  For a whole-batch run jobs[i].id ==
  /// i; for a run_range() shard the ids are the global ones, jobs[i].id ==
  /// begin + i, so shard reports from different processes can be merged
  /// without renumbering (see dist/merge.hpp).
  std::vector<JobOutcome> jobs;

  /// Per-protocol aggregates, ordered by first appearance in job-id order
  /// (deterministic, hence thread-count-invariant like everything else).
  std::vector<ProtocolBreakdown> by_protocol;

  /// Full reports, parallel to `jobs` (reports[i] belongs to jobs[i] — a
  /// range-local index, not the global job id); empty unless
  /// BatchOptions::keep_reports.
  std::vector<core::ElectionReport> reports;

  std::uint64_t feasible_count = 0;        ///< jobs with a feasible verdict
  std::uint64_t valid_count = 0;           ///< jobs whose verification passed
  std::uint64_t total_local_rounds = 0;    ///< sum of election times
  std::uint64_t max_local_rounds = 0;      ///< slowest election in the batch
  std::uint64_t total_global_rounds = 0;   ///< sum of global rounds executed
  radio::RunStats total_stats;             ///< channel statistics, summed

  /// The fault every job of this batch ran under (the effective
  /// BatchOptions/RunOverrides spec; `none` for an unfaulted batch).  Part
  /// of the batch's identity — merged shard reports must agree on it.
  fault::FaultSpec fault = {};
  double wall_millis = 0.0;                ///< wall time of the whole batch
  std::size_t threads_used = 1;            ///< workers actually spawned (<= pool size)

  /// Schedule-cache counters of this batch; nullopt when it ran uncached
  /// (BatchOptions::cache_capacity == 0).
  std::optional<ScheduleCacheStats> cache;

  /// Artifact-store counters of this batch (the disk tier's hits, saves and
  /// rejected files); nullopt unless BatchOptions::store_directory was set.
  /// Like `cache`, execution circumstance — never part of the merged wire
  /// format or of same_results().
  std::optional<store::ArtifactStoreStats> artifact_store;

  /// Per-phase timing of this batch: the growth of the process-wide
  /// obs::Registry between the batch's start and its last worker joining
  /// (the same delta-attribution idiom as ScheduleCacheStats::since).
  /// Execution circumstance like `cache` — never merged, never compared by
  /// same_results(), never serialized into the dist wire format.  Nullopt
  /// when the registry was disabled for the whole batch.
  std::optional<obs::MetricsSnapshot> phases;

  /// Jobs per second of wall time.
  [[nodiscard]] double throughput() const;

  /// Simulated node-rounds per second of wall time: throughput weighted by
  /// how much simulation each job actually executed, so sweeps over very
  /// different job sizes stay comparable.
  [[nodiscard]] double node_rounds_per_second() const;
};

/// Per-run deviations from a runner's BatchOptions, for callers that reuse
/// one runner (and its warm thread pool) across many differently-shaped
/// runs — the sweep service dispatches every request through one shared
/// BatchRunner this way.  Unset fields inherit the runner's options.
struct RunOverrides {
  std::optional<std::uint64_t> seed;    ///< batch master seed for this run
  std::optional<EngineMode> engine;     ///< simulation path for this run
  std::optional<fault::FaultSpec> fault;  ///< fault spec for this run
  /// Worker cap for this run (>= 1); the run uses min(pool size, job count,
  /// cap) workers.  Outcomes are thread-count-invariant, so this only
  /// shapes throughput.
  std::optional<std::size_t> max_threads;
  /// External schedule cache shared beyond this batch (e.g. the service's
  /// process-wide cache).  When set, the per-batch cache is not created,
  /// BatchOptions::cache_capacity is ignored, and BatchReport::cache stays
  /// unset — the cache's owner attributes stats across runs
  /// (ScheduleCacheStats::since).
  core::ScheduleCacheHandle* shared_cache = nullptr;
};

/// Runs batches of election jobs over an owned thread pool.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Number of worker threads in the pool.
  [[nodiscard]] std::size_t threads() const { return pool_.size(); }

  /// Runs every job in `jobs`; jobs[i] gets job id i.
  [[nodiscard]] BatchReport run(const std::vector<BatchJob>& jobs);

  /// Runs jobs 0..count-1 produced on demand by `source`.
  [[nodiscard]] BatchReport run(JobId count, const JobSource& source);

  /// Runs the contiguous global-id range [begin, end) of a larger sweep: one
  /// shard of a distributed run.  Jobs keep their *global* ids — `source` is
  /// queried with them, per-job coin seeds derive from them, and the
  /// outcomes record them — so the union of shard reports over a partition
  /// of [0, count) is bit-identical to run(count, source) in one process
  /// (asserted by tests/test_dist.cpp).
  [[nodiscard]] BatchReport run_range(JobId begin, JobId end, const JobSource& source);

  /// run_range with per-run overrides (see RunOverrides).  Determinism is
  /// unchanged: outcomes depend on the effective seed and the job ids, never
  /// on the worker cap or where the cache lives.
  [[nodiscard]] BatchReport run_range(JobId begin, JobId end, const JobSource& source,
                                      const RunOverrides& overrides);

 private:
  template <typename Fetch>
  BatchReport run_batch(JobId begin, JobId end, const Fetch& fetch,
                        const RunOverrides& overrides);

  BatchOptions options_;
  support::ThreadPool pool_;
};

/// One-shot convenience: construct a runner, execute, return the report.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchJob>& jobs, BatchOptions options = {});

/// Recomputes `report`'s aggregates (feasible/valid counts, round totals,
/// channel statistics, per-protocol breakdowns) from `report.jobs`, replacing
/// whatever was there.  The one aggregation fold in the repository: the
/// runner assembles every batch through it, and the distributed merge layer
/// reuses it so a merged report aggregates exactly like a single-process one.
void aggregate_outcomes(BatchReport& report);

/// True when two reports hold bit-identical *results*: the same per-job
/// outcomes and the same aggregates.  Execution circumstances — wall time,
/// worker count, cache counters, retained full reports — are deliberately
/// ignored: they describe how a batch ran, not what it computed, and the
/// sharded-vs-single contract (dist/) is stated over results only.
[[nodiscard]] bool same_results(const BatchReport& a, const BatchReport& b);

}  // namespace arl::engine
