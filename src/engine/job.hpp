#pragma once

/// \file job.hpp
/// Batch-election job descriptions.
///
/// A *job* is one configuration to run through the election pipeline: the
/// cross product the engine executes is (configuration source) ×
/// (ProtocolSpec) × (ElectionOptions).  Jobs come either materialized
/// (`std::vector<BatchJob>`) or lazily from a `JobSource`, so a sweep over a
/// million random configurations never holds more than one configuration per
/// worker in memory.
///
/// Determinism contract: the coin seed of job i in a batch with master seed
/// s is `job_coin_seed(s, i)` — a pure function of (s, i), never of the
/// thread that happens to execute the job.  A BatchRunner sweep is therefore
/// bit-identical across thread counts (asserted by tests/test_engine.cpp).
/// The id in the contract is always the job's *global* id in its sweep:
/// `BatchRunner::run_range` executes a sub-range of a sweep under the
/// original ids, which is what lets the distributed layer (src/dist/) split
/// one sweep across processes and merge reports that are bit-identical to a
/// single-process run (asserted by tests/test_dist.cpp).

#include <cstdint>
#include <functional>

#include "config/configuration.hpp"
#include "core/protocol.hpp"

namespace arl::engine {

/// Index of a job within its batch.
using JobId = std::uint64_t;

/// One unit of work: a configuration plus how to run it.
struct BatchJob {
  config::Configuration configuration;

  /// Which protocol to run (see core/protocol.hpp); defaults to canonical.
  core::ProtocolSpec protocol = {};

  /// Election knobs.  `options.simulate` is ignored (the protocol spec
  /// decides whether to simulate) and `options.simulator.coin_seed` is
  /// overwritten by the engine from the batch seed.
  core::ElectionOptions options = {};
};

/// Produces the job with index `id` on demand.  Called concurrently from
/// worker threads, so it must be a pure function of `id` (derive any
/// randomness from a per-index Rng split, never from shared mutable state).
using JobSource = std::function<BatchJob(JobId id)>;

/// Deterministic per-job coin seed (see the determinism contract above).
[[nodiscard]] std::uint64_t job_coin_seed(std::uint64_t batch_seed, JobId id);

}  // namespace arl::engine
