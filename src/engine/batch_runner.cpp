#include "engine/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <utility>

#include "store/tiered_cache.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace arl::engine {

std::uint64_t job_coin_seed(std::uint64_t batch_seed, JobId id) {
  return support::Rng(batch_seed).split(id).next();
}

double ProtocolBreakdown::average_local_rounds() const {
  if (jobs == 0) {
    return 0.0;
  }
  return static_cast<double>(total_local_rounds) / static_cast<double>(jobs);
}

double BatchReport::throughput() const {
  if (wall_millis <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(jobs.size()) / (wall_millis / 1e3);
}

double BatchReport::node_rounds_per_second() const {
  if (wall_millis <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(total_stats.node_rounds) / (wall_millis / 1e3);
}

namespace {

/// Executes one job on one worker's scratch and condenses the report.
JobOutcome execute_job(const BatchJob& job, JobId id, std::uint64_t batch_seed,
                       EngineMode engine, const fault::FaultSpec& fault_spec,
                       core::ElectionScratch& scratch, core::ElectionReport* keep,
                       obs::TraceSink* trace) {
  // The frame collects this job's phase spans (classify, simulate, store
  // I/O, ...) via the thread-local PhaseTimer hook — per-job attribution
  // without threading a parameter through core::run_protocol.
  obs::JobFrame frame;
  const obs::ScopedJobFrame active_frame(frame);

  core::ElectionOptions options = job.options;
  options.simulator.coin_seed = job_coin_seed(batch_seed, id);
  if (fault_spec.active()) {
    // Per-job fault seed from the reserved fault stream — a pure function
    // of (batch seed, global job id), mirroring the coin-seed discipline.
    options.simulator.fault = {fault_spec, fault::job_fault_seed(batch_seed, id)};
  }
  if (engine == EngineMode::Scalar) {
    options.simulator.engine = radio::SimulatorEngine::Scalar;
  } else {
    // Wavefront (and Auto, which resolves to it): the bitset fast path, with
    // result histories skipped — no engine consumer reads them, and
    // ElectionReport never retains them, so outcomes are unchanged.
    options.simulator.engine = radio::SimulatorEngine::Bitset;
    options.simulator.keep_histories = false;
  }

  core::ElectionReport report = core::run_protocol(job.configuration, job.protocol, options,
                                                   scratch);

  JobOutcome outcome;
  outcome.id = id;
  outcome.protocol = job.protocol;
  // Recorded unconditionally so any BatchReport can become a shard report
  // (dist/report_io.hpp serializes it per job); the O(n+m) hash is noise
  // next to the classification/simulation every job already pays.
  outcome.config_fingerprint = config::fingerprint(job.configuration);
  outcome.disposition = report.disposition;
  outcome.nodes = job.configuration.size();
  outcome.span = job.configuration.span();
  outcome.feasible = report.feasible;
  outcome.simulated = report.simulated;
  outcome.valid = report.valid;
  outcome.leader = report.leader;
  outcome.classifier_iterations = report.classification.iterations;
  outcome.classifier_steps = report.classification.steps;
  outcome.local_rounds = report.local_rounds;
  outcome.global_rounds = report.global_rounds;
  outcome.stats = report.stats;
  if (keep != nullptr) {
    *keep = std::move(report);
  }

  if (trace != nullptr) {
    obs::TraceEvent event;
    event.job_id = id;
    event.protocol = outcome.protocol.name();
    event.config_fingerprint = outcome.config_fingerprint;
    event.nodes = outcome.nodes;
    event.span = outcome.span;
    event.disposition = core::to_string(outcome.disposition);
    event.feasible = outcome.feasible;
    event.simulated = outcome.simulated;
    event.valid = outcome.valid;
    event.local_rounds = outcome.local_rounds;
    event.injected = outcome.stats.injected_drops + outcome.stats.injected_corruptions +
                     outcome.stats.injected_crashes + outcome.stats.delayed_wakeups;
    event.frame = frame;
    trace->emit(event);
  }
  return outcome;
}

void accumulate(radio::RunStats& total, const radio::RunStats& stats) {
  total.transmissions += stats.transmissions;
  total.clean_receptions += stats.clean_receptions;
  total.collisions_heard += stats.collisions_heard;
  total.forced_wakeups += stats.forced_wakeups;
  total.node_rounds += stats.node_rounds;
  // Per-node maxima combine by max (the busiest node across the batch);
  // injected-event counts sum like the other totals.
  total.max_node_transmissions = std::max(total.max_node_transmissions,
                                          stats.max_node_transmissions);
  total.max_node_awake_rounds = std::max(total.max_node_awake_rounds,
                                         stats.max_node_awake_rounds);
  total.injected_drops += stats.injected_drops;
  total.injected_corruptions += stats.injected_corruptions;
  total.injected_crashes += stats.injected_crashes;
  total.delayed_wakeups += stats.delayed_wakeups;
}

}  // namespace

BatchRunner::BatchRunner(BatchOptions options)
    : options_(options), pool_(options.threads) {}

template <typename Fetch>
BatchReport BatchRunner::run_batch(JobId begin, JobId end, const Fetch& fetch,
                                   const RunOverrides& overrides) {
  ARL_EXPECTS(begin <= end, "job range must have begin <= end");
  ARL_EXPECTS(!overrides.max_threads || *overrides.max_threads >= 1,
              "RunOverrides::max_threads must be >= 1");
  support::Stopwatch watch;
  // Phase timing is attributed to this batch as registry growth between here
  // and the last worker joining — the ScheduleCacheStats::since idiom.  When
  // metrics are disabled every PhaseTimer is inert, so the delta would be
  // all zeros; skip the snapshots entirely and leave report.phases unset.
  obs::Registry& registry = obs::Registry::global();
  const bool metrics_on = registry.enabled();
  const obs::MetricsSnapshot phases_before = metrics_on ? registry.snapshot()
                                                        : obs::MetricsSnapshot{};
  const JobId count = end - begin;
  const std::uint64_t seed = overrides.seed.value_or(options_.seed);
  const EngineMode engine = overrides.engine.value_or(options_.engine);
  const fault::FaultSpec fault = overrides.fault.value_or(options_.fault);
  BatchReport report;
  report.fault = fault;
  report.jobs.resize(count);
  if (options_.keep_reports) {
    report.reports.resize(count);
  }

  // One schedule cache per batch, shared by every worker (it is sharded and
  // thread-safe), so jobs that repeat a configuration — cross-protocol
  // head-to-heads, mutation sweeps — compile it once.  Per batch, not per
  // runner: stats describe one batch and entries never leak across runs.
  // An overriding shared cache replaces it entirely: entries then live as
  // long as its owner (the sweep service's warm cross-request cache), and
  // the owner — not this batch — accounts its stats.
  // A store directory upgrades the per-batch cache to the two-tier handle:
  // same memory LRU in front, with the on-disk store preloading cold keys
  // and persisting fresh compiles across the process boundary.
  std::optional<ScheduleCache> cache;
  std::unique_ptr<store::TieredScheduleCache> tiered;
  if (overrides.shared_cache == nullptr) {
    if (!options_.store_directory.empty()) {
      const std::size_t memory_capacity =
          options_.cache_capacity > 0 ? options_.cache_capacity : ScheduleCache::kDefaultCapacity;
      tiered = std::make_unique<store::TieredScheduleCache>(options_.store_directory,
                                                            memory_capacity);
    } else if (options_.cache_capacity > 0) {
      cache.emplace(options_.cache_capacity);
    }
  }
  core::ScheduleCacheHandle* const cache_handle =
      overrides.shared_cache != nullptr
          ? overrides.shared_cache
          : (tiered ? static_cast<core::ScheduleCacheHandle*>(tiered.get())
                    : (cache ? &*cache : nullptr));

  // One long-lived task per worker, pulling job ids from a shared counter:
  // dynamic load balancing without per-job scheduling overhead, and each
  // worker's ElectionScratch is reused across every job it claims.
  std::size_t workers =
      count == 0 ? 0 : std::min<std::size_t>(pool_.size(), static_cast<std::size_t>(count));
  if (overrides.max_threads) {
    workers = std::min(workers, *overrides.max_threads);
  }
  // Workers claim *global* job ids: seeding and recorded outcomes use the
  // id the job has in the whole sweep, while result slots are range-local —
  // which is exactly why a shard run reproduces the unsharded jobs bit for
  // bit (the shard offset never reaches job_coin_seed).
  std::atomic<JobId> next{begin};
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool_.submit(
        [this, begin, end, &fetch, &next, &report, cache_handle, seed, engine, &fault]() {
          core::ElectionScratch scratch;
          scratch.schedule_cache = cache_handle;
          for (JobId id = next.fetch_add(1); id < end; id = next.fetch_add(1)) {
            decltype(auto) job = fetch(id);
            core::ElectionReport* keep =
                options_.keep_reports ? &report.reports[id - begin] : nullptr;
            report.jobs[id - begin] =
                execute_job(job, id, seed, engine, fault, scratch, keep, options_.job_trace);
          }
        }));
  }

  // Wait for every worker before rethrowing: the tasks capture locals by
  // reference, so no worker may outlive this frame.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  aggregate_outcomes(report);
  report.threads_used = workers;
  if (cache) {
    report.cache = cache->stats();
  }
  if (tiered) {
    report.cache = tiered->memory().stats();
    report.artifact_store = tiered->artifacts().stats();
  }
  if (metrics_on) {
    report.phases = registry.snapshot().since(phases_before);
  }
  report.wall_millis = watch.millis();
  return report;
}

BatchReport BatchRunner::run(const std::vector<BatchJob>& jobs) {
  return run_batch(0, static_cast<JobId>(jobs.size()),
                   [&jobs](JobId id) -> const BatchJob& {
                     return jobs[static_cast<std::size_t>(id)];
                   },
                   {});
}

BatchReport BatchRunner::run(JobId count, const JobSource& source) {
  return run_batch(0, count, [&source](JobId id) { return source(id); }, {});
}

BatchReport BatchRunner::run_range(JobId begin, JobId end, const JobSource& source) {
  return run_batch(begin, end, [&source](JobId id) { return source(id); }, {});
}

BatchReport BatchRunner::run_range(JobId begin, JobId end, const JobSource& source,
                                   const RunOverrides& overrides) {
  return run_batch(begin, end, [&source](JobId id) { return source(id); }, overrides);
}

BatchReport run_batch(const std::vector<BatchJob>& jobs, BatchOptions options) {
  BatchRunner runner(options);
  return runner.run(jobs);
}

void aggregate_outcomes(BatchReport& report) {
  report.by_protocol.clear();
  report.feasible_count = 0;
  report.valid_count = 0;
  report.total_local_rounds = 0;
  report.max_local_rounds = 0;
  report.total_global_rounds = 0;
  report.total_stats = {};
  for (const JobOutcome& outcome : report.jobs) {
    report.feasible_count += outcome.feasible ? 1 : 0;
    report.valid_count += outcome.valid ? 1 : 0;
    report.total_local_rounds += outcome.local_rounds;
    report.max_local_rounds = std::max(report.max_local_rounds, outcome.local_rounds);
    report.total_global_rounds += outcome.global_rounds;
    accumulate(report.total_stats, outcome.stats);

    // Per-protocol breakdown, keyed by registry name in order of first
    // appearance (job-id order, so the rows are deterministic).
    auto row =
        std::find_if(report.by_protocol.begin(), report.by_protocol.end(),
                     [&](const ProtocolBreakdown& b) { return b.protocol == outcome.protocol; });
    if (row == report.by_protocol.end()) {
      ProtocolBreakdown fresh;
      fresh.protocol = outcome.protocol;
      report.by_protocol.push_back(std::move(fresh));
      row = std::prev(report.by_protocol.end());
    }
    row->jobs += 1;
    row->feasible += outcome.feasible ? 1 : 0;
    row->valid += outcome.valid ? 1 : 0;
    row->elected += outcome.disposition == core::Disposition::Elected ? 1 : 0;
    row->no_leader += outcome.disposition == core::Disposition::NoLeader ? 1 : 0;
    row->failed += outcome.disposition == core::Disposition::Failed ? 1 : 0;
    row->detected_fault += outcome.disposition == core::Disposition::DetectedFault ? 1 : 0;
    row->total_local_rounds += outcome.local_rounds;
    row->max_local_rounds = std::max(row->max_local_rounds, outcome.local_rounds);
    accumulate(row->stats, outcome.stats);
  }
}

bool same_results(const BatchReport& a, const BatchReport& b) {
  return a.jobs == b.jobs && a.by_protocol == b.by_protocol && a.fault == b.fault &&
         a.feasible_count == b.feasible_count && a.valid_count == b.valid_count &&
         a.total_local_rounds == b.total_local_rounds &&
         a.max_local_rounds == b.max_local_rounds &&
         a.total_global_rounds == b.total_global_rounds && a.total_stats == b.total_stats;
}

}  // namespace arl::engine
