#pragma once

/// \file schedule_cache.hpp
/// The engine's schedule/classification cache: a sharded, thread-safe,
/// bounded LRU map from configuration fingerprints to compiled artifacts
/// (`core::CompiledConfiguration` — the Classifier run plus the canonical
/// schedule built from it).
///
/// Why it exists: the canonical DRIP compiles per-configuration knowledge
/// before any simulation, and mutation sweeps / `cross_protocols` batches
/// deliberately run consecutive jobs on the *same* configuration — so
/// without a cache every one of those jobs re-classifies (O(n³Δ)) and
/// re-compiles from scratch.  One `ScheduleCache` shared by all of a
/// `BatchRunner`'s workers classifies once per distinct configuration
/// instead of once per job.  It is also the keyed-artifact layer the
/// sharded/distributed sweeps item will serialize across processes: entries
/// are keyed by `config::fingerprint`, the stable digest that survives a
/// process boundary.
///
/// Correctness: keys are digests, so two distinct configurations could in
/// principle collide.  Every slot therefore stores its configuration and a
/// match verifies it (plus the channel model and classifier choice), so a
/// collision degrades to a miss/replacement — never to wrong artifacts — and
/// cache-on runs stay bit-identical to cache-off runs on any thread count
/// (asserted by tests/test_schedule_cache.cpp).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/election.hpp"

namespace arl::engine {

/// Counters of one cache's lifetime (monotonic except `entries`).
/// Outcomes never depend on these — they describe work saved, and under
/// concurrent workers two threads may miss on the same key simultaneously,
/// so exact values are only deterministic for single-threaded batches.
struct ScheduleCacheStats {
  std::uint64_t hits = 0;             ///< lookups answered from the cache
  std::uint64_t misses = 0;           ///< lookups that found nothing (each one classifies)
  std::uint64_t evictions = 0;        ///< entries dropped by the capacity bound
  std::uint64_t schedule_builds = 0;  ///< schedules compiled through the cache (miss or upgrade)
  std::uint64_t entries = 0;          ///< entries resident right now

  /// Hits per lookup, in [0, 1] (0 when nothing was looked up).
  [[nodiscard]] double hit_rate() const;

  /// The counter growth between an `earlier` snapshot of the same cache and
  /// this one: monotonic counters subtract, `entries` (a gauge) keeps this
  /// snapshot's value.  This is how the sweep service attributes hits and
  /// misses to one request on its process-wide cache — snapshot before,
  /// snapshot after, report the difference.
  [[nodiscard]] ScheduleCacheStats since(const ScheduleCacheStats& earlier) const;

  friend bool operator==(const ScheduleCacheStats& a, const ScheduleCacheStats& b) = default;
};

/// Sharded bounded LRU implementation of `core::ScheduleCacheHandle`.
/// Shards are selected by key digest, each with its own mutex, LRU list and
/// capacity slice, so workers hitting different configurations rarely
/// contend.  Shared immutable entries (`shared_ptr<const ...>`) stay alive in
/// the reports that hold them even after eviction.
class ScheduleCache final : public core::ScheduleCacheHandle {
 public:
  /// Default capacity: comfortably covers a mutation neighbourhood or a
  /// cross-protocol sweep's working set without hoarding schedules.
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// A cache holding at most `capacity` entries (>= 1) across `shards`
  /// shards (rounded down to a power of two; 0 picks a default).  The bound
  /// is enforced per shard — capacity() reports the effective total, which
  /// never exceeds the request but may round down to the sharding
  /// granularity, and a shard whose keys are skewed evicts before the total
  /// is reached.
  explicit ScheduleCache(std::size_t capacity = kDefaultCapacity, std::size_t shards = 0);

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  [[nodiscard]] std::shared_ptr<const core::CompiledConfiguration> lookup(
      const config::Configuration& configuration, radio::ChannelModel model,
      bool fast_classifier) override;

  std::shared_ptr<const core::CompiledConfiguration> store(
      const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier,
      core::CompiledConfiguration compiled) override;

  /// Snapshot of the counters, summed across shards.
  [[nodiscard]] ScheduleCacheStats stats() const;

  /// Drops every entry (counters other than `entries` keep accumulating).
  void clear();

  /// Effective total entry bound across all shards (<= the requested one).
  [[nodiscard]] std::size_t capacity() const;

 private:
  /// One cached compile with everything needed to verify a digest match.
  struct Slot {
    std::uint64_t key = 0;
    config::Configuration configuration;
    radio::ChannelModel model = radio::ChannelModel::CollisionDetection;
    bool fast_classifier = false;
    std::shared_ptr<const core::CompiledConfiguration> compiled;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Slot> lru;  ///< most recently used first
    std::unordered_map<std::uint64_t, std::list<Slot>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t schedule_builds = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key);

  std::size_t shard_capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace arl::engine
