#include "engine/sweep.hpp"

#include <limits>
#include <memory>
#include <utility>

#include "config/families.hpp"
#include "graph/enumeration.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace arl::engine {

JobSource random_jobs(RandomSweep sweep) {
  ARL_EXPECTS(!sweep.protocols.empty(), "RandomSweep needs at least one protocol");
  return [sweep = std::move(sweep)](JobId id) {
    const auto protocols = static_cast<JobId>(sweep.protocols.size());
    const JobId configuration_id = id / protocols;
    support::Rng rng = support::Rng(sweep.seed).split(configuration_id);
    graph::Graph graph = graph::gnp_connected(sweep.nodes, sweep.edge_probability, rng);
    config::Configuration configuration =
        sweep.exact_span ? config::random_tags_with_span(std::move(graph), sweep.span, rng)
                         : config::random_tags(std::move(graph), sweep.span, rng);
    return BatchJob{std::move(configuration),
                    sweep.protocols[static_cast<std::size_t>(id % protocols)], sweep.options};
  };
}

std::uint64_t sweep_configuration_seed(std::uint64_t batch_seed) {
  // Stream id reserved for the configuration stream (any job-id collision
  // would correlate a job's configuration with its coins); the value is
  // arbitrary but fixed forever so published sweeps stay reproducible.
  constexpr std::uint64_t kConfigurationStream = 0x5EEDF00D;
  return support::Rng(batch_seed).split(kConfigurationStream).next();
}

CountedSweep cross_protocols(CountedSweep base, std::vector<core::ProtocolSpec> protocols) {
  ARL_EXPECTS(!protocols.empty(), "cross_protocols needs at least one protocol");
  const auto count = static_cast<JobId>(protocols.size());
  ARL_EXPECTS(base.count <= std::numeric_limits<JobId>::max() / count,
              "protocol cross product overflows the job-id space");
  CountedSweep crossed;
  crossed.count = base.count * count;
  crossed.source = [source = std::move(base.source), protocols = std::move(protocols),
                    count](JobId id) {
    BatchJob job = source(id / count);
    job.protocol = protocols[static_cast<std::size_t>(id % count)];
    return job;
  };
  return crossed;
}

std::vector<BatchJob> cross_jobs(std::vector<config::Configuration> configurations,
                                 const std::vector<core::ProtocolSpec>& protocols,
                                 const core::ElectionOptions& options) {
  ARL_EXPECTS(!protocols.empty(), "cross_jobs needs at least one protocol");
  std::vector<BatchJob> jobs;
  jobs.reserve(configurations.size() * protocols.size());
  for (config::Configuration& configuration : configurations) {
    for (const core::ProtocolSpec& protocol : protocols) {
      jobs.push_back(BatchJob{configuration, protocol, options});
    }
  }
  return jobs;
}

CountedSweep exhaustive_sweep(graph::NodeId n, config::Tag max_tag, core::ProtocolSpec protocol,
                              core::ElectionOptions options) {
  auto graphs = std::make_shared<std::vector<graph::Graph>>();
  graph::for_each_connected_graph(
      n, [&graphs](const graph::Graph& graph) { graphs->push_back(graph); });

  const std::uint64_t base = static_cast<std::uint64_t>(max_tag) + 1;
  std::uint64_t tag_vectors = 1;
  for (graph::NodeId v = 0; v < n; ++v) {
    ARL_EXPECTS(tag_vectors <= std::numeric_limits<std::uint64_t>::max() / base,
                "tag space exceeds 64 bits");
    tag_vectors *= base;
  }

  CountedSweep sweep;
  sweep.count = static_cast<JobId>(graphs->size()) * tag_vectors;
  sweep.source = [graphs, n, base, tag_vectors, protocol,
                  options = std::move(options)](JobId id) {
    // Decode (graph index, tag odometer) from the job id; node 0 is the
    // fastest digit, matching the materialized enumeration order.
    const auto graph_index = static_cast<std::size_t>(id / tag_vectors);
    std::uint64_t code = id % tag_vectors;
    std::vector<config::Tag> tags(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      tags[v] = static_cast<config::Tag>(code % base);
      code /= base;
    }
    return BatchJob{config::Configuration((*graphs)[graph_index], std::move(tags)), protocol,
                    options};
  };
  return sweep;
}

std::vector<BatchJob> exhaustive_jobs(graph::NodeId n, config::Tag max_tag,
                                      core::ProtocolSpec protocol,
                                      core::ElectionOptions options) {
  const CountedSweep sweep = exhaustive_sweep(n, max_tag, protocol, std::move(options));
  std::vector<BatchJob> jobs;
  jobs.reserve(static_cast<std::size_t>(sweep.count));
  for (JobId id = 0; id < sweep.count; ++id) {
    jobs.push_back(sweep.source(id));
  }
  return jobs;
}

std::vector<BatchJob> staggered_jobs(graph::NodeId first, std::size_t count,
                                     core::ProtocolSpec protocol,
                                     core::ElectionOptions options) {
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back(BatchJob{
        config::staggered_path(first + static_cast<graph::NodeId>(i)), protocol, options});
  }
  return jobs;
}

}  // namespace arl::engine
