#include "engine/workload.hpp"

#include <array>
#include <limits>
#include <sstream>
#include <tuple>
#include <utility>

#include "config/families.hpp"
#include "config/mutations.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"

namespace arl::engine {

namespace {

using support::ContractViolation;

/// Registry-order kind tokens (the part of a name before ':').
constexpr std::array<std::pair<WorkloadKind, const char*>, 12> kKinds = {{
    {WorkloadKind::Random, "random"},
    {WorkloadKind::Exhaustive, "exhaustive"},
    {WorkloadKind::FamilyG, "family-g"},
    {WorkloadKind::FamilyH, "family-h"},
    {WorkloadKind::FamilyS, "family-s"},
    {WorkloadKind::Staggered, "staggered"},
    {WorkloadKind::Grid, "grid"},
    {WorkloadKind::Torus, "torus"},
    {WorkloadKind::Hypercube, "hypercube"},
    {WorkloadKind::Tree, "tree"},
    {WorkloadKind::SingleHop, "single-hop"},
    {WorkloadKind::Mutations, "mutations"},
}};

const char* kind_token(WorkloadKind kind) {
  for (const auto& [k, token] : kKinds) {
    if (k == kind) {
      return token;
    }
  }
  return "?";
}

/// A fresh spec of `kind` with that kind's default parameters — the one
/// construction path shared by the factories and parse_workload, so
/// member-wise equality never sees two spellings of the same workload.
WorkloadSpec blank(WorkloadKind kind) {
  WorkloadSpec spec;
  spec.kind = kind;
  switch (kind) {
    case WorkloadKind::Exhaustive:
      spec.nodes = 4;
      break;
    case WorkloadKind::Tree:
      spec.nodes = 64;
      break;
    case WorkloadKind::SingleHop:
      spec.nodes = 32;
      break;
    default:
      break;
  }
  return spec;
}

/// Shortest decimal spelling that round-trips to exactly `value` — the
/// canonical form of p in names ("0.3", not "0.29999999999999999").
std::string shortest_double(double value) {
  for (int precision = 1; precision <= std::numeric_limits<double>::max_digits10;
       ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    if (std::stod(out.str()) == value) {
      return out.str();
    }
  }
  return std::to_string(value);
}

void check(bool ok, const std::string& what) {
  if (!ok) {
    throw ContractViolation(what);
  }
}

/// Parameter bounds, enforced by parse_workload AND instantiate (a spec
/// built by hand gets the same validation the grammar applies).
void validate(const WorkloadSpec& spec) {
  const std::string at = std::string("workload '") + kind_token(spec.kind) + "': ";
  check(spec.span <= 1'000'000, at + "sigma must be in [0, 1000000]");
  // Stretching tags to an exact positive span needs two nodes to stretch
  // between (config::random_tags_with_span's precondition) — reject at
  // parse time, not mid-batch inside a worker thread.
  const auto spannable = [&](std::uint64_t node_count) {
    check(spec.span == 0 || node_count >= 2, at + "a positive sigma needs at least 2 nodes");
  };
  switch (spec.kind) {
    case WorkloadKind::Random:
      check(spec.nodes >= 1 && spec.nodes <= 1'000'000, at + "n must be in [1, 1000000]");
      check(spec.edge_probability >= 0.0 && spec.edge_probability <= 1.0,
            at + "p must be in [0, 1]");
      if (spec.exact) {  // exact=0 draws uniform tags, legal on one node
        spannable(spec.nodes);
      }
      break;
    case WorkloadKind::Exhaustive:
      // The census is exponential in n (connected labelled graphs times the
      // (tau+1)^n tag odometer); beyond n = 6 a single shard is hopeless.
      check(spec.nodes >= 1 && spec.nodes <= 6, at + "n must be in [1, 6]");
      check(spec.max_tag <= 8, at + "tau must be in [0, 8]");
      break;
    case WorkloadKind::Grid:
      check(spec.rows >= 1 && spec.rows <= 1000, at + "rows must be in [1, 1000]");
      check(spec.cols >= 1 && spec.cols <= 1000, at + "cols must be in [1, 1000]");
      spannable(static_cast<std::uint64_t>(spec.rows) * spec.cols);
      break;
    case WorkloadKind::Torus:
      check(spec.rows >= 3 && spec.rows <= 1000, at + "rows must be in [3, 1000]");
      check(spec.cols >= 3 && spec.cols <= 1000, at + "cols must be in [3, 1000]");
      break;
    case WorkloadKind::Hypercube:
      check(spec.dimension >= 1 && spec.dimension <= 20, at + "d must be in [1, 20]");
      break;
    case WorkloadKind::Tree:
    case WorkloadKind::SingleHop:
      check(spec.nodes >= 1 && spec.nodes <= 1'000'000, at + "n must be in [1, 1000000]");
      spannable(spec.nodes);
      break;
    case WorkloadKind::Mutations:
      check(spec.base != nullptr, at + "needs a base workload (mutations:WORKLOAD)");
      check(spec.base->kind != WorkloadKind::Mutations,
            at + "base must not itself be a mutation neighbourhood");
      validate(*spec.base);
      break;
    default:
      break;
  }
}

std::uint32_t parse_number(const std::string& value, const std::string& what) {
  check(!value.empty() && value.size() <= 9 &&
            value.find_first_not_of("0123456789") == std::string::npos,
        what + " must be a decimal integer in [0, 999999999] (got '" + value + "')");
  return static_cast<std::uint32_t>(std::stoul(value));
}

double parse_probability(const std::string& value, const std::string& what) {
  // Only canonical non-negative spellings (support::is_canonical_number, the
  // same grammar the shard-report wire enforces) — so a name parses to
  // exactly the double its writer printed.
  check(support::is_canonical_number(value),
        what + " must be a decimal number (got '" + value + "')");
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    throw ContractViolation(what + " is out of range (got '" + value + "')");
  }
}

bool parse_flag(const std::string& value, const std::string& what) {
  check(value == "0" || value == "1", what + " must be 0 or 1 (got '" + value + "')");
  return value == "1";
}

/// The m-offset of the §4 families (G_m starts at m = 2, H_m/S_m at m = 1).
config::Tag family_offset(WorkloadKind kind) {
  return kind == WorkloadKind::FamilyG ? 2 : 1;
}

/// The fixed-topology kinds' graph for one configuration index (`rng` is
/// that index's private stream; only Tree consumes it).
graph::Graph topology(const WorkloadSpec& spec, support::Rng& rng) {
  switch (spec.kind) {
    case WorkloadKind::Grid:
      return graph::grid(spec.rows, spec.cols);
    case WorkloadKind::Torus:
      return graph::torus(spec.rows, spec.cols);
    case WorkloadKind::Hypercube:
      return graph::hypercube(spec.dimension);
    case WorkloadKind::Tree:
      return graph::random_tree(spec.nodes, rng);
    case WorkloadKind::SingleHop:
      return graph::complete(spec.nodes);
    default:
      ARL_EXPECTS(false, "not a fixed-topology workload kind");
      return graph::Graph();
  }
}

/// Wraps a materialized job list as a shared lazy source, so sharding
/// treats every kind uniformly (a shard touches only its own job ids).
CountedSweep materialized_sweep(std::vector<BatchJob> materialized) {
  auto jobs = std::make_shared<const std::vector<BatchJob>>(std::move(materialized));
  CountedSweep sweep;
  sweep.count = static_cast<JobId>(jobs->size());
  sweep.source = [jobs](JobId id) { return (*jobs)[static_cast<std::size_t>(id)]; };
  return sweep;
}

/// The first `count` configurations of a spec's stream, materialized — the
/// base of a mutation neighbourhood.
std::vector<config::Configuration> materialize_configurations(const WorkloadSpec& spec,
                                                              std::uint64_t seed,
                                                              std::size_t count) {
  const CountedSweep sweep =
      spec.instantiate(seed, {core::ProtocolSpec::canonical()}, {.count = count});
  std::vector<config::Configuration> configurations;
  configurations.reserve(static_cast<std::size_t>(sweep.count));
  for (JobId id = 0; id < sweep.count; ++id) {
    configurations.push_back(sweep.source(id).configuration);
  }
  return configurations;
}

}  // namespace

WorkloadSpec WorkloadSpec::random(std::uint32_t n, double p, std::uint32_t sigma) {
  WorkloadSpec spec = blank(WorkloadKind::Random);
  spec.nodes = n;
  spec.edge_probability = p;
  spec.span = sigma;
  return spec;
}

WorkloadSpec WorkloadSpec::exhaustive(std::uint32_t n, std::uint32_t tau) {
  WorkloadSpec spec = blank(WorkloadKind::Exhaustive);
  spec.nodes = n;
  spec.max_tag = tau;
  return spec;
}

WorkloadSpec WorkloadSpec::family_g() {
  return blank(WorkloadKind::FamilyG);
}

WorkloadSpec WorkloadSpec::family_h() {
  return blank(WorkloadKind::FamilyH);
}

WorkloadSpec WorkloadSpec::family_s() {
  return blank(WorkloadKind::FamilyS);
}

WorkloadSpec WorkloadSpec::staggered() {
  return blank(WorkloadKind::Staggered);
}

WorkloadSpec WorkloadSpec::grid(std::uint32_t rows, std::uint32_t cols, std::uint32_t sigma) {
  WorkloadSpec spec = blank(WorkloadKind::Grid);
  spec.rows = rows;
  spec.cols = cols;
  spec.span = sigma;
  return spec;
}

WorkloadSpec WorkloadSpec::torus(std::uint32_t rows, std::uint32_t cols, std::uint32_t sigma) {
  WorkloadSpec spec = blank(WorkloadKind::Torus);
  spec.rows = rows;
  spec.cols = cols;
  spec.span = sigma;
  return spec;
}

WorkloadSpec WorkloadSpec::hypercube(std::uint32_t d, std::uint32_t sigma) {
  WorkloadSpec spec = blank(WorkloadKind::Hypercube);
  spec.dimension = d;
  spec.span = sigma;
  return spec;
}

WorkloadSpec WorkloadSpec::tree(std::uint32_t n, std::uint32_t sigma) {
  WorkloadSpec spec = blank(WorkloadKind::Tree);
  spec.nodes = n;
  spec.span = sigma;
  return spec;
}

WorkloadSpec WorkloadSpec::single_hop(std::uint32_t n, std::uint32_t sigma) {
  WorkloadSpec spec = blank(WorkloadKind::SingleHop);
  spec.nodes = n;
  spec.span = sigma;
  return spec;
}

WorkloadSpec WorkloadSpec::mutations(WorkloadSpec base) {
  WorkloadSpec spec = blank(WorkloadKind::Mutations);
  // The wrapper mirrors the base's execution identity so election_options()
  // and member-wise equality agree whichever level a caller inspects.
  spec.model = base.model;
  spec.fast = base.fast;
  spec.base = std::make_shared<const WorkloadSpec>(std::move(base));
  return spec;
}

bool operator==(const WorkloadSpec& a, const WorkloadSpec& b) {
  const auto fields = [](const WorkloadSpec& w) {
    return std::tie(w.kind, w.nodes, w.rows, w.cols, w.dimension, w.span, w.max_tag,
                    w.edge_probability, w.exact, w.model, w.fast);
  };
  if (fields(a) != fields(b) || (a.base == nullptr) != (b.base == nullptr)) {
    return false;
  }
  return a.base == nullptr || *a.base == *b.base;
}

std::string WorkloadSpec::name() const {
  if (kind == WorkloadKind::Mutations) {
    return std::string(kind_token(kind)) + ":" + (base ? base->name() : "?");
  }
  std::vector<std::string> params;
  switch (kind) {
    case WorkloadKind::Random:
      params.push_back("n=" + std::to_string(nodes));
      params.push_back("p=" + shortest_double(edge_probability));
      params.push_back("sigma=" + std::to_string(span));
      if (!exact) {
        params.push_back("exact=0");
      }
      break;
    case WorkloadKind::Exhaustive:
      params.push_back("n=" + std::to_string(nodes));
      params.push_back("tau=" + std::to_string(max_tag));
      break;
    case WorkloadKind::Grid:
    case WorkloadKind::Torus:
      params.push_back("rows=" + std::to_string(rows));
      params.push_back("cols=" + std::to_string(cols));
      params.push_back("sigma=" + std::to_string(span));
      break;
    case WorkloadKind::Hypercube:
      params.push_back("d=" + std::to_string(dimension));
      params.push_back("sigma=" + std::to_string(span));
      break;
    case WorkloadKind::Tree:
    case WorkloadKind::SingleHop:
      params.push_back("n=" + std::to_string(nodes));
      params.push_back("sigma=" + std::to_string(span));
      break;
    default:  // the parameterless families
      break;
  }
  if (model == radio::ChannelModel::NoCollisionDetection) {
    params.push_back("model=nocd");
  }
  if (fast) {
    params.push_back("fast=1");
  }
  std::string out = kind_token(kind);
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += (i == 0 ? ':' : ',');
    out += params[i];
  }
  return out;
}

std::string WorkloadSpec::describe() const {
  switch (kind) {
    case WorkloadKind::Random:
      return "seeded connected G(n,p) with random span-sigma tags";
    case WorkloadKind::Exhaustive:
      return "every connected n-node configuration with tags in [0, tau] (self-counting)";
    case WorkloadKind::FamilyG:
      return "the paper's Prop. 4.1 paths G_m, m = 2, 3, ...";
    case WorkloadKind::FamilyH:
      return "the paper's Lemma 4.2 paths H_m, m = 1, 2, ...";
    case WorkloadKind::FamilyS:
      return "the paper's infeasible Prop. 4.5 paths S_m, m = 1, 2, ...";
    case WorkloadKind::Staggered:
      return "staggered paths n = 2, 3, ... (maximally asymmetric wakeup)";
    case WorkloadKind::Grid:
      return "rows x cols mesh with random span-sigma tags";
    case WorkloadKind::Torus:
      return "rows x cols wrap-around mesh with random span-sigma tags";
    case WorkloadKind::Hypercube:
      return "d-dimensional hypercube (2^d nodes) with random span-sigma tags";
    case WorkloadKind::Tree:
      return "uniformly random n-node tree with random span-sigma tags";
    case WorkloadKind::SingleHop:
      return "complete graph (single-hop network) with random span-sigma tags";
    case WorkloadKind::Mutations:
      return "every single-tag mutation of each base configuration (self-counting "
             "with a self-counting base)";
  }
  return "?";
}

std::uint64_t WorkloadSpec::digest() const {
  // Same domain seed as dist::sweep_digest, so the digest a spec computes is
  // exactly the digest shard reports carry over its name (asserted by
  // tests/test_dist.cpp).
  return support::hash_text(name(), /*seed=*/0xD157);
}

bool WorkloadSpec::bounded() const {
  if (kind == WorkloadKind::Exhaustive) {
    return true;
  }
  return kind == WorkloadKind::Mutations && base != nullptr && base->bounded();
}

core::ElectionOptions WorkloadSpec::election_options() const {
  if (kind == WorkloadKind::Mutations && base != nullptr) {
    return base->election_options();
  }
  core::ElectionOptions options;
  options.channel_model = model;
  options.use_fast_classifier = fast;
  return options;
}

CountedSweep WorkloadSpec::instantiate(std::uint64_t seed,
                                       std::vector<core::ProtocolSpec> protocols,
                                       const InstantiateOptions& run) const {
  validate(*this);
  ARL_EXPECTS(!protocols.empty(), "a workload needs at least one protocol");
  const core::ElectionOptions options = election_options();
  const auto cross = static_cast<JobId>(protocols.size());
  const auto crossed_count = [&](JobId configurations) {
    ARL_EXPECTS(configurations <= std::numeric_limits<JobId>::max() / cross,
                "protocol cross product overflows the job-id space");
    return configurations * cross;
  };

  switch (kind) {
    case WorkloadKind::Random: {
      RandomSweep sweep;
      sweep.nodes = nodes;
      sweep.edge_probability = edge_probability;
      sweep.span = span;
      sweep.exact_span = exact;
      sweep.seed = sweep_configuration_seed(seed);
      sweep.protocols = std::move(protocols);
      sweep.options = options;
      return {crossed_count(run.count), random_jobs(std::move(sweep))};
    }

    case WorkloadKind::Grid:
    case WorkloadKind::Torus:
    case WorkloadKind::Hypercube:
    case WorkloadKind::Tree:
    case WorkloadKind::SingleHop: {
      // Same stream discipline as random_jobs: configuration i / P is a pure
      // function of (configuration seed, i / P), protocols consecutive per
      // configuration, so any prefix or shard reproduces on any thread count.
      const std::uint64_t configuration_seed = sweep_configuration_seed(seed);
      auto shared_protocols =
          std::make_shared<const std::vector<core::ProtocolSpec>>(std::move(protocols));
      CountedSweep sweep;
      sweep.count = crossed_count(run.count);
      sweep.source = [spec = *this, configuration_seed, shared_protocols, options](JobId id) {
        const auto count = static_cast<JobId>(shared_protocols->size());
        support::Rng rng = support::Rng(configuration_seed).split(id / count);
        graph::Graph graph = topology(spec, rng);
        config::Configuration configuration =
            config::random_tags_with_span(std::move(graph), spec.span, rng);
        return BatchJob{std::move(configuration),
                        (*shared_protocols)[static_cast<std::size_t>(id % count)], options};
      };
      return sweep;
    }

    case WorkloadKind::FamilyG:
    case WorkloadKind::FamilyH:
    case WorkloadKind::FamilyS: {
      std::vector<config::Configuration> configurations;
      configurations.reserve(run.count);
      for (std::size_t i = 0; i < run.count; ++i) {
        const auto m = static_cast<config::Tag>(i + family_offset(kind));
        configurations.push_back(kind == WorkloadKind::FamilyG   ? config::family_g(m)
                                 : kind == WorkloadKind::FamilyH ? config::family_h(m)
                                                                 : config::family_s(m));
      }
      return materialized_sweep(cross_jobs(std::move(configurations), protocols, options));
    }

    case WorkloadKind::Staggered: {
      std::vector<config::Configuration> configurations;
      configurations.reserve(run.count);
      for (std::size_t i = 0; i < run.count; ++i) {
        configurations.push_back(config::staggered_path(2 + static_cast<graph::NodeId>(i)));
      }
      return materialized_sweep(cross_jobs(std::move(configurations), protocols, options));
    }

    case WorkloadKind::Exhaustive:
      return cross_protocols(
          exhaustive_sweep(nodes, max_tag, core::ProtocolSpec::canonical(), options),
          std::move(protocols));

    case WorkloadKind::Mutations: {
      std::vector<config::Configuration> mutated;
      for (const config::Configuration& configuration :
           materialize_configurations(*base, seed, run.count)) {
        for (config::Configuration& neighbour :
             config::all_tag_mutations(configuration, configuration.span())) {
          mutated.push_back(std::move(neighbour));
        }
      }
      return materialized_sweep(cross_jobs(std::move(mutated), protocols, options));
    }
  }
  ARL_EXPECTS(false, "unreachable workload kind");
  return {};
}

const std::vector<WorkloadSpec>& registered_workloads() {
  static const std::vector<WorkloadSpec> registry = {
      WorkloadSpec::random(),
      WorkloadSpec::exhaustive(),
      WorkloadSpec::family_g(),
      WorkloadSpec::family_h(),
      WorkloadSpec::family_s(),
      WorkloadSpec::staggered(),
      WorkloadSpec::grid(),
      WorkloadSpec::torus(),
      WorkloadSpec::hypercube(),
      WorkloadSpec::tree(),
      WorkloadSpec::single_hop(),
      WorkloadSpec::mutations(WorkloadSpec::random()),
  };
  return registry;
}

std::string workload_names() {
  return "random[:n=N,p=X,sigma=S,exact=0], exhaustive[:n=N,tau=T], family-g, family-h, "
         "family-s, staggered, grid[:rows=R,cols=C,sigma=S], torus[:rows=R,cols=C,sigma=S], "
         "hypercube[:d=D,sigma=S], tree[:n=N,sigma=S], single-hop[:n=N,sigma=S], "
         "mutations:WORKLOAD; every kind also takes model=cd|nocd and fast=0|1";
}

WorkloadSpec parse_workload(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string token(text.substr(0, colon));
  WorkloadKind kind = WorkloadKind::Random;
  bool known = false;
  for (const auto& [k, name] : kKinds) {
    if (token == name) {
      kind = k;
      known = true;
      break;
    }
  }
  if (!known) {
    throw ContractViolation("unknown workload '" + std::string(text) +
                            "' (registered: " + workload_names() + ")");
  }

  if (kind == WorkloadKind::Mutations) {
    if (colon == std::string_view::npos || colon + 1 >= text.size()) {
      throw ContractViolation("workload 'mutations' needs a base: mutations:WORKLOAD "
                              "(registered: " +
                              workload_names() + ")");
    }
    WorkloadSpec spec = WorkloadSpec::mutations(parse_workload(text.substr(colon + 1)));
    validate(spec);
    return spec;
  }

  WorkloadSpec spec = blank(kind);
  if (colon == std::string_view::npos) {
    validate(spec);
    return spec;
  }

  std::vector<std::string> seen_keys;
  std::string_view rest = text.substr(colon + 1);
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string param(rest.substr(0, comma));
    const std::size_t equals = param.find('=');
    if (param.empty() || equals == 0 || equals == std::string::npos ||
        equals + 1 >= param.size()) {
      throw ContractViolation("workload '" + token + "': malformed parameter '" + param +
                              "' (want key=value)");
    }
    const std::string key = param.substr(0, equals);
    const std::string value = param.substr(equals + 1);
    for (const std::string& earlier : seen_keys) {
      if (earlier == key) {
        throw ContractViolation("workload '" + token + "': duplicate parameter '" + key + "'");
      }
    }
    seen_keys.push_back(key);

    const std::string at = "workload '" + token + "': " + key;
    const auto accepts = [&](std::initializer_list<WorkloadKind> kinds) {
      for (const WorkloadKind k : kinds) {
        if (k == kind) {
          return true;
        }
      }
      return false;
    };
    if (key == "model") {
      if (value == "cd") {
        spec.model = radio::ChannelModel::CollisionDetection;
      } else if (value == "nocd") {
        spec.model = radio::ChannelModel::NoCollisionDetection;
      } else {
        throw ContractViolation(at + " must be cd or nocd (got '" + value + "')");
      }
    } else if (key == "fast") {
      spec.fast = parse_flag(value, at);
    } else if (key == "n" && accepts({WorkloadKind::Random, WorkloadKind::Exhaustive,
                                      WorkloadKind::Tree, WorkloadKind::SingleHop})) {
      spec.nodes = parse_number(value, at);
    } else if (key == "p" && accepts({WorkloadKind::Random})) {
      spec.edge_probability = parse_probability(value, at);
    } else if (key == "sigma" &&
               accepts({WorkloadKind::Random, WorkloadKind::Grid, WorkloadKind::Torus,
                        WorkloadKind::Hypercube, WorkloadKind::Tree,
                        WorkloadKind::SingleHop})) {
      spec.span = parse_number(value, at);
    } else if (key == "exact" && accepts({WorkloadKind::Random})) {
      spec.exact = parse_flag(value, at);
    } else if (key == "tau" && accepts({WorkloadKind::Exhaustive})) {
      spec.max_tag = parse_number(value, at);
    } else if ((key == "rows" || key == "cols") &&
               accepts({WorkloadKind::Grid, WorkloadKind::Torus})) {
      (key == "rows" ? spec.rows : spec.cols) = parse_number(value, at);
    } else if (key == "d" && accepts({WorkloadKind::Hypercube})) {
      spec.dimension = parse_number(value, at);
    } else {
      throw ContractViolation("workload '" + token + "': unknown parameter '" + key + "'");
    }

    if (comma == std::string_view::npos) {
      break;
    }
    rest = rest.substr(comma + 1);
  }
  validate(spec);
  return spec;
}

}  // namespace arl::engine
